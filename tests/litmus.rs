//! TSO litmus conformance: sampling, bounded-exhaustive exploration, and
//! the planted-bug regression path.
//!
//! These are the teeth of the `norush litmus`/`norush explore` machinery:
//! every declared-forbidden outcome must stay unreachable under every
//! policy, the explorer must *witness* every allowed outcome of the core
//! four tests (SB/MP/LB/IRIW), and the planted `--inject-early-unblock`
//! directory bug must be found and minimize to a deterministic repro.

use norush::sim::{explore, run_litmus, run_schedule, ExploreOptions};
use norush::workloads::litmus::{LitmusTest, OutcomeClass};

fn opts(policy: &str) -> ExploreOptions {
    ExploreOptions {
        policy: policy.into(),
        ..ExploreOptions::default()
    }
}

const POLICIES: &[&str] = &["eager", "lazy", "row"];

#[test]
fn sampling_full_suite_conforms_under_every_policy() {
    for policy in POLICIES {
        for test in LitmusTest::all() {
            let r = run_litmus(&test, &opts(policy), 8, 42).unwrap();
            assert!(
                r.violation.is_none(),
                "{policy}/{}: {:?}",
                test.name,
                r.violation.map(|v| (v.kind, v.detail))
            );
            assert_eq!(r.runs, 8);
        }
    }
}

#[test]
fn explore_sb_witnesses_all_four_outcomes() {
    for policy in POLICIES {
        let test = LitmusTest::sb();
        let r = explore(&test, &opts(policy)).unwrap();
        assert!(
            r.violation.is_none(),
            "{policy}: {:?}",
            r.violation.map(|v| v.detail)
        );
        assert!(
            r.unwitnessed.is_empty(),
            "{policy}: unwitnessed {:?} after {} runs, outcomes {:?}",
            r.unwitnessed,
            r.runs,
            r.outcomes.keys().collect::<Vec<_>>()
        );
        assert!(!r.truncated);
    }
}

#[test]
fn explore_mp_and_lb_forbidden_unreachable_and_allowed_witnessed() {
    for policy in POLICIES {
        for test in [LitmusTest::mp(), LitmusTest::lb()] {
            let r = explore(&test, &opts(policy)).unwrap();
            assert!(
                r.violation.is_none(),
                "{policy}/{}: {:?}",
                test.name,
                r.violation.map(|v| (v.kind, v.detail))
            );
            assert!(
                r.unwitnessed.is_empty(),
                "{policy}/{}: unwitnessed {:?} after {} runs",
                test.name,
                r.unwitnessed,
                r.runs
            );
        }
    }
}

#[test]
fn explore_iriw_forbidden_unreachable_and_allowed_witnessed() {
    // IRIW has 4 cores and 15 allowed outcomes; explore under one policy
    // to keep the test inside CI budgets (the CLI smoke and nightly lane
    // cover the full cross). The hardest outcome, (1,0,0,0), takes four
    // deviations — hold both GetX and one reader's GetS past the L3-miss
    // round trip, then hold the invalidation that would otherwise squash
    // and replay that reader's other load — and the invalidation send is a
    // late decision point, hence the raised bounds.
    let test = LitmusTest::iriw();
    let mut o = opts("eager");
    o.max_decisions = 13;
    o.max_delays = 4;
    let r = explore(&test, &o).unwrap();
    assert!(r.violation.is_none(), "{:?}", r.violation.map(|v| v.detail));
    assert!(
        r.unwitnessed.is_empty(),
        "unwitnessed {:?} after {} runs",
        r.unwitnessed,
        r.runs
    );
}

#[test]
fn explore_rmw_fence_tests_conform() {
    for policy in POLICIES {
        for test in [LitmusTest::sb_rmw(), LitmusTest::mp_rmw()] {
            let r = explore(&test, &opts(policy)).unwrap();
            assert!(
                r.violation.is_none(),
                "{policy}/{}: {:?}",
                test.name,
                r.violation.map(|v| (v.kind, v.detail))
            );
        }
    }
}

#[test]
fn dedup_and_dpor_actually_prune() {
    let r = explore(&LitmusTest::sb(), &opts("eager")).unwrap();
    // The delay-bounded tree over 9 ternary decisions with at most 3
    // deviations has sum_{w<=3} C(9,w)*2^w = 835 prefixes; dedup + DPOR
    // must cut a visible share of them.
    assert!(r.runs < 835, "no pruning happened ({} runs)", r.runs);
    assert!(r.dedup_hits + r.dpor_pruned > 0);
    assert!(r.states > 0);
}

#[test]
fn planted_early_unblock_bug_is_found_and_minimizes() {
    // The buggy arm is GetS-served-from-Shared, which takes three readers
    // of one line (Exclusive grant, downgrade to Shared, then the
    // Shared-state grant) plus a racing writer whose transaction the stray
    // Unblock can release prematurely — exactly the 3r1w shape.
    let test = LitmusTest::r3w1();
    // Sanity: without the bug the same bounded exploration is clean.
    let clean = explore(&test, &opts("eager")).unwrap();
    assert!(
        clean.violation.is_none(),
        "unplanted 3r1w must explore clean: {:?}",
        clean.violation.map(|v| (v.kind, v.detail))
    );
    let mut o = opts("eager");
    o.planted_bug = true;
    let r = explore(&test, &o).unwrap();
    let v = r
        .violation
        .expect("explore must catch the planted early-unblock bug");
    assert!(v.minimized.len() <= v.schedule.len());
    assert!(
        !v.minimized_detail.is_empty() && !v.minimized_detail.contains("did not reproduce"),
        "minimized schedule must still violate: {}",
        v.minimized_detail
    );
    // The minimized schedule replays deterministically to a violation.
    let replay = run_schedule(&test, &o, &v.minimized).unwrap();
    let violated = replay.error.is_some()
        || replay.timed_out
        || replay
            .outcome
            .as_ref()
            .is_some_and(|out| test.classify(out) != OutcomeClass::Allowed);
    assert!(violated, "minimized replay did not reproduce");
}

#[test]
fn litmus_runs_light_protocol_coverage() {
    let r = run_litmus(&LitmusTest::sb_rmw(), &opts("eager"), 4, 7).unwrap();
    assert!(r.coverage.covered() > 0, "litmus runs must record coverage");
}
