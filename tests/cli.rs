//! CLI smoke tests: every subcommand must answer `--help` with exit 0, the
//! top-level usage must list every subcommand (so help drift fails loudly),
//! and configuration errors must exit nonzero with a message on stderr.

use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_norush");

const COMMANDS: &[&str] = &[
    "list",
    "table1",
    "run",
    "compare",
    "soak",
    "fuzz",
    "litmus",
    "explore",
    "microbench",
    "record",
    "replay",
];

#[test]
fn every_subcommand_help_succeeds() {
    for cmd in COMMANDS {
        let out = Command::new(BIN)
            .args([cmd, "--help"])
            .output()
            .expect("spawn norush");
        assert!(
            out.status.success(),
            "`norush {cmd} --help` exited {:?}:\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            !out.stdout.is_empty(),
            "`norush {cmd} --help` printed nothing"
        );
    }
}

#[test]
fn usage_lists_every_subcommand_and_exit_codes() {
    for args in [&[][..], &["help"][..], &["--help"][..]] {
        let out = Command::new(BIN).args(args).output().expect("spawn norush");
        assert!(out.status.success(), "usage via {args:?} failed");
        let text = String::from_utf8_lossy(&out.stdout).into_owned();
        for cmd in COMMANDS {
            assert!(
                text.lines().any(|l| l.trim_start().starts_with(cmd)),
                "usage via {args:?} does not list `{cmd}`"
            );
        }
        assert!(
            text.contains("exit codes:"),
            "usage via {args:?} does not document exit codes"
        );
    }
}

#[test]
fn config_errors_exit_nonzero_with_stderr() {
    let cases: &[&[&str]] = &[
        &["litmus", "--test", "nonesuch"],
        &["explore", "--policy", "nonesuch"],
        &["explore", "--replay", "00"], // --replay without --test
        &["fuzz", "--kernel", "kv"],
        &["run", "nonesuch"],
    ];
    for args in cases {
        let out = Command::new(BIN)
            .args(*args)
            .output()
            .expect("spawn norush");
        assert!(
            !out.status.success(),
            "`norush {}` should fail",
            args.join(" ")
        );
        assert!(
            !out.stderr.is_empty(),
            "`norush {}` failed silently",
            args.join(" ")
        );
    }
}

#[test]
fn fuzz_kernel_error_names_real_kernels() {
    let out = Command::new(BIN)
        .args(["fuzz", "--kernel", "nonesuch"])
        .output()
        .expect("spawn norush");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    for name in ["counter", "mpmc-queue", "mw-register"] {
        assert!(
            err.contains(name),
            "fuzz --kernel error must name `{name}`: {err}"
        );
    }
}
