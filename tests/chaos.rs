//! Deterministic fault injection ("chaos mode") must not change *what* the
//! machine computes — only *when*. The injector jitters memory-system
//! message delivery within protocol-legal bounds (per-link order is
//! preserved; cross-link reordering and extra latency are fair game), so
//! every functional property — exact atomic sums, linearizability, the
//! coherence invariant sweep — must hold for every seed.
//!
//! *Lossy* chaos goes further: messages are dropped, duplicated, and
//! payload-corrupted, and the recoverable transport (sequence numbers,
//! dedup, checksums + NACK, timeout retransmission) must mask all of it —
//! verified here by exact sums, the differential oracle, and exactly-once
//! delivery accounting.

use norush::common::config::{AtomicPolicy, CheckConfig, RowConfig};
use norush::common::ids::{Addr, Pc};
use norush::cpu::instr::{Instr, InstrStream, Op, RmwKind, VecStream};
use norush::sim::{Machine, SimError};
use norush::SystemConfig;

/// A lossy-chaos system: delay jitter plus drop/dup/corrupt injection at
/// the given parts-per-million rates, with the differential oracle armed.
fn lossy_sys(policy: AtomicPolicy, cores: usize, seed: u64, ppm: [u32; 3]) -> SystemConfig {
    let mut sys = SystemConfig::small(cores)
        .with_policy(policy)
        .with_chaos(seed);
    let f = sys.check.chaos.as_mut().expect("chaos enabled");
    f.drop_ppm = ppm[0];
    f.dup_ppm = ppm[1];
    f.corrupt_ppm = ppm[2];
    sys.check.oracle = true;
    sys
}

fn faa_program(n: u64, addrs: &[u64], seed: u64) -> Vec<Instr> {
    let mut rng = norush::common::rng::SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let a = addrs[rng.below(addrs.len() as u64) as usize];
            Instr::simple(
                Pc::new(0x40 + (a % 7) * 4),
                Op::Atomic {
                    rmw: RmwKind::Faa(1),
                    addr: Addr::new(a),
                },
            )
        })
        .collect()
}

fn streams(cores: usize, per_core: u64, addrs: &[u64]) -> Vec<Box<dyn InstrStream>> {
    (0..cores)
        .map(|t| {
            Box::new(VecStream::new(faa_program(per_core, addrs, t as u64 + 1)))
                as Box<dyn InstrStream>
        })
        .collect()
}

/// Runs `cores` cores of FAA traffic under chaos seed `seed` and returns
/// (total sum over `addrs`, parallel-phase cycles).
fn chaos_run(
    policy: AtomicPolicy,
    cores: usize,
    per_core: u64,
    addrs: &[u64],
    seed: u64,
) -> (u64, u64) {
    let sys = SystemConfig::small(cores)
        .with_policy(policy)
        .with_chaos(seed);
    assert!(sys.check.chaos.is_some());
    let mut m = Machine::new(&sys, streams(cores, per_core, addrs));
    let r = m
        .run(50_000_000)
        .unwrap_or_else(|e| panic!("chaos seed {seed} failed:\n{e}"));
    assert_eq!(r.total.atomics, cores as u64 * per_core);
    // The periodic sweep ran during the run (SystemConfig::small enables
    // it); do a final explicit one too.
    m.check_invariants().expect("final invariant sweep");
    let sum = addrs
        .iter()
        .map(|&a| m.memory().read_word(Addr::new(a)))
        .sum();
    (sum, r.cycles)
}

/// Acceptance criterion: a 4-core FAA run sums exactly under at least three
/// different chaos seeds, with the invariant sweep enabled throughout.
#[test]
fn faa_sums_exactly_under_three_chaos_seeds() {
    for seed in [1u64, 0xdead_beef, 0x5eed_0003] {
        let (sum, _) = chaos_run(AtomicPolicy::Eager, 4, 50, &[0xf000], seed);
        assert_eq!(sum, 200, "seed {seed}");
    }
}

/// Chaos must also leave the lazy and RoW policies functionally intact on a
/// multi-line hot set.
#[test]
fn lazy_and_row_sum_exactly_under_chaos() {
    let addrs = [0xf000, 0xf040, 0xf080];
    let (sum, _) = chaos_run(AtomicPolicy::Lazy, 4, 40, &addrs, 7);
    assert_eq!(sum, 160);
    let (sum, _) = chaos_run(AtomicPolicy::Row(RowConfig::best()), 4, 40, &addrs, 8);
    assert_eq!(sum, 160);
}

/// The injector is deterministic: the same seed must reproduce the same
/// timing cycle-for-cycle, and different seeds must still agree on the
/// functional result.
#[test]
fn same_seed_reproduces_timing_exactly() {
    let addrs = [0xaa00, 0xab40];
    let a = chaos_run(AtomicPolicy::Eager, 2, 30, &addrs, 42);
    let b = chaos_run(AtomicPolicy::Eager, 2, 30, &addrs, 42);
    assert_eq!(a, b, "same chaos seed must be bit-identical");
    let c = chaos_run(AtomicPolicy::Eager, 2, 30, &addrs, 43);
    assert_eq!(c.0, a.0, "different seed, same functional result");
}

/// Chaos jitter actually perturbs timing (otherwise these tests test
/// nothing): an unfaulted run and a faulted run of the same program should
/// disagree on cycles.
#[test]
fn chaos_changes_timing_but_not_results() {
    let addrs = [0xf000];
    let sys = SystemConfig::small(2).with_policy(AtomicPolicy::Eager);
    let mut m = Machine::new(&sys, streams(2, 40, &addrs));
    let clean = m.run(50_000_000).expect("clean run drains");
    let clean_sum: u64 = addrs
        .iter()
        .map(|&a| m.memory().read_word(Addr::new(a)))
        .sum();

    let (sum, cycles) = chaos_run(AtomicPolicy::Eager, 2, 40, &addrs, 9);
    assert_eq!(sum, clean_sum);
    assert_ne!(cycles, clean.cycles, "jitter should shift the schedule");
}

/// Randomized mixes (random hot sets, random per-core counts, random
/// policies) stay linearizable under chaos across many seeds.
#[test]
fn random_atomic_mixes_are_linearizable_under_chaos() {
    let mut g = norush::common::rng::SplitMix64::new(0xc4a0_0001);
    for case in 0..8 {
        let cores = 2 + (g.below(3) as usize); // 2..=4
        let per_core = 10 + g.below(40);
        let n_addrs = 1 + g.below(3) as usize;
        let addrs: Vec<u64> = (0..n_addrs).map(|i| 0xe000 + (i as u64) * 64).collect();
        let policy = match g.below(3) {
            0 => AtomicPolicy::Eager,
            1 => AtomicPolicy::Lazy,
            _ => AtomicPolicy::Row(RowConfig::best()),
        };
        let seed = g.next_u64();
        let (sum, _) = chaos_run(policy, cores, per_core, &addrs, seed);
        assert_eq!(sum, cores as u64 * per_core, "case {case} seed {seed}");
    }
}

/// Checkpoint/restore is bit-exact even with the fault injector live: the
/// injector's RNG is part of the persisted state, so a restored machine
/// replays the *same* perturbation schedule as the uninterrupted one.
#[test]
fn checkpoint_restore_is_bit_exact_under_chaos() {
    let addrs = [0xf000, 0xf040];
    let sys = SystemConfig::small(4).with_chaos(0xc0ff_ee01);
    let mk = || Machine::new(&sys, streams(4, 60, &addrs));

    let mut a = mk();
    assert!(a.run_for(400).expect("clean prefix").is_none());
    let snap = a.checkpoint().expect("mid-run checkpoint");
    let ra = a.run_for(50_000_000).expect("run").expect("drains");
    let final_a = a.checkpoint().expect("final checkpoint");

    let mut b = mk();
    b.restore(&snap).expect("restore");
    let rb = b.run_for(50_000_000).expect("run").expect("drains");
    let final_b = b.checkpoint().expect("final checkpoint");

    assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
    assert_eq!(final_a, final_b, "chaos run must restore bit-exactly");
}

/// Exactly-once delivery under a duplicate-heavy stream: one in five
/// messages is duplicated, yet after the transport drains, every sent
/// message was delivered to the protocol exactly once and every surplus
/// copy was dropped by sequence-number dedup.
#[test]
fn duplicate_heavy_stream_delivers_exactly_once() {
    let sys = lossy_sys(AtomicPolicy::Eager, 4, 0xd0d0_0001, [0, 200_000, 0]);
    let mut m = Machine::new(&sys, streams(4, 50, &[0xf000]));
    m.run(50_000_000).expect("drains under heavy duplication");
    assert_eq!(m.memory().read_word(Addr::new(0xf000)), 200);
    // The cores drained, but un-ACKed leftovers (lost ACKs) may still be
    // retrying; tick the memory system until the transport goes idle.
    let start = m.now();
    for i in 0..300_000u64 {
        if m.memory().transport_idle() {
            break;
        }
        let _ = m.memory_mut().tick(start + i);
    }
    assert!(m.memory().transport_idle(), "transport must drain");
    let t = *m.memory().transport_stats().expect("lossy stats present");
    assert!(t.dups_injected > 0, "duplication must have fired: {t:?}");
    assert!(t.dup_dropped >= t.dups_injected, "dedup absorbs every copy");
    assert_eq!(t.delivered, t.sent, "exactly-once delivery: {t:?}");
}

/// Drop + retry must converge: under drops, duplicates, *and* corruption,
/// every policy reaches the same oracle-verified final state as a fault-free
/// run, with the transport's retry machinery demonstrably exercised.
#[test]
fn lossy_chaos_converges_to_fault_free_state_for_all_policies() {
    let addrs = [0xf000, 0xf040];
    for (i, policy) in [
        AtomicPolicy::Eager,
        AtomicPolicy::Lazy,
        AtomicPolicy::Row(RowConfig::best()),
    ]
    .into_iter()
    .enumerate()
    {
        // Fault-free reference.
        let clean_sys = SystemConfig::small(4).with_policy(policy);
        let mut clean = Machine::new(&clean_sys, streams(4, 60, &addrs));
        clean.run(50_000_000).expect("clean run drains");
        let want: u64 = addrs
            .iter()
            .map(|&a| clean.memory().read_word(Addr::new(a)))
            .sum();
        assert_eq!(want, 240);

        // Same program under lossy chaos with the oracle armed: `run`
        // succeeding implies the journal replayed cleanly.
        let sys = lossy_sys(policy, 4, 0x10ff_0000 + i as u64, [60_000, 30_000, 15_000]);
        let mut m = Machine::new(&sys, streams(4, 60, &addrs));
        let r = m.run(50_000_000).expect("lossy run drains, oracle passes");
        let got: u64 = addrs
            .iter()
            .map(|&a| m.memory().read_word(Addr::new(a)))
            .sum();
        assert_eq!(got, want, "policy {policy:?} diverged under lossy chaos");
        let t = r.transport.expect("lossy runs report transport stats");
        assert!(t.drops_injected > 0, "drops must have fired: {t:?}");
        assert!(
            t.retries + t.nack_retransmits > 0,
            "recovery must have been exercised: {t:?}"
        );
        assert_eq!(t.giveups, 0, "rates this low must never exhaust retries");
    }
}

/// Lossy chaos is deterministic end to end: the same seed reproduces the
/// same cycle count *and* the same retry/dup/corrupt counters, bit for bit.
#[test]
fn same_seed_reproduces_transport_counters_exactly() {
    let run = || {
        let sys = lossy_sys(
            AtomicPolicy::Eager,
            4,
            0x5eed_1055,
            [20_000, 20_000, 10_000],
        );
        let mut m = Machine::new(&sys, streams(4, 40, &[0xf000]));
        let r = m.run(50_000_000).expect("drains");
        (r.cycles, r.transport.expect("stats"))
    };
    let (cycles_a, ta) = run();
    let (cycles_b, tb) = run();
    assert_eq!(cycles_a, cycles_b, "same seed, same timing");
    assert_eq!(ta, tb, "same seed, same transport counters");
    assert!(ta.retries > 0 || ta.nack_retransmits > 0, "{ta:?}");
}

/// The oracle actually bites: a raw (unjournaled) pre-seed makes the
/// machine's observed RMW return values diverge from the sequential replay,
/// and the run must fail with a structured `SimError::Oracle`.
#[test]
fn oracle_catches_unjournaled_state_divergence() {
    let mut sys = SystemConfig::small(2);
    sys.check.oracle = true;
    let mut m = Machine::new(&sys, streams(2, 20, &[0xf000]));
    // `write_word` bypasses the journal, so the golden model never sees
    // this 7 — exactly the shape of a lost/misapplied write.
    m.memory_mut().write_word(Addr::new(0xf000), 7);
    let err = m
        .run(50_000_000)
        .expect_err("oracle must flag the divergence");
    assert!(matches!(err, SimError::Oracle(_)), "got {err}");
    assert!(err.to_string().contains("oracle"), "{err}");
}

/// Checkpoint/restore stays bit-exact when the *lossy* transport is live:
/// sequence numbers, in-flight retransmission state, receive buffers, and
/// every counter ride through Persist, so a restored machine replays the
/// identical recovery schedule.
#[test]
fn checkpoint_restore_is_bit_exact_under_lossy_chaos() {
    let addrs = [0xf000, 0xf040];
    let sys = lossy_sys(
        AtomicPolicy::Eager,
        4,
        0xc0ff_ee02,
        [50_000, 30_000, 10_000],
    );
    let mk = || Machine::new(&sys, streams(4, 60, &addrs));

    // Snapshot well past the first retransmission timeouts so the image
    // captures genuinely mid-retry transport state.
    let mut a = mk();
    assert!(a.run_for(5_000).expect("clean prefix").is_none());
    let snap = a.checkpoint().expect("mid-retry checkpoint");
    let ra = a.run_for(50_000_000).expect("run").expect("drains");
    let final_a = a.checkpoint().expect("final checkpoint");

    let mut b = mk();
    b.restore(&snap).expect("restore");
    let rb = b.run_for(50_000_000).expect("run").expect("drains");
    let final_b = b.checkpoint().expect("final checkpoint");

    assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
    assert_eq!(final_a, final_b, "lossy chaos run must restore bit-exactly");
    let (ta, tb) = (ra.transport.expect("stats"), rb.transport.expect("stats"));
    assert_eq!(ta, tb, "transport counters round-trip through Persist");
    assert!(
        ta.drops_injected > 0 && ta.retries > 0,
        "the checkpoint window must actually contain retry traffic: {ta:?}"
    );
}

/// `CheckConfig::default()` leaves chaos off; `with_chaos` turns it on
/// without disturbing the other robustness knobs.
#[test]
fn with_chaos_composes_with_check_config() {
    assert!(CheckConfig::default().chaos.is_none());
    let sys = SystemConfig::small(4).with_chaos(5);
    assert!(sys.check.invariant_every.is_some());
    assert!(sys.check.watchdog_window.is_some());
    assert_eq!(sys.check.chaos.unwrap().seed, 5);
}
