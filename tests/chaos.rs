//! Deterministic fault injection ("chaos mode") must not change *what* the
//! machine computes — only *when*. The injector jitters memory-system
//! message delivery within protocol-legal bounds (per-link order is
//! preserved; cross-link reordering and extra latency are fair game), so
//! every functional property — exact atomic sums, linearizability, the
//! coherence invariant sweep — must hold for every seed.

use norush::common::config::{AtomicPolicy, CheckConfig, RowConfig};
use norush::common::ids::{Addr, Pc};
use norush::cpu::instr::{Instr, InstrStream, Op, RmwKind, VecStream};
use norush::sim::Machine;
use norush::SystemConfig;

fn faa_program(n: u64, addrs: &[u64], seed: u64) -> Vec<Instr> {
    let mut rng = norush::common::rng::SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let a = addrs[rng.below(addrs.len() as u64) as usize];
            Instr::simple(
                Pc::new(0x40 + (a % 7) * 4),
                Op::Atomic {
                    rmw: RmwKind::Faa(1),
                    addr: Addr::new(a),
                },
            )
        })
        .collect()
}

fn streams(cores: usize, per_core: u64, addrs: &[u64]) -> Vec<Box<dyn InstrStream>> {
    (0..cores)
        .map(|t| {
            Box::new(VecStream::new(faa_program(per_core, addrs, t as u64 + 1)))
                as Box<dyn InstrStream>
        })
        .collect()
}

/// Runs `cores` cores of FAA traffic under chaos seed `seed` and returns
/// (total sum over `addrs`, parallel-phase cycles).
fn chaos_run(
    policy: AtomicPolicy,
    cores: usize,
    per_core: u64,
    addrs: &[u64],
    seed: u64,
) -> (u64, u64) {
    let sys = SystemConfig::small(cores)
        .with_policy(policy)
        .with_chaos(seed);
    assert!(sys.check.chaos.is_some());
    let mut m = Machine::new(&sys, streams(cores, per_core, addrs));
    let r = m
        .run(50_000_000)
        .unwrap_or_else(|e| panic!("chaos seed {seed} failed:\n{e}"));
    assert_eq!(r.total.atomics, cores as u64 * per_core);
    // The periodic sweep ran during the run (SystemConfig::small enables
    // it); do a final explicit one too.
    m.check_invariants().expect("final invariant sweep");
    let sum = addrs
        .iter()
        .map(|&a| m.memory().read_word(Addr::new(a)))
        .sum();
    (sum, r.cycles)
}

/// Acceptance criterion: a 4-core FAA run sums exactly under at least three
/// different chaos seeds, with the invariant sweep enabled throughout.
#[test]
fn faa_sums_exactly_under_three_chaos_seeds() {
    for seed in [1u64, 0xdead_beef, 0x5eed_0003] {
        let (sum, _) = chaos_run(AtomicPolicy::Eager, 4, 50, &[0xf000], seed);
        assert_eq!(sum, 200, "seed {seed}");
    }
}

/// Chaos must also leave the lazy and RoW policies functionally intact on a
/// multi-line hot set.
#[test]
fn lazy_and_row_sum_exactly_under_chaos() {
    let addrs = [0xf000, 0xf040, 0xf080];
    let (sum, _) = chaos_run(AtomicPolicy::Lazy, 4, 40, &addrs, 7);
    assert_eq!(sum, 160);
    let (sum, _) = chaos_run(AtomicPolicy::Row(RowConfig::best()), 4, 40, &addrs, 8);
    assert_eq!(sum, 160);
}

/// The injector is deterministic: the same seed must reproduce the same
/// timing cycle-for-cycle, and different seeds must still agree on the
/// functional result.
#[test]
fn same_seed_reproduces_timing_exactly() {
    let addrs = [0xaa00, 0xab40];
    let a = chaos_run(AtomicPolicy::Eager, 2, 30, &addrs, 42);
    let b = chaos_run(AtomicPolicy::Eager, 2, 30, &addrs, 42);
    assert_eq!(a, b, "same chaos seed must be bit-identical");
    let c = chaos_run(AtomicPolicy::Eager, 2, 30, &addrs, 43);
    assert_eq!(c.0, a.0, "different seed, same functional result");
}

/// Chaos jitter actually perturbs timing (otherwise these tests test
/// nothing): an unfaulted run and a faulted run of the same program should
/// disagree on cycles.
#[test]
fn chaos_changes_timing_but_not_results() {
    let addrs = [0xf000];
    let sys = SystemConfig::small(2).with_policy(AtomicPolicy::Eager);
    let mut m = Machine::new(&sys, streams(2, 40, &addrs));
    let clean = m.run(50_000_000).expect("clean run drains");
    let clean_sum: u64 = addrs
        .iter()
        .map(|&a| m.memory().read_word(Addr::new(a)))
        .sum();

    let (sum, cycles) = chaos_run(AtomicPolicy::Eager, 2, 40, &addrs, 9);
    assert_eq!(sum, clean_sum);
    assert_ne!(cycles, clean.cycles, "jitter should shift the schedule");
}

/// Randomized mixes (random hot sets, random per-core counts, random
/// policies) stay linearizable under chaos across many seeds.
#[test]
fn random_atomic_mixes_are_linearizable_under_chaos() {
    let mut g = norush::common::rng::SplitMix64::new(0xc4a0_0001);
    for case in 0..8 {
        let cores = 2 + (g.below(3) as usize); // 2..=4
        let per_core = 10 + g.below(40);
        let n_addrs = 1 + g.below(3) as usize;
        let addrs: Vec<u64> = (0..n_addrs).map(|i| 0xe000 + (i as u64) * 64).collect();
        let policy = match g.below(3) {
            0 => AtomicPolicy::Eager,
            1 => AtomicPolicy::Lazy,
            _ => AtomicPolicy::Row(RowConfig::best()),
        };
        let seed = g.next_u64();
        let (sum, _) = chaos_run(policy, cores, per_core, &addrs, seed);
        assert_eq!(sum, cores as u64 * per_core, "case {case} seed {seed}");
    }
}

/// Checkpoint/restore is bit-exact even with the fault injector live: the
/// injector's RNG is part of the persisted state, so a restored machine
/// replays the *same* perturbation schedule as the uninterrupted one.
#[test]
fn checkpoint_restore_is_bit_exact_under_chaos() {
    let addrs = [0xf000, 0xf040];
    let sys = SystemConfig::small(4).with_chaos(0xc0ff_ee01);
    let mk = || Machine::new(&sys, streams(4, 60, &addrs));

    let mut a = mk();
    assert!(a.run_for(400).expect("clean prefix").is_none());
    let snap = a.checkpoint().expect("mid-run checkpoint");
    let ra = a.run_for(50_000_000).expect("run").expect("drains");
    let final_a = a.checkpoint().expect("final checkpoint");

    let mut b = mk();
    b.restore(&snap).expect("restore");
    let rb = b.run_for(50_000_000).expect("run").expect("drains");
    let final_b = b.checkpoint().expect("final checkpoint");

    assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
    assert_eq!(final_a, final_b, "chaos run must restore bit-exactly");
}

/// `CheckConfig::default()` leaves chaos off; `with_chaos` turns it on
/// without disturbing the other robustness knobs.
#[test]
fn with_chaos_composes_with_check_config() {
    assert!(CheckConfig::default().chaos.is_none());
    let sys = SystemConfig::small(4).with_chaos(5);
    assert!(sys.check.invariant_every.is_some());
    assert!(sys.check.watchdog_window.is_some());
    assert_eq!(sys.check.chaos.unwrap().seed, 5);
}
