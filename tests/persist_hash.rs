//! State-hash stability: the explorer's frontier dedup relies on fnv1a over
//! machine snapshots being a pure function of machine *state* — identical
//! states must hash identically no matter which worker produced them, how
//! many workers ran (`--jobs 1` vs `--jobs 4` must explore the same tree),
//! or whether the state went through a checkpoint/restore round trip.

use norush::common::persist::fnv1a;
use norush::cpu::instr::{InstrStream, VecStream};
use norush::sim::{parallel_map, run_schedule, ExploreOptions, Machine};
use norush::workloads::litmus::LitmusTest;

fn opts() -> ExploreOptions {
    ExploreOptions::default()
}

/// A small mixed bag of forced decision vectors (nonempty so every run
/// snapshots its frontier).
fn schedules() -> Vec<Vec<u8>> {
    vec![vec![1], vec![2], vec![0, 1], vec![1, 0, 2], vec![2, 2]]
}

#[test]
fn frontier_hash_is_stable_across_worker_counts() {
    let test = LitmusTest::sb();
    let o = opts();
    let scheds = schedules();
    let hashes_for = |workers: usize| -> Vec<u64> {
        parallel_map(&scheds, workers, |_, s| {
            run_schedule(&test, &o, s)
                .expect("schedule runs")
                .frontier_hash
                .expect("nonempty prefix snapshots its frontier")
        })
    };
    let one = hashes_for(1);
    let four = hashes_for(4);
    assert_eq!(one, four, "frontier hashes differ across --jobs counts");
    // And re-running the same vectors gives the same hashes (determinism on
    // one worker too, not just agreement between pools).
    assert_eq!(one, hashes_for(1));
}

#[test]
fn identical_schedules_hash_identically_and_distinct_ones_differ() {
    let test = LitmusTest::mp();
    let o = opts();
    let a = run_schedule(&test, &o, &[1, 1]).unwrap().frontier_hash;
    let b = run_schedule(&test, &o, &[1, 1]).unwrap().frontier_hash;
    assert_eq!(a, b);
    // A long-hold deviation leaves the machine in a visibly different state
    // at the frontier; the hash must see that.
    let c = run_schedule(&test, &o, &[2, 1]).unwrap().frontier_hash;
    assert_ne!(a, c, "different frontier states collided");
}

fn litmus_machine(test: &LitmusTest) -> Machine {
    let sys = opts().system(test.cores()).expect("policy is known");
    let streams: Vec<Box<dyn InstrStream>> = test
        .programs
        .iter()
        .map(|p| Box::new(VecStream::new(p.clone())) as _)
        .collect();
    Machine::new(&sys, streams)
}

#[test]
fn checkpoint_restore_round_trip_preserves_the_hash() {
    let test = LitmusTest::r3w1();
    let mut m = litmus_machine(&test);
    // Step into the middle of the protocol traffic, then snapshot.
    m.run_for(40).expect("no violation in 40 cycles");
    let image = m.checkpoint().expect("checkpoint");
    let h0 = fnv1a(&image);
    // Checkpointing is read-only: a second snapshot is bit-identical.
    assert_eq!(h0, fnv1a(&m.checkpoint().unwrap()));
    // Restore into a freshly built machine and re-checkpoint: the image (and
    // therefore the dedup hash) must survive the round trip unchanged.
    let mut m2 = litmus_machine(&test);
    m2.restore(&image).expect("restore");
    let image2 = m2.checkpoint().expect("checkpoint after restore");
    assert_eq!(image, image2, "checkpoint changed across restore");
    assert_eq!(h0, fnv1a(&image2));
    // Both machines keep agreeing as they run on.
    m.run_for(100).expect("original continues");
    m2.run_for(100).expect("restored continues");
    assert_eq!(
        m.checkpoint().unwrap(),
        m2.checkpoint().unwrap(),
        "restored machine diverged from the original"
    );
}

/// The hot loop keeps derived per-core caches (sleep/wake cycles, ROB
/// head-wait memos, recycled scratch buffers) that a restored machine
/// rebuilds from zero. None of that may leak into the image: a machine
/// that ran straight through and one that detoured through a mid-run
/// checkpoint/restore must produce bit-identical images at the same cycle.
#[test]
fn derived_hot_loop_state_never_reaches_the_image() {
    let test = LitmusTest::sb();
    // Straight run to cycle 140.
    let mut straight = litmus_machine(&test);
    straight.run_for(140).expect("straight run clean");
    // Detour: checkpoint at 60, restore into a fresh machine (cold wake
    // cycles, empty scratch pools), continue to 140.
    let mut first = litmus_machine(&test);
    first.run_for(60).expect("prefix clean");
    let mid = first.checkpoint().expect("mid checkpoint");
    let mut detour = litmus_machine(&test);
    detour.restore(&mid).expect("restore");
    detour.run_for(80).expect("suffix clean");
    assert_eq!(
        fnv1a(&straight.checkpoint().unwrap()),
        fnv1a(&detour.checkpoint().unwrap()),
        "a restore detour changed the image: derived state leaked"
    );
}
