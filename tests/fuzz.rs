//! End-to-end tests for the coverage-guided protocol-schedule fuzzer:
//! the planted early-unblock directory bug is found within a bounded
//! budget and its minimized schedule replays deterministically; clean
//! campaigns report zero findings with nonzero coverage under every
//! policy; and campaigns are byte-identical across worker counts and
//! across kill-and-resume.

use norush::sim::fuzz::{self, FuzzOptions, FuzzState, ScheduleGenome};

/// Budget used by the planted-bug tests — must stay within the CI smoke
/// budget (`norush fuzz --budget 64` in the workflow).
const PLANTED_BUDGET: u64 = 64;

fn planted_opts() -> FuzzOptions {
    let mut opts = FuzzOptions::smoke("lazy");
    opts.budget = PLANTED_BUDGET;
    opts.planted_bug = true;
    opts
}

#[test]
fn fuzzer_finds_planted_early_unblock_bug() {
    let opts = planted_opts();
    let outcome = fuzz::fuzz(&opts, FuzzState::new(), |_| {}).expect("valid config");
    let finding = outcome
        .finding
        .expect("planted early-unblock race must surface within the smoke budget");
    assert!(
        outcome.state.runs_done <= PLANTED_BUDGET,
        "campaign must stop at the first finding"
    );
    // The minimized schedule replays the violation deterministically.
    let replay = |g: &ScheduleGenome| {
        fuzz::run_one(&opts, g)
            .expect("valid config")
            .violation
            .map(|e| e.to_string())
    };
    let first = replay(&finding.minimized).expect("minimized schedule must still fail");
    let second = replay(&finding.minimized).expect("minimized schedule must fail every time");
    assert_eq!(first, second, "minimized replay must be deterministic");
    assert_eq!(first, finding.minimized_error);
    // And round-trips through the hex repro form.
    let hex = finding.minimized.to_hex();
    let decoded = ScheduleGenome::from_hex(&hex).expect("hex genome round-trips");
    assert_eq!(decoded, finding.minimized);
}

#[test]
fn clean_campaigns_find_nothing_but_cover_transitions() {
    for policy in ["eager", "lazy", "row"] {
        let mut opts = FuzzOptions::smoke(policy);
        opts.budget = 16;
        let outcome = fuzz::fuzz(&opts, FuzzState::new(), |_| {}).expect("valid config");
        assert!(
            outcome.finding.is_none(),
            "clean {policy} campaign must report zero findings"
        );
        assert!(
            outcome.state.global.covered() > 0,
            "clean {policy} campaign must still light coverage"
        );
        assert_eq!(outcome.state.runs_done, 16);
    }
}

#[test]
fn report_is_byte_identical_across_worker_counts() {
    let mut opts = FuzzOptions::smoke("lazy");
    opts.budget = 24;
    let run = |jobs: usize| {
        let mut o = opts.clone();
        o.jobs = jobs;
        let outcome = fuzz::fuzz(&o, FuzzState::new(), |_| {}).expect("valid config");
        fuzz::report_json(&o, &outcome, None)
    };
    assert_eq!(
        run(1),
        run(4),
        "worker count must not influence the campaign"
    );
}

#[test]
fn kill_and_resume_is_bit_exact() {
    let mut opts = FuzzOptions::smoke("lazy");
    opts.budget = 24;
    // Straight-through reference campaign.
    let full = fuzz::fuzz(&opts, FuzzState::new(), |_| {}).expect("valid config");
    // "Killed" campaign: stop after the first generation boundary by
    // snapshotting the persisted state bytes there, then resume from them.
    let fp = opts.fingerprint();
    let mut first_boundary: Option<Vec<u8>> = None;
    let mut part = opts.clone();
    part.budget = fuzz::GEN_CANDIDATES as u64; // one generation, then stop
    let partial = fuzz::fuzz(&part, FuzzState::new(), |s| {
        if first_boundary.is_none() {
            first_boundary = Some(s.to_bytes(fp));
        }
    })
    .expect("valid config");
    assert_eq!(partial.state.generation, 1);
    let restored =
        FuzzState::from_bytes(&first_boundary.expect("one boundary fired"), fp).expect("roundtrip");
    assert_eq!(
        restored, partial.state,
        "boundary snapshot equals final state"
    );
    let resumed = fuzz::fuzz(&opts, restored, |_| {}).expect("valid config");
    assert_eq!(resumed.state, full.state, "resume must be bit-exact");
    assert_eq!(
        fuzz::report_json(&opts, &resumed, None),
        fuzz::report_json(&opts, &full, None),
        "resumed report must match the straight-through report byte for byte"
    );
}
