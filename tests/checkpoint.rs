//! Checkpoint/restore contract tests.
//!
//! The contract is bit-exactness: restoring a checkpoint taken at cycle C
//! into a freshly-built machine and running to C+N must reproduce the
//! uninterrupted run *exactly* — same results, same final serialized state.
//! Corrupted or mismatched checkpoints must fail with structured errors,
//! never panics; and the rewind-on-violation replay must localize a
//! violation to a cycle strictly earlier than the sweep that detected it.

use norush::common::config::{AtomicPolicy, RowConfig};
use norush::common::ids::{Addr, CoreId, LineAddr, Pc};
use norush::common::persist::{fnv1a, PersistError};
use norush::common::rng::SplitMix64;
use norush::cpu::instr::{Instr, InstrStream, Op, RmwKind, VecStream};
use norush::mem::PrivState;
use norush::sim::{Machine, SimError};
use norush::SystemConfig;

fn faa_program(n: u64, addrs: &[u64], seed: u64) -> Vec<Instr> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let a = addrs[rng.below(addrs.len() as u64) as usize];
            Instr::simple(
                Pc::new(0x40 + (a % 7) * 4),
                Op::Atomic {
                    rmw: RmwKind::Faa(1),
                    addr: Addr::new(a),
                },
            )
        })
        .collect()
}

fn streams(cores: usize, per_core: u64, addrs: &[u64]) -> Vec<Box<dyn InstrStream>> {
    (0..cores)
        .map(|t| {
            Box::new(VecStream::new(faa_program(per_core, addrs, t as u64 + 1)))
                as Box<dyn InstrStream>
        })
        .collect()
}

const ADDRS: [u64; 2] = [0xf000, 0xf040];

fn machine(sys: &SystemConfig) -> Machine {
    Machine::new(sys, streams(sys.cores, 60, &ADDRS))
}

/// The core bit-exactness check for one configuration: checkpoint machine A
/// mid-run, restore into a fresh machine B, run both to completion, and
/// demand identical results *and* identical final serialized state.
fn assert_round_trip_bit_exact(sys: &SystemConfig) {
    let mut a = machine(sys);
    assert!(
        a.run_for(400).expect("clean prefix").is_none(),
        "must not drain within the prefix"
    );
    let snap = a.checkpoint().expect("mid-run checkpoint");
    let ra = a.run_for(50_000_000).expect("run").expect("drains");
    let final_a = a.checkpoint().expect("final checkpoint");

    let mut b = machine(sys);
    b.restore(&snap).expect("restore into fresh machine");
    assert_eq!(b.now().raw(), 400, "restore resumes at the snapshot cycle");
    let rb = b.run_for(50_000_000).expect("run").expect("drains");
    let final_b = b.checkpoint().expect("final checkpoint");

    assert_eq!(
        format!("{ra:?}"),
        format!("{rb:?}"),
        "restored run must reproduce the uninterrupted results"
    );
    assert_eq!(final_a, final_b, "final machine state must be bit-exact");
    let sum: u64 = ADDRS
        .iter()
        .map(|&x| b.memory().read_word(Addr::new(x)))
        .sum();
    assert_eq!(sum, sys.cores as u64 * 60, "atomic sums stay exact");
}

#[test]
fn round_trip_is_bit_exact_eager() {
    assert_round_trip_bit_exact(&SystemConfig::small(4));
}

#[test]
fn round_trip_is_bit_exact_lazy() {
    assert_round_trip_bit_exact(&SystemConfig::small(4).with_policy(AtomicPolicy::Lazy));
}

#[test]
fn round_trip_is_bit_exact_row() {
    assert_round_trip_bit_exact(
        &SystemConfig::small(4).with_policy(AtomicPolicy::Row(RowConfig::best())),
    );
}

/// Bit-exactness must also hold with the lossy transport live: the v2
/// payload (channel sequence numbers, in-flight retransmissions, receive
/// buffers, transport counters) rides through Persist like everything else.
#[test]
fn round_trip_is_bit_exact_under_lossy_chaos() {
    let mut sys = SystemConfig::small(4).with_chaos(0xbead_0001);
    let f = sys.check.chaos.as_mut().expect("chaos on");
    f.drop_ppm = 30_000;
    f.dup_ppm = 20_000;
    f.corrupt_ppm = 10_000;
    assert_round_trip_bit_exact(&sys);
}

/// `run_checkpointed` + `restore` is the crash-recovery path: kill a run
/// after some checkpoints landed on disk, restore the newest file into a
/// fresh machine, and the finished result matches the uninterrupted run.
#[test]
fn on_disk_checkpoint_resumes_a_killed_run() {
    let dir = std::env::temp_dir().join("norush-resume-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("resume.ckpt");
    std::fs::remove_file(&path).ok();

    let sys = SystemConfig::small(4);
    let reference = machine(&sys)
        .run_for(50_000_000)
        .expect("run")
        .expect("drains");

    // "Crashing" run: advance in checkpointed slices, then stop driving it
    // mid-flight — exactly what SIGKILL leaves behind on disk.
    let mut crashed = machine(&sys);
    let r = crashed.run_checkpointed(600, 200, &path);
    assert!(
        matches!(r, Err(SimError::Timeout(_))),
        "600 cycles is far short of draining"
    );
    assert!(path.exists(), "a checkpoint file must have landed");
    drop(crashed);

    let bytes = norush::sim::checkpoint::read_checkpoint(&path).expect("read");
    let mut resumed = machine(&sys);
    resumed.restore(&bytes).expect("resume from disk");
    assert_eq!(resumed.now().raw(), 600);
    let rr = resumed
        .run_checkpointed(50_000_000, 10_000, &path)
        .expect("resumed run drains");
    assert_eq!(
        format!("{rr:?}"),
        format!("{reference:?}"),
        "resumed run must match the uninterrupted one"
    );
    std::fs::remove_file(&path).ok();
}

fn restore_err(sys: &SystemConfig, bytes: &[u8]) -> PersistError {
    match machine(sys).restore(bytes) {
        Err(SimError::Checkpoint(e)) => e,
        other => panic!("expected a structured checkpoint error, got {other:?}"),
    }
}

/// Truncation anywhere — empty, mid-header, mid-payload, one byte shy —
/// must yield `PersistError`s, never a panic or a silent partial restore.
#[test]
fn truncated_checkpoints_fail_structurally() {
    let sys = SystemConfig::small(2);
    let mut m = Machine::new(&sys, streams(2, 40, &ADDRS));
    assert!(m.run_for(300).expect("prefix").is_none());
    let snap = m.checkpoint().expect("checkpoint");
    for cut in [0, 7, 11, 27, snap.len() / 2, snap.len() - 1] {
        let err = restore_err(&sys, &snap[..cut]);
        assert!(
            matches!(err, PersistError::Corrupt(_) | PersistError::UnexpectedEof),
            "cut at {cut}: got {err:?}"
        );
    }
}

#[test]
fn bad_magic_is_rejected() {
    let sys = SystemConfig::small(2);
    let mut m = Machine::new(&sys, streams(2, 40, &ADDRS));
    assert!(m.run_for(300).expect("prefix").is_none());
    let mut snap = m.checkpoint().expect("checkpoint");
    snap[0] ^= 0xff;
    assert!(matches!(restore_err(&sys, &snap), PersistError::Corrupt(_)));
}

/// Bit flips in the body are caught by the whole-file checksum before any
/// payload byte is interpreted.
#[test]
fn flipped_payload_byte_fails_the_checksum() {
    let sys = SystemConfig::small(2);
    let mut m = Machine::new(&sys, streams(2, 40, &ADDRS));
    assert!(m.run_for(300).expect("prefix").is_none());
    let mut snap = m.checkpoint().expect("checkpoint");
    let mid = snap.len() / 2;
    snap[mid] ^= 0x01;
    assert!(matches!(
        restore_err(&sys, &snap),
        PersistError::Corrupt("checkpoint checksum mismatch")
    ));
}

/// A future-format checkpoint (crafted with a *valid* checksum, so only the
/// version differs) is refused with `VersionMismatch`, not misparsed.
#[test]
fn wrong_format_version_is_refused() {
    let sys = SystemConfig::small(2);
    let mut m = Machine::new(&sys, streams(2, 40, &ADDRS));
    assert!(m.run_for(300).expect("prefix").is_none());
    let mut snap = m.checkpoint().expect("checkpoint");
    snap[8..12].copy_from_slice(&99u32.to_le_bytes());
    let n = snap.len();
    let sum = fnv1a(&snap[..n - 8]);
    snap[n - 8..].copy_from_slice(&sum.to_le_bytes());
    match restore_err(&sys, &snap) {
        PersistError::VersionMismatch { found, expected } => {
            assert_eq!(
                (found, expected),
                (99, norush::sim::checkpoint::FORMAT_VERSION)
            );
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

/// A checkpoint from a differently-configured machine (other core count or
/// other policy) is refused by the config hash.
#[test]
fn mismatched_config_is_refused() {
    let four = SystemConfig::small(4);
    let mut m = machine(&four);
    assert!(m.run_for(300).expect("prefix").is_none());
    let snap = m.checkpoint().expect("checkpoint");

    let two = SystemConfig::small(2);
    assert!(matches!(
        restore_err(&two, &snap),
        PersistError::ConfigMismatch { .. }
    ));
    let lazy = SystemConfig::small(4).with_policy(AtomicPolicy::Lazy);
    assert!(matches!(
        restore_err(&lazy, &snap),
        PersistError::ConfigMismatch { .. }
    ));
}

/// Checkpointing a machine that already latched a protocol error is refused:
/// such a snapshot could never restore into a consistent simulation.
#[test]
fn checkpoint_refuses_a_poisoned_machine() {
    let sys = SystemConfig::small(2);
    let mut m = Machine::new(&sys, streams(2, 40, &ADDRS));
    assert!(m.run_for(100).expect("prefix").is_none());
    m.memory_mut()
        .record_protocol_error(norush::mem::ProtocolError::MultipleOwners {
            line: LineAddr::new(ADDRS[0] >> 6),
            owners: vec![CoreId::new(0), CoreId::new(1)],
        });
    assert!(matches!(
        m.checkpoint(),
        Err(SimError::Checkpoint(PersistError::Corrupt(_)))
    ));
}

/// The rewind demo: with `rewind_every` set, a violation found by the
/// periodic sweep is replayed from the last in-memory checkpoint with
/// *per-cycle* checking, and the report names a first offending cycle
/// strictly earlier than the sweep's detection cycle.
#[test]
fn rewind_names_a_first_offending_cycle_before_detection() {
    let mut sys = SystemConfig::small(4);
    // A sparse sweep and a dense rewind checkpoint: the corruption below sits
    // on a line the workload never touches, so only the sweep can see it —
    // it survives into the next in-memory checkpoint, and the replay finds
    // it hundreds of cycles before the sweep would.
    sys.check.invariant_every = Some(1_000);
    sys.check.rewind_every = Some(50);
    let mut m = Machine::new(&sys, streams(4, 200, &ADDRS));
    assert!(m.run_for(310).expect("clean prefix").is_none());
    for c in 0..2 {
        m.memory_mut().corrupt_private_state_for_test(
            CoreId::new(c),
            LineAddr::new(0x00dd_dd00 >> 6),
            Some(PrivState::M),
        );
    }
    let err = m.run_for(50_000_000).expect_err("the sweep must catch it");
    let SimError::Rewind(report) = err else {
        panic!("expected a rewind report, got {err}");
    };
    assert!(
        matches!(*report.cause, SimError::Protocol(_)),
        "cause: {:?}",
        report.cause
    );
    let first = report
        .first_bad_cycle
        .expect("the replay must reproduce the violation");
    assert!(
        first < report.detected_at,
        "replay must localize tighter than the sweep: first bad {} vs detected {}",
        first.raw(),
        report.detected_at.raw()
    );
    assert!(first >= report.checkpoint_at);
    assert!(report.first_error.is_some());
    assert!(report.trace.len() <= norush::sim::machine::REWIND_TRACE_LIMIT);
    let shown = format!("{report}");
    assert!(
        shown.contains("first"),
        "the report should surface the localized cycle:\n{shown}"
    );
}

/// With rewind disabled (the default), the same failure surfaces as the
/// plain protocol/stall error — existing behaviour is unchanged.
#[test]
fn rewind_off_preserves_plain_errors() {
    let mut sys = SystemConfig::small(4);
    sys.check.invariant_every = Some(1_000);
    assert!(sys.check.rewind_every.is_none());
    let mut m = Machine::new(&sys, streams(4, 200, &ADDRS));
    assert!(m.run_for(310).expect("clean prefix").is_none());
    for c in 0..2 {
        m.memory_mut().corrupt_private_state_for_test(
            CoreId::new(c),
            LineAddr::new(0x00dd_dd00 >> 6),
            Some(PrivState::M),
        );
    }
    let err = m.run_for(50_000_000).expect_err("the sweep must catch it");
    assert!(matches!(err, SimError::Protocol(_)), "got {err}");
}
