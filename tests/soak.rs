//! Soak-harness pillars, exercised at the library level: the lock-service
//! workload family runs clean under every policy with the online
//! linearizability checker armed; a seeded net-zero lost+duplicated FAA —
//! invisible to every end-state check — is caught per-operation; and a
//! mid-soak checkpoint/restore preserves the checker's state bit-exactly.

use norush::common::config::{AtomicPolicy, RowConfig};
use norush::cpu::instr::InstrStream;
use norush::sim::{Machine, SimError};
use norush::workloads::{LockServiceConfig, LockServiceStream, ServiceKernel};
use norush::SystemConfig;

const CORES: usize = 4;
const SEED: u64 = 42;

fn service_cfg(kernel: ServiceKernel) -> LockServiceConfig {
    let mut cfg = LockServiceConfig::soak(kernel);
    cfg.ops_per_thread = 120;
    cfg
}

fn streams(cfg: LockServiceConfig) -> Vec<Box<dyn InstrStream>> {
    (0..CORES)
        .map(|t| Box::new(LockServiceStream::new(cfg, t, CORES, SEED)) as Box<dyn InstrStream>)
        .collect()
}

fn online_sys(policy: AtomicPolicy) -> SystemConfig {
    let mut sys = SystemConfig::small(CORES).with_policy(policy);
    sys.check.oracle_online = true;
    sys.check.invariant_every = Some(4096);
    sys
}

fn run_clean(policy: AtomicPolicy, kernel: ServiceKernel) -> (u64, u64) {
    let sys = online_sys(policy);
    let mut m = Machine::new(&sys, streams(service_cfg(kernel)));
    let r = m.run(50_000_000).expect("clean lock-service run drains");
    assert!(r.total.atomics > 0, "service issues atomics");
    assert_eq!(
        r.total.atomic_latency.count(),
        r.total.atomics,
        "every atomic contributes one latency sample"
    );
    let checker = m.online_checker().expect("online checker armed");
    assert_eq!(checker.rmws(), r.total.atomics, "checker saw every RMW");
    (r.cycles, r.total.atomics)
}

#[test]
fn lock_service_clean_under_every_policy_with_online_checker() {
    for policy in [
        AtomicPolicy::Eager,
        AtomicPolicy::Lazy,
        AtomicPolicy::Row(RowConfig::default()),
    ] {
        for kernel in ServiceKernel::ALL {
            run_clean(policy, kernel);
        }
    }
}

/// The injected bug loses one FAA (journaled, never applied) and
/// double-applies the next FAA on the same word (journaled once): the final
/// memory state and the per-core journal counts are both net-zero, so a run
/// without any checker completes silently.
#[test]
fn net_zero_faa_bug_is_invisible_to_end_state() {
    let sys = SystemConfig::small(CORES).with_policy(AtomicPolicy::Lazy);
    let mut m = Machine::new(&sys, streams(service_cfg(ServiceKernel::Counter)));
    m.memory_mut().inject_net_zero_faa_for_test(50);
    let r = m.run(50_000_000).expect("end-state-blind run completes");
    assert!(r.total.atomics > 0);
}

#[test]
fn net_zero_faa_bug_is_caught_per_operation_by_online_checker() {
    let (clean_cycles, _) = run_clean(AtomicPolicy::Lazy, ServiceKernel::Counter);

    let sys = online_sys(AtomicPolicy::Lazy);
    let mut m = Machine::new(&sys, streams(service_cfg(ServiceKernel::Counter)));
    m.memory_mut().inject_net_zero_faa_for_test(50);
    let err = m.run(50_000_000).expect_err("online checker must object");
    assert!(
        matches!(err, SimError::Oracle(_)),
        "expected an oracle mismatch, got: {err}"
    );
    assert!(
        m.now().raw() < clean_cycles,
        "violation detected mid-run (at cycle {}), not at the end ({})",
        m.now().raw(),
        clean_cycles
    );
}

/// Checkpoint mid-soak with the online checker armed, restore into a fresh
/// machine, and finish both: results agree and the final images (which embed
/// the checker's golden words, counters, and journal tail) are byte-equal.
#[test]
fn mid_soak_checkpoint_restore_preserves_checker_state_bit_exactly() {
    let sys = online_sys(AtomicPolicy::Row(RowConfig::default()));
    let cfg = service_cfg(ServiceKernel::MpmcQueue);
    let mut a = Machine::new(&sys, streams(cfg));
    assert!(
        a.run_for(8_000).expect("no violation").is_none(),
        "workload must still be in flight at the snapshot point"
    );
    assert!(
        a.online_checker().expect("armed").ops_seen() > 0,
        "snapshot must capture a checker with live state"
    );
    let snap = a.checkpoint().expect("checkpoint");

    let mut b = Machine::new(&sys, streams(cfg));
    b.restore(&snap).expect("restore");
    assert_eq!(
        b.checkpoint().expect("checkpoint"),
        snap,
        "re-encoding the restored machine reproduces the image bit-exactly"
    );

    let ra = a.run(50_000_000).expect("original finishes");
    let rb = b.run(50_000_000).expect("restored finishes");
    assert_eq!(ra.cycles, rb.cycles);
    assert_eq!(ra.total.atomics, rb.total.atomics);
    assert_eq!(
        a.checkpoint().expect("checkpoint"),
        b.checkpoint().expect("checkpoint"),
        "both machines end in identical states, checker included"
    );
}
