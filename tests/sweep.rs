//! Sweep-engine contract tests.
//!
//! The contract is host-independence: a sweep's results — the tables the
//! figure binaries print and the `BENCH_<figure>.json` they write — must be
//! byte-identical whether the grid ran on 1, 2, or 8 workers, in whatever
//! completion order the scheduler produced. Resume must re-run exactly the
//! missing cells and converge to the same canonical bytes.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use norush::common::config::CheckConfig;
use norush::sim::{ExperimentConfig, FigureResults, Sweep, SweepEvent, SweepOptions, Variant};
use norush::workloads::Benchmark;

fn tiny_exp() -> ExperimentConfig {
    ExperimentConfig {
        cores: 4,
        instructions: 1_500,
        seed: 42,
        cycle_limit: 50_000_000,
        paper_caches: false,
        check: CheckConfig::default(),
    }
}

fn tiny_sweep(figure: &str) -> Sweep {
    Sweep::grid(
        figure,
        &tiny_exp(),
        &[Benchmark::Pc, Benchmark::Sps],
        &[Variant::eager(), Variant::lazy()],
        &[],
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("norush_sweep_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Worker count must not leak into results: 2-worker and 8-worker runs are
/// byte-identical to `--jobs 1` in canonical JSON (wall-clock and
/// worker-count fields zeroed; everything else exact).
#[test]
fn results_are_identical_across_worker_counts() {
    let sweep = tiny_sweep("det");
    let run = |workers: usize| {
        sweep
            .run(&SweepOptions {
                workers,
                ..SweepOptions::default()
            })
            .expect("sweep runs")
            .canonical_json()
    };
    let one = run(1);
    assert_eq!(one, run(2), "2 workers diverged from 1 worker");
    assert_eq!(one, run(8), "8 workers diverged from 1 worker");
}

/// Deleting one cell from the results file re-runs exactly that job; the
/// rest are served from cache, and the final bytes match the original.
#[test]
fn resume_reruns_only_the_missing_cell() {
    let dir = temp_dir("resume");
    let path = dir.join("BENCH_resume.json");
    let sweep = tiny_sweep("resume");
    let original = sweep
        .run(&SweepOptions {
            workers: 2,
            results_path: Some(path.clone()),
            ..SweepOptions::default()
        })
        .expect("first run");

    // Knock one cell out of the persisted results.
    let mut damaged = FigureResults::load(&path).expect("loads");
    let removed = damaged.jobs.remove(1);
    damaged.save(&path).expect("saves");

    let ran = AtomicUsize::new(0);
    let cached = AtomicUsize::new(0);
    let progress = |ev: &SweepEvent<'_>| match ev {
        SweepEvent::Finished { label, .. } => {
            assert_eq!(*label, removed.label, "re-ran a cell that was cached");
            ran.fetch_add(1, Ordering::Relaxed);
        }
        SweepEvent::Cached { .. } => {
            cached.fetch_add(1, Ordering::Relaxed);
        }
        SweepEvent::Started { .. } => {}
    };
    let resumed = sweep
        .run(&SweepOptions {
            workers: 2,
            results_path: Some(path.clone()),
            resume: true,
            progress: Some(&progress),
            ..SweepOptions::default()
        })
        .expect("resumed run");

    assert_eq!(ran.load(Ordering::Relaxed), 1, "exactly one cell re-runs");
    assert_eq!(
        cached.load(Ordering::Relaxed),
        sweep.jobs.len() - 1,
        "every other cell is served from the file"
    );
    assert_eq!(
        resumed.canonical_json(),
        original.canonical_json(),
        "resume converges to the original bytes"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A results file from a *different* sweep definition (mismatched config
/// fingerprint) must be ignored wholesale, not partially reused.
#[test]
fn resume_ignores_results_from_a_different_sweep() {
    let dir = temp_dir("stale");
    let path = dir.join("BENCH_stale.json");
    let sweep = tiny_sweep("stale");
    sweep
        .run(&SweepOptions {
            workers: 2,
            results_path: Some(path.clone()),
            ..SweepOptions::default()
        })
        .expect("first run");

    // Same figure name, different grid (seed changed) → different
    // fingerprints end to end.
    let mut other_exp = tiny_exp();
    other_exp.seed = 7;
    let other = Sweep::grid(
        "stale",
        &other_exp,
        &[Benchmark::Pc, Benchmark::Sps],
        &[Variant::eager(), Variant::lazy()],
        &[],
    );
    let cached = AtomicUsize::new(0);
    let progress = |ev: &SweepEvent<'_>| {
        if matches!(ev, SweepEvent::Cached { .. }) {
            cached.fetch_add(1, Ordering::Relaxed);
        }
    };
    other
        .run(&SweepOptions {
            workers: 2,
            results_path: Some(path.clone()),
            resume: true,
            progress: Some(&progress),
            ..SweepOptions::default()
        })
        .expect("stale-file run");
    assert_eq!(
        cached.load(Ordering::Relaxed),
        0,
        "no cell of a different sweep may be reused"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The full (non-canonical) file parses and round-trips: load → serialize
/// reproduces the exact bytes on disk (floats use shortest-round-trip
/// formatting everywhere).
#[test]
fn persisted_results_round_trip_exactly() {
    let dir = temp_dir("roundtrip");
    let path = dir.join("BENCH_roundtrip.json");
    let sweep = tiny_sweep("roundtrip");
    sweep
        .run(&SweepOptions {
            workers: 2,
            results_path: Some(path.clone()),
            ..SweepOptions::default()
        })
        .expect("runs");
    let bytes = std::fs::read_to_string(&path).expect("file exists");
    let loaded = FigureResults::load(&path).expect("loads");
    assert_eq!(loaded.to_json(), bytes, "load→serialize is the identity");
    std::fs::remove_dir_all(&dir).ok();
}
