//! Scale-out tier coverage: the 64/128/256-core `huge` configurations must
//! build, run real lock-service traffic under the periodic incremental
//! invariant sweep, agree with the full sweep under chaos, and keep every
//! determinism contract the 32-core tier has (checkpoint round trips,
//! worker-count-independent litmus reports).

use std::process::Command;

use norush::common::config::AtomicPolicy;
use norush::cpu::instr::InstrStream;
use norush::sim::Machine;
use norush::workloads::{LockServiceConfig, LockServiceStream, ServiceKernel};
use norush::SystemConfig;

const BIN: &str = env!("CARGO_BIN_EXE_norush");
const SEED: u64 = 42;

fn service_streams(cores: usize, ops: u64) -> Vec<Box<dyn InstrStream>> {
    let mut cfg = LockServiceConfig::soak(ServiceKernel::Counter);
    cfg.ops_per_thread = ops;
    cfg.shards = 8;
    (0..cores)
        .map(|t| Box::new(LockServiceStream::new(cfg, t, cores, SEED)) as Box<dyn InstrStream>)
        .collect()
}

/// Every huge tier validates, runs a short lock-service phase with the
/// periodic (incremental) invariant sweep armed, and still passes a final
/// *full* coherence sweep over the mid-run state.
#[test]
fn huge_tiers_run_lockservice_under_incremental_sweep() {
    for cores in [64usize, 128, 256] {
        let sys = SystemConfig::huge(cores);
        sys.validate()
            .unwrap_or_else(|e| panic!("huge({cores}): {e}"));
        assert_eq!(sys.cores, cores);
        // The periodic sweep inside run_for is the incremental one; the
        // default cadence is part of CheckConfig::default().
        assert!(
            sys.check.invariant_every.is_some(),
            "huge tier must keep the invariant sweep armed"
        );
        let mut m = Machine::new(&sys, service_streams(cores, 8));
        // A bounded mid-run phase (not a drain): plenty of protocol traffic
        // at 256 cores, still test-sized. Several sweep periods elapse.
        let r = m
            .run_for(12_000)
            .unwrap_or_else(|e| panic!("huge({cores}) lock-service phase failed: {e}"));
        assert!(r.is_none(), "12k cycles must not drain the service");
        m.check_invariants()
            .unwrap_or_else(|e| panic!("huge({cores}) full sweep disagrees: {e}"));
        let committed: u64 = (0..cores).map(|i| m.core_mut(i).stats().committed).sum();
        assert!(committed > 0, "huge({cores}) made no progress");
    }
}

/// Under delay-chaos the incremental sweep (running periodically inside the
/// machine loop) and an explicit full sweep must reach the same verdict at
/// every observation point of a randomized run.
#[test]
fn incremental_and_full_sweep_agree_under_chaos() {
    let mut sys = SystemConfig::small(8)
        .with_policy(AtomicPolicy::Lazy)
        .with_chaos(0xc4a05);
    sys.check.invariant_every = Some(512);
    let mut m = Machine::new(&sys, service_streams(8, 60));
    for chunk in 0..40 {
        match m.run_for(1024) {
            Ok(Some(_)) => break,
            Ok(None) => {}
            Err(e) => panic!("chaos run tripped the incremental sweep: {e} (chunk {chunk})"),
        }
        // The incremental sweep said clean for this window; the full sweep
        // must agree on the exact same state.
        m.check_invariants()
            .unwrap_or_else(|e| panic!("full sweep disagrees at chunk {chunk}: {e}"));
    }
}

/// Checkpoint round trip at the 64-core huge tier: the image is a pure
/// function of machine state (derived caches — wake cycles, scratch
/// buffers, head-wait memos — must not leak in), and a restored machine
/// continues bit-identically.
#[test]
fn huge_checkpoint_round_trip_is_bit_exact() {
    let sys = SystemConfig::huge(64);
    let mut a = Machine::new(&sys, service_streams(64, 8));
    a.run_for(4_000).expect("phase 1 clean");
    let image = a.checkpoint().expect("checkpoint");
    let mut b = Machine::new(&sys, service_streams(64, 8));
    b.restore(&image).expect("restore");
    assert_eq!(
        image,
        b.checkpoint().expect("re-checkpoint"),
        "image changed in round trip"
    );
    // Both continue; end state must match bit-exactly even though the
    // restored machine rebuilt all derived state from zero.
    a.run_for(3_000).expect("original continues");
    b.run_for(3_000).expect("restored continues");
    assert_eq!(
        a.checkpoint().expect("final a"),
        b.checkpoint().expect("final b"),
        "restored machine diverged from the original"
    );
}

/// The litmus JSON report contains no wall-clock or worker-count fields, so
/// `--jobs 1` and `--jobs 4` must produce byte-identical files.
#[test]
fn litmus_report_is_byte_identical_across_jobs() {
    let dir = std::env::temp_dir();
    let out1 = dir.join(format!("norush_litmus_j1_{}.json", std::process::id()));
    let out4 = dir.join(format!("norush_litmus_j4_{}.json", std::process::id()));
    for (jobs, out) in [("1", &out1), ("4", &out4)] {
        let status = Command::new(BIN)
            .args(["litmus", "--test", "sb,mp", "--policies", "eager,row"])
            .args(["--samples", "40", "--seed", "7", "--jobs", jobs])
            .arg("--out")
            .arg(out)
            .status()
            .expect("spawn norush litmus");
        assert!(status.success(), "litmus --jobs {jobs} failed");
    }
    let r1 = std::fs::read(&out1).expect("read jobs-1 report");
    let r4 = std::fs::read(&out4).expect("read jobs-4 report");
    let _ = std::fs::remove_file(&out1);
    let _ = std::fs::remove_file(&out4);
    assert_eq!(
        r1, r4,
        "litmus report differs between --jobs 1 and --jobs 4"
    );
}
