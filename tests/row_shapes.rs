//! Figure-shape regression tests: the qualitative results the paper reports
//! must hold on the scaled-down CI configuration. These are the guardrails
//! that keep recalibration honest.

use norush::common::config::{AtomicPolicy, DetectorKind, FenceModel, PredictorKind, RowConfig};
use norush::sim::{
    run_benchmark, run_eager, run_lazy, run_microbench, run_row, run_row_fwd, ExperimentConfig,
    RowVariant,
};
use norush::workloads::{Benchmark, MicroRmw, MicroVariant};

fn exp() -> ExperimentConfig {
    ExperimentConfig {
        cores: 8,
        instructions: 5_000,
        seed: 42,
        cycle_limit: 100_000_000,
        paper_caches: false,
        check: norush::common::config::CheckConfig::default(),
    }
}

#[test]
fn fig1_eager_wins_on_noncontended_canneal() {
    let e = run_eager(Benchmark::Canneal, &exp()).unwrap();
    let l = run_lazy(Benchmark::Canneal, &exp()).unwrap();
    assert!(
        (l.cycles as f64) > 1.10 * e.cycles as f64,
        "canneal: lazy {} must clearly lose to eager {}",
        l.cycles,
        e.cycles
    );
}

#[test]
fn fig1_lazy_wins_on_contended_pc() {
    let e = run_eager(Benchmark::Pc, &exp()).unwrap();
    let l = run_lazy(Benchmark::Pc, &exp()).unwrap();
    assert!(
        (l.cycles as f64) < 0.90 * e.cycles as f64,
        "pc: lazy {} must clearly beat eager {}",
        l.cycles,
        e.cycles
    );
}

#[test]
fn fig5_intensity_and_contention_orderings() {
    let e = exp();
    let pc = run_eager(Benchmark::Pc, &e).unwrap().total;
    let canneal = run_eager(Benchmark::Canneal, &e).unwrap().total;
    let fmm = run_eager(Benchmark::Fmm, &e).unwrap().total;
    assert!(pc.atomics_per_10k() > canneal.atomics_per_10k());
    assert!(canneal.atomics_per_10k() > fmm.atomics_per_10k());
    assert!(pc.contended_fraction() > 0.4);
    // canneal's sharing is migratory, not contended: well below pc's level.
    assert!(canneal.contended_fraction() < 0.25);
    assert!(pc.contended_fraction() > 2.0 * canneal.contended_fraction());
}

#[test]
fn fig6_lazy_shifts_latency_from_lock_to_issue() {
    let e = run_eager(Benchmark::Pc, &exp()).unwrap().total.breakdown;
    let l = run_lazy(Benchmark::Pc, &exp()).unwrap().total.breakdown;
    // Lazy waits longer to issue…
    assert!(l.dispatch_to_issue.mean() > e.dispatch_to_issue.mean());
    // …and in exchange acquires the contended line faster.
    assert!(l.issue_to_lock.mean() < e.issue_to_lock.mean());
}

#[test]
fn fig9_row_tracks_the_winner_on_both_extremes() {
    let e = exp();
    for bench in [Benchmark::Canneal, Benchmark::Pc] {
        let eager = run_eager(bench, &e).unwrap().cycles as f64;
        let lazy = run_lazy(bench, &e).unwrap().cycles as f64;
        let row = run_row(bench, RowVariant::RwDirUd, &e).unwrap().cycles as f64;
        let best = eager.min(lazy);
        assert!(
            row <= best * 1.10,
            "{bench}: RoW {row} must stay within 10% of best static {best}"
        );
    }
}

#[test]
fn fig9_ew_detector_underperforms_rw_on_contended_apps() {
    let e = exp();
    let ew = run_row(Benchmark::Pc, RowVariant::EwUd, &e).unwrap().cycles;
    let rw = run_row(Benchmark::Pc, RowVariant::RwDirUd, &e)
        .unwrap()
        .cycles;
    // EW misses contention (tiny window under lazy), so it stays eager and
    // pays eager's price on pc.
    assert!(
        rw < ew,
        "RW+Dir ({rw}) must beat the execution-window detector ({ew}) on pc"
    );
}

#[test]
fn fig10_zero_threshold_hurts_noncontended_apps() {
    let e = exp();
    let mk = |threshold| {
        let cfg = RowConfig::new(
            DetectorKind::ReadyWindowDir {
                latency_threshold: threshold,
            },
            PredictorKind::UpDown,
        );
        run_benchmark(Benchmark::Canneal, AtomicPolicy::Row(cfg), false, &e)
            .unwrap()
            .cycles
    };
    let t0 = mk(0);
    let t400 = mk(400);
    // Threshold 0 marks every remote fill contended: canneal's private
    // atomics (first fetched remotely-homed) go lazy and lose.
    assert!(
        t0 >= t400,
        "threshold 0 ({t0}) must not beat the 400-cycle threshold ({t400})"
    );
}

#[test]
fn fig12_predictors_report_accuracy() {
    let e = exp();
    let ud = run_row(Benchmark::Sps, RowVariant::RwDirUd, &e)
        .unwrap()
        .accuracy
        .unwrap();
    let sat = run_row(Benchmark::Sps, RowVariant::RwDirSat, &e)
        .unwrap()
        .accuracy
        .unwrap();
    assert!(ud.total() > 0 && sat.total() > 0);
    // The saturating predictor flips to "contended" on a single event, so it
    // predicts contention at least as often as Up/Down.
    let sat_rate = (sat.true_contended + sat.false_contended) as f64 / sat.total() as f64;
    let ud_rate = (ud.true_contended + ud.false_contended) as f64 / ud.total() as f64;
    assert!(sat_rate >= ud_rate * 0.9, "sat {sat_rate} vs ud {ud_rate}");
}

#[test]
fn fig13_forwarding_recovers_cq() {
    let e = exp();
    let eager = run_eager(Benchmark::Cq, &e).unwrap().cycles as f64;
    let no_fwd = run_row(Benchmark::Cq, RowVariant::RwDirUd, &e)
        .unwrap()
        .cycles as f64;
    let fwd = run_row_fwd(Benchmark::Cq, RowVariant::RwDirUd, &e).unwrap();
    assert!(
        (fwd.cycles as f64) <= no_fwd * 1.05,
        "forwarding must not materially hurt cq: {} vs {}",
        fwd.cycles,
        no_fwd
    );
    assert!(
        (fwd.cycles as f64) <= eager * 1.10,
        "RoW+Fwd ({}) must track eager ({eager}) on cq",
        fwd.cycles
    );
    assert!(fwd.total.locality_overrides > 0, "the override must fire");
}

#[test]
fn fig2_microbench_shapes() {
    let it = 300;
    let plain = |m| {
        run_microbench(
            MicroRmw::Faa,
            MicroVariant {
                atomic: false,
                mfence: false,
            },
            m,
            it,
        )
        .unwrap()
    };
    let lock = |m| {
        run_microbench(
            MicroRmw::Faa,
            MicroVariant {
                atomic: true,
                mfence: false,
            },
            m,
            it,
        )
        .unwrap()
    };
    let lock_mf = |m| {
        run_microbench(
            MicroRmw::Faa,
            MicroVariant {
                atomic: true,
                mfence: true,
            },
            m,
            it,
        )
        .unwrap()
    };

    // Modern (unfenced) core: lock ≈ plain, mfence is the cliff.
    let (p_u, l_u, f_u) = (
        plain(FenceModel::Unfenced),
        lock(FenceModel::Unfenced),
        lock_mf(FenceModel::Unfenced),
    );
    assert!(l_u < p_u * 1.7, "unfenced: lock {l_u} ≈ plain {p_u}");
    assert!(f_u > l_u * 3.0, "unfenced: mfence {f_u} ≫ lock {l_u}");

    // Old (fenced) core: lock is already fence-priced; mfence adds ~nothing.
    let (p_f, l_f, f_f) = (
        plain(FenceModel::Fenced),
        lock(FenceModel::Fenced),
        lock_mf(FenceModel::Fenced),
    );
    assert!(l_f > p_f * 2.0, "fenced: lock {l_f} ≫ plain {p_f}");
    assert!(f_f < l_f * 1.2, "fenced: mfence {f_f} ≈ lock {l_f}");

    // Swap is always locked: plain == lock (both models).
    let sw_plain = run_microbench(
        MicroRmw::Swap,
        MicroVariant {
            atomic: false,
            mfence: false,
        },
        FenceModel::Fenced,
        it,
    )
    .unwrap();
    let sw_lock = run_microbench(
        MicroRmw::Swap,
        MicroVariant {
            atomic: true,
            mfence: false,
        },
        FenceModel::Fenced,
        it,
    )
    .unwrap();
    assert!((sw_plain - sw_lock).abs() < 1.0);
}

#[test]
fn headline_row_beats_eager_on_average() {
    let e = exp();
    let mut ratios = Vec::new();
    for b in Benchmark::atomic_intensive() {
        let eager = run_eager(b, &e).unwrap().cycles as f64;
        let row = run_row_fwd(b, RowVariant::RwDirUd, &e).unwrap().cycles as f64;
        ratios.push(row / eager);
    }
    let gm = norush::common::stats::geomean(&ratios);
    assert!(
        gm < 1.0,
        "RoW (RW+Dir_U/D + Fwd) must reduce mean execution time vs eager, got {gm:.3}"
    );
}
