//! x86-TSO behaviour tests.
//!
//! The simulator's functional value model is conservative — loads read the
//! coherent word store at completion, so they can never observe a value that
//! is *older* than TSO allows. These tests therefore check two things:
//!
//! 1. the classic *store-buffering* relaxation (the one reordering TSO
//!    permits) is actually observable — the SB really delays stores past
//!    younger loads; and
//! 2. atomics order globally: the final state after concurrent RMWs is exact
//!    and atomics never tear.

use norush::common::ids::{Addr, Pc};
use norush::cpu::instr::{Instr, InstrStream, Op, RmwKind, VecStream};
use norush::sim::Machine;
use norush::SystemConfig;

const X: u64 = 0x1_0000;
const Y: u64 = 0x2_0000;

fn store(pc: u64, addr: u64, v: u64) -> Instr {
    Instr::simple(
        Pc::new(pc),
        Op::Store {
            addr: Addr::new(addr),
            value: Some(v),
        },
    )
}

fn load(pc: u64, addr: u64) -> Instr {
    Instr::simple(
        Pc::new(pc),
        Op::Load {
            addr: Addr::new(addr),
        },
    )
}

/// The store-buffering litmus test (x86-TSO's signature relaxation):
///
/// ```text
/// T0: x = 1; r0 = y        T1: y = 1; r1 = x
/// ```
///
/// `r0 == 0 && r1 == 0` is allowed under TSO and must be observable here,
/// because each load may complete while the older store still sits in the SB.
#[test]
fn store_buffering_relaxation_is_observable() {
    let sys = SystemConfig::small(2);
    // Warm the line each thread will load, so the final loads hit in ~5
    // cycles while the (cold-miss) stores take hundreds to drain — the
    // young-load-past-old-store window is then unambiguous.
    let t0 = vec![store(0x10, X, 1), load(0x14, Y)];
    let t1 = vec![store(0x20, Y, 1), load(0x24, X)];
    let warm = |prog: Vec<Instr>, other: u64| {
        let mut p = vec![load(0x08, other)];
        p.extend(prog);
        p
    };
    let mut m = Machine::new(
        &sys,
        vec![
            Box::new(VecStream::new(warm(t0, Y))) as Box<dyn InstrStream>,
            Box::new(VecStream::new(warm(t1, X))),
        ],
    );
    m.core_mut(0).record_loads();
    m.core_mut(1).record_loads();
    m.run(1_000_000).expect("drains");
    let r0 = m.core_mut(0).load_observations().last().unwrap().value;
    let r1 = m.core_mut(1).load_observations().last().unwrap().value;
    assert_eq!(
        (r0, r1),
        (0, 0),
        "young loads must slip past buffered stores (TSO store buffering)"
    );
    // The stores do land eventually.
    assert_eq!(m.memory().read_word(Addr::new(X)), 1);
    assert_eq!(m.memory().read_word(Addr::new(Y)), 1);
}

/// With an `mfence` between the store and the load, the relaxed outcome must
/// vanish: the load waits for the SB to drain.
#[test]
fn mfence_forbids_store_buffering() {
    let sys = SystemConfig::small(2);
    let t0 = vec![
        store(0x10, X, 1),
        Instr::simple(Pc::new(0x12), Op::Fence),
        load(0x14, Y),
    ];
    let t1 = vec![
        store(0x20, Y, 1),
        Instr::simple(Pc::new(0x22), Op::Fence),
        load(0x24, X),
    ];
    let mut m = Machine::new(
        &sys,
        vec![
            Box::new(VecStream::new(t0)) as Box<dyn InstrStream>,
            Box::new(VecStream::new(t1)),
        ],
    );
    m.core_mut(0).record_loads();
    m.core_mut(1).record_loads();
    m.run(1_000_000).expect("drains");
    let r0 = m.core_mut(0).load_observations()[0].value;
    let r1 = m.core_mut(1).load_observations()[0].value;
    assert!(
        r0 == 1 || r1 == 1,
        "fenced SB litmus must not observe (0, 0), got ({r0}, {r1})"
    );
}

/// A same-thread load after a store to the same address must observe the
/// store (forwarding), regardless of the SB.
#[test]
fn same_address_forwarding_preserves_program_order() {
    let sys = SystemConfig::small(1);
    let prog = vec![store(0x10, X, 7), load(0x14, X)];
    let mut m = Machine::new(
        &sys,
        vec![Box::new(VecStream::new(prog)) as Box<dyn InstrStream>],
    );
    m.core_mut(0).record_loads();
    m.run(1_000_000).expect("drains");
    assert_eq!(m.core_mut(0).load_observations()[0].value, 7);
}

/// Atomics do not tear and have a global total order: interleaved CAS chains
/// from two cores produce a value reachable only by serialized execution.
#[test]
fn atomic_swaps_serialize_globally() {
    let sys = SystemConfig::small(2);
    let mk = |v: u64| {
        let prog: Vec<Instr> = (0..40)
            .map(|_| {
                Instr::simple(
                    Pc::new(0x40),
                    Op::Atomic {
                        rmw: RmwKind::Swap(v),
                        addr: Addr::new(X),
                    },
                )
            })
            .collect();
        Box::new(VecStream::new(prog)) as Box<dyn InstrStream>
    };
    let mut m = Machine::new(&sys, vec![mk(11), mk(22)]);
    m.run(10_000_000).expect("drains");
    let v = m.memory().read_word(Addr::new(X));
    assert!(v == 11 || v == 22, "a swap value must win whole: {v}");
}

/// An atomic RMW commits only after all older stores drained: the RMW's
/// effect must incorporate the older store's value (same word).
#[test]
fn atomic_orders_after_older_store_to_same_word() {
    let sys = SystemConfig::small(1);
    let prog = vec![
        store(0x10, X, 100),
        Instr::simple(
            Pc::new(0x14),
            Op::Atomic {
                rmw: RmwKind::Faa(1),
                addr: Addr::new(X),
            },
        ),
    ];
    let mut m = Machine::new(
        &sys,
        vec![Box::new(VecStream::new(prog)) as Box<dyn InstrStream>],
    );
    m.run(1_000_000).expect("drains");
    assert_eq!(m.memory().read_word(Addr::new(X)), 101);
}

/// Same test with store→atomic forwarding enabled: order must still hold.
#[test]
fn forwarding_does_not_break_store_atomic_order() {
    let sys = SystemConfig::small(1).with_forward_to_atomics(true);
    let prog = vec![
        store(0x10, X, 100),
        Instr::simple(
            Pc::new(0x14),
            Op::Atomic {
                rmw: RmwKind::Faa(1),
                addr: Addr::new(X),
            },
        ),
        store(0x18, Y, 5),
    ];
    let mut m = Machine::new(
        &sys,
        vec![Box::new(VecStream::new(prog)) as Box<dyn InstrStream>],
    );
    m.run(1_000_000).expect("drains");
    assert_eq!(m.memory().read_word(Addr::new(X)), 101);
    assert_eq!(m.memory().read_word(Addr::new(Y)), 5);
}
