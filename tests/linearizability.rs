//! Whole-system atomicity: every atomic RMW is applied exactly once, under
//! every execution policy, even under maximal contention. These tests drive
//! real cores through the real coherence protocol — they validate cache
//! locking, the directory's Blocked states, the store-buffer drain rules and
//! the RoW machinery end-to-end.

use norush::common::config::{AtomicPolicy, RowConfig};
use norush::common::ids::{Addr, Pc};
use norush::cpu::instr::{Instr, InstrStream, Op, RmwKind, VecStream};
use norush::sim::Machine;
use norush::workloads::kernels::SharedCounters;
use norush::SystemConfig;

fn faa_program(n: u64, addrs: &[u64], seed: u64) -> Vec<Instr> {
    let mut rng = norush::common::rng::SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let a = addrs[rng.below(addrs.len() as u64) as usize];
            Instr::simple(
                Pc::new(0x40 + (a % 7) * 4),
                Op::Atomic {
                    rmw: RmwKind::Faa(1),
                    addr: Addr::new(a),
                },
            )
        })
        .collect()
}

fn run_and_sum(policy: AtomicPolicy, cores: usize, per_core: u64, addrs: &[u64]) -> u64 {
    let sys = SystemConfig::small(cores).with_policy(policy);
    let streams: Vec<Box<dyn InstrStream>> = (0..cores)
        .map(|t| {
            Box::new(VecStream::new(faa_program(per_core, addrs, t as u64 + 1)))
                as Box<dyn InstrStream>
        })
        .collect();
    let mut m = Machine::new(&sys, streams);
    let r = m.run(50_000_000).expect("drains");
    assert_eq!(r.total.atomics, cores as u64 * per_core);
    addrs
        .iter()
        .map(|&a| m.memory().read_word(Addr::new(a)))
        .sum()
}

#[test]
fn eager_atomics_sum_exactly_on_one_hot_line() {
    let total = run_and_sum(AtomicPolicy::Eager, 4, 50, &[0xf000]);
    assert_eq!(total, 200);
}

#[test]
fn lazy_atomics_sum_exactly_on_one_hot_line() {
    let total = run_and_sum(AtomicPolicy::Lazy, 4, 50, &[0xf000]);
    assert_eq!(total, 200);
}

#[test]
fn row_atomics_sum_exactly_across_hot_lines() {
    let addrs = [0xf000, 0xf040, 0xf080];
    let total = run_and_sum(AtomicPolicy::Row(RowConfig::best()), 4, 60, &addrs);
    assert_eq!(total, 240);
}

#[test]
fn mixed_words_in_same_line_are_independent() {
    // Two words in one cache line: locking serializes, values stay separate.
    let cores = 2;
    let sys = SystemConfig::small(cores);
    let mk = |word: u64| {
        let prog: Vec<Instr> = (0..30)
            .map(|_| {
                Instr::simple(
                    Pc::new(0x40),
                    Op::Atomic {
                        rmw: RmwKind::Faa(1),
                        addr: Addr::new(0xf000 + word * 8),
                    },
                )
            })
            .collect();
        Box::new(VecStream::new(prog)) as Box<dyn InstrStream>
    };
    let mut m = Machine::new(&sys, vec![mk(0), mk(1)]);
    m.run(20_000_000).expect("drains");
    assert_eq!(m.memory().read_word(Addr::new(0xf000)), 30);
    assert_eq!(m.memory().read_word(Addr::new(0xf008)), 30);
}

#[test]
fn kernel_counters_are_exact_under_all_policies() {
    for policy in [
        AtomicPolicy::Eager,
        AtomicPolicy::Lazy,
        AtomicPolicy::Row(RowConfig::best()),
    ] {
        let cores = 4;
        let ops = 100;
        let sys = SystemConfig::small(cores).with_policy(policy);
        let streams: Vec<Box<dyn InstrStream>> = (0..cores)
            .map(|t| Box::new(SharedCounters::new(t, ops, 2, 16, 5)) as Box<dyn InstrStream>)
            .collect();
        let mut m = Machine::new(&sys, streams);
        m.run(50_000_000).expect("drains");
        let total: u64 = (0..2)
            .map(|c| m.memory().read_word(Addr::new(0xb000_0000 + c * 64)))
            .sum();
        assert_eq!(total, cores as u64 * ops, "policy {policy:?}");
    }
}

/// Random small programs of atomics over random hot sets sum exactly
/// under a random policy — the workhorse linearizability property.
/// Parameters are drawn from the in-tree deterministic [`SplitMix64`]
/// (the original `proptest` dependency is unavailable offline).
#[test]
fn random_atomic_mixes_are_linearizable() {
    let mut g = norush::common::rng::SplitMix64::new(0x11ea_0001);
    for _case in 0..12 {
        let cores = 2 + g.below(3) as usize;
        let per_core = 10 + g.below(50);
        let n_lines = 1 + g.below(3) as usize;
        let policy_pick = g.below(3);
        let seed = g.below(1000);

        let addrs: Vec<u64> = (0..n_lines as u64).map(|k| 0xe000 + k * 64).collect();
        let policy = match policy_pick {
            0 => AtomicPolicy::Eager,
            1 => AtomicPolicy::Lazy,
            _ => AtomicPolicy::Row(RowConfig::best()),
        };
        let sys = SystemConfig::small(cores).with_policy(policy);
        let streams: Vec<Box<dyn InstrStream>> = (0..cores)
            .map(|t| {
                Box::new(VecStream::new(faa_program(
                    per_core,
                    &addrs,
                    seed * 31 + t as u64,
                ))) as Box<dyn InstrStream>
            })
            .collect();
        let mut m = Machine::new(&sys, streams);
        m.run(60_000_000).expect("drains");
        let total: u64 = addrs
            .iter()
            .map(|&a| m.memory().read_word(Addr::new(a)))
            .sum();
        assert_eq!(
            total,
            cores as u64 * per_core,
            "policy_pick {policy_pick} seed {seed}"
        );
    }
}
