//! Online per-operation linearizability checking.
//!
//! The end-state oracle in the crate root replays the *whole* journal after
//! the run drains, which has two costs: the journal grows without bound
//! (hundreds of millions of records over a soak), and a violation surfaces
//! only at the end, far from the operation that caused it. The
//! [`OnlineChecker`] here removes both: the simulation loop drains the
//! journal every cycle and feeds each record to [`OnlineChecker::observe`],
//! which checks it against the sequential golden model *at the moment it is
//! journaled* and then discards it. State is O(live words) — the golden
//! word store, per-core counters, and a short tail of recent records kept
//! for failure triage.
//!
//! Per-record checking covers the strongest property the end-state oracle
//! has — monotone FAA return-value chains and CAS/Swap witness ordering per
//! key (check 1 in the crate docs) — and catches bugs the end-state checks
//! provably cannot: a lost FAA later compensated by a duplicated one nets
//! to zero in the final state and in per-core counts, but the first
//! operation to read the word between the two halves observes a value the
//! golden model can refute. [`OnlineChecker::finish`] then performs the
//! remaining end-of-run checks (exactly-once application per core, final
//! memory state) without any journal replay.
//!
//! The checker implements [`Codec`], so a mid-soak checkpoint carries the
//! checker's exact state and a restored run resumes checking bit-exactly.

use std::collections::VecDeque;

use row_common::ids::CoreId;
use row_common::persist::{Codec, PersistError, Reader, Writer};
use row_mem::{OpKind, OpRecord};

use crate::{OracleMismatch, OracleReport, SequentialMachine};

/// Journal records retained for triage after a violation. Big enough to
/// show the interleaving around the offending operation, small enough to
/// keep the checker O(live keys).
pub const TAIL_CAP: usize = 64;

/// Streaming per-operation checker against the sequential golden model.
///
/// # Example
/// ```
/// use row_oracle::OnlineChecker;
/// use row_common::ids::{Addr, CoreId};
/// use row_common::rmw::RmwKind;
/// use row_common::Cycle;
/// use row_mem::{OpKind, OpRecord};
///
/// let mut c = OnlineChecker::new(1);
/// let rec = OpRecord {
///     core: CoreId::new(0),
///     at: Cycle::ZERO,
///     kind: OpKind::Rmw { addr: Addr::new(0x100), rmw: RmwKind::Faa(1), observed_old: 0 },
/// };
/// c.observe(&rec).unwrap();
/// assert_eq!(c.ops_seen(), 1);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct OnlineChecker {
    golden: SequentialMachine,
    /// Per-core journaled RMW-application counts, indexed by core.
    journaled: Vec<u64>,
    rmws: u64,
    stores: u64,
    /// Total records observed; the next record's journal index.
    seen: u64,
    /// The most recent [`TAIL_CAP`] records, ending with the offending one
    /// after a failed [`OnlineChecker::observe`].
    tail: VecDeque<OpRecord>,
}

impl OnlineChecker {
    /// An empty checker for a machine of `cores` cores.
    pub fn new(cores: usize) -> Self {
        OnlineChecker {
            golden: SequentialMachine::new(),
            journaled: vec![0; cores],
            rmws: 0,
            stores: 0,
            seen: 0,
            tail: VecDeque::with_capacity(TAIL_CAP),
        }
    }

    /// Checks one journal record against the golden model and applies it.
    ///
    /// # Errors
    /// [`OracleMismatch::RmwReturn`] when an RMW's observed old value
    /// disagrees with the sequential replay at this point in the apply
    /// order. The offending record is retained at the back of
    /// [`OnlineChecker::tail`].
    pub fn observe(&mut self, rec: &OpRecord) -> Result<(), OracleMismatch> {
        if self.tail.len() == TAIL_CAP {
            self.tail.pop_front();
        }
        self.tail.push_back(*rec);
        let index = self.seen as usize;
        self.seen += 1;
        let replayed_old = self.golden.apply(rec);
        match rec.kind {
            OpKind::Rmw {
                addr, observed_old, ..
            } => {
                self.rmws += 1;
                if let Some(n) = self.journaled.get_mut(rec.core.index()) {
                    *n += 1;
                }
                if observed_old != replayed_old {
                    return Err(OracleMismatch::RmwReturn {
                        index,
                        core: rec.core,
                        addr,
                        expected: replayed_old,
                        observed: observed_old,
                    });
                }
            }
            OpKind::Store { .. } => self.stores += 1,
        }
        Ok(())
    }

    /// End-of-run checks: exactly-once application per core and final
    /// memory state, mirroring the end-state oracle but without a replay.
    ///
    /// # Errors
    /// [`OracleMismatch::AtomicCount`] or [`OracleMismatch::FinalState`].
    pub fn finish(
        &self,
        machine_words: &std::collections::HashMap<u64, u64>,
        retired_atomics: &[u64],
    ) -> Result<OracleReport, OracleMismatch> {
        for (i, (&j, &r)) in self.journaled.iter().zip(retired_atomics).enumerate() {
            if j != r {
                return Err(OracleMismatch::AtomicCount {
                    core: CoreId::new(i as u16),
                    journaled: j,
                    retired: r,
                });
            }
        }
        let mut report = OracleReport {
            rmws: self.rmws,
            stores: self.stores,
            words_checked: 0,
        };
        // Deterministic order so a failing run always names the same word
        // first, matching the end-state oracle.
        let mut touched: Vec<(&u64, &u64)> = self.golden.words().iter().collect();
        touched.sort_unstable();
        for (&addr, &expected) in touched {
            let actual = machine_words.get(&addr).copied().unwrap_or(0);
            if actual != expected {
                return Err(OracleMismatch::FinalState {
                    addr,
                    expected,
                    actual,
                });
            }
            report.words_checked += 1;
        }
        Ok(report)
    }

    /// Total journal records observed so far.
    pub const fn ops_seen(&self) -> u64 {
        self.seen
    }

    /// RMW applications observed so far.
    pub const fn rmws(&self) -> u64 {
        self.rmws
    }

    /// Distinct words the golden model holds — the checker's live-key
    /// footprint (its memory is O(this), not O(ops observed)).
    pub fn live_words(&self) -> usize {
        self.golden.words().len()
    }

    /// The retained journal tail (oldest first), for triage bundles.
    pub fn tail(&self) -> impl Iterator<Item = &OpRecord> {
        self.tail.iter()
    }

    /// Journal index of the first record in [`OnlineChecker::tail`].
    pub fn tail_start_index(&self) -> u64 {
        self.seen - self.tail.len() as u64
    }
}

impl Codec for OnlineChecker {
    fn encode(&self, w: &mut Writer) {
        self.golden.words().encode(w);
        self.journaled.encode(w);
        w.put_u64(self.rmws);
        w.put_u64(self.stores);
        w.put_u64(self.seen);
        self.tail.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let words = std::collections::HashMap::<u64, u64>::decode(r)?;
        let mut golden = SequentialMachine::new();
        *golden.words_mut() = words;
        Ok(OnlineChecker {
            golden,
            journaled: Vec::<u64>::decode(r)?,
            rmws: r.get_u64()?,
            stores: r.get_u64()?,
            seen: r.get_u64()?,
            tail: VecDeque::<OpRecord>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use row_common::ids::Addr;
    use row_common::rmw::RmwKind;
    use row_common::Cycle;
    use std::collections::HashMap;

    fn faa(core: u16, addr: u64, by: u64, observed_old: u64) -> OpRecord {
        OpRecord {
            core: CoreId::new(core),
            at: Cycle::ZERO,
            kind: OpKind::Rmw {
                addr: Addr::new(addr),
                rmw: RmwKind::Faa(by),
                observed_old,
            },
        }
    }

    fn store(core: u16, addr: u64, value: u64) -> OpRecord {
        OpRecord {
            core: CoreId::new(core),
            at: Cycle::ZERO,
            kind: OpKind::Store {
                addr: Addr::new(addr),
                value,
            },
        }
    }

    #[test]
    fn clean_stream_passes_and_finishes() {
        let mut c = OnlineChecker::new(2);
        for rec in [
            store(0, 0x100, 5),
            faa(0, 0x100, 2, 5),
            faa(1, 0x100, 2, 7),
            store(1, 0x200, 1),
        ] {
            c.observe(&rec).unwrap();
        }
        let words = HashMap::from([(0x100, 9), (0x200, 1)]);
        let report = c.finish(&words, &[1, 1]).unwrap();
        assert_eq!(report.rmws, 2);
        assert_eq!(report.stores, 2);
        assert_eq!(report.words_checked, 2);
        assert_eq!(c.live_words(), 2);
    }

    #[test]
    fn net_zero_lost_plus_duplicated_faa_is_caught_at_the_op() {
        // Core 0's FAA is lost (journal claims applied, memory unchanged);
        // core 1's FAA is applied twice but journaled once. End state and
        // per-core counts are clean — only the per-op check sees it.
        let mut c = OnlineChecker::new(2);
        c.observe(&faa(0, 0x100, 3, 0)).unwrap(); // lost: golden now 3
        let err = c.observe(&faa(1, 0x100, 3, 0)).unwrap_err(); // machine saw 0
        match err {
            OracleMismatch::RmwReturn {
                index,
                expected,
                observed,
                ..
            } => {
                assert_eq!(index, 1);
                assert_eq!(expected, 3);
                assert_eq!(observed, 0);
            }
            other => panic!("wrong mismatch: {other:?}"),
        }
        // The end-state view of the same bug is clean: word = 6 (0 lost,
        // +3 applied twice), one journaled RMW per core.
        let end = crate::check(
            &[faa(0, 0x100, 3, 0), faa(1, 0x100, 3, 3)],
            &HashMap::from([(0x100, 6)]),
            &[1, 1],
        );
        assert!(end.is_ok(), "end-state oracle is blind to the net-zero bug");
    }

    #[test]
    fn cas_witness_ordering_is_checked() {
        let mut c = OnlineChecker::new(1);
        c.observe(&faa(0, 0x40, 3, 0)).unwrap();
        let cas = |expected: u64, new: u64, observed_old: u64| OpRecord {
            core: CoreId::new(0),
            at: Cycle::ZERO,
            kind: OpKind::Rmw {
                addr: Addr::new(0x40),
                rmw: RmwKind::Cas { expected, new },
                observed_old,
            },
        };
        // First CAS succeeds: 3 -> 10. A second CAS claiming to have
        // observed 3 again contradicts the witness order (the word is 10).
        c.observe(&cas(3, 10, 3)).unwrap();
        let err = c.observe(&cas(3, 99, 3)).unwrap_err();
        assert!(matches!(err, OracleMismatch::RmwReturn { .. }));
    }

    #[test]
    fn duplicate_application_is_caught_by_finish() {
        let mut c = OnlineChecker::new(1);
        c.observe(&faa(0, 0x100, 1, 0)).unwrap();
        c.observe(&faa(0, 0x100, 1, 1)).unwrap();
        let err = c.finish(&HashMap::from([(0x100, 2)]), &[1]).unwrap_err();
        assert_eq!(
            err,
            OracleMismatch::AtomicCount {
                core: CoreId::new(0),
                journaled: 2,
                retired: 1,
            }
        );
    }

    #[test]
    fn final_state_divergence_is_caught_by_finish() {
        let mut c = OnlineChecker::new(1);
        c.observe(&store(0, 0x100, 5)).unwrap();
        let err = c.finish(&HashMap::from([(0x100, 6)]), &[0]).unwrap_err();
        assert!(matches!(err, OracleMismatch::FinalState { .. }));
    }

    #[test]
    fn memory_is_live_words_not_ops() {
        let mut c = OnlineChecker::new(1);
        for old in 0..10_000 {
            c.observe(&faa(0, 0x100, 1, old)).unwrap();
        }
        assert_eq!(c.ops_seen(), 10_000);
        assert_eq!(c.live_words(), 1);
        assert_eq!(c.tail().count(), TAIL_CAP);
        assert_eq!(c.tail_start_index(), 10_000 - TAIL_CAP as u64);
    }

    #[test]
    fn codec_round_trip_is_bit_exact() {
        let mut c = OnlineChecker::new(3);
        let mut old = 0;
        for i in 0..200u64 {
            c.observe(&faa((i % 3) as u16, 0x100, 1, old)).unwrap();
            old += 1;
            c.observe(&store(0, 0x200 + 8 * (i % 5), i)).unwrap();
        }
        let back = row_common::persist::roundtrip(&c).unwrap();
        assert_eq!(back, c);
        // And the restored checker keeps checking from the same point.
        let mut a = c.clone();
        let mut b = back;
        assert_eq!(
            a.observe(&faa(0, 0x100, 1, old)),
            b.observe(&faa(0, 0x100, 1, old))
        );
    }
}
