//! Differential end-state oracle for the timing simulator.
//!
//! The memory system, when `CheckConfig::oracle` is on, journals every
//! architectural write (atomic RMW application and committed store) in the
//! order it hits the functional word store. That order is a linearization
//! witness. This crate replays the journal through a trivially-correct
//! *sequential* golden model ([`SequentialMachine`]) and cross-checks three
//! things against the timing machine:
//!
//! 1. **RMW return values** — each journaled RMW records the old value the
//!    machine observed; the replay must observe the same value at the same
//!    point in the order. A lost or duplicated atomic application shifts
//!    every later observation on that address.
//! 2. **Atomic counts** — the number of journaled RMW applications per core
//!    must equal the core's retired-atomic count. A duplicate delivery that
//!    applies an atomic twice journals twice but retires once.
//! 3. **Final memory state** — for every word the journal touches, the
//!    machine's final functional store must equal the replayed value.
//!    (Words only ever written by raw pre-seeding are outside the journal
//!    and deliberately not checked.)
//!
//! None of these checks involve timing, so the oracle is valid for any
//! scheduling policy (eager, lazy, RoW, far) and — the point of this crate —
//! under lossy chaos, where the recoverable transport must deliver every
//! protocol message *exactly once* for the journal to replay cleanly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use row_common::ids::{Addr, CoreId};
use row_mem::{OpKind, OpRecord};

pub mod online;

pub use online::OnlineChecker;

/// Masks an address down to its 64-bit word base, matching the timing
/// machine's functional store keying.
fn word_base(addr: Addr) -> u64 {
    addr.raw() & !7
}

/// The golden model: a flat word store applied to sequentially, with no
/// timing, caches, network, or concurrency anywhere near it.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SequentialMachine {
    words: HashMap<u64, u64>,
}

impl SequentialMachine {
    /// An empty machine (all words read as zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the word containing `addr`.
    pub fn read(&self, addr: Addr) -> u64 {
        self.words.get(&word_base(addr)).copied().unwrap_or(0)
    }

    /// Applies one journal record, returning the old value an RMW observed
    /// (stores return the overwritten value, which callers may ignore).
    pub fn apply(&mut self, rec: &OpRecord) -> u64 {
        match rec.kind {
            OpKind::Rmw { addr, rmw, .. } => {
                let old = self.read(addr);
                let (new, wrote) = rmw.apply(old);
                if wrote {
                    self.words.insert(word_base(addr), new);
                }
                old
            }
            OpKind::Store { addr, value } => {
                let old = self.read(addr);
                self.words.insert(word_base(addr), value);
                old
            }
        }
    }

    /// The words written so far (word base address → value).
    pub fn words(&self) -> &HashMap<u64, u64> {
        &self.words
    }

    /// Mutable word store, for restoring a checkpointed golden model.
    pub(crate) fn words_mut(&mut self) -> &mut HashMap<u64, u64> {
        &mut self.words
    }
}

/// Summary of a successful oracle check.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OracleReport {
    /// RMW applications replayed.
    pub rmws: u64,
    /// Plain stores replayed.
    pub stores: u64,
    /// Distinct words cross-checked against the machine's final state.
    pub words_checked: u64,
}

/// A divergence between the timing machine and the sequential golden model.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OracleMismatch {
    /// A journaled RMW observed a different old value than the sequential
    /// replay produces at the same position in the apply order.
    RmwReturn {
        /// Position of the record in the journal.
        index: usize,
        /// Core that performed the RMW.
        core: CoreId,
        /// Address operated on.
        addr: Addr,
        /// Old value the golden model reads at this point.
        expected: u64,
        /// Old value the timing machine actually observed.
        observed: u64,
    },
    /// A word the journal touched ends the run with a different value in
    /// the machine's functional store than in the golden model.
    FinalState {
        /// Word base address.
        addr: u64,
        /// Final value per the golden model.
        expected: u64,
        /// Final value in the timing machine.
        actual: u64,
    },
    /// A core's journaled RMW-application count disagrees with its
    /// retired-atomic count — an atomic was applied twice (duplicate
    /// delivery) or never (lost without retransmission).
    AtomicCount {
        /// The core.
        core: CoreId,
        /// RMW applications recorded in the journal for this core.
        journaled: u64,
        /// Atomics the core retired.
        retired: u64,
    },
}

impl std::fmt::Display for OracleMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleMismatch::RmwReturn {
                index,
                core,
                addr,
                expected,
                observed,
            } => write!(
                f,
                "oracle: journal[{index}] rmw at {addr} by core {core} observed \
                 {observed} but sequential replay expects {expected}"
            ),
            OracleMismatch::FinalState {
                addr,
                expected,
                actual,
            } => write!(
                f,
                "oracle: final word at {addr:#x} is {actual} but sequential \
                 replay expects {expected}"
            ),
            OracleMismatch::AtomicCount {
                core,
                journaled,
                retired,
            } => write!(
                f,
                "oracle: core {core} journaled {journaled} rmw applications \
                 but retired {retired} atomics"
            ),
        }
    }
}

impl std::error::Error for OracleMismatch {}

/// Replays `journal` through the golden model and cross-checks it against
/// the timing machine's final state.
///
/// * `machine_words` — the machine's functional word store at end of run
///   (word base address → value; absent words read as zero).
/// * `retired_atomics` — per-core retired-atomic counts, indexed by core.
///
/// Returns the first divergence found, or a summary of what was checked.
pub fn check(
    journal: &[OpRecord],
    machine_words: &HashMap<u64, u64>,
    retired_atomics: &[u64],
) -> Result<OracleReport, OracleMismatch> {
    let mut golden = SequentialMachine::new();
    let mut report = OracleReport::default();
    let mut journaled = vec![0u64; retired_atomics.len()];
    for (index, rec) in journal.iter().enumerate() {
        let replayed_old = golden.apply(rec);
        match rec.kind {
            OpKind::Rmw {
                addr, observed_old, ..
            } => {
                report.rmws += 1;
                if let Some(n) = journaled.get_mut(rec.core.index()) {
                    *n += 1;
                }
                if observed_old != replayed_old {
                    return Err(OracleMismatch::RmwReturn {
                        index,
                        core: rec.core,
                        addr,
                        expected: replayed_old,
                        observed: observed_old,
                    });
                }
            }
            OpKind::Store { .. } => report.stores += 1,
        }
    }
    for (i, (&j, &r)) in journaled.iter().zip(retired_atomics).enumerate() {
        if j != r {
            return Err(OracleMismatch::AtomicCount {
                core: CoreId::new(i as u16),
                journaled: j,
                retired: r,
            });
        }
    }
    // Deterministic order so a failing run always names the same word first.
    let mut touched: Vec<(&u64, &u64)> = golden.words().iter().collect();
    touched.sort_unstable();
    for (&addr, &expected) in touched {
        let actual = machine_words.get(&addr).copied().unwrap_or(0);
        if actual != expected {
            return Err(OracleMismatch::FinalState {
                addr,
                expected,
                actual,
            });
        }
        report.words_checked += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use row_common::rmw::RmwKind;
    use row_common::Cycle;

    fn faa(core: u16, addr: u64, by: u64, observed_old: u64) -> OpRecord {
        OpRecord {
            core: CoreId::new(core),
            at: Cycle::ZERO,
            kind: OpKind::Rmw {
                addr: Addr::new(addr),
                rmw: RmwKind::Faa(by),
                observed_old,
            },
        }
    }

    fn store(core: u16, addr: u64, value: u64) -> OpRecord {
        OpRecord {
            core: CoreId::new(core),
            at: Cycle::ZERO,
            kind: OpKind::Store {
                addr: Addr::new(addr),
                value,
            },
        }
    }

    #[test]
    fn clean_journal_passes() {
        let journal = vec![
            store(0, 0x100, 5),
            faa(0, 0x100, 2, 5),
            faa(1, 0x100, 2, 7),
            store(1, 0x200, 1),
        ];
        let words = HashMap::from([(0x100, 9), (0x200, 1)]);
        let report = check(&journal, &words, &[1, 1]).unwrap();
        assert_eq!(report.rmws, 2);
        assert_eq!(report.stores, 2);
        assert_eq!(report.words_checked, 2);
    }

    #[test]
    fn shifted_rmw_observation_is_caught() {
        // Second FAA claims to have seen 5 again — as if the first
        // application was lost.
        let journal = vec![store(0, 0x100, 5), faa(0, 0x100, 2, 5), faa(1, 0x100, 2, 5)];
        let err = check(&journal, &HashMap::new(), &[1, 1]).unwrap_err();
        match err {
            OracleMismatch::RmwReturn {
                index,
                expected,
                observed,
                ..
            } => {
                assert_eq!(index, 2);
                assert_eq!(expected, 7);
                assert_eq!(observed, 5);
            }
            other => panic!("wrong mismatch: {other:?}"),
        }
    }

    #[test]
    fn duplicate_application_is_caught_by_count() {
        // The journal holds two self-consistent applications but the core
        // only retired one atomic: a duplicated delivery applied it twice.
        let journal = vec![faa(0, 0x100, 1, 0), faa(0, 0x100, 1, 1)];
        let words = HashMap::from([(0x100, 2)]);
        let err = check(&journal, &words, &[1]).unwrap_err();
        assert_eq!(
            err,
            OracleMismatch::AtomicCount {
                core: CoreId::new(0),
                journaled: 2,
                retired: 1,
            }
        );
        assert!(err.to_string().contains("journaled 2"));
    }

    #[test]
    fn final_state_divergence_is_caught() {
        let journal = vec![store(0, 0x100, 5)];
        let words = HashMap::from([(0x100, 6)]);
        let err = check(&journal, &words, &[0]).unwrap_err();
        assert_eq!(
            err,
            OracleMismatch::FinalState {
                addr: 0x100,
                expected: 5,
                actual: 6,
            }
        );
    }

    #[test]
    fn cas_and_swap_replay() {
        let journal = vec![
            faa(0, 0x40, 3, 0),
            OpRecord {
                core: CoreId::new(0),
                at: Cycle::ZERO,
                kind: OpKind::Rmw {
                    addr: Addr::new(0x40),
                    rmw: RmwKind::Cas {
                        expected: 3,
                        new: 10,
                    },
                    observed_old: 3,
                },
            },
            OpRecord {
                core: CoreId::new(0),
                at: Cycle::ZERO,
                kind: OpKind::Rmw {
                    addr: Addr::new(0x40),
                    rmw: RmwKind::Cas {
                        expected: 3,
                        new: 99,
                    },
                    observed_old: 10,
                },
            },
            OpRecord {
                core: CoreId::new(0),
                at: Cycle::ZERO,
                kind: OpKind::Rmw {
                    addr: Addr::new(0x40),
                    rmw: RmwKind::Swap(7),
                    observed_old: 10,
                },
            },
        ];
        let words = HashMap::from([(0x40, 7)]);
        let report = check(&journal, &words, &[4]).unwrap();
        assert_eq!(report.rmws, 4);
    }
}
