//! Property tests for the RoW predictor and detectors.

use proptest::prelude::*;
use row_common::clock::{Cycle, TIMESTAMP_MODULUS};
use row_common::config::{DetectorKind, PredictorKind, RowConfig};
use row_common::ids::Pc;
use row_core::detect::{marks_on_external, marks_on_fill};
use row_core::predictor::ContentionPredictor;
use row_core::RowEngine;

proptest! {
    /// The XOR index never leaves the table, for any PC.
    #[test]
    fn index_is_always_in_range(pc in any::<u64>(), entries_pow in 0u32..10) {
        let entries = 1usize << entries_pow;
        let p = ContentionPredictor::new(PredictorKind::UpDown, entries, 4, 1);
        prop_assert!(p.index(Pc::new(pc)) < entries);
    }

    /// Counters stay within [0, 2^bits) under any training sequence.
    #[test]
    fn counters_stay_bounded(
        kind in prop::sample::select(vec![
            PredictorKind::UpDown,
            PredictorKind::SaturateOnContention,
            PredictorKind::TwoUpOneDown,
        ]),
        outcomes in prop::collection::vec((any::<u64>(), any::<bool>()), 1..300),
        bits in 1u32..6,
    ) {
        let mut p = ContentionPredictor::new(kind, 64, bits, 1);
        for &(pc, contended) in &outcomes {
            p.train(Pc::new(pc), contended);
            prop_assert!(u32::from(p.counter(Pc::new(pc))) < (1 << bits));
        }
    }

    /// A PC trained only with contention eventually predicts lazy; trained
    /// only without, eventually predicts eager — for every predictor kind.
    #[test]
    fn training_converges(
        kind in prop::sample::select(vec![
            PredictorKind::UpDown,
            PredictorKind::SaturateOnContention,
            PredictorKind::TwoUpOneDown,
        ]),
        pc in any::<u64>(),
    ) {
        let mut row = RowEngine::new(RowConfig::new(DetectorKind::rw_dir_default(), kind));
        for _ in 0..20 {
            row.complete(Pc::new(pc), false, true);
        }
        prop_assert!(row.predicts_contended(Pc::new(pc)));
        for _ in 0..20 {
            row.complete(Pc::new(pc), true, false);
        }
        prop_assert!(!row.predicts_contended(Pc::new(pc)));
    }

    /// The ready window strictly contains the execution window: anything EW
    /// marks, RW marks too.
    #[test]
    fn rw_window_contains_ew(addr_known in any::<bool>(), locked in any::<bool>()) {
        if marks_on_external(DetectorKind::ExecutionWindow, addr_known, locked) {
            prop_assert!(marks_on_external(DetectorKind::ReadyWindow, addr_known, locked));
        }
    }

    /// The fill heuristic fires iff the sender is remote-private and the
    /// 14-bit latency exceeds the threshold.
    #[test]
    fn fill_rule_matches_definition(
        issue in 0u64..1u64<<30,
        delta in 0u64..1u64<<15,
        threshold in 0u64..2_000,
        remote in any::<bool>(),
    ) {
        let k = DetectorKind::ReadyWindowDir { latency_threshold: threshold };
        let fires = marks_on_fill(k, remote, Cycle::new(issue).timestamp14(), Cycle::new(issue + delta));
        let expected = remote && (delta % TIMESTAMP_MODULUS) > threshold;
        prop_assert_eq!(fires, expected);
    }

    /// Accuracy counters always partition the total.
    #[test]
    fn accuracy_partitions(outcomes in prop::collection::vec((any::<bool>(), any::<bool>()), 0..200)) {
        let mut row = RowEngine::new(RowConfig::best());
        for &(p, d) in &outcomes {
            row.complete(Pc::new(0x10), p, d);
        }
        let a = row.accuracy();
        prop_assert_eq!(a.total() as usize, outcomes.len());
        prop_assert!(a.accuracy() >= 0.0 && a.accuracy() <= 1.0);
    }
}
