//! Randomized property tests for the RoW predictor and detectors.
//!
//! Driven by the in-tree deterministic [`SplitMix64`] instead of `proptest`
//! so the suite builds offline; the assertions are unchanged.

use row_common::clock::{Cycle, TIMESTAMP_MODULUS};
use row_common::config::{DetectorKind, PredictorKind, RowConfig};
use row_common::ids::Pc;
use row_common::rng::SplitMix64;
use row_core::detect::{marks_on_external, marks_on_fill};
use row_core::predictor::ContentionPredictor;
use row_core::RowEngine;

const KINDS: [PredictorKind; 3] = [
    PredictorKind::UpDown,
    PredictorKind::SaturateOnContention,
    PredictorKind::TwoUpOneDown,
];

/// The XOR index never leaves the table, for any PC.
#[test]
fn index_is_always_in_range() {
    let mut rng = SplitMix64::new(0xc0de_0001);
    for _ in 0..256 {
        let pc = rng.next_u64();
        let entries = 1usize << rng.below(10);
        let p = ContentionPredictor::new(PredictorKind::UpDown, entries, 4, 1);
        assert!(p.index(Pc::new(pc)) < entries);
    }
}

/// Counters stay within [0, 2^bits) under any training sequence.
#[test]
fn counters_stay_bounded() {
    let mut rng = SplitMix64::new(0xc0de_0002);
    for _ in 0..64 {
        let kind = KINDS[rng.below(3) as usize];
        let bits = 1 + rng.below(5) as u32;
        let n = 1 + rng.below(300) as usize;
        let mut p = ContentionPredictor::new(kind, 64, bits, 1);
        for _ in 0..n {
            let pc = rng.next_u64();
            let contended = rng.chance(0.5);
            p.train(Pc::new(pc), contended);
            assert!(u32::from(p.counter(Pc::new(pc))) < (1 << bits));
        }
    }
}

/// A PC trained only with contention eventually predicts lazy; trained
/// only without, eventually predicts eager — for every predictor kind.
#[test]
fn training_converges() {
    let mut rng = SplitMix64::new(0xc0de_0003);
    for kind in KINDS {
        for _ in 0..16 {
            let pc = rng.next_u64();
            let mut row = RowEngine::new(RowConfig::new(DetectorKind::rw_dir_default(), kind));
            for _ in 0..20 {
                row.complete(Pc::new(pc), false, true);
            }
            assert!(row.predicts_contended(Pc::new(pc)));
            for _ in 0..20 {
                row.complete(Pc::new(pc), true, false);
            }
            assert!(!row.predicts_contended(Pc::new(pc)));
        }
    }
}

/// The ready window strictly contains the execution window: anything EW
/// marks, RW marks too.
#[test]
fn rw_window_contains_ew() {
    for addr_known in [false, true] {
        for locked in [false, true] {
            if marks_on_external(DetectorKind::ExecutionWindow, addr_known, locked) {
                assert!(marks_on_external(
                    DetectorKind::ReadyWindow,
                    addr_known,
                    locked
                ));
            }
        }
    }
}

/// The fill heuristic fires iff the sender is remote-private and the
/// 14-bit latency exceeds the threshold.
#[test]
fn fill_rule_matches_definition() {
    let mut rng = SplitMix64::new(0xc0de_0004);
    for _ in 0..512 {
        let issue = rng.below(1u64 << 30);
        let delta = rng.below(1u64 << 15);
        let threshold = rng.below(2_000);
        let remote = rng.chance(0.5);
        let k = DetectorKind::ReadyWindowDir {
            latency_threshold: threshold,
        };
        let fires = marks_on_fill(
            k,
            remote,
            Cycle::new(issue).timestamp14(),
            Cycle::new(issue + delta),
        );
        let expected = remote && (delta % TIMESTAMP_MODULUS) > threshold;
        assert_eq!(fires, expected);
    }
}

/// Accuracy counters always partition the total.
#[test]
fn accuracy_partitions() {
    let mut rng = SplitMix64::new(0xc0de_0005);
    for _ in 0..64 {
        let n = rng.below(200) as usize;
        let mut row = RowEngine::new(RowConfig::best());
        for _ in 0..n {
            row.complete(Pc::new(0x10), rng.chance(0.5), rng.chance(0.5));
        }
        let a = row.accuracy();
        assert_eq!(a.total() as usize, n);
        assert!(a.accuracy() >= 0.0 && a.accuracy() <= 1.0);
    }
}
