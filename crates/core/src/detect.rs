//! Contention-detection rules (paper Sections IV-A, IV-B, IV-C).
//!
//! These are pure decision functions over the state an Atomic Queue entry
//! carries; the CPU core invokes them when an external request snoops the AQ
//! and when a fill arrives. Keeping them here (rather than inside the
//! pipeline) makes each mechanism independently testable and lets the bench
//! harness sweep them.

use row_common::clock::{Cycle, TIMESTAMP_MODULUS};
use row_common::config::DetectorKind;

/// Whether an external request (invalidation/downgrade) matching an atomic's
/// line marks the atomic contended, given the atomic's progress.
///
/// * Execution window (IV-A): only while the line is *locked*.
/// * Ready window (IV-B and IV-C): as soon as the atomic's address is known
///   (the `only-calculate-address` issue computes it even for lazy atomics).
pub fn marks_on_external(kind: DetectorKind, address_known: bool, locked: bool) -> bool {
    match kind {
        DetectorKind::ExecutionWindow => locked,
        DetectorKind::ReadyWindow | DetectorKind::ReadyWindowDir { .. } => address_known || locked,
    }
}

/// Whether a fill marks the atomic contended via the directory heuristic
/// (IV-C): the line arrived from a remote private cache and the 14-bit
/// request latency exceeds the threshold.
///
/// `issued14` is the low-14-bit timestamp latched when the GetX was sent;
/// `fill_at` is the arrival cycle. The subtraction wraps exactly as the
/// hardware's 14-bit unsigned subtractor does, including the documented
/// aliasing for latencies ≥ 2^14.
pub fn marks_on_fill(
    kind: DetectorKind,
    from_remote_private: bool,
    issued14: u16,
    fill_at: Cycle,
) -> bool {
    let DetectorKind::ReadyWindowDir { latency_threshold } = kind else {
        return false;
    };
    if !from_remote_private {
        return false;
    }
    if latency_threshold >= TIMESTAMP_MODULUS {
        // An unreachable threshold (the Fig. 10 "inf" point) can never fire
        // through a 14-bit comparator.
        return false;
    }
    fill_at.latency_since14(issued14) > latency_threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    const EW: DetectorKind = DetectorKind::ExecutionWindow;
    const RW: DetectorKind = DetectorKind::ReadyWindow;
    const RWD: DetectorKind = DetectorKind::ReadyWindowDir {
        latency_threshold: 400,
    };

    #[test]
    fn execution_window_needs_the_lock() {
        assert!(!marks_on_external(EW, true, false));
        assert!(marks_on_external(EW, true, true));
        assert!(!marks_on_external(EW, false, false));
    }

    #[test]
    fn ready_window_extends_to_address_known() {
        assert!(marks_on_external(RW, true, false));
        assert!(marks_on_external(RW, true, true));
        assert!(!marks_on_external(RW, false, false));
        assert!(marks_on_external(RWD, true, false));
    }

    #[test]
    fn locked_without_recorded_address_still_marks_in_rw() {
        // A locked line implies the address was computed, but be permissive:
        // the rule accepts either signal.
        assert!(marks_on_external(RW, false, true));
    }

    #[test]
    fn dir_heuristic_requires_remote_private_sender() {
        let issue = Cycle::new(100);
        let fill = Cycle::new(1000); // latency 900 > 400
        assert!(marks_on_fill(RWD, true, issue.timestamp14(), fill));
        assert!(!marks_on_fill(RWD, false, issue.timestamp14(), fill));
    }

    #[test]
    fn dir_heuristic_respects_threshold() {
        let issue = Cycle::new(100);
        assert!(!marks_on_fill(
            RWD,
            true,
            issue.timestamp14(),
            Cycle::new(500)
        )); // 400, not >
        assert!(marks_on_fill(
            RWD,
            true,
            issue.timestamp14(),
            Cycle::new(501)
        ));
    }

    #[test]
    fn plain_windows_never_mark_on_fill() {
        let issue = Cycle::new(0);
        assert!(!marks_on_fill(
            EW,
            true,
            issue.timestamp14(),
            Cycle::new(10_000)
        ));
        assert!(!marks_on_fill(
            RW,
            true,
            issue.timestamp14(),
            Cycle::new(10_000)
        ));
    }

    #[test]
    fn zero_threshold_marks_any_remote_fill() {
        let k = DetectorKind::ReadyWindowDir {
            latency_threshold: 0,
        };
        let issue = Cycle::new(100);
        assert!(marks_on_fill(k, true, issue.timestamp14(), Cycle::new(101)));
    }

    #[test]
    fn infinite_threshold_degenerates_to_rw() {
        let k = DetectorKind::ReadyWindowDir {
            latency_threshold: u64::MAX,
        };
        let issue = Cycle::new(0);
        assert!(!marks_on_fill(
            k,
            true,
            issue.timestamp14(),
            Cycle::new(1 << 20)
        ));
    }

    #[test]
    fn wraparound_latency_is_measured_correctly() {
        // Issue at 16380, fill at 16900: true latency 520 > 400 despite wrap.
        let issue = Cycle::new(16_380);
        let fill = Cycle::new(16_900);
        assert!(marks_on_fill(RWD, true, issue.timestamp14(), fill));
    }

    #[test]
    fn aliased_long_latency_is_misread_as_paper_documents() {
        // True latency 2^14 + 100 aliases to 100 < 400: not marked.
        let issue = Cycle::new(50);
        let fill = Cycle::new(50 + TIMESTAMP_MODULUS + 100);
        assert!(!marks_on_fill(RWD, true, issue.timestamp14(), fill));
    }
}
