//! Rush or Wait (RoW) — the paper's contribution.
//!
//! RoW decides, per atomic RMW instruction, whether to execute it *eager*
//! (as soon as operands are ready) or *lazy* (once it is the oldest memory
//! instruction and the store buffer has drained), based on a per-PC
//! contention prediction:
//!
//! * [`predictor`] — the 64-entry, 4-bit-counter, XOR-indexed contention
//!   predictor with the *Up/Down*, *Saturate on Contention*, and *+2/−1*
//!   update policies.
//! * [`detect`] — the three contention-detection mechanisms that train it:
//!   execution window, ready window, and ready window + directory-latency
//!   heuristic (14-bit wrapping timestamps, 400-cycle threshold).
//! * [`engine`] — [`RowEngine`], the per-core glue: decide at allocation,
//!   train at unlock, track Fig. 12 accuracy.
//!
//! The total hardware budget is 64 bytes
//! ([`RowEngine::storage_bits`](engine::RowEngine::storage_bits) returns 512
//! bits for the paper's 16-entry AQ), plus a 14-bit subtractor and comparator.
//!
//! # Example
//!
//! ```
//! use row_common::config::RowConfig;
//! use row_common::ids::Pc;
//! use row_core::{ExecMode, RowEngine};
//!
//! let mut row = RowEngine::new(RowConfig::best());
//! let pc = Pc::new(0x401_000);
//! // Cold predictors rush (eager)…
//! assert_eq!(row.decide(pc), ExecMode::Eager);
//! // …until the detectors see contention, after which this PC waits (lazy).
//! row.complete(pc, false, true);
//! row.complete(pc, false, true);
//! assert_eq!(row.decide(pc), ExecMode::Lazy);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detect;
pub mod engine;
pub mod predictor;

pub use engine::{ExecMode, RowEngine};
pub use predictor::ContentionPredictor;
