//! The RoW contention predictor (paper Section IV-D).
//!
//! A 64-entry table of 4-bit saturating counters, indexed by XOR-folding the
//! atomic's PC (the XOR-mapping of González et al. the paper cites). Three
//! update policies are provided: the paper's *Up/Down* and *Saturate on
//! Contention*, plus the *+2/−1* variant the authors evaluated and discarded
//! (kept for the ablation benches).

use row_common::config::PredictorKind;
use row_common::ids::Pc;
use row_common::persist::{Codec, Persist, PersistError, Reader, Writer};

/// An N-bit saturating counter.
///
/// # Example
/// ```
/// use row_core::predictor::SaturatingCounter;
/// let mut c = SaturatingCounter::new(4);
/// c.increment(1);
/// assert_eq!(c.value(), 1);
/// c.saturate();
/// assert_eq!(c.value(), 15);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// Creates a zeroed counter of `bits` width (1..=8).
    ///
    /// # Panics
    /// Panics if `bits` is 0 or greater than 8.
    pub fn new(bits: u32) -> Self {
        assert!((1..=8).contains(&bits), "counter width {bits} out of range");
        SaturatingCounter {
            value: 0,
            max: ((1u16 << bits) - 1) as u8,
        }
    }

    /// Current value.
    pub const fn value(&self) -> u8 {
        self.value
    }

    /// Maximum representable value (`2^N − 1`).
    pub const fn max(&self) -> u8 {
        self.max
    }

    /// Adds `by`, saturating at the maximum.
    pub fn increment(&mut self, by: u8) {
        self.value = self.value.saturating_add(by).min(self.max);
    }

    /// Subtracts 1, saturating at zero.
    pub fn decrement(&mut self) {
        self.value = self.value.saturating_sub(1);
    }

    /// Jumps straight to the maximum (*Saturate on Contention*).
    pub fn saturate(&mut self) {
        self.value = self.max;
    }
}

/// The per-PC contention predictor table.
///
/// # Example
/// ```
/// use row_common::config::PredictorKind;
/// use row_common::ids::Pc;
/// use row_core::predictor::ContentionPredictor;
///
/// let mut p = ContentionPredictor::new(PredictorKind::UpDown, 64, 4, 1);
/// let pc = Pc::new(0x400100);
/// assert!(!p.predict(pc)); // cold: predicted non-contended -> eager
/// p.train(pc, true);
/// p.train(pc, true);
/// assert!(p.predict(pc)); // counter passed the threshold -> lazy
/// ```
#[derive(Clone, Debug)]
pub struct ContentionPredictor {
    kind: PredictorKind,
    table: Vec<SaturatingCounter>,
    threshold: u8,
    index_bits: u32,
    /// Global history of recent contention outcomes (History kind only).
    ghr: u64,
}

impl ContentionPredictor {
    /// Creates a predictor with `entries` counters of `bits` width; an atomic
    /// is predicted contended when its counter exceeds `threshold`.
    ///
    /// # Panics
    /// Panics if `entries` is not a power of two or is zero.
    pub fn new(kind: PredictorKind, entries: usize, bits: u32, threshold: u8) -> Self {
        assert!(
            entries.is_power_of_two(),
            "predictor entries must be a power of two, got {entries}"
        );
        ContentionPredictor {
            kind,
            table: vec![SaturatingCounter::new(bits); entries],
            threshold,
            index_bits: entries.trailing_zeros(),
            ghr: 0,
        }
    }

    /// XOR-mapped table index: low `index_bits` of the PC XORed with the next
    /// `index_bits` (paper Section IV-D). The History variant additionally
    /// XORs in the global contention-outcome history (gshare style).
    pub fn index(&self, pc: Pc) -> usize {
        let mask = (1u64 << self.index_bits) - 1;
        let lo = pc.raw() & mask;
        let hi = (pc.raw() >> self.index_bits) & mask;
        let h = if self.kind == PredictorKind::History {
            self.ghr & mask
        } else {
            0
        };
        ((lo ^ hi ^ h) & mask) as usize
    }

    /// Predicts whether the atomic at `pc` will face contention.
    pub fn predict(&self, pc: Pc) -> bool {
        let i = self.index(pc);
        self.table[i].value() > self.threshold
    }

    /// Trains the predictor with the detected outcome of a completed atomic.
    pub fn train(&mut self, pc: Pc, contended: bool) {
        let i = self.index(pc);
        let c = &mut self.table[i];
        if contended {
            match self.kind {
                PredictorKind::UpDown | PredictorKind::History => c.increment(1),
                PredictorKind::SaturateOnContention => c.saturate(),
                PredictorKind::TwoUpOneDown => c.increment(2),
            }
        } else {
            c.decrement();
        }
        if self.kind == PredictorKind::History {
            self.ghr = (self.ghr << 1) | contended as u64;
        }
    }

    /// Raw counter value for `pc`'s entry (tests/introspection).
    pub fn counter(&self, pc: Pc) -> u8 {
        self.table[self.index(pc)].value()
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// Storage cost of the table in bits.
    pub fn storage_bits(&self) -> usize {
        self.table.len() * (8 - self.table.first().map_or(0, |c| c.max().leading_zeros()) as usize)
    }
}

impl Codec for SaturatingCounter {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.value);
        w.put_u8(self.max);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(SaturatingCounter {
            value: r.get_u8()?,
            max: r.get_u8()?,
        })
    }
}

impl Persist for ContentionPredictor {
    // Kind, threshold, and index width are config-derived; the counters and
    // global history are training state.
    fn persist(&self, w: &mut Writer) {
        self.table.encode(w);
        w.put_u64(self.ghr);
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        let table = Vec::<SaturatingCounter>::decode(r)?;
        if table.len() != self.table.len() {
            return Err(PersistError::Corrupt("predictor table size mismatch"));
        }
        self.table = table;
        self.ghr = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_both_ends() {
        let mut c = SaturatingCounter::new(4);
        for _ in 0..30 {
            c.increment(1);
        }
        assert_eq!(c.value(), 15);
        for _ in 0..30 {
            c.decrement();
        }
        assert_eq!(c.value(), 0);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn zero_width_counter_rejected() {
        SaturatingCounter::new(0);
    }

    fn updown() -> ContentionPredictor {
        ContentionPredictor::new(PredictorKind::UpDown, 64, 4, 1)
    }

    #[test]
    fn cold_predictor_says_eager() {
        let p = updown();
        assert!(!p.predict(Pc::new(0x1234)));
    }

    #[test]
    fn updown_crosses_threshold_after_two_hits() {
        let mut p = updown();
        let pc = Pc::new(0x88);
        p.train(pc, true);
        assert!(!p.predict(pc), "counter 1 is not above threshold 1");
        p.train(pc, true);
        assert!(p.predict(pc));
        p.train(pc, false);
        assert!(!p.predict(pc), "decrement brings it back to 1");
    }

    #[test]
    fn saturate_jumps_to_max_and_decays_slowly() {
        let mut p = ContentionPredictor::new(PredictorKind::SaturateOnContention, 64, 4, 0);
        let pc = Pc::new(0x90);
        p.train(pc, true);
        assert_eq!(p.counter(pc), 15);
        assert!(p.predict(pc));
        // Needs 15 consecutive non-contended outcomes to flip (paper's
        // explanation of why RW+Dir_Sat reacts weakly).
        for _ in 0..14 {
            p.train(pc, false);
            assert!(p.predict(pc));
        }
        p.train(pc, false);
        assert!(!p.predict(pc));
    }

    #[test]
    fn two_up_one_down_climbs_faster() {
        let mut p = ContentionPredictor::new(PredictorKind::TwoUpOneDown, 64, 4, 1);
        let pc = Pc::new(0x70);
        p.train(pc, true);
        assert!(p.predict(pc), "one contention event is enough (+2 > 1)");
    }

    #[test]
    fn xor_index_uses_12_pc_bits() {
        let p = updown();
        // Same low 12 bits -> same entry.
        assert_eq!(p.index(Pc::new(0x1abc)), p.index(Pc::new(0xf1abc)));
        // Differing inside the low 12 bits -> (usually) different entries.
        assert_ne!(p.index(Pc::new(0b000001)), p.index(Pc::new(0b000010)));
    }

    #[test]
    fn aliasing_pcs_share_an_entry() {
        let mut p = updown();
        let a = Pc::new(0x040); // 0b0001_000000: lo=0, hi=1 -> index 1
        let b = Pc::new(0x001); // lo=1, hi=0 -> index 1
        assert_eq!(p.index(a), p.index(b));
        p.train(a, true);
        p.train(a, true);
        assert!(
            p.predict(b),
            "aliased entry is shared — the Fig. 9 pathology"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_entries_rejected() {
        ContentionPredictor::new(PredictorKind::UpDown, 48, 4, 1);
    }

    #[test]
    fn single_entry_predictor_works() {
        let mut p = ContentionPredictor::new(PredictorKind::UpDown, 1, 4, 1);
        for pc in [0x1u64, 0x999, 0xabcdef] {
            p.train(Pc::new(pc), true);
        }
        assert!(p.predict(Pc::new(0x42)), "all PCs share the single entry");
    }

    #[test]
    fn history_variant_mixes_outcomes_into_the_index() {
        let mut p = ContentionPredictor::new(PredictorKind::History, 64, 4, 1);
        let pc = Pc::new(0x40);
        let i0 = p.index(pc);
        p.train(pc, true); // shifts a 1 into the history
        let i1 = p.index(pc);
        assert_ne!(i0, i1, "history must move the entry");
        assert!(p.index(pc) < p.entries());
    }

    #[test]
    fn history_variant_still_learns_stable_behaviour() {
        let mut p = ContentionPredictor::new(PredictorKind::History, 64, 4, 1);
        let pc = Pc::new(0x80);
        // All-contended history is stable (ghr saturates to all-ones mod
        // mask), so the same entry trains repeatedly.
        for _ in 0..20 {
            p.train(pc, true);
        }
        assert!(p.predict(pc));
    }

    #[test]
    fn storage_accounting() {
        let p = updown();
        assert_eq!(p.entries(), 64);
        assert_eq!(p.storage_bits(), 256);
    }
}
