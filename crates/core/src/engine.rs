//! The Rush-or-Wait engine: prediction at allocation, training at unlock.
//!
//! One [`RowEngine`] instance lives in each core. The pipeline consults it at
//! the allocation stage ([`RowEngine::decide`]) and reports the detector
//! outcome when the atomic releases its lock ([`RowEngine::complete`]), which
//! both trains the predictor and maintains the Fig. 12 accuracy statistics.

use row_common::config::{DetectorKind, RowConfig};
use row_common::ids::Pc;
use row_common::persist::{Codec, Persist, PersistError, Reader, Writer};
use row_common::stats::AccuracyCounter;

use crate::predictor::ContentionPredictor;

/// How an atomic should be executed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// Issue as soon as operands are ready.
    Eager,
    /// Wait to be the oldest memory instruction with a drained SB.
    Lazy,
}

/// Per-core Rush-or-Wait machinery.
///
/// # Example
/// ```
/// use row_common::config::RowConfig;
/// use row_common::ids::Pc;
/// use row_core::engine::{ExecMode, RowEngine};
///
/// let mut row = RowEngine::new(RowConfig::best());
/// let pc = Pc::new(0x400);
/// assert_eq!(row.decide(pc), ExecMode::Eager); // cold start
/// row.complete(pc, false, true);
/// row.complete(pc, false, true);
/// assert_eq!(row.decide(pc), ExecMode::Lazy); // learned contention
/// ```
#[derive(Clone, Debug)]
pub struct RowEngine {
    cfg: RowConfig,
    predictor: ContentionPredictor,
    accuracy: AccuracyCounter,
}

impl RowEngine {
    /// Builds the engine for a configuration.
    pub fn new(cfg: RowConfig) -> Self {
        RowEngine {
            cfg,
            predictor: ContentionPredictor::new(
                cfg.predictor,
                cfg.predictor_entries,
                cfg.counter_bits,
                cfg.decision_threshold,
            ),
            accuracy: AccuracyCounter::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &RowConfig {
        &self.cfg
    }

    /// The contention-detection mechanism in use.
    pub fn detector(&self) -> DetectorKind {
        self.cfg.detector
    }

    /// Whether a forwarding match in the SB turns a lazy atomic eager
    /// (Section IV-E).
    pub fn locality_override(&self) -> bool {
        self.cfg.locality_override
    }

    /// Allocation-stage decision for the atomic at `pc`.
    pub fn decide(&self, pc: Pc) -> ExecMode {
        if self.predictor.predict(pc) {
            ExecMode::Lazy
        } else {
            ExecMode::Eager
        }
    }

    /// Whether `pc` is currently predicted contended (without deciding).
    pub fn predicts_contended(&self, pc: Pc) -> bool {
        self.predictor.predict(pc)
    }

    /// Reports a completed atomic: trains the predictor with the detector
    /// outcome and records prediction accuracy.
    pub fn complete(&mut self, pc: Pc, predicted_contended: bool, detected_contended: bool) {
        self.accuracy
            .record(predicted_contended, detected_contended);
        self.predictor.train(pc, detected_contended);
    }

    /// Fig. 12 accuracy counters.
    pub fn accuracy(&self) -> &AccuracyCounter {
        &self.accuracy
    }

    /// Total storage this engine would occupy in hardware, in bits, given the
    /// AQ depth (predictor table + per-AQ-entry detector fields).
    pub fn storage_bits(&self, aq_entries: usize) -> usize {
        self.cfg.storage_bits(aq_entries)
    }
}

impl Codec for ExecMode {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            ExecMode::Eager => 0,
            ExecMode::Lazy => 1,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.get_u8()? {
            0 => ExecMode::Eager,
            1 => ExecMode::Lazy,
            tag => {
                return Err(PersistError::BadTag {
                    what: "ExecMode",
                    tag,
                })
            }
        })
    }
}

impl Persist for RowEngine {
    fn persist(&self, w: &mut Writer) {
        self.predictor.persist(w);
        self.accuracy.encode(w);
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        self.predictor.restore(r)?;
        self.accuracy = AccuracyCounter::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use row_common::config::PredictorKind;

    #[test]
    fn cold_engine_runs_everything_eager() {
        let row = RowEngine::new(RowConfig::best());
        for pc in [0u64, 0x40, 0x1234, 0xffff] {
            assert_eq!(row.decide(Pc::new(pc)), ExecMode::Eager);
        }
    }

    #[test]
    fn contention_flips_to_lazy_and_back() {
        let mut row = RowEngine::new(RowConfig::best());
        let pc = Pc::new(0x500);
        row.complete(pc, false, true);
        row.complete(pc, false, true);
        assert_eq!(row.decide(pc), ExecMode::Lazy);
        row.complete(pc, true, false);
        assert_eq!(row.decide(pc), ExecMode::Eager);
    }

    #[test]
    fn saturating_engine_flips_after_one_event() {
        let cfg = RowConfig::new(
            DetectorKind::rw_dir_default(),
            PredictorKind::SaturateOnContention,
        );
        let mut row = RowEngine::new(cfg);
        let pc = Pc::new(0x600);
        row.complete(pc, false, true);
        assert_eq!(row.decide(pc), ExecMode::Lazy);
    }

    #[test]
    fn accuracy_tracks_quadrants() {
        let mut row = RowEngine::new(RowConfig::best());
        let pc = Pc::new(0x700);
        row.complete(pc, false, false); // correct
        row.complete(pc, false, true); // miss
        row.complete(pc, true, true); // correct
        assert_eq!(row.accuracy().total(), 3);
        assert!((row.accuracy().accuracy() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn storage_matches_paper_budget() {
        let row = RowEngine::new(RowConfig::best());
        assert_eq!(row.storage_bits(16), 512); // 64 bytes
    }

    #[test]
    fn config_accessors() {
        let cfg = RowConfig::best();
        let row = RowEngine::new(cfg);
        assert!(row.locality_override());
        assert_eq!(row.detector(), DetectorKind::rw_dir_default());
        assert_eq!(row.config(), &cfg);
    }
}
