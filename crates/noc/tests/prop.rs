//! Randomized property tests for the mesh interconnect.
//!
//! Driven by the in-tree deterministic [`SplitMix64`] instead of `proptest`
//! so the suite builds offline; the assertions are unchanged.

use row_common::config::NocConfig;
use row_common::rng::SplitMix64;
use row_common::Cycle;
use row_noc::{Mesh, MsgClass, NodeId, Topology};

/// Every route consists of adjacent hops and ends at the destination.
#[test]
fn routes_are_valid_paths() {
    let mut g = SplitMix64::new(0x40c_0001);
    let mut checked = 0;
    while checked < 256 {
        let cols = 1 + g.below(8) as usize;
        let nodes = 1 + g.below(32) as usize;
        let s = g.below(33) as u16;
        let d = g.below(33) as u16;
        if (s as usize) >= nodes || (d as usize) >= nodes {
            continue;
        }
        checked += 1;
        let t = Topology::new(cols.min(nodes), nodes);
        let (src, dst) = (NodeId::new(s), NodeId::new(d));
        let route = t.route(src, dst);
        assert_eq!(route.len(), t.hops(src, dst));
        let mut prev = src;
        for &next in &route {
            assert_eq!(t.hops(prev, next), 1, "non-adjacent hop {prev} -> {next}");
            // link_index must accept every hop on a real route.
            let _ = t.link_index(prev, next);
            prev = next;
        }
        if s != d {
            assert_eq!(prev, dst);
        }
    }
}

/// Delivery is never earlier than the zero-load latency, and zero-load
/// latency is symmetric in distance.
#[test]
fn delivery_respects_zero_load_bound() {
    let mut g = SplitMix64::new(0x40c_0002);
    for _ in 0..256 {
        let s = g.below(32) as u16;
        let d = g.below(32) as u16;
        let at = g.below(10_000);
        let mut m = Mesh::new(NocConfig::mesh_8x4(), 32);
        let (src, dst) = (NodeId::new(s), NodeId::new(d));
        let z = m.zero_load_latency(src, dst, MsgClass::Data);
        let t = m.send(src, dst, MsgClass::Data, Cycle::new(at));
        assert!(t.raw() >= at + z);
        assert_eq!(z, m.zero_load_latency(dst, src, MsgClass::Data));
    }
}

/// Messages on the same link never violate causality: a later injection
/// on the identical path is never delivered before an earlier one.
#[test]
fn same_path_messages_stay_ordered() {
    let mut g = SplitMix64::new(0x40c_0003);
    for _ in 0..128 {
        let s = g.below(32) as u16;
        let d = g.below(32) as u16;
        let n = 2 + g.below(8) as usize;
        let mut m = Mesh::new(NocConfig::mesh_8x4(), 32);
        let (src, dst) = (NodeId::new(s), NodeId::new(d));
        let mut prev = Cycle::ZERO;
        for k in 0..n {
            let t = m.send(src, dst, MsgClass::Data, Cycle::new(k as u64));
            assert!(t >= prev, "reordered delivery on one path");
            prev = t;
        }
    }
}
