//! Property tests for the mesh interconnect.

use proptest::prelude::*;
use row_common::config::NocConfig;
use row_common::Cycle;
use row_noc::{Mesh, MsgClass, NodeId, Topology};

proptest! {
    /// Every route consists of adjacent hops and ends at the destination.
    #[test]
    fn routes_are_valid_paths(cols in 1usize..9, nodes in 1usize..33, s in 0u16..33, d in 0u16..33) {
        prop_assume!((s as usize) < nodes && (d as usize) < nodes);
        let t = Topology::new(cols.min(nodes), nodes);
        let (src, dst) = (NodeId::new(s), NodeId::new(d));
        let route = t.route(src, dst);
        prop_assert_eq!(route.len(), t.hops(src, dst));
        let mut prev = src;
        for &next in &route {
            prop_assert_eq!(t.hops(prev, next), 1, "non-adjacent hop {} -> {}", prev, next);
            // link_index must accept every hop on a real route.
            let _ = t.link_index(prev, next);
            prev = next;
        }
        if s != d {
            prop_assert_eq!(prev, dst);
        }
    }

    /// Delivery is never earlier than the zero-load latency, and zero-load
    /// latency is symmetric in distance.
    #[test]
    fn delivery_respects_zero_load_bound(s in 0u16..32, d in 0u16..32, at in 0u64..10_000) {
        let mut m = Mesh::new(NocConfig::mesh_8x4(), 32);
        let (src, dst) = (NodeId::new(s), NodeId::new(d));
        let z = m.zero_load_latency(src, dst, MsgClass::Data);
        let t = m.send(src, dst, MsgClass::Data, Cycle::new(at));
        prop_assert!(t.raw() >= at + z);
        prop_assert_eq!(z, m.zero_load_latency(dst, src, MsgClass::Data));
    }

    /// Messages on the same link never violate causality: a later injection
    /// on the identical path is never delivered before an earlier one.
    #[test]
    fn same_path_messages_stay_ordered(s in 0u16..32, d in 0u16..32, n in 2usize..10) {
        let mut m = Mesh::new(NocConfig::mesh_8x4(), 32);
        let (src, dst) = (NodeId::new(s), NodeId::new(d));
        let mut prev = Cycle::ZERO;
        for k in 0..n {
            let t = m.send(src, dst, MsgClass::Data, Cycle::new(k as u64));
            prop_assert!(t >= prev, "reordered delivery on one path");
            prev = t;
        }
    }
}
