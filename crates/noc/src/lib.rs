//! On-chip interconnect model — the GARNET substitute.
//!
//! The paper models its interconnect with GARNET. For the studied effects only
//! the aggregate latency and congestion of coherence messages matter, so this
//! crate provides a deterministic 2D-mesh model with:
//!
//! * dimension-ordered (X-Y) routing,
//! * per-router pipeline latency and per-hop link latency,
//! * link serialization: a link is busy for one cycle per flit, so bursts of
//!   data messages back-pressure each other (the congestion component).
//!
//! Delivery times are computed eagerly at send time ([`Mesh::send`]); the
//! caller (the memory system) schedules the message on its event wheel.
//!
//! # Example
//! ```
//! use row_common::{Cycle, config::NocConfig};
//! use row_noc::{Mesh, MsgClass, NodeId};
//!
//! let mut mesh = Mesh::new(NocConfig::mesh_8x4(), 32);
//! let at = mesh.send(NodeId::new(0), NodeId::new(9), MsgClass::Control, Cycle::ZERO);
//! assert!(at > Cycle::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mesh;
pub mod topology;

pub use mesh::{Mesh, MsgClass, NocStats};
pub use topology::{NodeId, Topology};
