//! Mesh topology and dimension-ordered routing.

use std::fmt;

/// Identifier of a network node (one tile per core; the core's L1/L2 and the
/// co-located L3 bank + directory slice share the tile's router).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node id from a raw tile index.
    pub const fn new(i: u16) -> Self {
        NodeId(i)
    }

    /// The raw tile index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// A rectangular mesh: `cols` columns, enough rows for `nodes` tiles.
///
/// Node `i` sits at `(x, y) = (i % cols, i / cols)`. Routing is X-then-Y
/// (dimension-ordered), which is deadlock-free and deterministic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Topology {
    cols: usize,
    nodes: usize,
}

impl Topology {
    /// Creates a topology with `cols` columns covering `nodes` tiles.
    ///
    /// # Panics
    /// Panics if `cols == 0` or `nodes == 0`.
    pub fn new(cols: usize, nodes: usize) -> Self {
        assert!(cols > 0, "mesh needs at least one column");
        assert!(nodes > 0, "mesh needs at least one node");
        Topology { cols, nodes }
    }

    /// Number of tiles.
    pub const fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of columns.
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows (last row may be partial).
    pub const fn rows(&self) -> usize {
        self.nodes.div_ceil(self.cols)
    }

    /// (x, y) coordinates of a node.
    pub const fn coords(&self, n: NodeId) -> (usize, usize) {
        (n.index() % self.cols, n.index() / self.cols)
    }

    /// Manhattan hop distance between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// The X-Y route from `src` to `dst` as the sequence of nodes traversed,
    /// excluding `src`, including `dst`. Empty when `src == dst`.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let (mut x, mut y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut path = Vec::with_capacity(self.hops(src, dst));
        while x != dx {
            x = if dx > x { x + 1 } else { x - 1 };
            path.push(NodeId::new((y * self.cols + x) as u16));
        }
        while y != dy {
            y = if dy > y { y + 1 } else { y - 1 };
            path.push(NodeId::new((y * self.cols + x) as u16));
        }
        path
    }

    /// Directed link index for the hop `from -> to`, or `None` when the two
    /// nodes are not mesh neighbours (a corrupt route). Links are identified
    /// by the source node and one of four directions.
    pub fn try_link_index(&self, from: NodeId, to: NodeId) -> Option<usize> {
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        let dir = match (tx as isize - fx as isize, ty as isize - fy as isize) {
            (1, 0) => 0,  // east
            (-1, 0) => 1, // west
            (0, 1) => 2,  // south
            (0, -1) => 3, // north
            _ => return None,
        };
        Some(from.index() * 4 + dir)
    }

    /// Directed link index for the hop `from -> to`, used to key per-link
    /// occupancy state.
    ///
    /// # Panics
    /// Panics if `from` and `to` are not mesh neighbours; use
    /// [`Topology::try_link_index`] where a corrupt route must degrade
    /// gracefully instead.
    pub fn link_index(&self, from: NodeId, to: NodeId) -> usize {
        self.try_link_index(from, to).unwrap_or_else(|| {
            let (fx, fy) = self.coords(from);
            let (tx, ty) = self.coords(to);
            let d = (tx as isize - fx as isize, ty as isize - fy as isize);
            panic!("not neighbours: {from} -> {to} (delta {d:?})")
        })
    }

    /// Total number of directed-link slots (4 per node).
    pub const fn link_count(&self) -> usize {
        // Allocate for full rows so partial last rows still index safely.
        self.cols * self.rows() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_round_trip() {
        let t = Topology::new(8, 32);
        assert_eq!(t.rows(), 4);
        assert_eq!(t.coords(NodeId::new(0)), (0, 0));
        assert_eq!(t.coords(NodeId::new(9)), (1, 1));
        assert_eq!(t.coords(NodeId::new(31)), (7, 3));
    }

    #[test]
    fn hops_is_manhattan() {
        let t = Topology::new(8, 32);
        assert_eq!(t.hops(NodeId::new(0), NodeId::new(0)), 0);
        assert_eq!(t.hops(NodeId::new(0), NodeId::new(7)), 7);
        assert_eq!(t.hops(NodeId::new(0), NodeId::new(31)), 10);
        assert_eq!(t.hops(NodeId::new(31), NodeId::new(0)), 10);
    }

    #[test]
    fn route_length_matches_hops_and_ends_at_dst() {
        let t = Topology::new(8, 32);
        for s in 0..32u16 {
            for d in 0..32u16 {
                let (src, dst) = (NodeId::new(s), NodeId::new(d));
                let r = t.route(src, dst);
                assert_eq!(r.len(), t.hops(src, dst));
                if s != d {
                    assert_eq!(*r.last().unwrap(), dst);
                }
            }
        }
    }

    #[test]
    fn route_goes_x_first() {
        let t = Topology::new(8, 32);
        let r = t.route(NodeId::new(0), NodeId::new(9));
        assert_eq!(r, vec![NodeId::new(1), NodeId::new(9)]);
    }

    #[test]
    fn link_indices_are_unique_per_direction() {
        let t = Topology::new(4, 16);
        let e = t.link_index(NodeId::new(5), NodeId::new(6));
        let w = t.link_index(NodeId::new(5), NodeId::new(4));
        let s = t.link_index(NodeId::new(5), NodeId::new(9));
        let n = t.link_index(NodeId::new(5), NodeId::new(1));
        let set: std::collections::HashSet<_> = [e, w, s, n].into_iter().collect();
        assert_eq!(set.len(), 4);
        assert!(e < t.link_count() && w < t.link_count());
        assert!(s < t.link_count() && n < t.link_count());
    }

    #[test]
    #[should_panic(expected = "not neighbours")]
    fn link_index_rejects_non_neighbours() {
        Topology::new(4, 16).link_index(NodeId::new(0), NodeId::new(2));
    }

    #[test]
    fn try_link_index_reports_non_neighbours() {
        let t = Topology::new(4, 16);
        assert!(t.try_link_index(NodeId::new(0), NodeId::new(2)).is_none());
        assert!(t.try_link_index(NodeId::new(3), NodeId::new(3)).is_none());
        assert_eq!(
            t.try_link_index(NodeId::new(5), NodeId::new(6)),
            Some(t.link_index(NodeId::new(5), NodeId::new(6)))
        );
    }

    #[test]
    fn single_node_mesh_works() {
        let t = Topology::new(1, 1);
        assert_eq!(t.route(NodeId::new(0), NodeId::new(0)), vec![]);
    }
}
