//! The timed mesh: routing plus link-occupancy-based congestion.

use row_common::config::NocConfig;
use row_common::persist::{Codec, Persist, PersistError, Reader, Writer};
use row_common::stats::RunningMean;
use row_common::Cycle;

use crate::topology::{NodeId, Topology};

/// Message size class. Control messages (requests, invalidations, acks) are
/// single-flit; data messages carry a 64-byte line and occupy
/// [`NocConfig::data_flits`] flits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MsgClass {
    /// Single-flit request/ack/invalidation.
    Control,
    /// Full-cacheline data transfer.
    Data,
}

/// Aggregate interconnect statistics.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct NocStats {
    /// Messages injected.
    pub messages: u64,
    /// Total flit-hops consumed.
    pub flit_hops: u64,
    /// Mean end-to-end latency in cycles.
    pub latency: RunningMean,
}

/// A deterministic 2D mesh with X-Y routing and link serialization.
///
/// [`Mesh::send`] computes when a message injected `now` arrives at `dst`,
/// mutating per-link `busy_until` state so concurrent traffic delays later
/// messages on shared links.
#[derive(Clone, Debug)]
pub struct Mesh {
    topo: Topology,
    cfg: NocConfig,
    link_free: Vec<Cycle>,
    stats: NocStats,
}

impl Mesh {
    /// Creates a mesh for `nodes` tiles with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration has zero columns or `nodes == 0`.
    pub fn new(cfg: NocConfig, nodes: usize) -> Self {
        let topo = Topology::new(cfg.mesh_cols.min(nodes.max(1)), nodes);
        let link_free = vec![Cycle::ZERO; topo.link_count()];
        Mesh {
            topo,
            cfg,
            link_free,
            stats: NocStats::default(),
        }
    }

    /// The mesh topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Injects a message at `now` and returns its delivery cycle at `dst`.
    ///
    /// Latency model per hop: the head flit waits for the link to be free,
    /// then occupies it for `flits` cycles (serialization), paying the link
    /// latency; each traversed router adds its pipeline latency. A
    /// self-message (`src == dst`) pays one router traversal only.
    pub fn send(&mut self, src: NodeId, dst: NodeId, class: MsgClass, now: Cycle) -> Cycle {
        let flits = match class {
            MsgClass::Control => 1,
            MsgClass::Data => self.cfg.data_flits.max(1),
        };
        let mut t = now + self.cfg.router_latency;
        let mut prev = src;
        let route = self.topo.route(src, dst);
        let hops = route.len() as u64;
        for next in route {
            // An X-Y route only ever yields neighbour hops; degrade to a
            // contention-free hop rather than panicking if that ever breaks.
            if let Some(link) = self.topo.try_link_index(prev, next) {
                let start = t.max(self.link_free[link]);
                self.link_free[link] = start + flits;
                t = start + self.cfg.link_latency + self.cfg.router_latency;
            } else {
                debug_assert!(false, "route produced non-neighbour hop {prev} -> {next}");
                t += self.cfg.link_latency + self.cfg.router_latency;
            }
            prev = next;
        }
        // The tail flits of a data message arrive behind the head.
        if hops > 0 {
            t += flits - 1;
        }
        self.stats.messages += 1;
        self.stats.flit_hops += hops * flits;
        self.stats.latency.add(t - now);
        t
    }

    /// Zero-load latency between two nodes for a message class (no occupancy
    /// side effects). Useful for tests and analytical checks.
    pub fn zero_load_latency(&self, src: NodeId, dst: NodeId, class: MsgClass) -> u64 {
        let flits = match class {
            MsgClass::Control => 1,
            MsgClass::Data => self.cfg.data_flits.max(1),
        };
        let hops = self.topo.hops(src, dst) as u64;
        let base =
            self.cfg.router_latency + hops * (self.cfg.link_latency + self.cfg.router_latency);
        if hops > 0 {
            base + flits - 1
        } else {
            base
        }
    }

    /// Interconnect statistics so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// The latest `busy_until` horizon across all links: the cycle after
    /// which the whole mesh is guaranteed idle given no further traffic.
    /// Diagnostic input for stall reports.
    pub fn busy_horizon(&self) -> Cycle {
        self.link_free.iter().copied().max().unwrap_or(Cycle::ZERO)
    }
}

impl Codec for NocStats {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.messages);
        w.put_u64(self.flit_hops);
        self.latency.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(NocStats {
            messages: r.get_u64()?,
            flit_hops: r.get_u64()?,
            latency: RunningMean::decode(r)?,
        })
    }
}

impl Persist for Mesh {
    // Topology and config are rebuilt from `SystemConfig`; only link
    // occupancy and statistics are mutable state.
    fn persist(&self, w: &mut Writer) {
        self.link_free.encode(w);
        self.stats.encode(w);
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        let link_free = Vec::<Cycle>::decode(r)?;
        if link_free.len() != self.link_free.len() {
            return Err(PersistError::Corrupt("mesh link count mismatch"));
        }
        self.link_free = link_free;
        self.stats = NocStats::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(NocConfig::mesh_8x4(), 32)
    }

    #[test]
    fn self_message_pays_router_only() {
        let mut m = mesh();
        let t = m.send(
            NodeId::new(3),
            NodeId::new(3),
            MsgClass::Control,
            Cycle::new(100),
        );
        assert_eq!(t, Cycle::new(100 + 2));
    }

    #[test]
    fn zero_load_matches_first_send() {
        let mut m = mesh();
        let z = m.zero_load_latency(NodeId::new(0), NodeId::new(31), MsgClass::Data);
        let t = m.send(NodeId::new(0), NodeId::new(31), MsgClass::Data, Cycle::ZERO);
        assert_eq!(t.raw(), z);
    }

    #[test]
    fn farther_nodes_take_longer() {
        let m = mesh();
        let near = m.zero_load_latency(NodeId::new(0), NodeId::new(1), MsgClass::Control);
        let far = m.zero_load_latency(NodeId::new(0), NodeId::new(31), MsgClass::Control);
        assert!(far > near);
    }

    #[test]
    fn data_messages_are_slower_than_control() {
        let m = mesh();
        let c = m.zero_load_latency(NodeId::new(0), NodeId::new(5), MsgClass::Control);
        let d = m.zero_load_latency(NodeId::new(0), NodeId::new(5), MsgClass::Data);
        assert!(d > c);
    }

    #[test]
    fn link_contention_delays_burst() {
        let mut m = mesh();
        // Two data messages injected the same cycle over the same first link.
        let t1 = m.send(NodeId::new(0), NodeId::new(7), MsgClass::Data, Cycle::ZERO);
        let t2 = m.send(NodeId::new(0), NodeId::new(7), MsgClass::Data, Cycle::ZERO);
        assert!(t2 > t1, "second message must queue behind the first");
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let mut m = mesh();
        let t1 = m.send(NodeId::new(0), NodeId::new(1), MsgClass::Data, Cycle::ZERO);
        let t2 = m.send(
            NodeId::new(16),
            NodeId::new(17),
            MsgClass::Data,
            Cycle::ZERO,
        );
        assert_eq!(t1.raw(), t2.raw(), "independent rows share no links");
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut m = mesh();
            let mut out = Vec::new();
            for i in 0..64u16 {
                out.push(m.send(
                    NodeId::new(i % 32),
                    NodeId::new((i * 7) % 32),
                    if i % 3 == 0 {
                        MsgClass::Data
                    } else {
                        MsgClass::Control
                    },
                    Cycle::new(u64::from(i) / 4),
                ));
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stats_accumulate() {
        let mut m = mesh();
        m.send(
            NodeId::new(0),
            NodeId::new(2),
            MsgClass::Control,
            Cycle::ZERO,
        );
        m.send(NodeId::new(0), NodeId::new(2), MsgClass::Data, Cycle::ZERO);
        assert_eq!(m.stats().messages, 2);
        assert!(m.stats().flit_hops >= 2 + 2 * 5);
        assert!(m.stats().latency.mean() > 0.0);
    }

    #[test]
    fn small_meshes_work() {
        for n in [1usize, 2, 3, 5] {
            let mut m = Mesh::new(NocConfig::mesh_8x4(), n);
            for s in 0..n as u16 {
                for d in 0..n as u16 {
                    let _ = m.send(NodeId::new(s), NodeId::new(d), MsgClass::Data, Cycle::ZERO);
                }
            }
        }
    }
}
