//! Developer probe: eager/lazy/RoW ratios for the whole suite at one scale.
use row_sim::*;
use row_workloads::Benchmark;

fn main() {
    let cores: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let instr: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6_000);
    let exp = ExperimentConfig {
        cores,
        instructions: instr,
        seed: 42,
        cycle_limit: 400_000_000,
        paper_caches: cores > 8,
        check: Default::default(),
    };
    println!(
        "{:14} {:>6} {:>7} {:>7} {:>7} {:>5}",
        "bench", "lazy", "rowUD", "rowSat", "rowUD+F", "cont%"
    );
    for b in Benchmark::all() {
        let e = run_eager(*b, &exp).unwrap();
        let l = run_lazy(*b, &exp).unwrap();
        let ud = run_row(*b, RowVariant::RwDirUd, &exp).unwrap();
        let sat = run_row(*b, RowVariant::RwDirSat, &exp).unwrap();
        let udf = run_row_fwd(*b, RowVariant::RwDirUd, &exp).unwrap();
        println!(
            "{:14} {:6.3} {:7.3} {:7.3} {:7.3} {:5.0}",
            b.name(),
            l.cycles as f64 / e.cycles as f64,
            ud.cycles as f64 / e.cycles as f64,
            sat.cycles as f64 / e.cycles as f64,
            udf.cycles as f64 / e.cycles as f64,
            100.0 * e.total.contended_fraction()
        );
    }
}
