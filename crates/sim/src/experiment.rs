//! Experiment runner: one function per knob the paper sweeps.
//!
//! Every figure in the evaluation reduces to "run benchmark B under policy P
//! (± forwarding) and read metric M". This module provides those runs with a
//! [`ExperimentConfig`] that scales between `quick` (CI-sized) and `paper`
//! (32 cores, Table I caches) fidelity.

use row_common::config::{
    AtomicPlacement, AtomicPolicy, CheckConfig, DetectorKind, FenceModel, PredictorKind, RowConfig,
};
use row_common::SystemConfig;
use row_cpu::instr::InstrStream;
use row_workloads::{
    Benchmark, MicroRmw, MicroVariant, MicrobenchConfig, MicrobenchStream, ProfileStream,
};

use crate::machine::{Machine, RunResult, SimError};

/// Scale of an experiment run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExperimentConfig {
    /// Number of cores (= threads).
    pub cores: usize,
    /// Instructions per thread.
    pub instructions: u64,
    /// Workload seed (same seed ⇒ identical traces across policies).
    pub seed: u64,
    /// Simulation cycle budget.
    pub cycle_limit: u64,
    /// Use the full Table I cache hierarchy (vs the scaled-down one).
    pub paper_caches: bool,
    /// Robustness-layer configuration (invariant sweep, watchdog, chaos).
    pub check: CheckConfig,
}

impl ExperimentConfig {
    /// CI-sized: 8 cores, small caches, short traces. Seconds per run.
    pub fn quick() -> Self {
        ExperimentConfig {
            cores: 8,
            instructions: 6_000,
            seed: 42,
            cycle_limit: 40_000_000,
            paper_caches: false,
            check: CheckConfig {
                invariant_every: Some(4096),
                blocked_queue_bound: 0,
                watchdog_window: Some(5_000_000),
                rewind_every: None,
                chaos: None,
                perturb: None,
                oracle: false,
                oracle_online: false,
            },
        }
    }

    /// Paper-sized: 32 cores, Table I memory hierarchy.
    pub fn paper() -> Self {
        ExperimentConfig {
            cores: 32,
            instructions: 20_000,
            seed: 42,
            cycle_limit: 200_000_000,
            paper_caches: true,
            check: CheckConfig::default(),
        }
    }

    /// The system configuration this scale implies. Paper caches with more
    /// than 32 cores select the scale-out tier ([`SystemConfig::huge`]),
    /// which widens the mesh to keep it roughly square.
    pub fn system(&self) -> SystemConfig {
        let mut cfg = if self.paper_caches && self.cores > 32 {
            SystemConfig::huge(self.cores)
        } else if self.paper_caches {
            SystemConfig::alder_lake_32c()
        } else {
            SystemConfig::small(self.cores)
        };
        cfg.cores = self.cores;
        cfg.check = self.check;
        cfg
    }
}

/// The six RoW variants of Fig. 9 (detector × predictor).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum RowVariant {
    EwUd,
    EwSat,
    RwUd,
    RwSat,
    RwDirUd,
    RwDirSat,
}

impl RowVariant {
    /// All six, in the paper's legend order.
    pub const ALL: [RowVariant; 6] = [
        RowVariant::EwUd,
        RowVariant::EwSat,
        RowVariant::RwUd,
        RowVariant::RwSat,
        RowVariant::RwDirUd,
        RowVariant::RwDirSat,
    ];

    /// Display name as in Fig. 9.
    pub fn name(&self) -> &'static str {
        match self {
            RowVariant::EwUd => "EW_U/D",
            RowVariant::EwSat => "EW_Sat",
            RowVariant::RwUd => "RW_U/D",
            RowVariant::RwSat => "RW_Sat",
            RowVariant::RwDirUd => "RW+Dir_U/D",
            RowVariant::RwDirSat => "RW+Dir_Sat",
        }
    }

    /// The RoW configuration (no locality override; Fig. 9 disables
    /// forwarding).
    pub fn config(&self) -> RowConfig {
        let (det, pred) = match self {
            RowVariant::EwUd => (DetectorKind::ExecutionWindow, PredictorKind::UpDown),
            RowVariant::EwSat => (
                DetectorKind::ExecutionWindow,
                PredictorKind::SaturateOnContention,
            ),
            RowVariant::RwUd => (DetectorKind::ReadyWindow, PredictorKind::UpDown),
            RowVariant::RwSat => (
                DetectorKind::ReadyWindow,
                PredictorKind::SaturateOnContention,
            ),
            RowVariant::RwDirUd => (DetectorKind::rw_dir_default(), PredictorKind::UpDown),
            RowVariant::RwDirSat => (
                DetectorKind::rw_dir_default(),
                PredictorKind::SaturateOnContention,
            ),
        };
        RowConfig::new(det, pred)
    }
}

/// One seeded [`ProfileStream`] per core for `bench` at this scale — the
/// instruction traces every benchmark runner (and the sweep engine) feeds
/// into [`Machine::new`].
pub fn bench_streams(bench: Benchmark, exp: &ExperimentConfig) -> Vec<Box<dyn InstrStream>> {
    let profile = bench.profile().with_instructions(exp.instructions);
    (0..exp.cores)
        .map(|t| {
            Box::new(ProfileStream::new(profile, t, exp.cores, exp.seed)) as Box<dyn InstrStream>
        })
        .collect()
}

/// Runs `bench` under `policy`, with or without store→atomic forwarding.
///
/// # Errors
/// Propagates any [`SimError`] (cycle-budget timeout, watchdog stall, or protocol violation).
pub fn run_benchmark(
    bench: Benchmark,
    policy: AtomicPolicy,
    forwarding: bool,
    exp: &ExperimentConfig,
) -> Result<RunResult, SimError> {
    let sys = exp
        .system()
        .with_policy(policy)
        .with_forward_to_atomics(forwarding);
    Machine::new(&sys, bench_streams(bench, exp)).run(exp.cycle_limit)
}

/// Like [`run_benchmark`], but crash-resilient: a checkpoint file is written
/// to `path` every `every` cycles, and when `resume` is set and `path`
/// already holds a checkpoint, the run continues from it instead of starting
/// over. The checkpoint's config hash guarantees a resume against different
/// settings is refused.
///
/// # Errors
/// Everything [`run_benchmark`] raises, plus [`SimError::Checkpoint`] for
/// unreadable, corrupt, or mismatched checkpoint files.
pub fn run_benchmark_checkpointed(
    bench: Benchmark,
    policy: AtomicPolicy,
    forwarding: bool,
    exp: &ExperimentConfig,
    every: u64,
    path: &std::path::Path,
    resume: bool,
) -> Result<RunResult, SimError> {
    let sys = exp
        .system()
        .with_policy(policy)
        .with_forward_to_atomics(forwarding);
    let mut m = Machine::new(&sys, bench_streams(bench, exp));
    if resume && path.exists() {
        let bytes = crate::checkpoint::read_checkpoint(path).map_err(SimError::Checkpoint)?;
        m.restore(&bytes)?;
    }
    m.run_checkpointed(exp.cycle_limit, every, path)
}

/// Runs one Fig. 2 microbenchmark cell against an explicit cycle budget and
/// returns the full [`RunResult`] (cycles per iteration = `cycles /
/// iterations`). The sweep engine uses this form so a timed-out cell can be
/// retried with a raised budget.
///
/// # Errors
/// Propagates any [`SimError`] (cycle-budget timeout, watchdog stall, or protocol violation).
pub fn run_microbench_result(
    rmw: MicroRmw,
    variant: MicroVariant,
    fence_model: FenceModel,
    iterations: u64,
    cycle_limit: u64,
) -> Result<RunResult, SimError> {
    let sys = SystemConfig::small(1).with_fence_model(fence_model);
    let cfg = MicrobenchConfig::paper_like(rmw, variant, iterations);
    let stream: Box<dyn InstrStream> = Box::new(MicrobenchStream::new(cfg));
    Machine::new(&sys, vec![stream]).run(cycle_limit)
}

/// Default cycle budget for a microbenchmark cell of `iterations`.
pub fn microbench_cycle_limit(iterations: u64) -> u64 {
    iterations.saturating_mul(50_000)
}

/// Runs one Fig. 2 microbenchmark cell and returns cycles per iteration.
///
/// # Errors
/// Propagates any [`SimError`] (cycle-budget timeout, watchdog stall, or protocol violation).
pub fn run_microbench(
    rmw: MicroRmw,
    variant: MicroVariant,
    fence_model: FenceModel,
    iterations: u64,
) -> Result<f64, SimError> {
    let r = run_microbench_result(
        rmw,
        variant,
        fence_model,
        iterations,
        microbench_cycle_limit(iterations),
    )?;
    Ok(r.cycles as f64 / iterations as f64)
}

/// Far atomics (Section VII's alternative placement): the RMW executes at
/// the home directory bank.
///
/// # Errors
/// Propagates any [`SimError`] (cycle-budget timeout, watchdog stall, or protocol violation).
pub fn run_far(bench: Benchmark, exp: &ExperimentConfig) -> Result<RunResult, SimError> {
    let sys = exp
        .system()
        .with_policy(AtomicPolicy::Eager)
        .with_placement(AtomicPlacement::Far);
    Machine::new(&sys, bench_streams(bench, exp)).run(exp.cycle_limit)
}

/// Convenience: eager baseline for normalization.
pub fn run_eager(bench: Benchmark, exp: &ExperimentConfig) -> Result<RunResult, SimError> {
    run_benchmark(bench, AtomicPolicy::Eager, false, exp)
}

/// Convenience: lazy execution.
pub fn run_lazy(bench: Benchmark, exp: &ExperimentConfig) -> Result<RunResult, SimError> {
    run_benchmark(bench, AtomicPolicy::Lazy, false, exp)
}

/// Convenience: a RoW variant (Fig. 9: no forwarding).
pub fn run_row(
    bench: Benchmark,
    variant: RowVariant,
    exp: &ExperimentConfig,
) -> Result<RunResult, SimError> {
    run_benchmark(bench, AtomicPolicy::Row(variant.config()), false, exp)
}

/// RoW with the locality override and forwarding enabled (Fig. 13).
pub fn run_row_fwd(
    bench: Benchmark,
    variant: RowVariant,
    exp: &ExperimentConfig,
) -> Result<RunResult, SimError> {
    let cfg = variant.config().with_locality_override(true);
    run_benchmark(bench, AtomicPolicy::Row(cfg), true, exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            cores: 4,
            instructions: 2_000,
            seed: 7,
            cycle_limit: 20_000_000,
            paper_caches: false,
            check: CheckConfig::default(),
        }
    }

    #[test]
    fn eager_and_lazy_complete_on_pc() {
        let exp = tiny();
        let e = run_eager(Benchmark::Pc, &exp).expect("eager finishes");
        let l = run_lazy(Benchmark::Pc, &exp).expect("lazy finishes");
        assert!(e.total.atomics > 0);
        assert!(l.total.atomics > 0);
        assert_eq!(e.total.committed, l.total.committed, "same trace");
    }

    #[test]
    fn row_variant_names_and_configs() {
        for v in RowVariant::ALL {
            assert!(!v.name().is_empty());
            let cfg = v.config();
            assert!(!cfg.locality_override);
        }
        assert_eq!(
            RowVariant::RwDirUd.config().detector,
            DetectorKind::rw_dir_default()
        );
    }

    #[test]
    fn row_runs_and_tracks_accuracy() {
        let exp = tiny();
        let r = run_row(Benchmark::Sps, RowVariant::RwDirUd, &exp).expect("finishes");
        let acc = r.accuracy.expect("RoW records accuracy");
        assert!(acc.total() > 0);
    }

    #[test]
    fn microbench_lock_close_to_plain_when_unfenced() {
        let it = 300;
        let plain = run_microbench(
            MicroRmw::Faa,
            MicroVariant {
                atomic: false,
                mfence: false,
            },
            FenceModel::Unfenced,
            it,
        )
        .unwrap();
        let lock = run_microbench(
            MicroRmw::Faa,
            MicroVariant {
                atomic: true,
                mfence: false,
            },
            FenceModel::Unfenced,
            it,
        )
        .unwrap();
        let fenced = run_microbench(
            MicroRmw::Faa,
            MicroVariant {
                atomic: true,
                mfence: true,
            },
            FenceModel::Unfenced,
            it,
        )
        .unwrap();
        assert!(
            lock < plain * 1.6,
            "unfenced lock ({lock:.0}) should be near plain ({plain:.0})"
        );
        assert!(
            fenced > lock * 2.0,
            "explicit mfence ({fenced:.0}) should be much slower than lock ({lock:.0})"
        );
    }

    #[test]
    fn experiment_config_scales() {
        assert_eq!(ExperimentConfig::quick().system().cores, 8);
        assert_eq!(ExperimentConfig::paper().system().cores, 32);
        assert_eq!(
            ExperimentConfig::paper().system().mem.l1d.size_bytes,
            48 * 1024
        );
    }
}

#[cfg(test)]
mod far_tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            cores: 4,
            instructions: 1_500,
            seed: 7,
            cycle_limit: 50_000_000,
            paper_caches: false,
            check: CheckConfig::default(),
        }
    }

    #[test]
    fn far_runs_and_counts_every_atomic() {
        let exp = tiny();
        let near = run_eager(Benchmark::Sps, &exp).expect("near");
        let far = run_far(Benchmark::Sps, &exp).expect("far");
        assert_eq!(near.total.atomics, far.total.atomics, "same trace");
        assert_eq!(
            far.total.atomics_lazy, far.total.atomics,
            "far atomics always use the lazy discipline"
        );
    }

    #[test]
    fn per_core_stats_sum_to_total() {
        let exp = tiny();
        let r = run_eager(Benchmark::Tpcc, &exp).expect("runs");
        let committed: u64 = r.per_core.iter().map(|c| c.committed).sum();
        assert_eq!(committed, r.total.committed);
        let atomics: u64 = r.per_core.iter().map(|c| c.atomics).sum();
        assert_eq!(atomics, r.total.atomics);
        assert_eq!(r.per_core.len(), exp.cores);
    }

    #[test]
    fn same_seed_same_cycles_different_seed_differs() {
        let exp = tiny();
        let a = run_eager(Benchmark::Pc, &exp).expect("runs");
        let b = run_eager(Benchmark::Pc, &exp).expect("runs");
        assert_eq!(a.cycles, b.cycles);
        let mut exp2 = exp;
        exp2.seed = 8;
        let c = run_eager(Benchmark::Pc, &exp2).expect("runs");
        assert_ne!(a.cycles, c.cycles);
    }
}
