//! Coverage-guided protocol-schedule fuzzer (`norush fuzz`).
//!
//! The fuzzer explores coherence-protocol *interleavings* rather than inputs:
//! its genome is a message-delivery schedule — up to four targeted
//! [`DelayBurst`] windows plus the lossy-chaos knobs of a [`FaultConfig`] —
//! and its feedback signal is the protocol transition-coverage map
//! ([`row_common::coverage`]) recorded by the directory, private caches,
//! transport, and CPU atomic machinery. Schedules that light never-before-
//! seen `(state, event)` transitions join the corpus; mutation energy favors
//! corpus entries covering *rare* transitions (a power schedule), so the
//! search drifts toward the protocol's transient corners.
//!
//! Everything is deterministic by construction:
//!
//! * Each **generation** derives a fixed batch of candidate schedules from
//!   `(seed, generation, corpus)` *before* any of them runs, then executes
//!   them on the [`sweep`] worker pool and folds coverage back **in candidate
//!   order** — so `--jobs 1` and `--jobs N` produce byte-identical reports.
//! * [`FuzzState`] (corpus + global coverage + progress counters) is a
//!   [`Codec`] value saved atomically at every generation boundary; a killed
//!   fuzz resumed with `--resume` continues bit-exactly.
//! * A violation (online linearizability mismatch, invariant sweep failure,
//!   watchdog stall, cycle-budget livelock, rewind report) stops the
//!   campaign; the failing schedule
//!   is **minimized** — bursts greedily dropped, surviving windows
//!   binary-searched, then the chaos knobs shrunk via [`shrink_chaos`] — and
//!   a soak-style triage bundle (repro command, journal tail, pre-violation
//!   checkpoint) lands in the repro directory.
//!
//! The report (`norush-fuzz-v1`, schema in `results/README.md`) carries the
//! per-domain coverage summary plus the names of every never-exercised
//! transition — a dead-protocol-arm report — and deliberately contains no
//! wall-clock fields, so equal campaigns serialize equally.
//!
//! [`sweep`]: crate::sweep

use std::path::Path;

use row_common::config::{
    AtomicPolicy, DelayBurst, FaultConfig, PerturbConfig, RowConfig, MAX_BURST_EXTRA,
};
use row_common::coverage::{self, CoverageMap, SLOT_COUNT};
use row_common::persist::{fnv1a, Codec, PersistError, Reader, Writer};
use row_common::rng::SplitMix64;
use row_common::SystemConfig;
use row_cpu::instr::InstrStream;
use row_mem::ProtocolError;
use row_workloads::{LockServiceConfig, LockServiceStream, ServiceKernel};

use crate::machine::{Machine, SimError};
use crate::shrink::shrink_chaos;
use crate::sweep::parallel_map;

/// Schema tag of the machine-readable fuzz report.
pub const FUZZ_SCHEMA: &str = "norush-fuzz-v1";

/// Candidate schedules derived and executed per generation. Fixed (never a
/// function of `--jobs`) so worker count cannot influence the campaign.
pub const GEN_CANDIDATES: usize = 8;

/// Bound on a mutated lossy-fault rate. Far below the transport's give-up
/// region: the fuzzer perturbs ordering, it does not sever channels.
const MAX_FUZZ_PPM: u64 = 2_000;

/// Bound on mutated chaos jitter, for the same reason.
const MAX_FUZZ_LATENCY: u64 = 64;

/// One heritable message-delivery schedule: targeted delay bursts plus
/// chaos-rate knobs. The workload seed is *not* part of the genome — all
/// candidates replay the same instruction streams, so coverage differences
/// are attributable to scheduling alone.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScheduleGenome {
    /// Lossy/jitter chaos knobs (`seed` here is the chaos PRNG stream seed,
    /// which mutation may retune).
    pub fault: FaultConfig,
    /// Targeted delay-burst windows.
    pub perturb: PerturbConfig,
}

impl ScheduleGenome {
    /// The all-quiet schedule: no bursts, no chaos. The corpus seed.
    pub fn neutral() -> Self {
        ScheduleGenome {
            fault: FaultConfig {
                seed: 1,
                max_extra_latency: 0,
                drop_ppm: 0,
                dup_ppm: 0,
                corrupt_ppm: 0,
            },
            perturb: PerturbConfig::default(),
        }
    }

    /// True when the chaos half injects anything (jitter or lossy faults).
    pub fn chaos_active(&self) -> bool {
        self.fault.max_extra_latency > 0 || self.fault.lossy()
    }

    /// Hex encoding of the genome's [`Codec`] bytes — the compact,
    /// copy-pasteable form `--replay` accepts.
    pub fn to_hex(&self) -> String {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes().iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Parses [`ScheduleGenome::to_hex`] output.
    pub fn from_hex(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if !s.len().is_multiple_of(2) {
            return Err("odd-length hex genome".into());
        }
        let bytes: Vec<u8> = (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16))
            .collect::<Result<_, _>>()
            .map_err(|e| format!("bad hex genome: {e}"))?;
        let mut r = Reader::new(&bytes);
        let g = ScheduleGenome::decode(&mut r).map_err(|e| format!("bad genome: {e}"))?;
        if !r.is_empty() {
            return Err("trailing bytes in genome".into());
        }
        Ok(g)
    }

    /// One-line human summary for logs and triage bundles.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if self.chaos_active() {
            parts.push(format!(
                "chaos(seed {} latency {} drop {}ppm dup {}ppm corrupt {}ppm)",
                self.fault.seed,
                self.fault.max_extra_latency,
                self.fault.drop_ppm,
                self.fault.dup_ppm,
                self.fault.corrupt_ppm
            ));
        }
        for b in self.perturb.active() {
            if b.len > 0 && b.extra > 0 {
                parts.push(format!(
                    "burst(@{}+{} extra {} salt {:#x})",
                    b.start, b.len, b.extra, b.salt
                ));
            }
        }
        if parts.is_empty() {
            "neutral".to_string()
        } else {
            parts.join(" ")
        }
    }
}

impl Codec for ScheduleGenome {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.fault.seed);
        w.put_u64(self.fault.max_extra_latency);
        w.put_u32(self.fault.drop_ppm);
        w.put_u32(self.fault.dup_ppm);
        w.put_u32(self.fault.corrupt_ppm);
        w.put_u32(u32::from(self.perturb.n));
        for b in &self.perturb.bursts {
            w.put_u64(b.start);
            w.put_u64(b.len);
            w.put_u64(b.extra);
            w.put_u64(b.salt);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let fault = FaultConfig {
            seed: r.get_u64()?,
            max_extra_latency: r.get_u64()?,
            drop_ppm: r.get_u32()?,
            dup_ppm: r.get_u32()?,
            corrupt_ppm: r.get_u32()?,
        };
        let n = r.get_u32()?;
        if n as usize > row_common::config::MAX_PERTURB_BURSTS {
            return Err(PersistError::Corrupt("genome burst count"));
        }
        let mut perturb = PerturbConfig {
            n: n as u8,
            ..PerturbConfig::default()
        };
        for b in perturb.bursts.iter_mut() {
            *b = DelayBurst {
                start: r.get_u64()?,
                len: r.get_u64()?,
                extra: r.get_u64()?,
                salt: r.get_u64()?,
            };
        }
        Ok(ScheduleGenome { fault, perturb })
    }
}

/// Everything that parameterizes a fuzz campaign (and is hashed into the
/// state fingerprint, `jobs` excluded — worker count must not partition the
/// state space).
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Policy name (`eager`, `lazy`, `row`, `row-fwd`, `far`).
    pub policy: String,
    /// The lock-service kernel driving traffic.
    pub kernel: ServiceKernel,
    /// Simulated cores.
    pub cores: usize,
    /// Service operations per thread (workload length).
    pub ops_per_thread: u64,
    /// Workload seed, fixed for the whole campaign.
    pub seed: u64,
    /// Total schedule executions budgeted for the campaign.
    pub budget: u64,
    /// Worker threads for candidate execution.
    pub jobs: usize,
    /// Arm the planted early-unblock directory bug (regression target).
    pub planted_bug: bool,
    /// Per-run simulation cycle budget.
    pub cycle_limit: u64,
    /// Watchdog window: a run with no commit for this long is a stall.
    pub watchdog: u64,
}

impl FuzzOptions {
    /// CI-smoke defaults: 4 cores, short lock-service streams, modest budget.
    pub fn smoke(policy: impl Into<String>) -> Self {
        FuzzOptions {
            policy: policy.into(),
            kernel: ServiceKernel::Counter,
            cores: 4,
            ops_per_thread: 120,
            seed: 42,
            budget: 48,
            jobs: 1,
            planted_bug: false,
            cycle_limit: 2_000_000,
            watchdog: 500_000,
        }
    }

    /// FNV-1a fingerprint over every knob that shapes the campaign's state
    /// space. `jobs` is excluded: the same campaign may resume with a
    /// different worker count.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(
            format!(
                "fuzz|{}|{}|{}|{}|{}|{}|{}|{}|{}",
                self.policy,
                self.kernel.name(),
                self.cores,
                self.ops_per_thread,
                self.seed,
                self.budget,
                self.planted_bug,
                self.cycle_limit,
                self.watchdog,
            )
            .as_bytes(),
        )
    }

    fn system(&self, genome: &ScheduleGenome) -> Result<SystemConfig, String> {
        let sys = SystemConfig::small(self.cores);
        let mut sys = match self.policy.as_str() {
            "eager" => sys.with_policy(AtomicPolicy::Eager),
            "lazy" => sys.with_policy(AtomicPolicy::Lazy),
            "row" => sys.with_policy(AtomicPolicy::Row(
                RowConfig::best().with_locality_override(false),
            )),
            "row-fwd" => sys
                .with_policy(AtomicPolicy::Row(RowConfig::best()))
                .with_forward_to_atomics(true),
            "far" => sys.with_placement(row_common::config::AtomicPlacement::Far),
            other => return Err(format!("unknown policy `{other}`")),
        };
        sys.check.oracle_online = true;
        sys.check.invariant_every = Some(4_096);
        sys.check.watchdog_window = Some(self.watchdog);
        sys.check.chaos = genome.chaos_active().then_some(genome.fault);
        sys.check.perturb = (!genome.perturb.is_empty()).then_some(genome.perturb);
        Ok(sys)
    }

    fn streams(&self) -> Vec<Box<dyn InstrStream>> {
        let mut svc = LockServiceConfig::soak(self.kernel);
        svc.ops_per_thread = self.ops_per_thread;
        (0..self.cores)
            .map(|t| Box::new(LockServiceStream::new(svc, t, self.cores, self.seed)) as _)
            .collect()
    }

    /// A fresh machine executing `genome`'s schedule, online checker armed,
    /// planted bug injected when requested.
    pub fn machine(&self, genome: &ScheduleGenome) -> Result<Machine, String> {
        let sys = self.system(genome)?;
        let mut m = Machine::new(&sys, self.streams());
        if self.planted_bug {
            m.memory_mut().inject_early_unblock_for_test();
        }
        Ok(m)
    }
}

/// Classifies a run error. `None` means benign for fuzzing purposes:
/// transport give-up is the *expected* failure mode of over-aggressive lossy
/// chaos (bounded retry was defeated, no protocol state was corrupted).
///
/// A cycle-budget timeout IS a finding (`livelock`): the fuzz workload
/// completes in tens of thousands of cycles even under the worst schedule
/// the mutator can express, while [`FuzzOptions::cycle_limit`] defaults two
/// orders of magnitude above that — a run that exhausts it is spinning
/// without service-level progress. The commit-based watchdog cannot see
/// that class (a livelocked core *commits* its retry loop forever); it
/// still catches true no-commit deadlocks much earlier.
pub fn violation_kind(err: &SimError) -> Option<&'static str> {
    match err {
        SimError::Protocol(ProtocolError::TransportGiveUp { .. }) => None,
        SimError::Checkpoint(_) => None,
        SimError::Timeout(_) => Some("livelock"),
        SimError::Protocol(_) => Some("protocol"),
        SimError::Stall(_) => Some("stall"),
        SimError::Rewind(_) => Some("rewind"),
        SimError::Oracle(_) => Some("oracle"),
    }
}

/// Outcome of executing one candidate schedule.
pub struct RunOutcome {
    /// Transitions the run exercised.
    pub coverage: CoverageMap,
    /// The violation, when the run found one (benign errors excluded).
    pub violation: Option<SimError>,
}

/// Executes one schedule, collecting transition coverage on this thread.
pub fn run_one(opts: &FuzzOptions, genome: &ScheduleGenome) -> Result<RunOutcome, String> {
    let mut m = opts.machine(genome)?;
    coverage::install();
    let res = m.run(opts.cycle_limit);
    let cov = coverage::take().unwrap_or_default();
    Ok(RunOutcome {
        coverage: cov,
        violation: res.err().filter(|e| violation_kind(e).is_some()),
    })
}

/// A corpus member: a schedule that lit new coverage, plus what it covers
/// (feeding the rare-transition power schedule).
#[derive(Clone, PartialEq, Debug)]
pub struct CorpusEntry {
    /// The schedule.
    pub genome: ScheduleGenome,
    /// Coverage the schedule's run produced.
    pub coverage: CoverageMap,
}

impl Codec for CorpusEntry {
    fn encode(&self, w: &mut Writer) {
        self.genome.encode(w);
        self.coverage.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(CorpusEntry {
            genome: ScheduleGenome::decode(r)?,
            coverage: CoverageMap::decode(r)?,
        })
    }
}

/// The whole campaign state: everything needed to continue bit-exactly.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FuzzState {
    /// Completed generations.
    pub generation: u64,
    /// Schedules executed so far.
    pub runs_done: u64,
    /// Union coverage across every run.
    pub global: CoverageMap,
    /// Schedules that lit new coverage, in discovery order.
    pub corpus: Vec<CorpusEntry>,
}

/// Magic prefix of a serialized [`FuzzState`] file.
const STATE_MAGIC: &[u8] = b"NRFUZZ";
/// Format version of the state file.
const STATE_VERSION: u32 = 1;

impl FuzzState {
    /// A fresh campaign.
    pub fn new() -> Self {
        FuzzState {
            generation: 0,
            runs_done: 0,
            global: CoverageMap::new(),
            corpus: Vec::new(),
        }
    }

    /// Serializes the state with a self-validating header bound to the
    /// campaign's options fingerprint.
    pub fn to_bytes(&self, fingerprint: u64) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_bytes(STATE_MAGIC);
        w.put_u32(STATE_VERSION);
        w.put_u64(fingerprint);
        w.put_u64(self.generation);
        w.put_u64(self.runs_done);
        self.global.encode(&mut w);
        self.corpus.encode(&mut w);
        let checksum = fnv1a(w.bytes());
        w.put_u64(checksum);
        w.into_bytes()
    }

    /// Parses [`FuzzState::to_bytes`] output, refusing mismatched campaigns.
    pub fn from_bytes(bytes: &[u8], fingerprint: u64) -> Result<Self, PersistError> {
        if bytes.len() < STATE_MAGIC.len() + 4 + 8 + 8 {
            return Err(PersistError::Corrupt("fuzz state too short"));
        }
        if &bytes[..STATE_MAGIC.len()] != STATE_MAGIC {
            return Err(PersistError::Corrupt("not a norush fuzz state"));
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte checksum"));
        if fnv1a(payload) != stored {
            return Err(PersistError::Corrupt("fuzz state checksum mismatch"));
        }
        let mut r = Reader::new(payload);
        let _ = r.get_bytes(STATE_MAGIC.len())?;
        let found = r.get_u32()?;
        if found != STATE_VERSION {
            return Err(PersistError::VersionMismatch {
                found,
                expected: STATE_VERSION,
            });
        }
        let found = r.get_u64()?;
        if found != fingerprint {
            return Err(PersistError::ConfigMismatch {
                found,
                expected: fingerprint,
            });
        }
        let state = FuzzState {
            generation: r.get_u64()?,
            runs_done: r.get_u64()?,
            global: CoverageMap::decode(&mut r)?,
            corpus: Vec::<CorpusEntry>::decode(&mut r)?,
        };
        if !r.is_empty() {
            return Err(PersistError::Corrupt("trailing bytes in fuzz state"));
        }
        Ok(state)
    }

    /// Atomically writes the state file (`tmp` + rename, like checkpoints).
    pub fn save(&self, path: &Path, fingerprint: u64) -> std::io::Result<()> {
        let tmp = path.with_extension("state.tmp");
        std::fs::write(&tmp, self.to_bytes(fingerprint))?;
        std::fs::rename(&tmp, path)
    }

    /// Loads a state file written by [`FuzzState::save`].
    pub fn load(path: &Path, fingerprint: u64) -> Result<Self, String> {
        let bytes =
            std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        FuzzState::from_bytes(&bytes, fingerprint)
            .map_err(|e| format!("cannot resume from {}: {e}", path.display()))
    }
}

/// A confirmed violation: the raw failing schedule, its minimized form, and
/// where in the campaign it surfaced.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Violation class (`oracle`, `protocol`, `stall`, `rewind`).
    pub kind: &'static str,
    /// Display form of the original error.
    pub error: String,
    /// Generation (0-based) in which the failing candidate ran.
    pub generation: u64,
    /// Candidate index within that generation.
    pub candidate: usize,
    /// The schedule as the mutator produced it.
    pub genome: ScheduleGenome,
    /// The minimized schedule (still failing, usually far smaller).
    pub minimized: ScheduleGenome,
    /// Display form of the minimized schedule's error.
    pub minimized_error: String,
}

/// Result of a fuzz campaign.
pub struct FuzzOutcome {
    /// Final campaign state.
    pub state: FuzzState,
    /// The first violation found, if any (the campaign stops on it).
    pub finding: Option<Finding>,
}

// ---------------------------------------------------------------------------
// Mutation and the power schedule
// ---------------------------------------------------------------------------

/// Removes burst `idx` from a perturb table (compacting the array).
fn remove_burst(p: &PerturbConfig, idx: usize) -> PerturbConfig {
    let mut out = PerturbConfig::default();
    for (i, b) in p.active().iter().enumerate() {
        if i != idx {
            out.push(*b);
        }
    }
    out
}

fn random_burst(rng: &mut SplitMix64) -> DelayBurst {
    DelayBurst {
        start: rng.below(1_000_000),
        len: 64 + rng.below(16_384),
        extra: 1 + rng.below(512).min(MAX_BURST_EXTRA - 1),
        salt: rng.next_u64(),
    }
}

/// Applies 1–3 random mutations to `genome`.
fn mutate(genome: &ScheduleGenome, rng: &mut SplitMix64) -> ScheduleGenome {
    let mut g = *genome;
    let edits = 1 + rng.below(3);
    for _ in 0..edits {
        match rng.below(6) {
            // Add (or, when full, replace) a delay burst.
            0 => {
                let b = random_burst(rng);
                if !g.perturb.push(b) {
                    let idx = rng.below(g.perturb.n as u64) as usize;
                    g.perturb.bursts[idx] = b;
                }
            }
            // Drop a burst.
            1 => {
                if g.perturb.n > 0 {
                    let idx = rng.below(g.perturb.n as u64) as usize;
                    g.perturb = remove_burst(&g.perturb, idx);
                }
            }
            // Tweak one field of one burst.
            2 => {
                if g.perturb.n == 0 {
                    g.perturb.push(random_burst(rng));
                } else {
                    let idx = rng.below(g.perturb.n as u64) as usize;
                    let b = &mut g.perturb.bursts[idx];
                    match rng.below(4) {
                        0 => b.start = rng.below(1_000_000),
                        1 => b.len = 64 + rng.below(16_384),
                        2 => b.extra = 1 + rng.below(512).min(MAX_BURST_EXTRA - 1),
                        _ => b.salt = rng.next_u64(),
                    }
                }
            }
            // Raise a chaos knob (bounded).
            3 => match rng.below(4) {
                0 => g.fault.max_extra_latency = rng.below(MAX_FUZZ_LATENCY + 1),
                1 => g.fault.drop_ppm = rng.below(MAX_FUZZ_PPM + 1) as u32,
                2 => g.fault.dup_ppm = rng.below(MAX_FUZZ_PPM + 1) as u32,
                _ => g.fault.corrupt_ppm = rng.below(MAX_FUZZ_PPM + 1) as u32,
            },
            // Retune the chaos PRNG stream.
            4 => g.fault.seed = rng.next_u64().max(1),
            // Zero a chaos knob.
            _ => match rng.below(4) {
                0 => g.fault.max_extra_latency = 0,
                1 => g.fault.drop_ppm = 0,
                2 => g.fault.dup_ppm = 0,
                _ => g.fault.corrupt_ppm = 0,
            },
        }
    }
    g
}

/// Power schedule: an entry's weight is 1 plus the number of *rare* global
/// transitions it covers, where "rare" means a global hit count in the lowest
/// quartile of all nonzero counts. Entries poking the protocol's least-
/// traveled arms get proportionally more mutation energy.
fn corpus_weights(corpus: &[CorpusEntry], global: &CoverageMap) -> Vec<u64> {
    let mut nonzero: Vec<u64> = (0..SLOT_COUNT)
        .map(|s| global.hits(s))
        .filter(|&h| h > 0)
        .collect();
    nonzero.sort_unstable();
    let rare_cut = nonzero.get(nonzero.len() / 4).copied().unwrap_or(u64::MAX);
    corpus
        .iter()
        .map(|e| {
            let rare = (0..SLOT_COUNT)
                .filter(|&s| e.coverage.is_hit(s) && global.hits(s) <= rare_cut)
                .count() as u64;
            1 + rare
        })
        .collect()
}

/// Picks a corpus index by weighted draw.
fn pick_weighted(weights: &[u64], rng: &mut SplitMix64) -> usize {
    let total: u64 = weights.iter().sum();
    let mut roll = rng.below(total.max(1));
    for (i, &w) in weights.iter().enumerate() {
        if roll < w {
            return i;
        }
        roll -= w;
    }
    weights.len() - 1
}

/// Derives the next generation's candidate batch from `(seed, generation,
/// corpus)` — pure, so a resumed campaign regenerates the identical batch.
///
/// The generation index is scrambled through its own SplitMix64 draw before
/// seeding the batch RNG. Mixing it in *linearly* would be a trap: an
/// increment of `0x9e37_79b9_7f4a_7c15` (the SplitMix64 state step) per
/// generation makes generation `g`'s stream equal generation 0's offset by
/// `g` draws, collapsing cross-generation diversity.
fn derive_candidates(opts: &FuzzOptions, state: &FuzzState, k: usize) -> Vec<ScheduleGenome> {
    let mut gen_mix = SplitMix64::new(state.generation);
    let mut rng = SplitMix64::new(opts.seed ^ gen_mix.next_u64());
    let mut batch: Vec<ScheduleGenome> = Vec::with_capacity(k);
    let weights = corpus_weights(&state.corpus, &state.global);
    for i in 0..k {
        if state.corpus.is_empty() && i == 0 {
            // Bootstrap: the neutral schedule first (baseline coverage),
            // then increasingly adventurous mutants of it.
            batch.push(ScheduleGenome::neutral());
            continue;
        }
        let parent = if state.corpus.is_empty() {
            ScheduleGenome::neutral()
        } else {
            state.corpus[pick_weighted(&weights, &mut rng)].genome
        };
        // A duplicate candidate re-runs a schedule the campaign has already
        // measured — retry the mutation a few times for a fresh one.
        let mut cand = mutate(&parent, &mut rng);
        for _ in 0..4 {
            if !batch.contains(&cand) {
                break;
            }
            cand = mutate(&cand, &mut rng);
        }
        batch.push(cand);
    }
    batch
}

// ---------------------------------------------------------------------------
// The campaign loop
// ---------------------------------------------------------------------------

/// Runs (or continues) a fuzz campaign. `on_generation` fires after each
/// generation's results are folded into `state` — the caller persists the
/// state there (and logs progress). Stops at the first violation or when the
/// run budget is exhausted.
///
/// # Errors
/// Configuration errors only (unknown policy); simulation failures are
/// *findings*, not errors.
pub fn fuzz(
    opts: &FuzzOptions,
    mut state: FuzzState,
    mut on_generation: impl FnMut(&FuzzState),
) -> Result<FuzzOutcome, String> {
    // Validate the policy once up front.
    opts.system(&ScheduleGenome::neutral())?;
    let mut finding = None;
    while state.runs_done < opts.budget && finding.is_none() {
        let k = GEN_CANDIDATES.min((opts.budget - state.runs_done) as usize);
        let candidates = derive_candidates(opts, &state, k);
        let outcomes = parallel_map(&candidates, opts.jobs, |_, g| {
            run_one(opts, g).expect("policy validated above")
        });
        for (i, (genome, out)) in candidates.iter().zip(outcomes).enumerate() {
            state.runs_done += 1;
            if out.coverage.new_slots_vs(&state.global) > 0 {
                state.corpus.push(CorpusEntry {
                    genome: *genome,
                    coverage: out.coverage.clone(),
                });
            }
            state.global.merge(&out.coverage);
            if finding.is_none() {
                if let Some(err) = out.violation {
                    let kind = violation_kind(&err).expect("filtered in run_one");
                    finding = Some((state.generation, i, *genome, kind, err));
                }
            }
        }
        state.generation += 1;
        on_generation(&state);
    }
    let finding = finding.map(|(generation, candidate, genome, kind, err)| {
        let minimized = minimize(opts, &genome);
        let minimized_error = run_one(opts, &minimized)
            .ok()
            .and_then(|o| o.violation)
            .map(|e| e.to_string())
            .unwrap_or_else(|| "violation did not reproduce (non-minimal repro kept)".into());
        Finding {
            kind,
            error: err.to_string(),
            generation,
            candidate,
            genome,
            minimized,
            minimized_error,
        }
    });
    Ok(FuzzOutcome { state, finding })
}

// ---------------------------------------------------------------------------
// Schedule minimization
// ---------------------------------------------------------------------------

/// Minimizes a failing schedule while the violation keeps reproducing,
/// extending the chaos shrinker to the burst genome:
///
/// 1. greedily drop whole bursts;
/// 2. binary-search each surviving burst's `len` and `extra` down to the
///    smallest still-failing values;
/// 3. shrink the chaos knobs with [`shrink_chaos`] (seed fixed, bursts held).
///
/// The result is guaranteed to still fail (every accepted candidate was
/// probed). One full simulation runs per probe.
pub fn minimize(opts: &FuzzOptions, genome: &ScheduleGenome) -> ScheduleGenome {
    let fails = |g: &ScheduleGenome| {
        run_one(opts, g)
            .map(|o| o.violation.is_some())
            .unwrap_or(false)
    };
    let mut cur = *genome;
    // Phase 1: greedily drop bursts until fixpoint.
    loop {
        let mut progress = false;
        let mut i = 0;
        while i < cur.perturb.n as usize {
            let mut cand = cur;
            cand.perturb = remove_burst(&cur.perturb, i);
            if fails(&cand) {
                cur = cand;
                progress = true;
            } else {
                i += 1;
            }
        }
        if !progress {
            break;
        }
    }
    // Phase 2: binary-search each surviving burst's window and magnitude.
    for i in 0..cur.perturb.n as usize {
        for field in 0..2 {
            let get = |g: &ScheduleGenome| match field {
                0 => g.perturb.bursts[i].len,
                _ => g.perturb.bursts[i].extra,
            };
            let set = |g: &mut ScheduleGenome, v: u64| match field {
                0 => g.perturb.bursts[i].len = v,
                _ => g.perturb.bursts[i].extra = v,
            };
            let mut hi = get(&cur);
            if hi == 0 {
                continue;
            }
            let mut lo = 0u64;
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                let mut cand = cur;
                set(&mut cand, mid);
                if fails(&cand) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            set(&mut cur, hi);
        }
    }
    // Phase 3: shrink the chaos knobs, bursts held fixed.
    if cur.chaos_active() {
        let perturb = cur.perturb;
        cur.fault = shrink_chaos(cur.fault, |f| fails(&ScheduleGenome { fault: *f, perturb }));
    }
    cur
}

// ---------------------------------------------------------------------------
// Triage
// ---------------------------------------------------------------------------

/// Replays the minimized schedule once more, capturing the soak-style triage
/// bundle into `repro_dir`: `fuzz_failure.txt` (description, repro command,
/// error), `journal_tail.txt` (the online checker's last records), and
/// `fuzz.ckpt` (the last pre-violation checkpoint, when one was reachable).
pub fn write_triage(
    opts: &FuzzOptions,
    finding: &Finding,
    repro_dir: &Path,
    repro_cmd: &str,
) -> std::io::Result<()> {
    std::fs::create_dir_all(repro_dir)?;
    // Re-run in checkpointed slices so a recent restore point survives the
    // violation (a wedged/corrupt machine refuses to checkpoint).
    let mut m = opts
        .machine(&finding.minimized)
        .map_err(|e| std::io::Error::other(format!("triage machine: {e}")))?;
    let mut last_ckpt: Option<Vec<u8>> = None;
    let err = loop {
        match m.run_for(50_000) {
            Err(e) => break Some(e),
            Ok(Some(_)) => break None,
            Ok(None) => {
                if m.now().raw() >= opts.cycle_limit {
                    break None;
                }
                if let Ok(bytes) = m.checkpoint() {
                    last_ckpt = Some(bytes);
                }
            }
        }
    };
    let ckpt_note = match &last_ckpt {
        Some(bytes) => crate::triage::write_checkpoint_file(repro_dir, "fuzz.ckpt", bytes)?
            .display()
            .to_string(),
        None => "none reachable before the failure".to_string(),
    };
    let desc = format!(
        "fuzz failure\npolicy: {}\nkernel: {}\nseed: {}\ncores: {}\nops_per_thread: {}\n\
         planted_bug: {}\nfound: generation {} candidate {}\nkind: {}\n\
         schedule: {}\nminimized: {}\nminimized genome: {}\ncheckpoint: {}\n\
         repro: {}\nerror:\n{}\nminimized replay error:\n{}\n",
        opts.policy,
        opts.kernel.name(),
        opts.seed,
        opts.cores,
        opts.ops_per_thread,
        opts.planted_bug,
        finding.generation,
        finding.candidate,
        finding.kind,
        finding.genome.describe(),
        finding.minimized.describe(),
        finding.minimized.to_hex(),
        ckpt_note,
        repro_cmd,
        finding.error,
        err.map(|e| e.to_string())
            .unwrap_or_else(|| finding.minimized_error.clone()),
    );
    crate::triage::write_failure(repro_dir, "fuzz_failure.txt", &desc)?;
    crate::triage::write_journal_tail(repro_dir, &m)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn genome_json(g: &ScheduleGenome) -> String {
    let bursts = g
        .perturb
        .active()
        .iter()
        .map(|b| {
            format!(
                "{{\"start\": {}, \"len\": {}, \"extra\": {}, \"salt\": {}}}",
                b.start, b.len, b.extra, b.salt
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"chaos\": {{\"seed\": {}, \"latency\": {}, \"drop_ppm\": {}, \"dup_ppm\": {}, \
         \"corrupt_ppm\": {}}}, \"bursts\": [{}], \"hex\": \"{}\"}}",
        g.fault.seed,
        g.fault.max_extra_latency,
        g.fault.drop_ppm,
        g.fault.dup_ppm,
        g.fault.corrupt_ppm,
        bursts,
        g.to_hex(),
    )
}

/// Renders the machine-readable fuzz report (`norush-fuzz-v1`, documented in
/// `results/README.md`). Deliberately wall-clock-free and `jobs`-free: equal
/// campaigns serialize byte-identically regardless of worker count.
pub fn report_json(opts: &FuzzOptions, outcome: &FuzzOutcome, repro_cmd: Option<&str>) -> String {
    let s = &outcome.state;
    let domains = s
        .global
        .domain_summary()
        .iter()
        .map(|(name, covered, total)| {
            format!("{{\"domain\": \"{name}\", \"covered\": {covered}, \"total\": {total}}}")
        })
        .collect::<Vec<_>>()
        .join(", ");
    let uncovered = s
        .global
        .uncovered_names()
        .iter()
        .map(|n| format!("\"{}\"", json_escape(n)))
        .collect::<Vec<_>>()
        .join(", ");
    let finding = match &outcome.finding {
        None => "null".to_string(),
        Some(f) => format!(
            "{{\n    \"kind\": \"{}\",\n    \"generation\": {},\n    \"candidate\": {},\n    \
             \"error\": \"{}\",\n    \"genome\": {},\n    \"minimized\": {},\n    \
             \"minimized_error\": \"{}\",\n    \"repro\": {}\n  }}",
            f.kind,
            f.generation,
            f.candidate,
            json_escape(&f.error),
            genome_json(&f.genome),
            genome_json(&f.minimized),
            json_escape(&f.minimized_error),
            repro_cmd
                .map(|c| format!("\"{}\"", json_escape(c)))
                .unwrap_or_else(|| "null".to_string()),
        ),
    };
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"{}\",\n",
            "  \"status\": \"{}\",\n",
            "  \"policy\": \"{}\",\n",
            "  \"kernel\": \"{}\",\n",
            "  \"cores\": {},\n",
            "  \"ops_per_thread\": {},\n",
            "  \"seed\": {},\n",
            "  \"budget\": {},\n",
            "  \"planted_bug\": {},\n",
            "  \"runs\": {},\n",
            "  \"generations\": {},\n",
            "  \"corpus\": {},\n",
            "  \"coverage\": {{\"covered\": {}, \"total\": {}, \"domains\": [{}]}},\n",
            "  \"uncovered\": [{}],\n",
            "  \"finding\": {}\n",
            "}}\n"
        ),
        FUZZ_SCHEMA,
        if outcome.finding.is_some() {
            "finding"
        } else {
            "clean"
        },
        json_escape(&opts.policy),
        opts.kernel.name(),
        opts.cores,
        opts.ops_per_thread,
        opts.seed,
        opts.budget,
        opts.planted_bug,
        s.runs_done,
        s.generation,
        s.corpus.len(),
        s.global.covered(),
        SLOT_COUNT,
        domains,
        uncovered,
        finding,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genome_hex_roundtrip() {
        let mut g = ScheduleGenome::neutral();
        g.fault.drop_ppm = 137;
        g.perturb.push(DelayBurst {
            start: 1000,
            len: 512,
            extra: 16,
            salt: 0xdead_beef,
        });
        let hex = g.to_hex();
        assert_eq!(ScheduleGenome::from_hex(&hex).unwrap(), g);
        assert!(ScheduleGenome::from_hex("zz").is_err());
        assert!(ScheduleGenome::from_hex(&hex[..hex.len() - 2]).is_err());
    }

    #[test]
    fn state_roundtrip_and_fingerprint_binding() {
        let mut s = FuzzState::new();
        s.generation = 3;
        s.runs_done = 24;
        s.global.record(5);
        s.corpus.push(CorpusEntry {
            genome: ScheduleGenome::neutral(),
            coverage: {
                let mut c = CoverageMap::new();
                c.record(5);
                c
            },
        });
        let bytes = s.to_bytes(0x1234);
        assert_eq!(FuzzState::from_bytes(&bytes, 0x1234).unwrap(), s);
        assert!(matches!(
            FuzzState::from_bytes(&bytes, 0x9999),
            Err(PersistError::ConfigMismatch { .. })
        ));
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xff;
        assert!(FuzzState::from_bytes(&corrupt, 0x1234).is_err());
    }

    #[test]
    fn mutation_is_deterministic_and_bounded() {
        let g = ScheduleGenome::neutral();
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..64 {
            let ga = mutate(&g, &mut a);
            let gb = mutate(&g, &mut b);
            assert_eq!(ga, gb);
            assert!(ga.fault.max_extra_latency <= MAX_FUZZ_LATENCY);
            assert!(u64::from(ga.fault.drop_ppm) <= MAX_FUZZ_PPM);
            for burst in ga.perturb.active() {
                assert!(burst.extra <= MAX_BURST_EXTRA);
            }
        }
    }

    #[test]
    fn derive_candidates_is_pure() {
        let opts = FuzzOptions::smoke("lazy");
        let state = FuzzState::new();
        let a = derive_candidates(&opts, &state, 8);
        let b = derive_candidates(&opts, &state, 8);
        assert_eq!(a, b);
        assert_eq!(a[0], ScheduleGenome::neutral());
    }

    #[test]
    fn power_schedule_favors_rare_transitions() {
        let mut global = CoverageMap::new();
        for _ in 0..100 {
            global.record(0);
        }
        global.record(1); // slot 1 is rare
        let common = CorpusEntry {
            genome: ScheduleGenome::neutral(),
            coverage: {
                let mut c = CoverageMap::new();
                c.record(0);
                c
            },
        };
        let rare = CorpusEntry {
            genome: ScheduleGenome::neutral(),
            coverage: {
                let mut c = CoverageMap::new();
                c.record(1);
                c
            },
        };
        let w = corpus_weights(&[common, rare], &global);
        assert!(
            w[1] > w[0],
            "rare-covering entry must get more energy: {w:?}"
        );
    }

    #[test]
    fn violation_classification() {
        use row_common::ids::LineAddr;
        use row_mem::msg::Endpoint;
        let give_up = SimError::Protocol(ProtocolError::TransportGiveUp {
            src: Endpoint::Dir(0),
            dst: Endpoint::Dir(1),
            seq: 1,
            attempts: 16,
            msg: row_mem::msg::Msg::Inv {
                line: LineAddr::new(1),
            },
        });
        assert_eq!(violation_kind(&give_up), None);
        let real = SimError::Protocol(ProtocolError::MultipleOwners {
            line: LineAddr::new(1),
            owners: vec![],
        });
        assert_eq!(violation_kind(&real), Some("protocol"));
    }

    #[test]
    fn report_has_schema_and_no_wall_clock() {
        let opts = FuzzOptions::smoke("lazy");
        let outcome = FuzzOutcome {
            state: FuzzState::new(),
            finding: None,
        };
        let json = report_json(&opts, &outcome, None);
        assert!(json.contains("\"schema\": \"norush-fuzz-v1\""));
        assert!(json.contains("\"status\": \"clean\""));
        assert!(!json.contains("wall"), "report must be wall-clock-free");
        assert!(!json.contains("jobs"), "report must be worker-count-free");
    }
}
