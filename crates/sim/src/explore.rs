//! Bounded-exhaustive schedule exploration and litmus conformance running.
//!
//! The fuzzer (`norush fuzz`) *samples* delivery schedules; this module
//! *enumerates* them for the tiny litmus programs in
//! [`row_workloads::litmus`], turning TSO conformance from a statistical
//! claim into a bounded proof:
//!
//! * [`run_litmus`] — the `norush litmus` backend: runs one test under one
//!   policy `samples` times (sample 0 is the undelayed default schedule,
//!   later samples force pseudo-random decision vectors through
//!   [`row_common::choice`]) and histograms the observed outcomes.
//! * [`explore`] — the `norush explore` backend: depth-first,
//!   *delay-bounded* enumeration of every schedule deviating from the
//!   default at no more than [`ExploreOptions::max_delays`] of its first
//!   [`ExploreOptions::max_decisions`] decision points (message deliveries,
//!   atomic commit timings), with two prunes:
//!   - **dynamic partial-order reduction** — a delivery delay is skipped
//!     when no other decision within [`ExploreOptions::dpor_window`] cycles
//!     touches the same line or shares an endpoint (the delay then commutes
//!     with everything and cannot change the outcome); commit decisions are
//!     never pruned (an atomic's commit timing is the property under test);
//!   - **state dedup** — the machine snapshot ([`Machine::checkpoint`])
//!     taken right after the last forced decision is consumed is hashed
//!     with [`fnv1a`]; a frontier state already expanded from is not
//!     expanded again (its subtree is identical — the machine is
//!     deterministic given the remaining decisions).
//!
//! Every run is classified against the test's declared sets: a **forbidden**
//! (or unlisted) outcome, any structural [`SimError`], or a cycle-budget
//! exhaustion (livelock) is a violation; the triggering decision vector is
//! then greedily minimized ([`minimize_schedule`]) into a deterministically
//! replayable repro (`--replay`, hex-coded by [`schedule_to_hex`]).
//! Completeness runs the other way: [`ExploreReport::unwitnessed`] lists
//! allowed outcomes no enumerated schedule produced.

use std::collections::{BTreeMap, HashSet};

use row_common::choice::{self, ChoiceKind, DecisionRecord};
use row_common::config::{AtomicPolicy, RowConfig, SystemConfig};
use row_common::coverage::{self, CoverageMap};
use row_common::persist::fnv1a;
use row_common::rng::SplitMix64;
use row_cpu::instr::{InstrStream, VecStream};
use row_workloads::litmus::{LitmusTest, OutcomeClass, Probe};

use crate::fuzz::violation_kind;
use crate::machine::{Machine, SimError};

/// Schema identifier of the litmus/explore JSON report.
pub const LITMUS_SCHEMA: &str = "norush-litmus-v1";

/// Options shared by the sampling and exploring litmus modes.
#[derive(Clone, Debug)]
pub struct ExploreOptions {
    /// Atomic policy under test (`eager`, `lazy`, `row`, `row-fwd`, `far`).
    pub policy: String,
    /// Branchable frontier: only the first `max_decisions` decision points
    /// of a run may deviate from the default schedule.
    pub max_decisions: usize,
    /// Delay bound: how many decision points a single schedule may deviate
    /// at (its nonzero count). Witnessing a TSO relaxation takes roughly one
    /// deviation per reordered access, so a small bound covers every
    /// declared outcome while keeping the tree polynomial in
    /// `max_decisions` rather than exponential.
    pub max_delays: usize,
    /// Safety cap on enumerated runs per (test, policy) cell.
    pub max_runs: u64,
    /// Per-run cycle budget; exhausting it is a livelock violation (a
    /// correct machine finishes a litmus program under any bounded delay).
    pub cycle_limit: u64,
    /// Cycle window within which two decisions are considered conflicting
    /// for partial-order reduction. Soundness requires it to be at least the
    /// largest forced delay ([`choice::delivery_delay`] of the top
    /// alternative): a held message can only be reordered against decisions
    /// inside its hold window.
    pub dpor_window: u64,
    /// Arm the planted early-unblock directory bug (regression hunting).
    pub planted_bug: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            policy: "eager".into(),
            max_decisions: 9,
            max_delays: 3,
            max_runs: 20_000,
            cycle_limit: 200_000,
            dpor_window: choice::delivery_delay(choice::N_ALTS - 1) + choice::DELIVERY_QUANTUM,
            planted_bug: false,
        }
    }
}

impl ExploreOptions {
    /// The system configuration for one litmus cell: `cores` cores under
    /// `policy`, invariant sweep every 64 cycles (litmus machines are tiny;
    /// a planted protocol bug must surface at the first bad state, not
    /// thousands of cycles later), online oracle armed.
    pub fn system(&self, cores: usize) -> Result<SystemConfig, String> {
        let sys = SystemConfig::small(cores);
        let mut sys = match self.policy.as_str() {
            "eager" => sys.with_policy(AtomicPolicy::Eager),
            "lazy" => sys.with_policy(AtomicPolicy::Lazy),
            "row" => sys.with_policy(AtomicPolicy::Row(
                RowConfig::best().with_locality_override(false),
            )),
            "row-fwd" => sys
                .with_policy(AtomicPolicy::Row(RowConfig::best()))
                .with_forward_to_atomics(true),
            "far" => sys.with_placement(row_common::config::AtomicPlacement::Far),
            other => return Err(format!("unknown policy `{other}`")),
        };
        sys.check.invariant_every = Some(64);
        sys.check.oracle_online = true;
        Ok(sys)
    }
}

/// One executed schedule: its decision trace and what it produced.
pub struct ScheduleRun {
    /// The observed outcome tuple (probe order), when the run completed.
    pub outcome: Option<Vec<u64>>,
    /// The structural error, when the run failed.
    pub error: Option<SimError>,
    /// The run exhausted [`ExploreOptions::cycle_limit`].
    pub timed_out: bool,
    /// Every decision point the run encountered, in order.
    pub decisions: Vec<DecisionRecord>,
    /// fnv1a hash of the machine snapshot right after the last forced
    /// decision was consumed (`None` when the snapshot was refused).
    pub frontier_hash: Option<u64>,
    /// Transition coverage the run exercised.
    pub coverage: CoverageMap,
}

/// Executes `test` once under the decision vector `forced` (alternatives
/// beyond the vector default to 0). This is also the `--replay` entry point.
pub fn run_schedule(
    test: &LitmusTest,
    opts: &ExploreOptions,
    forced: &[u8],
) -> Result<ScheduleRun, String> {
    run_schedule_full(test, opts, forced).map(|(run, _)| run)
}

/// [`run_schedule`], also returning the finished [`Machine`] so triage can
/// pull its online-checker journal tail.
pub fn run_schedule_full(
    test: &LitmusTest,
    opts: &ExploreOptions,
    forced: &[u8],
) -> Result<(ScheduleRun, Machine), String> {
    let sys = opts.system(test.cores())?;
    let streams: Vec<Box<dyn InstrStream>> = test
        .programs
        .iter()
        .map(|p| Box::new(VecStream::new(p.clone())) as _)
        .collect();
    let mut m = Machine::new(&sys, streams);
    if opts.planted_bug {
        m.memory_mut().inject_early_unblock_for_test();
    }
    for c in 0..test.cores() {
        m.core_mut(c).record_loads();
    }
    coverage::install();
    choice::install(forced.to_vec());
    // Step cycle-by-cycle until the forced prefix is consumed (so the
    // frontier snapshot lands exactly at the end of the consuming cycle),
    // then in coarse strides to completion.
    let mut frontier_hash = if forced.is_empty() {
        m.checkpoint().ok().map(|b| fnv1a(&b))
    } else {
        None
    };
    let mut outcome = None;
    let mut error = None;
    let mut timed_out = false;
    loop {
        if m.now().raw() >= opts.cycle_limit {
            timed_out = true;
            break;
        }
        let step = if frontier_hash.is_none() { 1 } else { 256 };
        match m.run_for(step) {
            Err(e) => {
                error = Some(e);
                break;
            }
            Ok(done) => {
                if frontier_hash.is_none() && choice::consumed() >= forced.len() {
                    frontier_hash = m.checkpoint().ok().map(|b| fnv1a(&b));
                }
                if done.is_some() {
                    outcome = Some(observe(test, &mut m));
                    break;
                }
            }
        }
    }
    let decisions = choice::take().unwrap_or_default();
    let cov = coverage::take().unwrap_or_default();
    Ok((
        ScheduleRun {
            outcome,
            error,
            timed_out,
            decisions,
            frontier_hash,
            coverage: cov,
        },
        m,
    ))
}

/// Reads the outcome tuple off a completed machine.
fn observe(test: &LitmusTest, m: &mut Machine) -> Vec<u64> {
    test.probes
        .iter()
        .map(|p| match *p {
            Probe::Load { core, pc } => m
                .core_mut(core)
                .load_observations()
                .iter()
                .rev()
                .find(|o| o.pc == pc)
                .map(|o| o.value)
                // A completed run always observed its probes; the sentinel
                // classifies as Unlisted (a violation) if it ever leaks.
                .unwrap_or(u64::MAX),
            Probe::Mem { addr } => m.memory().read_word(addr),
        })
        .collect()
}

/// Renders an outcome tuple for reports (`"1,0"`).
pub fn fmt_outcome(o: &[u64]) -> String {
    o.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// How one run violated the conformance contract, if it did.
fn violation_of(test: &LitmusTest, run: &ScheduleRun) -> Option<(String, String)> {
    if let Some(e) = &run.error {
        let kind = violation_kind(e).unwrap_or("error");
        return Some((kind.to_string(), e.to_string()));
    }
    if run.timed_out {
        return Some((
            "livelock".to_string(),
            "cycle budget exhausted before the programs drained".to_string(),
        ));
    }
    let outcome = run.outcome.as_ref()?;
    match test.classify(outcome) {
        OutcomeClass::Forbidden => Some((
            "forbidden-outcome".to_string(),
            format!("observed forbidden outcome ({})", fmt_outcome(outcome)),
        )),
        OutcomeClass::Unlisted => Some((
            "unlisted-outcome".to_string(),
            format!("observed unlisted outcome ({})", fmt_outcome(outcome)),
        )),
        OutcomeClass::Allowed => None,
    }
}

/// A conformance violation with its (minimized) repro schedule.
#[derive(Clone, Debug)]
pub struct ExploreViolation {
    /// Violation class (`forbidden-outcome`, `protocol`, `livelock`, ...).
    pub kind: String,
    /// Human-readable detail (outcome tuple or error display).
    pub detail: String,
    /// The decision vector that triggered the violation.
    pub schedule: Vec<u8>,
    /// The greedily minimized decision vector (still violating).
    pub minimized: Vec<u8>,
    /// Detail observed when replaying the minimized schedule.
    pub minimized_detail: String,
}

/// Result of one litmus cell (one test under one policy), from either the
/// sampling or the exploring mode.
pub struct ExploreReport {
    /// Test name.
    pub test: String,
    /// Policy name.
    pub policy: String,
    /// Schedules executed.
    pub runs: u64,
    /// Distinct frontier states expanded (exploration only).
    pub states: u64,
    /// Expansions skipped because the frontier state was already seen.
    pub dedup_hits: u64,
    /// Alternatives skipped by partial-order reduction.
    pub dpor_pruned: u64,
    /// Most decision points any single run encountered.
    pub max_decision_points: usize,
    /// Observed outcome histogram.
    pub outcomes: BTreeMap<Vec<u64>, u64>,
    /// Allowed outcomes never observed (empty = completeness witnessed).
    pub unwitnessed: Vec<Vec<u64>>,
    /// The first violation found, if any (enumeration stops there).
    pub violation: Option<ExploreViolation>,
    /// The enumeration hit [`ExploreOptions::max_runs`] before draining.
    pub truncated: bool,
    /// Merged transition coverage across all runs of the cell.
    pub coverage: CoverageMap,
}

impl ExploreReport {
    fn new(test: &LitmusTest, policy: &str) -> Self {
        ExploreReport {
            test: test.name.to_string(),
            policy: policy.to_string(),
            runs: 0,
            states: 0,
            dedup_hits: 0,
            dpor_pruned: 0,
            max_decision_points: 0,
            outcomes: BTreeMap::new(),
            unwitnessed: Vec::new(),
            violation: None,
            truncated: false,
            coverage: CoverageMap::new(),
        }
    }

    fn absorb(&mut self, test: &LitmusTest, run: &ScheduleRun, schedule: &[u8]) -> bool {
        self.runs += 1;
        self.max_decision_points = self.max_decision_points.max(run.decisions.len());
        self.coverage.merge(&run.coverage);
        if let Some(o) = &run.outcome {
            *self.outcomes.entry(o.clone()).or_insert(0) += 1;
        }
        if let Some((kind, detail)) = violation_of(test, run) {
            self.violation = Some(ExploreViolation {
                kind,
                detail,
                schedule: schedule.to_vec(),
                minimized: schedule.to_vec(),
                minimized_detail: String::new(),
            });
            return true;
        }
        false
    }

    fn finish(&mut self, test: &LitmusTest) {
        self.unwitnessed = test
            .allowed
            .iter()
            .filter(|a| !self.outcomes.contains_key(*a))
            .cloned()
            .collect();
    }
}

/// Runs one litmus cell in *sampling* mode: the default schedule plus
/// `samples - 1` pseudo-random decision vectors derived from `seed`.
pub fn run_litmus(
    test: &LitmusTest,
    opts: &ExploreOptions,
    samples: u64,
    seed: u64,
) -> Result<ExploreReport, String> {
    let mut report = ExploreReport::new(test, &opts.policy);
    for k in 0..samples.max(1) {
        let forced = if k == 0 {
            Vec::new()
        } else {
            // A fresh stream per sample; vectors run past the exploration
            // depth so sampling reaches schedules enumeration cannot. Two
            // bits map {0,1,2,3} to alternatives {0,0,1,2}: half the points
            // stay on the default schedule, long holds stay rare.
            let mut rng = SplitMix64::new(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(k)));
            (0..32)
                .map(|_| ((rng.next_u64() & 3) as u8).saturating_sub(1))
                .collect()
        };
        let run = run_schedule(test, opts, &forced)?;
        if report.absorb(test, &run, &forced) {
            finalize_violation(test, opts, &mut report);
            break;
        }
    }
    report.finish(test);
    Ok(report)
}

/// True when delaying decision `i` can change anything observable: some
/// other decision within `window` cycles touches the same line or shares an
/// endpoint. Commit decisions always conflict (they are the knob under
/// test); an isolated delivery delay commutes with the whole run.
fn conflicts(decisions: &[DecisionRecord], i: usize, window: u64) -> bool {
    let d = &decisions[i];
    if d.kind == ChoiceKind::Commit {
        return true;
    }
    decisions.iter().enumerate().any(|(j, o)| {
        j != i
            && o.cycle.abs_diff(d.cycle) <= window
            && (o.line == d.line
                || o.src == d.src
                || o.src == d.dst
                || o.dst == d.src
                || o.dst == d.dst)
    })
}

/// Depth-first bounded-exhaustive exploration of one litmus cell.
///
/// Enumerates every decision vector over the first
/// [`ExploreOptions::max_decisions`] decision points (alternative sets per
/// [`row_common::choice`]), pruned by partial-order reduction and frontier
/// state dedup. Stops at the first violation (minimized into
/// [`ExploreViolation`]); otherwise reports the full outcome histogram and
/// the allowed outcomes that went unwitnessed.
pub fn explore(test: &LitmusTest, opts: &ExploreOptions) -> Result<ExploreReport, String> {
    let mut report = ExploreReport::new(test, &opts.policy);
    let mut stack: Vec<Vec<u8>> = vec![Vec::new()];
    let mut seen: HashSet<u64> = HashSet::new();
    while let Some(prefix) = stack.pop() {
        if report.runs >= opts.max_runs {
            report.truncated = true;
            break;
        }
        let run = run_schedule(test, opts, &prefix)?;
        if report.absorb(test, &run, &prefix) {
            finalize_violation(test, opts, &mut report);
            break;
        }
        // Expand children only from frontier states not seen before.
        if let Some(h) = run.frontier_hash {
            if !seen.insert(h) {
                report.dedup_hits += 1;
                continue;
            }
            report.states = seen.len() as u64;
        }
        // Delay-bounded: a child deviates at exactly one more point than its
        // parent, so a prefix already at the bound is a leaf.
        if prefix.iter().filter(|&&a| a != 0).count() >= opts.max_delays {
            continue;
        }
        let horizon = run.decisions.len().min(opts.max_decisions);
        // Reverse order so the DFS visits positions left to right.
        for i in (prefix.len()..horizon).rev() {
            let d = &run.decisions[i];
            if !conflicts(&run.decisions, i, opts.dpor_window) {
                report.dpor_pruned += u64::from(d.n_alts.saturating_sub(1));
                continue;
            }
            for alt in (1..d.n_alts).rev() {
                let mut child: Vec<u8> = run.decisions[..i].iter().map(|r| r.chosen).collect();
                child.push(alt);
                stack.push(child);
            }
        }
    }
    report.finish(test);
    Ok(report)
}

/// Minimizes the violating schedule in `report` (greedy alternative zeroing
/// to fixpoint, then trailing-zero truncation) and records the replayed
/// minimized detail.
fn finalize_violation(test: &LitmusTest, opts: &ExploreOptions, report: &mut ExploreReport) {
    let Some(v) = report.violation.as_mut() else {
        return;
    };
    let same_fails = |s: &[u8]| -> bool {
        run_schedule(test, opts, s)
            .map(|r| violation_of(test, &r).is_some())
            .unwrap_or(false)
    };
    let mut cur = v.schedule.clone();
    loop {
        let mut progress = false;
        for i in 0..cur.len() {
            if cur[i] == 0 {
                continue;
            }
            let mut cand = cur.clone();
            cand[i] = 0;
            if same_fails(&cand) {
                cur = cand;
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }
    while cur.last() == Some(&0) {
        cur.pop();
    }
    v.minimized = cur;
    v.minimized_detail = run_schedule(test, opts, &v.minimized)
        .ok()
        .and_then(|r| violation_of(test, &r))
        .map(|(kind, detail)| format!("{kind}: {detail}"))
        .unwrap_or_else(|| "violation did not reproduce on minimized schedule".to_string());
}

/// Hex-codes a decision vector for `--replay` (one byte per decision).
pub fn schedule_to_hex(s: &[u8]) -> String {
    if s.is_empty() {
        return "-".to_string(); // canonical empty-schedule marker
    }
    s.iter().map(|b| format!("{b:02x}")).collect()
}

/// Decodes a [`schedule_to_hex`] string.
pub fn schedule_from_hex(s: &str) -> Result<Vec<u8>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    if !s.len().is_multiple_of(2) || s.is_empty() {
        return Err("schedule hex must be a non-empty even-length string".into());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|e| format!("bad schedule hex: {e}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        for s in [vec![], vec![0], vec![1, 0, 1], vec![255, 0]] {
            let hex = schedule_to_hex(&s);
            assert_eq!(schedule_from_hex(&hex).unwrap(), s);
        }
        assert!(schedule_from_hex("0").is_err());
        assert!(schedule_from_hex("zz").is_err());
        assert!(schedule_from_hex("").is_err());
    }

    #[test]
    fn default_schedule_of_sb_is_allowed_and_deterministic() {
        let test = LitmusTest::sb();
        let opts = ExploreOptions::default();
        let a = run_schedule(&test, &opts, &[]).unwrap();
        let b = run_schedule(&test, &opts, &[]).unwrap();
        assert!(a.error.is_none() && !a.timed_out);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.frontier_hash, b.frontier_hash);
        assert_eq!(a.decisions.len(), b.decisions.len());
        assert!(!a.decisions.is_empty(), "litmus runs must expose decisions");
        let o = a.outcome.unwrap();
        assert_eq!(test.classify(&o), OutcomeClass::Allowed);
    }

    #[test]
    fn delaying_a_message_changes_the_decision_trace_deterministically() {
        let test = LitmusTest::mp();
        let opts = ExploreOptions::default();
        let base = run_schedule(&test, &opts, &[]).unwrap();
        let delayed = run_schedule(&test, &opts, &[1]).unwrap();
        assert_eq!(delayed.decisions[0].chosen, 1);
        assert!(base.error.is_none() && delayed.error.is_none());
        // Replays are bit-identical.
        let again = run_schedule(&test, &opts, &[1]).unwrap();
        assert_eq!(delayed.outcome, again.outcome);
        assert_eq!(delayed.frontier_hash, again.frontier_hash);
    }

    #[test]
    fn conflicts_respects_window_line_and_endpoints() {
        let d = |cycle, line, src, dst, kind| DecisionRecord {
            kind,
            src,
            dst,
            line,
            cycle,
            n_alts: 2,
            chosen: 0,
        };
        use ChoiceKind::{Commit, Delivery};
        // Same line within window: conflict.
        let recs = vec![d(0, 1, 0, 1, Delivery), d(10, 1, 2, 3, Delivery)];
        assert!(conflicts(&recs, 0, 48));
        // Different line, disjoint endpoints: no conflict.
        let recs = vec![d(0, 1, 0, 1, Delivery), d(10, 2, 2, 3, Delivery)];
        assert!(!conflicts(&recs, 0, 48));
        // Shared endpoint: conflict.
        let recs = vec![d(0, 1, 0, 1, Delivery), d(10, 2, 1, 3, Delivery)];
        assert!(conflicts(&recs, 0, 48));
        // Outside the window: no conflict.
        let recs = vec![d(0, 1, 0, 1, Delivery), d(1000, 1, 0, 1, Delivery)];
        assert!(!conflicts(&recs, 0, 48));
        // Commit decisions always conflict.
        let recs = vec![d(0, 1, 0, 0, Commit)];
        assert!(conflicts(&recs, 0, 48));
    }
}
