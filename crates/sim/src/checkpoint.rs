//! Checkpoint files: the on-disk container for [`Machine`] snapshots.
//!
//! A checkpoint file is the byte image produced by [`Machine::checkpoint`]:
//!
//! ```text
//! magic "ROWCKPT\n" | format version u32 | config hash u64 | cycle u64
//! | memory-system payload | per-core payloads | fnv1a checksum u64
//! ```
//!
//! Everything is little-endian and self-delimiting; there are no external
//! dependencies. Files are written atomically (temp file + rename in the same
//! directory), so a crash mid-write leaves either the previous complete
//! checkpoint or none — never a torn file. Readers validate the magic,
//! format version, configuration hash, and whole-file checksum before any
//! payload byte is interpreted, and report each failure as a distinct
//! [`PersistError`].
//!
//! [`Machine::checkpoint`]: crate::machine::Machine::checkpoint
//! [`Machine`]: crate::machine::Machine

use std::fs;
use std::path::Path;

use row_common::persist::PersistError;

/// First bytes of every checkpoint file.
pub const MAGIC: &[u8; 8] = b"ROWCKPT\n";

/// Current checkpoint format version. Bump on any layout change; restore
/// refuses other versions with [`PersistError::VersionMismatch`].
///
/// v2: the memory-system payload gained the optional lossy-transport state
/// (sequence numbers, in-flight retransmission tracking, receive buffers,
/// counters) and the optional oracle journal.
///
/// v3: per-core stats gained the atomic-latency log histogram, and the
/// machine payload gained the optional online linearizability checker
/// (golden word store, per-core counters, journal tail) after the cores.
///
/// v4: each core payload gained the explorer's pending atomic commit-release
/// decision (`(uid, release cycle)`, usually `None`) after the load log.
pub const FORMAT_VERSION: u32 = 4;

/// Writes `bytes` to `path` atomically: the data lands in `<path>.tmp` first
/// and is renamed over `path` only once fully flushed, so a reader (or a
/// crash) never observes a partial checkpoint.
///
/// # Errors
/// [`PersistError::Io`] on any filesystem failure.
pub fn write_checkpoint(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let io = |e: std::io::Error| PersistError::Io(format!("{}: {e}", path.display()));
    fs::write(&tmp, bytes).map_err(io)?;
    fs::rename(&tmp, path).map_err(io)?;
    Ok(())
}

/// Reads a checkpoint file back into memory. Validation of the contents
/// happens in [`Machine::restore`](crate::machine::Machine::restore).
///
/// # Errors
/// [`PersistError::Io`] on any filesystem failure.
pub fn read_checkpoint(path: &Path) -> Result<Vec<u8>, PersistError> {
    fs::read(path).map_err(|e| PersistError::Io(format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_round_trips_and_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join("norush-ckpt-io-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.ckpt");
        write_checkpoint(&path, b"hello checkpoint").unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), b"hello checkpoint");
        assert!(
            !dir.join("m.ckpt.tmp").exists(),
            "temp file must be renamed"
        );
        // Overwriting is atomic too.
        write_checkpoint(&path, b"second").unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), b"second");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_structured_io_error() {
        let err = read_checkpoint(Path::new("/nonexistent/nope.ckpt")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }
}
