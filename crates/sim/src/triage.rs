//! Shared failure-triage bundle plumbing for `run`, `soak`, `fuzz`, and
//! `explore`.
//!
//! Every failure-hunting mode drops the same kind of bundle into its
//! `--repro-dir`: a `<mode>_failure.txt` describing the failure with a
//! copy-pasteable repro command, a `journal_tail.txt` with the online
//! checker's last records, optionally a pre-violation `.ckpt`, and (for
//! chaos failures) a shrunk `chaos_repro.txt`. This module owns the pieces
//! all four callers previously triplicated in `src/bin/norush.rs` and
//! [`crate::fuzz`]: marker naming, stale-bundle rotation, and the
//! journal-tail/checkpoint writers.

use std::io;
use std::path::{Path, PathBuf};

use crate::machine::Machine;

/// Files that mark a triage bundle from a previous failing run. A directory
/// containing any of these is rotated aside by [`rotate_stale_bundle`]
/// before a new bundle is written.
pub const BUNDLE_MARKERS: &[&str] = &[
    "soak_failure.txt",
    "fuzz_failure.txt",
    "explore_failure.txt",
    "chaos_repro.txt",
    "journal_tail.txt",
];

/// Moves any existing triage bundle in `dir` aside to a numbered sibling
/// (`<dir>.1`, `<dir>.2`, ...) so a new failure never silently overwrites
/// an old repro. The bundle is the marker files plus any `.ckpt` files.
/// Fails clearly when every rotation slot is taken.
pub fn rotate_stale_bundle(dir: &Path) -> io::Result<()> {
    let mut stale: Vec<PathBuf> = BUNDLE_MARKERS
        .iter()
        .map(|m| dir.join(m))
        .filter(|p| p.exists())
        .collect();
    if stale.is_empty() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)?.flatten() {
        let p = entry.path();
        if p.extension().is_some_and(|e| e == "ckpt") {
            stale.push(p);
        }
    }
    // `run` defaults its bundle to the working directory, which cannot be
    // renamed out from under us — rotate into a named sibling instead.
    let base = if dir == Path::new(".") {
        PathBuf::from("repro_prev")
    } else {
        dir.to_path_buf()
    };
    let slot = (1..1000)
        .map(|n| PathBuf::from(format!("{}.{n}", base.display())))
        .find(|p| !p.exists())
        .ok_or_else(|| {
            io::Error::other(format!(
                "{}: over 999 rotated triage bundles; clean some up",
                base.display()
            ))
        })?;
    std::fs::create_dir_all(&slot)?;
    for p in &stale {
        let dst = slot.join(p.file_name().expect("bundle files have names"));
        std::fs::rename(p, &dst).map_err(|e| {
            io::Error::other(format!(
                "rotating {} to {}: {e}",
                p.display(),
                dst.display()
            ))
        })?;
    }
    eprintln!(
        "note: moved previous triage bundle in {} to {}",
        dir.display(),
        slot.display()
    );
    Ok(())
}

/// Creates `dir` and rotates any leftover bundle aside — call once before
/// writing a fresh bundle (or before a run that might produce one).
pub fn prepare_repro_dir(dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    rotate_stale_bundle(dir)
}

/// Writes the failure description `desc` to `<dir>/<marker>` and returns the
/// path. `marker` should be one of [`BUNDLE_MARKERS`] so rotation finds it.
pub fn write_failure(dir: &Path, marker: &str, desc: &str) -> io::Result<PathBuf> {
    debug_assert!(BUNDLE_MARKERS.contains(&marker), "unknown marker {marker}");
    let path = dir.join(marker);
    std::fs::write(&path, desc)?;
    Ok(path)
}

/// Writes the machine's online-checker journal tail to
/// `<dir>/journal_tail.txt`. Returns the path, or `None` when the machine
/// has no online checker (nothing is written).
pub fn write_journal_tail(dir: &Path, m: &Machine) -> io::Result<Option<PathBuf>> {
    let Some(checker) = m.online_checker() else {
        return Ok(None);
    };
    let mut tail = String::new();
    for (idx, rec) in (checker.tail_start_index()..).zip(checker.tail()) {
        tail.push_str(&format!("{idx}: {rec:?}\n"));
    }
    let path = dir.join("journal_tail.txt");
    std::fs::write(&path, tail)?;
    Ok(Some(path))
}

/// Writes pre-violation checkpoint bytes to `<dir>/<name>` (the name must
/// end in `.ckpt` so rotation finds it) and returns the path.
pub fn write_checkpoint_file(dir: &Path, name: &str, bytes: &[u8]) -> io::Result<PathBuf> {
    debug_assert!(name.ends_with(".ckpt"), "checkpoint files end in .ckpt");
    let path = dir.join(name);
    std::fs::write(&path, bytes)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("norush-triage-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn rotation_moves_markers_and_ckpts_aside() {
        let d = tmpdir("rotate");
        std::fs::write(d.join("explore_failure.txt"), "old").unwrap();
        std::fs::write(d.join("explore.ckpt"), "old-ckpt").unwrap();
        std::fs::write(d.join("unrelated.json"), "keep").unwrap();
        prepare_repro_dir(&d).unwrap();
        assert!(!d.join("explore_failure.txt").exists());
        assert!(!d.join("explore.ckpt").exists());
        assert!(d.join("unrelated.json").exists(), "non-bundle files stay");
        let slot = PathBuf::from(format!("{}.1", d.display()));
        assert!(slot.join("explore_failure.txt").exists());
        assert!(slot.join("explore.ckpt").exists());
        // A second rotation takes the next slot.
        std::fs::write(d.join("explore_failure.txt"), "new").unwrap();
        prepare_repro_dir(&d).unwrap();
        assert!(PathBuf::from(format!("{}.2", d.display())).exists());
        let _ = std::fs::remove_dir_all(&d);
        let _ = std::fs::remove_dir_all(&slot);
        let _ = std::fs::remove_dir_all(PathBuf::from(format!("{}.2", d.display())));
    }

    #[test]
    fn clean_dir_needs_no_rotation() {
        let d = tmpdir("clean");
        prepare_repro_dir(&d).unwrap();
        assert!(!PathBuf::from(format!("{}.1", d.display())).exists());
        let path = write_failure(&d, "explore_failure.txt", "desc\n").unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "desc\n");
        let _ = std::fs::remove_dir_all(&d);
    }
}
