//! Failing-seed shrinker for chaos configurations.
//!
//! When a chaos run fails (watchdog stall, protocol violation, oracle
//! mismatch), the raw failing [`FaultConfig`] usually has every knob turned
//! up, which makes the repro noisy: most of the injected faults are
//! irrelevant to the bug. [`shrink_chaos`] minimizes the configuration while
//! preserving the failure, the way property-testing shrinkers do:
//!
//! 1. **Greedy elimination** — try zeroing each knob (extra latency, drop,
//!    duplicate, corrupt) outright, keeping any zeroing that still fails,
//!    and repeat until no knob can be removed.
//! 2. **Binary search** — for each surviving knob, binary-search the
//!    smallest value that still fails.
//!
//! The predicate runs a full simulation per probe, so the driver should use
//! a workload that fails quickly. Total probes are bounded by
//! `O(knobs² + knobs·log(max value))` — a few dozen runs in practice.

use row_common::config::FaultConfig;

/// The tunable fault knobs, in shrink order.
const KNOBS: usize = 4;

fn get(cfg: &FaultConfig, k: usize) -> u64 {
    match k {
        0 => cfg.max_extra_latency,
        1 => u64::from(cfg.drop_ppm),
        2 => u64::from(cfg.dup_ppm),
        3 => u64::from(cfg.corrupt_ppm),
        _ => unreachable!("knob index"),
    }
}

fn set(cfg: &mut FaultConfig, k: usize, v: u64) {
    match k {
        0 => cfg.max_extra_latency = v,
        1 => cfg.drop_ppm = v as u32,
        2 => cfg.dup_ppm = v as u32,
        3 => cfg.corrupt_ppm = v as u32,
        _ => unreachable!("knob index"),
    }
}

/// Minimizes `initial` — which must fail — under the failure predicate
/// `fails`, returning the smallest configuration found that still fails.
/// The RNG seed is never changed; only fault intensities shrink.
///
/// The returned configuration is guaranteed to satisfy `fails` (it is only
/// ever moved to probed-and-failing candidates).
pub fn shrink_chaos(
    initial: FaultConfig,
    mut fails: impl FnMut(&FaultConfig) -> bool,
) -> FaultConfig {
    let mut cur = initial;
    // Phase 1: greedily zero whole knobs until fixpoint.
    loop {
        let mut progress = false;
        for k in 0..KNOBS {
            if get(&cur, k) == 0 {
                continue;
            }
            let mut cand = cur;
            set(&mut cand, k, 0);
            if fails(&cand) {
                cur = cand;
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }
    // Phase 2: binary-search each surviving knob down to its minimal
    // failing value. `hi` always names a probed-and-failing value.
    for k in 0..KNOBS {
        let mut hi = get(&cur, k);
        if hi == 0 {
            continue;
        }
        let mut lo = 0u64;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let mut cand = cur;
            set(&mut cand, k, mid);
            if fails(&cand) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        set(&mut cur, k, hi);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full() -> FaultConfig {
        FaultConfig {
            seed: 7,
            max_extra_latency: 40,
            drop_ppm: 10_000,
            dup_ppm: 10_000,
            corrupt_ppm: 10_000,
        }
    }

    #[test]
    fn single_knob_threshold_shrinks_to_threshold() {
        let mut probes = 0u32;
        let min = shrink_chaos(full(), |c| {
            probes += 1;
            c.drop_ppm >= 137
        });
        assert_eq!(min.drop_ppm, 137);
        assert_eq!(min.max_extra_latency, 0);
        assert_eq!(min.dup_ppm, 0);
        assert_eq!(min.corrupt_ppm, 0);
        assert_eq!(min.seed, 7, "seed must never change");
        assert!(probes < 64, "shrink took {probes} probes");
    }

    #[test]
    fn conjunction_keeps_both_knobs_minimal() {
        let min = shrink_chaos(full(), |c| c.dup_ppm > 0 && c.max_extra_latency >= 5);
        assert_eq!(min.dup_ppm, 1);
        assert_eq!(min.max_extra_latency, 5);
        assert_eq!(min.drop_ppm, 0);
        assert_eq!(min.corrupt_ppm, 0);
    }

    #[test]
    fn result_always_fails() {
        // An awkward predicate (fails only on even drop rates above 100):
        // whatever comes out must itself satisfy it.
        let pred = |c: &FaultConfig| c.drop_ppm > 100 && c.drop_ppm.is_multiple_of(2);
        let mut cfg = full();
        cfg.drop_ppm = 10_000;
        assert!(pred(&cfg));
        let min = shrink_chaos(cfg, pred);
        assert!(pred(&min), "shrunk config no longer fails: {min:?}");
    }

    #[test]
    fn everything_irrelevant_shrinks_to_nothing() {
        let min = shrink_chaos(full(), |_| true);
        assert_eq!(
            (
                min.max_extra_latency,
                min.drop_ppm,
                min.dup_ppm,
                min.corrupt_ppm
            ),
            (0, 0, 0, 0)
        );
    }
}
