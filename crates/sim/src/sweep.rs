//! The declarative sweep engine: every paper figure as a parallel grid run.
//!
//! Each evaluation figure is a grid of `(benchmark × variant ×
//! config-override × seed)` cells, and every cell is one deterministic,
//! state-sharing-free [`Machine`] run — so the sweep layer is embarrassingly
//! parallel at the host level. This module turns the hand-rolled sequential
//! loops the figure binaries used to carry into one engine:
//!
//! * [`Job`] / [`JobSpec`] / [`Variant`] — one declarative cell: which
//!   benchmark, which policy knobs, which scale, which seed.
//! * [`Sweep`] — a named collection of jobs, built from grid axes
//!   ([`Sweep::grid`]) or pushed individually ([`Sweep::push`]).
//! * [`Sweep::run`] — a std-only scoped-thread worker pool that pulls jobs
//!   from a shared queue, retries cycle-budget timeouts once with a raised
//!   budget, reports per-job progress through a callback, and aggregates
//!   results **in job order regardless of completion order**, so `--jobs 8`
//!   is byte-identical to `--jobs 1`.
//! * [`FigureResults`] — the unified `BENCH_<figure>.json` container every
//!   figure binary writes (schema in `results/README.md`): figure id, config
//!   fingerprint, per-job stats, wall-clock, workers used. The file is
//!   rewritten atomically after every finished job, so a killed sweep leaves
//!   a loadable partial result.
//! * Resume — [`SweepOptions::resume`] loads an existing results file and
//!   skips every job whose config fingerprint matches a stored cell; a
//!   killed `paper`-scale sweep restarts from the first missing cell. This
//!   composes with per-run checkpointing ([`SweepOptions::checkpoint`]):
//!   the cell that was mid-flight when the process died resumes from its
//!   on-disk machine checkpoint instead of from cycle zero.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use row_common::config::{AtomicPlacement, AtomicPolicy, FenceModel};
use row_common::json::{escape, parse, Value};
use row_common::persist::fnv1a;
use row_common::stats::JobStats;
use row_workloads::{Benchmark, MicroRmw, MicroVariant};

use crate::experiment::{
    bench_streams, microbench_cycle_limit, run_microbench_result, ExperimentConfig, RowVariant,
};
use crate::machine::{Machine, RunResult, SimError};

/// Schema identifier stamped into every `BENCH_<figure>.json`.
pub const FIGURE_SCHEMA: &str = "norush-figure-v1";

/// Budget multiplier applied when a timed-out job is retried.
pub const RETRY_BUDGET_FACTOR: u64 = 4;

/// A named policy/placement/structure configuration — one point on the
/// "variant" axis of a sweep grid.
#[derive(Clone, Debug, PartialEq)]
pub struct Variant {
    /// Short name used in job labels (`"eager"`, `"RW+Dir_U/D+fwd"`, `"aq4"`).
    pub name: String,
    /// The atomic execution policy.
    pub policy: AtomicPolicy,
    /// Store→atomic forwarding enabled.
    pub forwarding: bool,
    /// Near (cache-locked) or far (at-home) atomic placement.
    pub placement: AtomicPlacement,
    /// Atomic Queue depth override (`None` keeps the scale's default).
    pub aq_entries: Option<usize>,
}

impl Variant {
    /// A custom-named variant of `policy` with all structure knobs default.
    pub fn custom(name: impl Into<String>, policy: AtomicPolicy) -> Self {
        Variant {
            name: name.into(),
            policy,
            forwarding: false,
            placement: AtomicPlacement::default(),
            aq_entries: None,
        }
    }

    /// The always-eager baseline.
    pub fn eager() -> Self {
        Variant::custom("eager", AtomicPolicy::Eager)
    }

    /// Always-lazy execution.
    pub fn lazy() -> Self {
        Variant::custom("lazy", AtomicPolicy::Lazy)
    }

    /// Eager with store→atomic forwarding (Fig. 13's `eager+Fwd`).
    pub fn eager_fwd() -> Self {
        Variant::custom("eager+fwd", AtomicPolicy::Eager).with_forwarding()
    }

    /// Far atomics: the RMW executes at the home directory bank.
    pub fn far() -> Self {
        let mut v = Variant::custom("far", AtomicPolicy::Eager);
        v.placement = AtomicPlacement::Far;
        v
    }

    /// A RoW variant, forwarding disabled (Fig. 9 style).
    pub fn row(v: RowVariant) -> Self {
        Variant::custom(v.name(), AtomicPolicy::Row(v.config()))
    }

    /// A RoW variant with the locality override and forwarding (Fig. 13).
    pub fn row_fwd(v: RowVariant) -> Self {
        Variant::custom(
            format!("{}+fwd", v.name()),
            AtomicPolicy::Row(v.config().with_locality_override(true)),
        )
        .with_forwarding()
    }

    /// Returns the variant with store→atomic forwarding enabled.
    pub fn with_forwarding(mut self) -> Self {
        self.forwarding = true;
        self
    }

    /// Returns the variant with an Atomic Queue depth override.
    pub fn with_aq_entries(mut self, entries: usize) -> Self {
        self.aq_entries = Some(entries);
        self
    }
}

/// What one sweep cell simulates.
#[derive(Clone, Debug, PartialEq)]
#[allow(clippy::large_enum_variant)] // specs are built once per cell, never in bulk
pub enum JobSpec {
    /// A multicore benchmark run under a [`Variant`] at a given scale.
    Bench {
        /// The workload.
        bench: Benchmark,
        /// Policy/placement/structure knobs.
        variant: Variant,
        /// Scale, seed, and robustness configuration.
        exp: ExperimentConfig,
    },
    /// A single-core Fig. 2 microbenchmark cell.
    Micro {
        /// The RMW instruction under test.
        rmw: MicroRmw,
        /// Plain/`lock`/`mfence` combination.
        variant: MicroVariant,
        /// Fenced (old-core) or unfenced (modern-core) model.
        fence: FenceModel,
        /// Loop iterations.
        iterations: u64,
    },
}

/// One cell of a sweep: a unique label plus the spec to simulate.
#[derive(Clone, Debug, PartialEq)]
pub struct Job {
    /// Unique-within-the-sweep display label, e.g. `"canneal/eager"`.
    pub label: String,
    /// What to run.
    pub spec: JobSpec,
}

impl Job {
    /// The job's config fingerprint: an FNV-1a hash over the label and the
    /// complete spec (benchmark, variant knobs, scale, seed, robustness
    /// config). Two jobs agree on their fingerprint exactly when they would
    /// run the same simulation — this is what sweep resume matches on.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(format!("{}|{:?}", self.label, self.spec).as_bytes())
    }
}

/// A declarative experiment sweep: the unit every figure binary submits.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Figure identifier (`"fig01"`, `"headline"`, …); names the results
    /// file `BENCH_<figure>.json`.
    pub figure: String,
    /// The base scale, recorded in the results header.
    pub exp: ExperimentConfig,
    /// The cells, in deterministic declaration order.
    pub jobs: Vec<Job>,
}

impl Sweep {
    /// An empty sweep for `figure` at scale `exp`.
    pub fn new(figure: impl Into<String>, exp: &ExperimentConfig) -> Self {
        Sweep {
            figure: figure.into(),
            exp: *exp,
            jobs: Vec::new(),
        }
    }

    /// Builds the full `(benchmark × variant × seed)` grid. With an empty
    /// `seeds` slice the base scale's seed is used and labels are
    /// `"<bench>/<variant>"`; with explicit seeds each cell is labelled
    /// `"<bench>/<variant>@s<seed>"`.
    pub fn grid(
        figure: impl Into<String>,
        exp: &ExperimentConfig,
        benches: &[Benchmark],
        variants: &[Variant],
        seeds: &[u64],
    ) -> Self {
        let mut sweep = Sweep::new(figure, exp);
        for &bench in benches {
            for variant in variants {
                if seeds.is_empty() {
                    sweep.push(
                        format!("{}/{}", bench.name(), variant.name),
                        JobSpec::Bench {
                            bench,
                            variant: variant.clone(),
                            exp: *exp,
                        },
                    );
                } else {
                    for &seed in seeds {
                        let mut cell = *exp;
                        cell.seed = seed;
                        sweep.push(
                            format!("{}/{}@s{}", bench.name(), variant.name, seed),
                            JobSpec::Bench {
                                bench,
                                variant: variant.clone(),
                                exp: cell,
                            },
                        );
                    }
                }
            }
        }
        sweep
    }

    /// Appends one cell.
    ///
    /// # Panics
    /// Panics if `label` repeats an existing cell's label — lookups and
    /// resume both key on labels being unique.
    pub fn push(&mut self, label: impl Into<String>, spec: JobSpec) {
        let label = label.into();
        assert!(
            self.jobs.iter().all(|j| j.label != label),
            "duplicate sweep label `{label}`"
        );
        self.jobs.push(Job { label, spec });
    }

    /// The sweep-wide config fingerprint: a hash over the figure id and
    /// every job fingerprint, in order. A results file whose header carries
    /// a different value belongs to a different sweep definition and is
    /// ignored by resume.
    pub fn config_fingerprint(&self) -> u64 {
        let mut text = self.figure.clone();
        for job in &self.jobs {
            text.push_str(&format!("|{:016x}", job.fingerprint()));
        }
        fnv1a(text.as_bytes())
    }

    /// Executes the sweep and returns the complete, job-ordered results.
    ///
    /// Worker threads pull cells from a shared queue; a cell that fails with
    /// [`SimError::Timeout`] is retried once with a [`RETRY_BUDGET_FACTOR`]×
    /// cycle budget when [`SweepOptions::retry_timeouts`] is set. When
    /// [`SweepOptions::results_path`] is set the results file is rewritten
    /// (atomically) after every finished job; with
    /// [`SweepOptions::resume`] also set, cells already present in that file
    /// under matching fingerprints are returned from cache without
    /// simulating.
    ///
    /// # Errors
    /// The first failing job **in declaration order** as
    /// [`SweepError::Job`]; remaining workers stop picking up new cells once
    /// any job fails. [`SweepError::Io`] when the results file cannot be
    /// written.
    pub fn run(&self, opts: &SweepOptions<'_>) -> Result<FigureResults, SweepError> {
        let t0 = Instant::now();
        let fingerprints: Vec<u64> = self.jobs.iter().map(Job::fingerprint).collect();
        let config_fingerprint = self.config_fingerprint();
        let total = self.jobs.len();
        let slots: Vec<Mutex<Option<JobRecord>>> =
            self.jobs.iter().map(|_| Mutex::new(None)).collect();

        // Resume: prefill slots from an existing results file, keyed by
        // per-job fingerprint, but only when the file describes this sweep.
        if opts.resume {
            if let Some(path) = &opts.results_path {
                if let Ok(prev) = FigureResults::load(path) {
                    if prev.config_fingerprint == config_fingerprint {
                        for (i, job) in self.jobs.iter().enumerate() {
                            if let Some(rec) = prev
                                .jobs
                                .iter()
                                .find(|r| r.fingerprint == fingerprints[i] && r.label == job.label)
                            {
                                let mut cached = rec.clone();
                                cached.from_cache = true;
                                *slots[i].lock().expect("poisoned") = Some(cached);
                                if let Some(cb) = opts.progress {
                                    cb(&SweepEvent::Cached {
                                        index: i,
                                        total,
                                        label: &job.label,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }

        let pending: Vec<usize> = (0..total)
            .filter(|&i| slots[i].lock().expect("poisoned").is_none())
            .collect();
        let workers = opts.workers.clamp(1, pending.len().max(1));
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let persist_guard = Mutex::new(());
        let errors: Vec<Mutex<Option<SimError>>> =
            self.jobs.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= pending.len() {
                        break;
                    }
                    let i = pending[k];
                    let job = &self.jobs[i];
                    if let Some(cb) = opts.progress {
                        cb(&SweepEvent::Started {
                            index: i,
                            total,
                            label: &job.label,
                        });
                    }
                    let started = Instant::now();
                    let ckpt = opts.checkpoint.as_ref().map(|c| {
                        (
                            c.every,
                            c.dir
                                .join(format!("{}_{:016x}.ckpt", self.figure, fingerprints[i])),
                        )
                    });
                    let (outcome, retried) = run_with_retry(&job.spec, opts.retry_timeouts, &ckpt);
                    match outcome {
                        Ok(result) => {
                            let record = JobRecord {
                                label: job.label.clone(),
                                fingerprint: fingerprints[i],
                                stats: JobStats::from(&result),
                                wall_s: started.elapsed().as_secs_f64(),
                                retried,
                                from_cache: false,
                            };
                            let wall_s = record.wall_s;
                            *slots[i].lock().expect("poisoned") = Some(record);
                            if let Some(cb) = opts.progress {
                                cb(&SweepEvent::Finished {
                                    index: i,
                                    total,
                                    label: &job.label,
                                    wall_s,
                                    retried,
                                });
                            }
                            if let Some(path) = &opts.results_path {
                                let _g = persist_guard.lock().expect("poisoned");
                                let partial = assemble(
                                    self,
                                    config_fingerprint,
                                    workers,
                                    t0.elapsed().as_secs_f64(),
                                    &slots,
                                );
                                // Persist best-effort: an unwritable partial
                                // file must not kill the sweep mid-flight;
                                // the final save reports the error.
                                let _ = partial.save(path);
                            }
                        }
                        Err(e) => {
                            *errors[i].lock().expect("poisoned") = Some(e);
                            abort.store(true, Ordering::Relaxed);
                        }
                    }
                });
            }
        });

        for (i, e) in errors.iter().enumerate() {
            if let Some(err) = e.lock().expect("poisoned").take() {
                return Err(SweepError::Job {
                    label: self.jobs[i].label.clone(),
                    error: Box::new(err),
                });
            }
        }
        let results = assemble(
            self,
            config_fingerprint,
            workers,
            t0.elapsed().as_secs_f64(),
            &slots,
        );
        debug_assert_eq!(results.jobs.len(), total, "every slot filled");
        if let Some(path) = &opts.results_path {
            results
                .save(path)
                .map_err(|e| SweepError::Io(format!("{}: {e}", path.display())))?;
        }
        Ok(results)
    }
}

/// Collects the filled slots, in job order, into a [`FigureResults`].
fn assemble(
    sweep: &Sweep,
    config_fingerprint: u64,
    jobs_used: usize,
    wall_s: f64,
    slots: &[Mutex<Option<JobRecord>>],
) -> FigureResults {
    let jobs: Vec<JobRecord> = slots
        .iter()
        .filter_map(|s| s.lock().expect("poisoned").clone())
        .collect();
    FigureResults {
        figure: sweep.figure.clone(),
        cores: sweep.exp.cores,
        instructions_per_core: sweep.exp.instructions,
        config_fingerprint,
        jobs_used,
        wall_s,
        jobs,
    }
}

/// Executes one spec, retrying a cycle-budget timeout once with a raised
/// budget when `retry` is set. Returns the outcome and whether a retry ran.
fn run_with_retry(
    spec: &JobSpec,
    retry: bool,
    ckpt: &Option<(u64, PathBuf)>,
) -> (Result<RunResult, SimError>, bool) {
    match execute(spec, 1, ckpt) {
        Err(SimError::Timeout(t)) if retry => {
            let _ = t; // first-attempt diagnostics are superseded by the retry
            (execute(spec, RETRY_BUDGET_FACTOR, ckpt), true)
        }
        other => (other, false),
    }
}

/// Runs one cell with its cycle budget scaled by `budget_factor`.
fn execute(
    spec: &JobSpec,
    budget_factor: u64,
    ckpt: &Option<(u64, PathBuf)>,
) -> Result<RunResult, SimError> {
    match spec {
        JobSpec::Bench {
            bench,
            variant,
            exp,
        } => {
            let mut sys = exp
                .system()
                .with_policy(variant.policy)
                .with_forward_to_atomics(variant.forwarding)
                .with_placement(variant.placement);
            if let Some(aq) = variant.aq_entries {
                sys.core.aq_entries = aq;
            }
            let limit = exp.cycle_limit.saturating_mul(budget_factor);
            let mut machine = Machine::new(&sys, bench_streams(*bench, exp));
            match ckpt {
                None => machine.run(limit),
                Some((every, path)) => {
                    if path.exists() {
                        let bytes = crate::checkpoint::read_checkpoint(path)
                            .map_err(SimError::Checkpoint)?;
                        machine.restore(&bytes)?;
                    }
                    let r = machine.run_checkpointed(limit, *every, path)?;
                    // The cell completed; a later resume must not replay a
                    // finished machine.
                    std::fs::remove_file(path).ok();
                    Ok(r)
                }
            }
        }
        JobSpec::Micro {
            rmw,
            variant,
            fence,
            iterations,
        } => run_microbench_result(
            *rmw,
            *variant,
            *fence,
            *iterations,
            microbench_cycle_limit(*iterations).saturating_mul(budget_factor),
        ),
    }
}

impl From<&RunResult> for JobStats {
    fn from(r: &RunResult) -> JobStats {
        JobStats {
            cycles: r.cycles,
            committed: r.total.committed,
            atomics: r.total.atomics,
            contended_atomics: r.total.contended_atomics,
            atomics_eager: r.total.atomics_eager,
            atomics_lazy: r.total.atomics_lazy,
            atomics_forwarded: r.total.atomics_forwarded,
            locality_overrides: r.total.locality_overrides,
            remote_fills: r.remote_fills,
            miss_latency_mean: r.miss_latency.mean(),
            older_unexecuted_mean: r.total.older_unexecuted_at_issue.mean(),
            younger_started_mean: r.total.younger_started_at_issue.mean(),
            breakdown_dispatch_to_issue: r.total.breakdown.dispatch_to_issue.mean(),
            breakdown_issue_to_lock: r.total.breakdown.issue_to_lock.mean(),
            breakdown_lock_to_unlock: r.total.breakdown.lock_to_unlock.mean(),
            branch_miss_rate: r.branch_miss_rate,
            accuracy: r.accuracy,
            transport: r.transport,
        }
    }
}

/// Per-run checkpointing for sweep cells (PR 3 composition): each benchmark
/// cell writes `<dir>/<figure>_<fingerprint>.ckpt` every `every` cycles and
/// resumes from it when present.
#[derive(Clone, Debug)]
pub struct SweepCheckpoint {
    /// Cycles between checkpoint writes.
    pub every: u64,
    /// Directory the per-cell checkpoint files live in.
    pub dir: PathBuf,
}

/// Progress reported through [`SweepOptions::progress`].
#[derive(Clone, Copy, Debug)]
pub enum SweepEvent<'a> {
    /// A worker picked up a job.
    Started {
        /// Job index in declaration order.
        index: usize,
        /// Total jobs in the sweep.
        total: usize,
        /// The job's label.
        label: &'a str,
    },
    /// A job completed.
    Finished {
        /// Job index in declaration order.
        index: usize,
        /// Total jobs in the sweep.
        total: usize,
        /// The job's label.
        label: &'a str,
        /// Host wall-clock seconds the job took.
        wall_s: f64,
        /// Whether the job needed a raised-budget retry.
        retried: bool,
    },
    /// A job was satisfied from the results file without running (resume).
    Cached {
        /// Job index in declaration order.
        index: usize,
        /// Total jobs in the sweep.
        total: usize,
        /// The job's label.
        label: &'a str,
    },
}

/// Execution knobs for [`Sweep::run`].
pub struct SweepOptions<'a> {
    /// Worker threads (≥ 1; clamped to the number of pending jobs).
    pub workers: usize,
    /// Retry a [`SimError::Timeout`] once with a raised budget.
    pub retry_timeouts: bool,
    /// Where to persist/load `BENCH_<figure>.json` (incremental writes).
    pub results_path: Option<PathBuf>,
    /// Skip jobs already present in `results_path` (fingerprint-matched).
    pub resume: bool,
    /// Per-cell machine checkpointing (crash resilience inside a cell).
    pub checkpoint: Option<SweepCheckpoint>,
    /// Per-job progress callback (called from worker threads).
    pub progress: Option<&'a (dyn Fn(&SweepEvent<'_>) + Sync)>,
}

impl Default for SweepOptions<'_> {
    fn default() -> Self {
        SweepOptions {
            workers: available_workers(),
            retry_timeouts: true,
            results_path: None,
            resume: false,
            checkpoint: None,
            progress: None,
        }
    }
}

/// The host's available parallelism (≥ 1) — the default worker count.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Runs `f` over every item on a scoped-thread worker pool and returns the
/// results **in item order regardless of completion order** — the same
/// discipline [`Sweep::run`] uses, factored out for callers (the fuzzer)
/// whose work items are not figure jobs. `workers` is clamped to
/// `[1, items.len()]`; the callback receives `(index, item)`.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = workers.max(1).min(items.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= items.len() {
                    break;
                }
                let r = f(k, &items[k]);
                *slots[k].lock().expect("worker never panics holding a slot") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("worker never panics holding a slot")
                .expect("every slot is filled before the scope ends")
        })
        .collect()
}

/// A sweep failure.
#[derive(Debug)]
pub enum SweepError {
    /// A job's simulation failed (first failure in declaration order).
    Job {
        /// The failing job's label.
        label: String,
        /// The underlying simulation error.
        error: Box<SimError>,
    },
    /// The results file could not be written.
    Io(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Job { label, error } => write!(f, "job `{label}` failed: {error}"),
            SweepError::Io(e) => write!(f, "cannot write sweep results: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// One finished cell in a [`FigureResults`].
#[derive(Clone, Debug, PartialEq)]
pub struct JobRecord {
    /// The job's label.
    pub label: String,
    /// The job's config fingerprint (resume key).
    pub fingerprint: u64,
    /// Every metric the figure tables need.
    pub stats: JobStats,
    /// Host wall-clock seconds (0.0 for cells loaded from cache).
    pub wall_s: f64,
    /// Whether the run needed a raised-budget retry.
    pub retried: bool,
    /// Whether the record came from an existing results file.
    pub from_cache: bool,
}

/// The unified per-figure results container behind `BENCH_<figure>.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct FigureResults {
    /// Figure identifier.
    pub figure: String,
    /// Cores per simulated machine at this scale.
    pub cores: usize,
    /// Instructions per thread at this scale.
    pub instructions_per_core: u64,
    /// Sweep-wide config fingerprint (see [`Sweep::config_fingerprint`]).
    pub config_fingerprint: u64,
    /// Worker threads the producing run used.
    pub jobs_used: usize,
    /// Total sweep wall-clock in seconds.
    pub wall_s: f64,
    /// Finished cells, in declaration order (a partial file holds a prefix
    /// subset).
    pub jobs: Vec<JobRecord>,
}

impl FigureResults {
    /// Looks a cell up by label.
    pub fn get(&self, label: &str) -> Option<&JobStats> {
        self.jobs
            .iter()
            .find(|j| j.label == label)
            .map(|j| &j.stats)
    }

    /// Looks a cell up by label, panicking with the available labels on a
    /// miss — figure binaries use this because a missing cell is a bug in
    /// the sweep declaration, not a runtime condition.
    ///
    /// # Panics
    /// When no cell is labelled `label`.
    pub fn stat(&self, label: &str) -> &JobStats {
        self.get(label).unwrap_or_else(|| {
            panic!(
                "no sweep cell labelled `{label}`; have: {}",
                self.jobs
                    .iter()
                    .map(|j| j.label.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
    }

    /// A cell's cycle count as `f64` (ratio arithmetic convenience).
    ///
    /// # Panics
    /// When no cell is labelled `label`.
    pub fn cycles(&self, label: &str) -> f64 {
        self.stat(label).cycles as f64
    }

    /// Serializes the full results file, wall-clock fields included.
    pub fn to_json(&self) -> String {
        self.render(false)
    }

    /// The deterministic view: identical runs produce byte-identical
    /// canonical JSON regardless of worker count or host speed (wall-clock
    /// and worker-count fields are zeroed).
    pub fn canonical_json(&self) -> String {
        self.render(true)
    }

    fn render(&self, canonical: bool) -> String {
        let mut rows = String::new();
        for (i, j) in self.jobs.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"label\": \"{}\", \"fingerprint\": \"0x{:016x}\", \"wall_s\": {:.3}, \"retried\": {}, \"stats\": {}}}",
                escape(&j.label),
                j.fingerprint,
                if canonical { 0.0 } else { j.wall_s },
                j.retried,
                j.stats.to_json(),
            ));
        }
        format!(
            concat!(
                "{{\n",
                "  \"schema\": \"{}\",\n",
                "  \"figure\": \"{}\",\n",
                "  \"cores\": {},\n",
                "  \"instructions_per_core\": {},\n",
                "  \"config_fingerprint\": \"0x{:016x}\",\n",
                "  \"jobs_used\": {},\n",
                "  \"wall_s\": {:.3},\n",
                "  \"jobs\": [\n{}\n  ]\n",
                "}}\n"
            ),
            FIGURE_SCHEMA,
            escape(&self.figure),
            self.cores,
            self.instructions_per_core,
            self.config_fingerprint,
            if canonical { 0 } else { self.jobs_used },
            if canonical { 0.0 } else { self.wall_s },
            rows,
        )
    }

    /// Writes the results file atomically (temp file + rename), like the
    /// machine checkpoints: a killed sweep leaves either the previous or the
    /// new complete file, never a torn one.
    ///
    /// # Errors
    /// Any filesystem failure.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Loads and validates a results file.
    ///
    /// # Errors
    /// `InvalidData` on parse failures, schema mismatches, or incomplete
    /// records; plain IO errors otherwise.
    pub fn load(path: &Path) -> std::io::Result<FigureResults> {
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let text = std::fs::read_to_string(path)?;
        let v = parse(&text).map_err(|e| bad(&format!("{}: {e}", path.display())))?;
        if v.get("schema").and_then(Value::as_str) != Some(FIGURE_SCHEMA) {
            return Err(bad("unknown results schema"));
        }
        let fingerprint_of = |v: &Value| -> Option<u64> {
            let s = v.as_str()?;
            u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
        };
        let jobs = v
            .get("jobs")
            .and_then(Value::as_array)
            .ok_or_else(|| bad("missing jobs array"))?
            .iter()
            .map(|j| {
                Some(JobRecord {
                    label: j.get("label")?.as_str()?.to_string(),
                    fingerprint: fingerprint_of(j.get("fingerprint")?)?,
                    stats: JobStats::from_json(j.get("stats")?)?,
                    wall_s: j.get("wall_s")?.as_f64()?,
                    retried: j.get("retried")?.as_bool()?,
                    from_cache: true,
                })
            })
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| bad("incomplete job record"))?;
        Ok(FigureResults {
            figure: v
                .get("figure")
                .and_then(Value::as_str)
                .ok_or_else(|| bad("missing figure id"))?
                .to_string(),
            cores: v
                .get("cores")
                .and_then(Value::as_u64)
                .ok_or_else(|| bad("missing cores"))? as usize,
            instructions_per_core: v
                .get("instructions_per_core")
                .and_then(Value::as_u64)
                .ok_or_else(|| bad("missing instructions_per_core"))?,
            config_fingerprint: v
                .get("config_fingerprint")
                .and_then(fingerprint_of)
                .ok_or_else(|| bad("missing config_fingerprint"))?,
            jobs_used: v
                .get("jobs_used")
                .and_then(Value::as_u64)
                .ok_or_else(|| bad("missing jobs_used"))? as usize,
            wall_s: v
                .get("wall_s")
                .and_then(Value::as_f64)
                .ok_or_else(|| bad("missing wall_s"))?,
            jobs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use row_common::config::CheckConfig;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            cores: 2,
            instructions: 400,
            seed: 7,
            cycle_limit: 10_000_000,
            paper_caches: false,
            check: CheckConfig::default(),
        }
    }

    #[test]
    fn grid_builds_labelled_jobs_in_order() {
        let exp = tiny();
        let s = Sweep::grid(
            "t",
            &exp,
            &[Benchmark::Pc, Benchmark::Sps],
            &[Variant::eager(), Variant::lazy()],
            &[],
        );
        let labels: Vec<&str> = s.jobs.iter().map(|j| j.label.as_str()).collect();
        assert_eq!(labels, ["pc/eager", "pc/lazy", "sps/eager", "sps/lazy"]);
        let seeded = Sweep::grid("t", &exp, &[Benchmark::Pc], &[Variant::eager()], &[1, 2]);
        assert_eq!(seeded.jobs.len(), 2);
        assert_eq!(seeded.jobs[0].label, "pc/eager@s1");
        let JobSpec::Bench { exp: e, .. } = &seeded.jobs[1].spec else {
            panic!("bench spec");
        };
        assert_eq!(e.seed, 2);
    }

    #[test]
    #[should_panic(expected = "duplicate sweep label")]
    fn duplicate_labels_are_rejected() {
        let exp = tiny();
        let mut s = Sweep::new("t", &exp);
        let spec = JobSpec::Bench {
            bench: Benchmark::Pc,
            variant: Variant::eager(),
            exp,
        };
        s.push("a", spec.clone());
        s.push("a", spec);
    }

    #[test]
    fn fingerprints_separate_configs() {
        let exp = tiny();
        let job = |seed: u64| {
            let mut e = exp;
            e.seed = seed;
            Job {
                label: "pc/eager".into(),
                spec: JobSpec::Bench {
                    bench: Benchmark::Pc,
                    variant: Variant::eager(),
                    exp: e,
                },
            }
        };
        assert_eq!(job(7).fingerprint(), job(7).fingerprint());
        assert_ne!(job(7).fingerprint(), job(8).fingerprint());
    }

    #[test]
    fn variant_constructors_set_knobs() {
        assert_eq!(Variant::eager().name, "eager");
        assert!(Variant::eager_fwd().forwarding);
        assert_eq!(Variant::far().placement, AtomicPlacement::Far);
        assert_eq!(Variant::eager().with_aq_entries(4).aq_entries, Some(4));
        assert!(Variant::row_fwd(RowVariant::RwDirUd).name.ends_with("+fwd"));
    }

    #[test]
    fn small_sweep_runs_and_serializes() {
        let exp = tiny();
        let sweep = Sweep::grid(
            "unit",
            &exp,
            &[Benchmark::Pc],
            &[Variant::eager(), Variant::lazy()],
            &[],
        );
        let r = sweep
            .run(&SweepOptions {
                workers: 2,
                ..SweepOptions::default()
            })
            .expect("runs");
        assert_eq!(r.jobs.len(), 2);
        assert!(r.stat("pc/eager").cycles > 0);
        assert_eq!(
            r.stat("pc/eager").committed,
            r.stat("pc/lazy").committed,
            "same trace under both policies"
        );
        let round = parse(&r.to_json()).expect("valid JSON");
        assert_eq!(round.get("figure").and_then(Value::as_str), Some("unit"));
    }

    #[test]
    fn results_file_round_trips() {
        let exp = tiny();
        let sweep = Sweep::grid(
            "roundtrip",
            &exp,
            &[Benchmark::Pc],
            &[Variant::eager()],
            &[],
        );
        let dir = std::env::temp_dir().join(format!("norush_sweep_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_roundtrip.json");
        let r = sweep
            .run(&SweepOptions {
                workers: 1,
                results_path: Some(path.clone()),
                ..SweepOptions::default()
            })
            .expect("runs");
        let loaded = FigureResults::load(&path).expect("loads");
        assert_eq!(loaded.canonical_json(), r.canonical_json());
        assert!(loaded.jobs.iter().all(|j| j.from_cache));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn micro_jobs_run_through_the_engine() {
        let mut sweep = Sweep::new("micro", &tiny());
        sweep.push(
            "faa/plain/unfenced",
            JobSpec::Micro {
                rmw: MicroRmw::Faa,
                variant: MicroVariant {
                    atomic: false,
                    mfence: false,
                },
                fence: FenceModel::Unfenced,
                iterations: 50,
            },
        );
        let r = sweep.run(&SweepOptions::default()).expect("runs");
        assert!(r.stat("faa/plain/unfenced").cycles > 0);
    }

    #[test]
    fn failing_job_reports_its_label() {
        let mut exp = tiny();
        exp.cycle_limit = 10; // cannot finish; retry at 40 cycles still fails
        let sweep = Sweep::grid("fail", &exp, &[Benchmark::Pc], &[Variant::eager()], &[]);
        let err = sweep.run(&SweepOptions::default()).expect_err("times out");
        let SweepError::Job { label, error } = err else {
            panic!("expected a job error");
        };
        assert_eq!(label, "pc/eager");
        assert!(matches!(*error, SimError::Timeout(_)));
    }

    #[test]
    fn timeout_retry_raises_the_budget_and_flags_the_record() {
        let exp = tiny();
        // Find the true cost, then grant just over a quarter of it: the
        // first attempt times out, the 4x retry completes.
        let probe = Sweep::grid("probe", &exp, &[Benchmark::Pc], &[Variant::eager()], &[]);
        let full = probe.run(&SweepOptions::default()).expect("probe runs");
        let cycles = full.stat("pc/eager").cycles;
        let mut starved = exp;
        starved.cycle_limit = cycles / 4 + 1;
        let sweep = Sweep::grid(
            "retry",
            &starved,
            &[Benchmark::Pc],
            &[Variant::eager()],
            &[],
        );
        let r = sweep.run(&SweepOptions::default()).expect("retry saves it");
        assert!(r.jobs[0].retried);
        assert_eq!(r.stat("pc/eager").cycles, cycles, "same deterministic run");
    }
}
