//! Multicore simulation orchestration and the experiment runner.
//!
//! * [`machine`] — [`Machine`]: N cores + the shared memory system stepped
//!   to completion, producing a [`RunResult`] with every metric the paper's
//!   figures need.
//! * [`experiment`] — the per-figure knobs: benchmarks × policies ×
//!   detectors × predictors × forwarding, plus the Fig. 2 microbenchmark
//!   runner and [`ExperimentConfig`] scaling (`quick` vs `paper`).
//! * [`checkpoint`] — the on-disk checkpoint container (atomic writes,
//!   magic/version/config-hash/checksum validation) backing
//!   [`Machine::checkpoint`](machine::Machine::checkpoint) and crash-resilient
//!   sweeps.
//! * [`shrink`] — the failing-chaos-config shrinker: greedy knob
//!   elimination plus per-knob binary search, for minimal fault repros.
//! * [`sweep`] — the declarative sweep engine: each figure as a
//!   [`Sweep`] of `(benchmark × variant × seed)` [`Job`]s executed by a
//!   scoped-thread worker pool with deterministic job-order aggregation,
//!   timeout retry, incremental `BENCH_<figure>.json` persistence
//!   ([`FigureResults`]) and fingerprint-matched resume.
//! * [`fuzz`] — the coverage-guided protocol-schedule fuzzer behind
//!   `norush fuzz`: delay-burst/chaos genomes mutated against the
//!   transition-coverage map, deterministic generation batches over the
//!   sweep worker pool, schedule minimization and soak-style triage on any
//!   violation, and the `norush-fuzz-v1` report.
//! * [`explore`] — the litmus conformance runner and bounded-exhaustive
//!   schedule explorer behind `norush litmus`/`norush explore`: DFS over
//!   message-delivery and atomic-commit decision points with partial-order
//!   reduction and state-hash dedup, checking declared forbidden outcomes
//!   unreachable and allowed outcomes witnessed (`norush-litmus-v1`).
//! * [`triage`] — the shared failure-triage bundle writers (`--repro-dir`
//!   rotation, failure/journal-tail/checkpoint files) used by `run`,
//!   `soak`, `fuzz`, and `explore`.
//!
//! # Example
//!
//! ```no_run
//! use row_sim::{run_eager, run_lazy, ExperimentConfig};
//! use row_workloads::Benchmark;
//!
//! let exp = ExperimentConfig::quick();
//! let eager = run_eager(Benchmark::Pc, &exp)?;
//! let lazy = run_lazy(Benchmark::Pc, &exp)?;
//! println!("pc: lazy/eager = {:.2}", lazy.cycles as f64 / eager.cycles as f64);
//! # Ok::<(), row_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod experiment;
pub mod explore;
pub mod fuzz;
pub mod machine;
pub mod shrink;
pub mod sweep;
pub mod triage;

pub use experiment::{
    bench_streams, microbench_cycle_limit, run_benchmark, run_benchmark_checkpointed, run_eager,
    run_far, run_lazy, run_microbench, run_microbench_result, run_row, run_row_fwd,
    ExperimentConfig, RowVariant,
};
pub use explore::{
    explore, fmt_outcome, run_litmus, run_schedule, run_schedule_full, schedule_from_hex,
    schedule_to_hex, ExploreOptions, ExploreReport, ExploreViolation, ScheduleRun, LITMUS_SCHEMA,
};
pub use fuzz::{
    fuzz, minimize, report_json, write_triage, Finding, FuzzOptions, FuzzOutcome, FuzzState,
    ScheduleGenome, FUZZ_SCHEMA, GEN_CANDIDATES,
};
pub use machine::{Machine, ProfileReport, RewindReport, RunResult, SimError, SimTimeout};
pub use shrink::shrink_chaos;
pub use sweep::{
    available_workers, parallel_map, FigureResults, Job, JobRecord, JobSpec, Sweep,
    SweepCheckpoint, SweepError, SweepEvent, SweepOptions, Variant,
};
