//! The multicore machine: N cores + the shared memory system, stepped in
//! lockstep until every thread's parallel phase drains.

use row_check::{check_coherence, StallReport};
use row_common::config::CheckConfig;
use row_common::stats::{AccuracyCounter, RunningMean};
use row_common::{Cycle, SystemConfig};
use row_cpu::instr::InstrStream;
use row_cpu::{Core, CoreStats};
use row_mem::{MemorySystem, ProtocolError};
use row_common::ids::CoreId;

/// Error returned when a simulation exceeds its cycle budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimTimeout {
    /// The budget that was exhausted.
    pub limit: u64,
    /// Cores that had not drained.
    pub unfinished: Vec<u16>,
    /// Per-core committed-instruction counts at the timeout.
    pub committed: Vec<u64>,
    /// Per-core cycle of the most recent commit.
    pub last_commit: Vec<Cycle>,
    /// Full diagnostic snapshot of the wedged machine.
    pub report: StallReport,
}

impl std::fmt::Display for SimTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation exceeded {} cycles; unfinished cores: {:?}; committed {:?}\n{}",
            self.limit, self.unfinished, self.committed, self.report
        )
    }
}

impl std::error::Error for SimTimeout {}

/// Any way a simulation run can fail.
///
/// The diagnostic payloads are boxed: they carry full per-core snapshots,
/// and `Result<RunResult, SimError>` is on every experiment's hot path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The cycle budget ran out before every core drained.
    Timeout(Box<SimTimeout>),
    /// The deadlock watchdog fired: no core committed for a whole window.
    Stall(Box<StallReport>),
    /// A coherence-protocol invariant was violated (raised by a controller
    /// or found by the periodic invariant sweep).
    Protocol(ProtocolError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Timeout(t) => t.fmt(f),
            SimError::Stall(r) => write!(f, "deadlock watchdog fired\n{r}"),
            SimError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Results of one full simulation run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Parallel-phase execution time: the cycle the last core drained.
    pub cycles: u64,
    /// Aggregate of all cores' statistics.
    pub total: CoreStats,
    /// Per-core statistics.
    pub per_core: Vec<CoreStats>,
    /// Mean L1D miss latency across all demand misses (Fig. 11).
    pub miss_latency: RunningMean,
    /// RoW prediction accuracy, when the RoW policy ran (Fig. 12).
    pub accuracy: Option<AccuracyCounter>,
    /// Fraction of branch predictions that missed.
    pub branch_miss_rate: f64,
    /// Fills served cache-to-cache from remote private caches.
    pub remote_fills: u64,
}

impl RunResult {
    /// Instructions per cycle across the whole machine.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total.committed as f64 / self.cycles as f64
        }
    }
}

/// A simulated multicore machine.
pub struct Machine {
    mem: MemorySystem,
    cores: Vec<Core>,
    check: CheckConfig,
}

impl Machine {
    /// Builds a machine with one core per stream.
    ///
    /// # Panics
    /// Panics if the number of streams does not match `cfg.cores` or the
    /// configuration is invalid.
    pub fn new(cfg: &SystemConfig, streams: Vec<Box<dyn InstrStream>>) -> Self {
        assert_eq!(
            streams.len(),
            cfg.cores,
            "one instruction stream per core required"
        );
        let mem = MemorySystem::new(cfg);
        let cores = streams
            .into_iter()
            .enumerate()
            .map(|(i, s)| Core::new(CoreId::new(i as u16), cfg.core, cfg.mem.l1d.hit_latency, s))
            .collect();
        Machine {
            mem,
            cores,
            check: cfg.check,
        }
    }

    /// Read access to a core (e.g. to enable load recording before running).
    pub fn core_mut(&mut self, i: usize) -> &mut Core {
        &mut self.cores[i]
    }

    /// Read access to the memory system (tests inspect functional state).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable access to the memory system (tests pre-seed values).
    pub fn memory_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Takes a diagnostic snapshot of the machine right now (on-demand
    /// stall/progress report).
    pub fn stall_report(&self, now: Cycle) -> StallReport {
        StallReport::capture(&self.cores, &self.mem, now, None)
    }

    /// Runs the coherence invariant sweep against the current state.
    pub fn check_invariants(&self) -> Result<(), ProtocolError> {
        check_coherence(&self.mem, &self.check)
    }

    /// Runs until every core drains or `limit` cycles elapse.
    ///
    /// Robustness hooks from [`CheckConfig`] run inside the loop: the
    /// coherence invariant sweep every `invariant_every` cycles (and once on
    /// drain), and a deadlock watchdog that fires when no core commits for
    /// `watchdog_window` cycles.
    ///
    /// # Errors
    /// [`SimError::Timeout`] when the budget is exhausted (the error carries
    /// per-core progress counters and a full [`StallReport`]),
    /// [`SimError::Stall`] when the watchdog fires, and
    /// [`SimError::Protocol`] when a coherence invariant is violated.
    pub fn run(&mut self, limit: u64) -> Result<RunResult, SimError> {
        let every = self.check.invariant_every;
        let window = self.check.watchdog_window;
        let mut now = Cycle::ZERO;
        while now.raw() < limit {
            if self.cores.iter().all(|c| c.finished()) {
                break;
            }
            for ev in self.mem.tick(now) {
                let target = match ev {
                    row_mem::MemEvent::Fill { core, .. } => core,
                    row_mem::MemEvent::FarDone { core, .. } => core,
                    row_mem::MemEvent::ExternalObserved { core, .. } => core,
                };
                self.cores[target.index()].handle_mem_event(&ev, now, &mut self.mem);
            }
            for c in self.cores.iter_mut() {
                if !c.finished() {
                    c.cycle(now, &mut self.mem);
                }
            }
            if let Some(e) = self.mem.protocol_error() {
                return Err(SimError::Protocol(e.clone()));
            }
            if let Some(k) = every {
                if now.raw().is_multiple_of(k) {
                    check_coherence(&self.mem, &self.check).map_err(SimError::Protocol)?;
                }
            }
            if let Some(w) = window {
                if now.raw() >= w {
                    let latest = self
                        .cores
                        .iter()
                        .filter(|c| !c.finished())
                        .map(|c| c.last_commit())
                        .max();
                    if latest.is_some_and(|t| now.saturating_since(t) >= w) {
                        return Err(SimError::Stall(Box::new(StallReport::capture(
                            &self.cores,
                            &self.mem,
                            now,
                            Some(w),
                        ))));
                    }
                }
            }
            now += 1;
        }
        if !self.cores.iter().all(|c| c.finished()) {
            return Err(SimError::Timeout(Box::new(SimTimeout {
                limit,
                unfinished: self
                    .cores
                    .iter()
                    .filter(|c| !c.finished())
                    .map(|c| c.id().index() as u16)
                    .collect(),
                committed: self.cores.iter().map(|c| c.stats().committed).collect(),
                last_commit: self.cores.iter().map(|c| c.last_commit()).collect(),
                report: StallReport::capture(&self.cores, &self.mem, now, None),
            })));
        }
        if every.is_some() {
            check_coherence(&self.mem, &self.check).map_err(SimError::Protocol)?;
        }
        Ok(self.collect())
    }

    fn collect(&self) -> RunResult {
        let per_core: Vec<CoreStats> = self.cores.iter().map(|c| c.stats().clone()).collect();
        let mut total = CoreStats::default();
        for s in &per_core {
            total.merge(s);
        }
        let cycles = total.finished_at.map(|c| c.raw()).unwrap_or(0);
        let mut accuracy: Option<AccuracyCounter> = None;
        for c in &self.cores {
            if let Some(a) = c.row_accuracy() {
                accuracy.get_or_insert_with(AccuracyCounter::new).merge(a);
            }
        }
        let (mut preds, mut miss) = (0u64, 0u64);
        for c in &self.cores {
            preds += c.branch_stats().predictions;
            miss += c.branch_stats().mispredictions;
        }
        RunResult {
            cycles,
            total,
            per_core,
            miss_latency: self.mem.stats().miss_latency_all,
            accuracy,
            branch_miss_rate: if preds == 0 {
                0.0
            } else {
                miss as f64 / preds as f64
            },
            remote_fills: self.mem.stats().remote_fills,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use row_common::ids::{Addr, Pc};
    use row_cpu::instr::{Instr, Op, RmwKind, VecStream};

    fn faa_prog(n: u64, addr: u64) -> Box<dyn InstrStream> {
        let prog: Vec<Instr> = (0..n)
            .map(|_| {
                Instr::simple(
                    Pc::new(0x40),
                    Op::Atomic {
                        rmw: RmwKind::Faa(1),
                        addr: Addr::new(addr),
                    },
                )
            })
            .collect();
        Box::new(VecStream::new(prog))
    }

    #[test]
    fn four_core_faa_sums_exactly() {
        let cfg = SystemConfig::small(4);
        let streams: Vec<Box<dyn InstrStream>> =
            (0..4).map(|_| faa_prog(25, 0xabc000)).collect();
        let mut m = Machine::new(&cfg, streams);
        let r = m.run(3_000_000).expect("finishes");
        assert_eq!(m.memory().read_word(Addr::new(0xabc000)), 100);
        assert_eq!(r.total.atomics, 100);
        assert!(r.cycles > 0);
        assert!(r.ipc() > 0.0);
    }

    #[test]
    fn timeout_is_reported_with_progress_and_stall_report() {
        let cfg = SystemConfig::small(2);
        let streams: Vec<Box<dyn InstrStream>> =
            (0..2).map(|_| faa_prog(50, 0xddd000)).collect();
        let mut m = Machine::new(&cfg, streams);
        let err = m.run(10).expect_err("cannot finish in 10 cycles");
        let SimError::Timeout(t) = err else {
            panic!("expected a timeout, got {err}");
        };
        assert_eq!(t.limit, 10);
        assert!(!t.unfinished.is_empty());
        assert_eq!(t.committed.len(), 2);
        assert_eq!(t.last_commit.len(), 2);
        assert_eq!(t.report.cores.len(), 2);
        assert!(!t.to_string().is_empty());
    }

    /// A contended-lock run that exhausts its budget must name the stalled
    /// cores' head instructions in the diagnostic report.
    #[test]
    fn exhausted_contended_run_names_head_instructions() {
        let cfg = SystemConfig::small(4);
        let streams: Vec<Box<dyn InstrStream>> =
            (0..4).map(|_| faa_prog(200, 0xccc000)).collect();
        let mut m = Machine::new(&cfg, streams);
        // Far too small a budget for 800 contended atomics: the machine is
        // wedged mid-handoff when the budget runs out.
        let err = m.run(2_000).expect_err("budget too small");
        let SimError::Timeout(t) = err else {
            panic!("expected a timeout, got {err}");
        };
        // A lucky core can stream its atomics while holding the lock, so
        // only require that several cores are still wedged.
        assert!(t.unfinished.len() >= 2, "unfinished: {:?}", t.unfinished);
        let heads = t.report.cores.iter().filter(|c| c.head.is_some()).count();
        assert!(heads > 0, "no head instruction captured:\n{}", t.report);
        let text = t.report.to_string();
        assert!(text.contains("atomic"), "heads should name atomics:\n{text}");
    }

    /// With a tiny watchdog window, a single long-latency miss trips the
    /// stall detector before any commit happens.
    #[test]
    fn watchdog_fires_on_tiny_window() {
        let mut cfg = SystemConfig::small(2);
        cfg.check.watchdog_window = Some(50);
        let streams: Vec<Box<dyn InstrStream>> =
            (0..2).map(|_| faa_prog(5, 0xeee000)).collect();
        let mut m = Machine::new(&cfg, streams);
        // The first memory-latency miss (> 50 cycles) exceeds the window.
        let err = m.run(1_000_000).expect_err("window far below miss latency");
        let SimError::Stall(report) = err else {
            panic!("expected a stall, got {err}");
        };
        assert_eq!(report.window, Some(50));
        assert_eq!(report.stalled_cores().len(), 2);
    }

    /// A corrupted second Modified owner surfaces from `run` as a protocol
    /// error, not a panic or a silent miscount.
    #[test]
    fn injected_dual_owner_surfaces_as_protocol_error() {
        let cfg = SystemConfig::small(2);
        let streams: Vec<Box<dyn InstrStream>> =
            (0..2).map(|_| faa_prog(40, 0xabc040)).collect();
        let mut m = Machine::new(&cfg, streams);
        m.memory_mut().corrupt_private_state_for_test(
            CoreId::new(0),
            row_common::ids::LineAddr::new(0xabc080 >> 6),
            Some(row_mem::PrivState::M),
        );
        m.memory_mut().corrupt_private_state_for_test(
            CoreId::new(1),
            row_common::ids::LineAddr::new(0xabc080 >> 6),
            Some(row_mem::PrivState::M),
        );
        let err = m.run(3_000_000).expect_err("corruption must be caught");
        assert!(
            matches!(err, SimError::Protocol(ProtocolError::MultipleOwners { .. })),
            "got {err}"
        );
    }

    /// An on-demand snapshot works on a healthy machine too.
    #[test]
    fn on_demand_report_and_invariant_check() {
        let cfg = SystemConfig::small(2);
        let streams: Vec<Box<dyn InstrStream>> =
            (0..2).map(|_| faa_prog(3, 0xaaa000)).collect();
        let mut m = Machine::new(&cfg, streams);
        m.run(3_000_000).expect("drains");
        m.check_invariants().expect("clean machine");
        let r = m.stall_report(Cycle::new(123));
        assert_eq!(r.cores.len(), 2);
        assert!(r.window.is_none());
    }

    #[test]
    #[should_panic(expected = "one instruction stream per core")]
    fn stream_count_must_match() {
        let cfg = SystemConfig::small(2);
        Machine::new(&cfg, vec![faa_prog(1, 0)]);
    }
}
