//! The multicore machine: N cores + the shared memory system, stepped in
//! lockstep until every thread's parallel phase drains.

use std::collections::VecDeque;
use std::path::Path;
use std::time::{Duration, Instant};

use row_check::{check_coherence, IncrementalSweep, StallReport};
use row_common::config::CheckConfig;
use row_common::ids::CoreId;
use row_common::persist::{fnv1a, Codec, Persist, PersistError, Reader, Writer};
use row_common::stats::{AccuracyCounter, RunningMean, TransportStats};
use row_common::{Cycle, SystemConfig};
use row_cpu::instr::InstrStream;
use row_cpu::{Core, CoreStats};
use row_mem::{MemorySystem, OpRecord, ProtocolError};
use row_oracle::{OnlineChecker, OracleMismatch};

use crate::checkpoint::{FORMAT_VERSION, MAGIC};

/// Maximum number of event-trace lines a rewind replay keeps (the most
/// recent events before the first violation).
pub const REWIND_TRACE_LIMIT: usize = 64;

/// Error returned when a simulation exceeds its cycle budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimTimeout {
    /// The budget that was exhausted.
    pub limit: u64,
    /// Cores that had not drained.
    pub unfinished: Vec<u16>,
    /// Per-core committed-instruction counts at the timeout.
    pub committed: Vec<u64>,
    /// Per-core cycle of the most recent commit.
    pub last_commit: Vec<Cycle>,
    /// Full diagnostic snapshot of the wedged machine.
    pub report: StallReport,
}

impl std::fmt::Display for SimTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation exceeded {} cycles; unfinished cores: {:?}; committed {:?}\n{}",
            self.limit, self.unfinished, self.committed, self.report
        )
    }
}

impl std::error::Error for SimTimeout {}

/// Any way a simulation run can fail.
///
/// The diagnostic payloads are boxed: they carry full per-core snapshots,
/// and `Result<RunResult, SimError>` is on every experiment's hot path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The cycle budget ran out before every core drained.
    Timeout(Box<SimTimeout>),
    /// The deadlock watchdog fired: no core committed for a whole window.
    Stall(Box<StallReport>),
    /// A coherence-protocol invariant was violated (raised by a controller
    /// or found by the periodic invariant sweep).
    Protocol(ProtocolError),
    /// A checkpoint could not be written, read, or restored.
    Checkpoint(PersistError),
    /// A violation was detected and replayed from the last in-memory
    /// checkpoint with per-cycle checking (`CheckConfig::rewind_every`); the
    /// report localizes the first offending cycle.
    Rewind(Box<RewindReport>),
    /// The differential end-state oracle (`CheckConfig::oracle`) found the
    /// run's journal inconsistent with a sequential replay — an atomic was
    /// lost, duplicated, or mis-applied even though the run completed.
    Oracle(Box<OracleMismatch>),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Timeout(t) => t.fmt(f),
            SimError::Stall(r) => write!(f, "deadlock watchdog fired\n{r}"),
            SimError::Protocol(e) => write!(f, "protocol error: {e}"),
            SimError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            SimError::Rewind(r) => r.fmt(f),
            SimError::Oracle(m) => write!(f, "oracle mismatch: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

/// The result of a rewind-on-violation replay: the original failure plus the
/// tighter localization obtained by re-running from the last in-memory
/// checkpoint with the invariant sweep on every cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RewindReport {
    /// The error the forward run originally hit (watchdog stall or a
    /// protocol violation found by the periodic sweep).
    pub cause: Box<SimError>,
    /// Cycle of the checkpoint the replay started from.
    pub checkpoint_at: Cycle,
    /// Cycle at which the forward run detected the failure.
    pub detected_at: Cycle,
    /// First cycle at which an invariant actually broke during the
    /// per-cycle replay — at most `detected_at`, usually much earlier.
    /// `None` when the replay reached `detected_at` without a violation
    /// (e.g. a watchdog stall with coherent state throughout).
    pub first_bad_cycle: Option<Cycle>,
    /// The violation found at `first_bad_cycle`, if any.
    pub first_error: Option<ProtocolError>,
    /// The last [`REWIND_TRACE_LIMIT`] memory events delivered before the
    /// replay stopped, formatted `"<cycle>: <event>"`.
    pub trace: Vec<String>,
}

impl std::fmt::Display for RewindReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "rewind replay from checkpoint at cycle {} (detected at cycle {}):",
            self.checkpoint_at.raw(),
            self.detected_at.raw()
        )?;
        match (&self.first_bad_cycle, &self.first_error) {
            (Some(c), Some(e)) => {
                writeln!(f, "  first invariant violation at cycle {}: {e}", c.raw())?
            }
            _ => writeln!(
                f,
                "  no invariant violation reproduced up to the detection cycle"
            )?,
        }
        writeln!(f, "  last {} events before the stop:", self.trace.len())?;
        for line in &self.trace {
            writeln!(f, "    {line}")?;
        }
        write!(f, "original failure: {}", self.cause)
    }
}

impl std::error::Error for RewindReport {}

/// Results of one full simulation run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Parallel-phase execution time: the cycle the last core drained.
    pub cycles: u64,
    /// Aggregate of all cores' statistics.
    pub total: CoreStats,
    /// Per-core statistics.
    pub per_core: Vec<CoreStats>,
    /// Mean L1D miss latency across all demand misses (Fig. 11).
    pub miss_latency: RunningMean,
    /// RoW prediction accuracy, when the RoW policy ran (Fig. 12).
    pub accuracy: Option<AccuracyCounter>,
    /// Fraction of branch predictions that missed.
    pub branch_miss_rate: f64,
    /// Fills served cache-to-cache from remote private caches.
    pub remote_fills: u64,
    /// Recoverable-transport counters, present only when the run used lossy
    /// chaos (drop/duplicate/corrupt injection).
    pub transport: Option<TransportStats>,
}

impl RunResult {
    /// Instructions per cycle across the whole machine.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total.committed as f64 / self.cycles as f64
        }
    }
}

/// Wall-clock breakdown of one profiled run ([`Machine::run_profiled`]):
/// where a simulation's host time actually goes, per component, so hot-path
/// work is measured instead of guessed.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProfileReport {
    /// Host cycles simulated during the profiled slice.
    pub cycles: u64,
    /// Total wall-clock time of the profiled slice, in seconds.
    pub wall_s: f64,
    /// Time inside `MemorySystem::tick` plus event routing to cores.
    pub mem_tick_s: f64,
    /// Time stepping unfinished cores (`Core::cycle`).
    pub core_step_s: f64,
    /// Time in the coherence invariant sweep.
    pub check_s: f64,
    /// Memory events delivered to cores.
    pub events: u64,
    /// `Core::cycle` invocations (active core-steps).
    pub core_steps: u64,
}

impl ProfileReport {
    /// Simulated cycles per wall-clock second — the headline throughput
    /// number the perf-smoke CI job gates on.
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.cycles as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Wall time not attributed to a named component (stats, checkpoint
    /// refresh, loop overhead).
    pub fn other_s(&self) -> f64 {
        (self.wall_s - self.mem_tick_s - self.core_step_s - self.check_s).max(0.0)
    }
}

#[derive(Default)]
struct ProfileAccum {
    mem_tick: Duration,
    core_step: Duration,
    check: Duration,
    events: u64,
    core_steps: u64,
    cycles: u64,
}

/// A simulated multicore machine.
pub struct Machine {
    mem: MemorySystem,
    cores: Vec<Core>,
    check: CheckConfig,
    /// Current simulation cycle; persists across [`Machine::run_for`] calls
    /// and through checkpoint/restore.
    now: Cycle,
    /// FNV-1a hash of the builder's [`SystemConfig`]; stamped into every
    /// checkpoint so a restore into a differently-configured machine is
    /// refused instead of silently misinterpreted.
    cfg_hash: u64,
    /// Last in-memory checkpoint for rewind-on-violation
    /// (`CheckConfig::rewind_every`).
    rewind_ckpt: Option<(Cycle, Vec<u8>)>,
    /// Streaming per-operation linearizability checker
    /// (`CheckConfig::oracle_online`); fed by draining the memory system's
    /// journal every cycle, so journal memory stays O(one cycle's ops).
    online: Option<OnlineChecker>,
    /// Reused drain buffer for the online checker (avoids a per-cycle
    /// allocation on the hot path).
    online_buf: Vec<OpRecord>,
    /// Incremental invariant sweeper driving the periodic in-run check off
    /// the memory system's dirty-line set (full sweeps remain at drain, on
    /// demand, and during rewind replay).
    sweeper: IncrementalSweep,
    /// Indices of cores that have not yet finished, ascending. Core order
    /// is preserved so per-cycle stepping visits cores exactly as the full
    /// scan did (message sequencing, and with it determinism, depends on
    /// it). Derived state: rebuilt on restore, never persisted.
    active: Vec<u32>,
    /// Per-core wake cycle: a core whose entry is `> now` proved (via
    /// [`Core::sleep_until`]) that stepping it is a state no-op until then.
    /// Delivering any memory event to a core resets its entry to zero, so a
    /// sleeping core is re-stepped the moment something can change its
    /// state. Derived state: rebuilt on restore, never persisted.
    wake: Vec<Cycle>,
    /// Wall-clock accumulators, present only during [`Machine::run_profiled`].
    prof: Option<Box<ProfileAccum>>,
}

impl Machine {
    /// Builds a machine with one core per stream.
    ///
    /// # Panics
    /// Panics if the number of streams does not match `cfg.cores` or the
    /// configuration is invalid.
    pub fn new(cfg: &SystemConfig, streams: Vec<Box<dyn InstrStream>>) -> Self {
        assert_eq!(
            streams.len(),
            cfg.cores,
            "one instruction stream per core required"
        );
        let mut mem = MemorySystem::new(cfg);
        // The periodic sweep is incremental: have the memory system record
        // which lines change so each sweep touches only those.
        mem.track_dirty_lines(cfg.check.invariant_every.is_some());
        let cores: Vec<Core> = streams
            .into_iter()
            .enumerate()
            .map(|(i, s)| Core::new(CoreId::new(i as u16), cfg.core, cfg.mem.l1d.hit_latency, s))
            .collect();
        let active = (0..cores.len() as u32).collect();
        let wake = vec![Cycle::ZERO; cores.len()];
        Machine {
            mem,
            cores,
            check: cfg.check,
            now: Cycle::ZERO,
            cfg_hash: fnv1a(format!("{cfg:?}").as_bytes()),
            rewind_ckpt: None,
            online: cfg
                .check
                .oracle_online
                .then(|| OnlineChecker::new(cfg.cores)),
            online_buf: Vec::new(),
            sweeper: IncrementalSweep::new(),
            active,
            wake,
            prof: None,
        }
    }

    /// Like [`Machine::run`], but with per-component wall-clock accounting:
    /// returns the run result together with a [`ProfileReport`] breaking the
    /// host time into memory-system ticks, core stepping, and invariant
    /// checking. The simulation itself is unchanged — timing is observation
    /// only, so a profiled run commits the same cycles as an unprofiled one.
    ///
    /// # Errors
    /// Same failure modes as [`Machine::run`].
    pub fn run_profiled(&mut self, limit: u64) -> Result<(RunResult, ProfileReport), SimError> {
        self.prof = Some(Box::new(ProfileAccum::default()));
        let t0 = Instant::now();
        let out = self.run(limit);
        let wall_s = t0.elapsed().as_secs_f64();
        let acc = self.prof.take().expect("installed above");
        let report = ProfileReport {
            cycles: acc.cycles,
            wall_s,
            mem_tick_s: acc.mem_tick.as_secs_f64(),
            core_step_s: acc.core_step.as_secs_f64(),
            check_s: acc.check.as_secs_f64(),
            events: acc.events,
            core_steps: acc.core_steps,
        };
        out.map(|r| (r, report))
    }

    /// The online linearizability checker, when `CheckConfig::oracle_online`
    /// is enabled (triage reads its journal tail and counters).
    pub fn online_checker(&self) -> Option<&OnlineChecker> {
        self.online.as_ref()
    }

    /// The current simulation cycle (advances across `run*` calls; set by
    /// [`Machine::restore`]).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Read access to a core (e.g. to enable load recording before running).
    pub fn core_mut(&mut self, i: usize) -> &mut Core {
        &mut self.cores[i]
    }

    /// Read access to the memory system (tests inspect functional state).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable access to the memory system (tests pre-seed values).
    pub fn memory_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Takes a diagnostic snapshot of the machine right now (on-demand
    /// stall/progress report).
    pub fn stall_report(&self, now: Cycle) -> StallReport {
        StallReport::capture(&self.cores, &self.mem, now, None)
    }

    /// Runs the coherence invariant sweep against the current state.
    pub fn check_invariants(&self) -> Result<(), ProtocolError> {
        check_coherence(&self.mem, &self.check)
    }

    /// Runs until every core drains or the absolute cycle `limit` is
    /// reached (the count starts from [`Machine::now`], so a restored
    /// machine continues against the same budget).
    ///
    /// Robustness hooks from [`CheckConfig`] run inside the loop: the
    /// coherence invariant sweep every `invariant_every` cycles (and once on
    /// drain), a deadlock watchdog that fires when no core commits for
    /// `watchdog_window` cycles, and — when `rewind_every` is set — an
    /// in-memory checkpoint that turns any stall/protocol failure into a
    /// [`SimError::Rewind`] replay localizing the first offending cycle.
    ///
    /// # Errors
    /// [`SimError::Timeout`] when the budget is exhausted (the error carries
    /// per-core progress counters and a full [`StallReport`]),
    /// [`SimError::Stall`] when the watchdog fires,
    /// [`SimError::Protocol`] when a coherence invariant is violated, and
    /// [`SimError::Rewind`] for either of the latter two when rewind is
    /// enabled and a checkpoint was available.
    pub fn run(&mut self, limit: u64) -> Result<RunResult, SimError> {
        match self.run_for(limit.saturating_sub(self.now.raw()))? {
            Some(r) => Ok(r),
            None => Err(self.timeout_error(limit)),
        }
    }

    /// Runs for at most `cycles` further cycles. Returns `Ok(Some(result))`
    /// when every core drained, `Ok(None)` when the slice elapsed with work
    /// remaining — unlike [`Machine::run`], running out of budget is not an
    /// error, which is what a checkpointing driver needs.
    ///
    /// # Errors
    /// Same failure modes as [`Machine::run`] except [`SimError::Timeout`].
    pub fn run_for(&mut self, cycles: u64) -> Result<Option<RunResult>, SimError> {
        let target = self.now.raw().saturating_add(cycles);
        if !self.advance(target)? {
            return Ok(None);
        }
        if self.check.invariant_every.is_some() {
            check_coherence(&self.mem, &self.check).map_err(SimError::Protocol)?;
        }
        self.check_oracle()?;
        Ok(Some(self.collect()))
    }

    /// Moves each core's statistics into the result instead of cloning them:
    /// the cores are drained, so the counters have nothing further to
    /// accumulate, and a 32-core `paper`-scale sweep assembles thousands of
    /// results.
    fn collect(&mut self) -> RunResult {
        let (mut preds, mut miss) = (0u64, 0u64);
        let mut accuracy: Option<AccuracyCounter> = None;
        for c in &self.cores {
            preds += c.branch_stats().predictions;
            miss += c.branch_stats().mispredictions;
            if let Some(a) = c.row_accuracy() {
                accuracy.get_or_insert_with(AccuracyCounter::new).merge(a);
            }
        }
        let per_core: Vec<CoreStats> = self.cores.iter_mut().map(Core::take_stats).collect();
        let mut total = CoreStats::default();
        for s in &per_core {
            total.merge(s);
        }
        let cycles = total.finished_at.map(|c| c.raw()).unwrap_or(0);
        RunResult {
            cycles,
            total,
            per_core,
            miss_latency: self.mem.stats().miss_latency_all,
            accuracy,
            branch_miss_rate: if preds == 0 {
                0.0
            } else {
                miss as f64 / preds as f64
            },
            remote_fills: self.mem.stats().remote_fills,
            transport: self.mem.transport_stats().copied(),
        }
    }

    /// Runs to the absolute cycle `limit` like [`Machine::run`], writing a
    /// checkpoint file to `path` (atomically) every `every` cycles, so a
    /// killed process can [`Machine::restore`] and continue.
    ///
    /// # Errors
    /// Everything [`Machine::run`] raises, plus [`SimError::Checkpoint`]
    /// when a checkpoint cannot be serialized or written.
    ///
    /// # Panics
    /// Panics if `every` is zero.
    pub fn run_checkpointed(
        &mut self,
        limit: u64,
        every: u64,
        path: &Path,
    ) -> Result<RunResult, SimError> {
        assert!(every > 0, "checkpoint interval must be non-zero");
        while self.now.raw() < limit {
            let slice = every.min(limit - self.now.raw());
            if let Some(r) = self.run_for(slice)? {
                return Ok(r);
            }
            let bytes = self.checkpoint()?;
            crate::checkpoint::write_checkpoint(path, &bytes).map_err(SimError::Checkpoint)?;
        }
        Err(self.timeout_error(limit))
    }

    /// One machine cycle: route the memory system's events, then step every
    /// unfinished core. When `trace` is given, delivered events are recorded
    /// into it (bounded to [`REWIND_TRACE_LIMIT`] entries).
    fn step_cycle(&mut self, now: Cycle, mut trace: Option<&mut VecDeque<String>>) {
        let t0 = self.prof.as_ref().map(|_| Instant::now());
        let mut events = 0u64;
        for ev in self.mem.tick(now) {
            events += 1;
            if let Some(t) = trace.as_deref_mut() {
                if t.len() >= REWIND_TRACE_LIMIT {
                    t.pop_front();
                }
                t.push_back(format!("{}: {ev:?}", now.raw()));
            }
            let target = match ev {
                row_mem::MemEvent::Fill { core, .. } => core,
                row_mem::MemEvent::FarDone { core, .. } => core,
                row_mem::MemEvent::ExternalObserved { core, .. } => core,
            };
            // An event can change the core's state, voiding any sleep proof.
            self.wake[target.index()] = Cycle::ZERO;
            self.cores[target.index()].handle_mem_event(&ev, now, &mut self.mem);
        }
        let t1 = t0.map(|_| Instant::now());
        // Step only the unfinished cores (ascending index — the same visit
        // order the full scan had, which message sequencing depends on).
        // `Core::finished()` is monotonic, so a core leaves the active set
        // exactly once and quiesced cores cost nothing per cycle. Within the
        // active set, a core that proved itself inert (`Core::sleep_until`)
        // is skipped until its wake cycle or its next delivered event —
        // skipping a proven no-op call cannot change the schedule.
        let mut core_steps = 0u64;
        let mut any_finished = false;
        for slot in 0..self.active.len() {
            let i = self.active[slot] as usize;
            if self.wake[i] > now {
                continue;
            }
            let c = &mut self.cores[i];
            c.cycle(now, &mut self.mem);
            core_steps += 1;
            any_finished |= c.finished();
            self.wake[i] = c.sleep_until(now).unwrap_or(now + 1);
        }
        if any_finished {
            let cores = &self.cores;
            self.active.retain(|&i| !cores[i as usize].finished());
        }
        if let (Some(acc), Some(t0), Some(t1)) = (self.prof.as_deref_mut(), t0, t1) {
            acc.mem_tick += t1 - t0;
            acc.core_step += t1.elapsed();
            acc.events += events;
            acc.core_steps += core_steps;
            acc.cycles += 1;
        }
    }

    /// Steps until every core drains or `self.now` reaches the absolute
    /// cycle `target`; returns whether all cores finished.
    fn advance(&mut self, target: u64) -> Result<bool, SimError> {
        let every = self.check.invariant_every;
        let window = self.check.watchdog_window;
        while self.now.raw() < target {
            if self.active.is_empty() {
                return Ok(true);
            }
            let now = self.now;
            self.step_cycle(now, None);
            if let Some(e) = self.mem.protocol_error() {
                let e = e.clone();
                return Err(self.maybe_rewind(SimError::Protocol(e), now));
            }
            self.pump_online()?;
            if let Some(k) = every {
                if now.raw().is_multiple_of(k) {
                    let t0 = self.prof.as_ref().map(|_| Instant::now());
                    let sweep = self.sweeper.sweep(&mut self.mem, &self.check);
                    if let (Some(acc), Some(t0)) = (self.prof.as_deref_mut(), t0) {
                        acc.check += t0.elapsed();
                    }
                    if let Err(e) = sweep {
                        return Err(self.maybe_rewind(SimError::Protocol(e), now));
                    }
                }
            }
            if let Some(w) = window {
                if now.raw() >= w {
                    let latest = self
                        .active
                        .iter()
                        .map(|&i| self.cores[i as usize].last_commit())
                        .max();
                    if latest.is_some_and(|t| now.saturating_since(t) >= w) {
                        let stall = SimError::Stall(Box::new(StallReport::capture(
                            &self.cores,
                            &self.mem,
                            now,
                            Some(w),
                        )));
                        return Err(self.maybe_rewind(stall, now));
                    }
                }
            }
            // Refresh the rewind checkpoint only after every check passed:
            // it must capture a provably-coherent state to replay from.
            if let Some(k) = self.check.rewind_every {
                if now.raw().is_multiple_of(k) {
                    if let Ok(bytes) = self.checkpoint() {
                        self.rewind_ckpt = Some((now, bytes));
                    }
                }
            }
            self.now += 1;
        }
        Ok(self.active.is_empty())
    }

    /// Drains the memory system's journal into the online checker,
    /// validating each record per-operation. Called every cycle when
    /// `CheckConfig::oracle_online` is on; O(records journaled this cycle).
    fn pump_online(&mut self) -> Result<(), SimError> {
        let Some(checker) = self.online.as_mut() else {
            return Ok(());
        };
        self.online_buf.clear();
        self.mem.drain_journal_into(&mut self.online_buf);
        for rec in &self.online_buf {
            checker
                .observe(rec)
                .map_err(|m| SimError::Oracle(Box::new(m)))?;
        }
        Ok(())
    }

    /// End-of-run differential check. In online mode
    /// (`CheckConfig::oracle_online`), the per-operation stream has already
    /// been validated; only the finish pass (exactly-once per core, final
    /// memory state) remains. Otherwise (`CheckConfig::oracle`), replay the
    /// retained journal through `row-oracle`'s sequential golden model and
    /// compare RMW return values, per-core atomic counts, and final state.
    fn check_oracle(&mut self) -> Result<(), SimError> {
        let retired: Vec<u64> = self.cores.iter().map(|c| c.stats().atomics).collect();
        if self.online.is_some() {
            self.pump_online()?;
            let checker = self.online.as_ref().expect("checked above");
            return checker
                .finish(self.mem.words(), &retired)
                .map(drop)
                .map_err(|m| SimError::Oracle(Box::new(m)));
        }
        if !self.check.oracle {
            return Ok(());
        }
        let journal = self.mem.journal().unwrap_or(&[]);
        row_oracle::check(journal, self.mem.words(), &retired)
            .map(drop)
            .map_err(|m| SimError::Oracle(Box::new(m)))
    }

    fn timeout_error(&self, limit: u64) -> SimError {
        SimError::Timeout(Box::new(SimTimeout {
            limit,
            unfinished: self
                .cores
                .iter()
                .filter(|c| !c.finished())
                .map(|c| c.id().index() as u16)
                .collect(),
            committed: self.cores.iter().map(|c| c.stats().committed).collect(),
            last_commit: self.cores.iter().map(|c| c.last_commit()).collect(),
            report: StallReport::capture(&self.cores, &self.mem, self.now, None),
        }))
    }

    /// On a stall/protocol failure with rewind enabled and a checkpoint in
    /// hand: restore it and replay with the invariant sweep on *every*
    /// cycle, producing a [`RewindReport`] that names the first cycle the
    /// machine actually went wrong. Falls back to the original error when no
    /// checkpoint exists or the replay itself cannot run.
    fn maybe_rewind(&mut self, cause: SimError, detected_at: Cycle) -> SimError {
        if self.check.rewind_every.is_none() {
            return cause;
        }
        let Some((checkpoint_at, bytes)) = self.rewind_ckpt.take() else {
            return cause;
        };
        match self.replay_from(&bytes, detected_at) {
            Ok((first_bad_cycle, first_error, trace)) => SimError::Rewind(Box::new(RewindReport {
                cause: Box::new(cause),
                checkpoint_at,
                detected_at,
                first_bad_cycle,
                first_error,
                trace,
            })),
            Err(_) => cause,
        }
    }

    #[allow(clippy::type_complexity)]
    fn replay_from(
        &mut self,
        bytes: &[u8],
        detected_at: Cycle,
    ) -> Result<(Option<Cycle>, Option<ProtocolError>, Vec<String>), SimError> {
        self.restore(bytes)?;
        let mut trace: VecDeque<String> = VecDeque::new();
        let mut first_bad = None;
        let mut first_err = None;
        while self.now <= detected_at {
            let now = self.now;
            self.step_cycle(now, Some(&mut trace));
            let err = self
                .mem
                .protocol_error()
                .cloned()
                .or_else(|| check_coherence(&self.mem, &self.check).err());
            if let Some(e) = err {
                first_bad = Some(now);
                first_err = Some(e);
                break;
            }
            self.now += 1;
        }
        Ok((first_bad, first_err, trace.into_iter().collect()))
    }

    /// Serializes the whole machine — memory system, every core, stream
    /// positions, RNGs, and statistics — into a self-validating byte image
    /// (see [`crate::checkpoint`] for the layout). Restoring the image into
    /// an identically-configured machine and continuing is bit-exact with
    /// never having stopped.
    ///
    /// # Errors
    /// [`SimError::Checkpoint`] when the machine holds a sticky protocol
    /// error (a corrupted state must not be snapshotted).
    pub fn checkpoint(&self) -> Result<Vec<u8>, SimError> {
        if self.mem.protocol_error().is_some() {
            return Err(SimError::Checkpoint(PersistError::Corrupt(
                "refusing to checkpoint a machine with a pending protocol error",
            )));
        }
        let mut w = Writer::new();
        w.put_bytes(MAGIC);
        w.put_u32(FORMAT_VERSION);
        w.put_u64(self.cfg_hash);
        self.now.encode(&mut w);
        self.mem.persist(&mut w);
        w.put_len(self.cores.len());
        for c in &self.cores {
            c.persist(&mut w);
        }
        self.online.encode(&mut w);
        let checksum = fnv1a(w.bytes());
        w.put_u64(checksum);
        Ok(w.into_bytes())
    }

    /// Restores a [`Machine::checkpoint`] image. The machine must have been
    /// built with the same [`SystemConfig`] and streams as the one that was
    /// checkpointed; the header's config hash enforces the former.
    ///
    /// # Errors
    /// [`SimError::Checkpoint`] wrapping the precise [`PersistError`]:
    /// `Corrupt` for a bad magic, truncation, checksum mismatch, or
    /// geometry conflicts; `VersionMismatch` and `ConfigMismatch` for header
    /// disagreements. The machine may be partially overwritten on error and
    /// must not be used further.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SimError> {
        self.try_restore(bytes).map_err(SimError::Checkpoint)
    }

    fn try_restore(&mut self, bytes: &[u8]) -> Result<(), PersistError> {
        let header = MAGIC.len() + 4 + 8 + 8;
        if bytes.len() < header + 8 {
            return Err(PersistError::Corrupt("checkpoint too short"));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(PersistError::Corrupt("not a norush checkpoint"));
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let mut r = Reader::new(payload);
        let _ = r.get_bytes(MAGIC.len())?;
        let found = r.get_u32()?;
        if found != FORMAT_VERSION {
            return Err(PersistError::VersionMismatch {
                found,
                expected: FORMAT_VERSION,
            });
        }
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte checksum"));
        if fnv1a(payload) != stored {
            return Err(PersistError::Corrupt("checkpoint checksum mismatch"));
        }
        let found = r.get_u64()?;
        if found != self.cfg_hash {
            return Err(PersistError::ConfigMismatch {
                found,
                expected: self.cfg_hash,
            });
        }
        let now = Cycle::decode(&mut r)?;
        self.mem.restore(&mut r)?;
        let n = r.get_len()?;
        if n != self.cores.len() {
            return Err(PersistError::Corrupt("checkpoint core count mismatch"));
        }
        for c in self.cores.iter_mut() {
            c.restore(&mut r)?;
        }
        let online = Option::<OnlineChecker>::decode(&mut r)?;
        if online.is_some() != self.online.is_some() {
            return Err(PersistError::Corrupt("online-checker presence mismatch"));
        }
        if !r.is_empty() {
            return Err(PersistError::Corrupt("trailing bytes in checkpoint"));
        }
        self.online = online;
        self.now = now;
        self.rewind_ckpt = None;
        // Derived state: the active set is a pure function of core state,
        // and the incremental sweeper must re-validate the whole restored
        // system once before trusting line-level increments again.
        self.active = (0..self.cores.len() as u32)
            .filter(|&i| !self.cores[i as usize].finished())
            .collect();
        self.wake = vec![Cycle::ZERO; self.cores.len()];
        self.sweeper.invalidate();
        self.mem
            .track_dirty_lines(self.check.invariant_every.is_some());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use row_common::ids::{Addr, Pc};
    use row_cpu::instr::{Instr, Op, RmwKind, VecStream};

    fn faa_prog(n: u64, addr: u64) -> Box<dyn InstrStream> {
        let prog: Vec<Instr> = (0..n)
            .map(|_| {
                Instr::simple(
                    Pc::new(0x40),
                    Op::Atomic {
                        rmw: RmwKind::Faa(1),
                        addr: Addr::new(addr),
                    },
                )
            })
            .collect();
        Box::new(VecStream::new(prog))
    }

    #[test]
    fn four_core_faa_sums_exactly() {
        let cfg = SystemConfig::small(4);
        let streams: Vec<Box<dyn InstrStream>> = (0..4).map(|_| faa_prog(25, 0xabc000)).collect();
        let mut m = Machine::new(&cfg, streams);
        let r = m.run(3_000_000).expect("finishes");
        assert_eq!(m.memory().read_word(Addr::new(0xabc000)), 100);
        assert_eq!(r.total.atomics, 100);
        assert!(r.cycles > 0);
        assert!(r.ipc() > 0.0);
    }

    #[test]
    fn timeout_is_reported_with_progress_and_stall_report() {
        let cfg = SystemConfig::small(2);
        let streams: Vec<Box<dyn InstrStream>> = (0..2).map(|_| faa_prog(50, 0xddd000)).collect();
        let mut m = Machine::new(&cfg, streams);
        let err = m.run(10).expect_err("cannot finish in 10 cycles");
        let SimError::Timeout(t) = err else {
            panic!("expected a timeout, got {err}");
        };
        assert_eq!(t.limit, 10);
        assert!(!t.unfinished.is_empty());
        assert_eq!(t.committed.len(), 2);
        assert_eq!(t.last_commit.len(), 2);
        assert_eq!(t.report.cores.len(), 2);
        assert!(!t.to_string().is_empty());
    }

    /// A contended-lock run that exhausts its budget must name the stalled
    /// cores' head instructions in the diagnostic report.
    #[test]
    fn exhausted_contended_run_names_head_instructions() {
        let cfg = SystemConfig::small(4);
        let streams: Vec<Box<dyn InstrStream>> = (0..4).map(|_| faa_prog(200, 0xccc000)).collect();
        let mut m = Machine::new(&cfg, streams);
        // Far too small a budget for 800 contended atomics: the machine is
        // wedged mid-handoff when the budget runs out.
        let err = m.run(2_000).expect_err("budget too small");
        let SimError::Timeout(t) = err else {
            panic!("expected a timeout, got {err}");
        };
        // A lucky core can stream its atomics while holding the lock, so
        // only require that several cores are still wedged.
        assert!(t.unfinished.len() >= 2, "unfinished: {:?}", t.unfinished);
        let heads = t.report.cores.iter().filter(|c| c.head.is_some()).count();
        assert!(heads > 0, "no head instruction captured:\n{}", t.report);
        let text = t.report.to_string();
        assert!(
            text.contains("atomic"),
            "heads should name atomics:\n{text}"
        );
    }

    /// With a tiny watchdog window, a single long-latency miss trips the
    /// stall detector before any commit happens.
    #[test]
    fn watchdog_fires_on_tiny_window() {
        let mut cfg = SystemConfig::small(2);
        cfg.check.watchdog_window = Some(50);
        let streams: Vec<Box<dyn InstrStream>> = (0..2).map(|_| faa_prog(5, 0xeee000)).collect();
        let mut m = Machine::new(&cfg, streams);
        // The first memory-latency miss (> 50 cycles) exceeds the window.
        let err = m.run(1_000_000).expect_err("window far below miss latency");
        let SimError::Stall(report) = err else {
            panic!("expected a stall, got {err}");
        };
        assert_eq!(report.window, Some(50));
        assert_eq!(report.stalled_cores().len(), 2);
    }

    /// A corrupted second Modified owner surfaces from `run` as a protocol
    /// error, not a panic or a silent miscount.
    #[test]
    fn injected_dual_owner_surfaces_as_protocol_error() {
        let cfg = SystemConfig::small(2);
        let streams: Vec<Box<dyn InstrStream>> = (0..2).map(|_| faa_prog(40, 0xabc040)).collect();
        let mut m = Machine::new(&cfg, streams);
        m.memory_mut().corrupt_private_state_for_test(
            CoreId::new(0),
            row_common::ids::LineAddr::new(0xabc080 >> 6),
            Some(row_mem::PrivState::M),
        );
        m.memory_mut().corrupt_private_state_for_test(
            CoreId::new(1),
            row_common::ids::LineAddr::new(0xabc080 >> 6),
            Some(row_mem::PrivState::M),
        );
        let err = m.run(3_000_000).expect_err("corruption must be caught");
        assert!(
            matches!(
                err,
                SimError::Protocol(ProtocolError::MultipleOwners { .. })
            ),
            "got {err}"
        );
    }

    /// An on-demand snapshot works on a healthy machine too.
    #[test]
    fn on_demand_report_and_invariant_check() {
        let cfg = SystemConfig::small(2);
        let streams: Vec<Box<dyn InstrStream>> = (0..2).map(|_| faa_prog(3, 0xaaa000)).collect();
        let mut m = Machine::new(&cfg, streams);
        m.run(3_000_000).expect("drains");
        m.check_invariants().expect("clean machine");
        let r = m.stall_report(Cycle::new(123));
        assert_eq!(r.cores.len(), 2);
        assert!(r.window.is_none());
    }

    #[test]
    #[should_panic(expected = "one instruction stream per core")]
    fn stream_count_must_match() {
        let cfg = SystemConfig::small(2);
        Machine::new(&cfg, vec![faa_prog(1, 0)]);
    }
}
