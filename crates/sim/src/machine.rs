//! The multicore machine: N cores + the shared memory system, stepped in
//! lockstep until every thread's parallel phase drains.

use row_common::stats::{AccuracyCounter, RunningMean};
use row_common::{Cycle, SystemConfig};
use row_cpu::instr::InstrStream;
use row_cpu::{Core, CoreStats};
use row_mem::MemorySystem;
use row_common::ids::CoreId;

/// Error returned when a simulation exceeds its cycle budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimTimeout {
    /// The budget that was exhausted.
    pub limit: u64,
    /// Cores that had not drained.
    pub unfinished: Vec<u16>,
}

impl std::fmt::Display for SimTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation exceeded {} cycles; unfinished cores: {:?}",
            self.limit, self.unfinished
        )
    }
}

impl std::error::Error for SimTimeout {}

/// Results of one full simulation run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Parallel-phase execution time: the cycle the last core drained.
    pub cycles: u64,
    /// Aggregate of all cores' statistics.
    pub total: CoreStats,
    /// Per-core statistics.
    pub per_core: Vec<CoreStats>,
    /// Mean L1D miss latency across all demand misses (Fig. 11).
    pub miss_latency: RunningMean,
    /// RoW prediction accuracy, when the RoW policy ran (Fig. 12).
    pub accuracy: Option<AccuracyCounter>,
    /// Fraction of branch predictions that missed.
    pub branch_miss_rate: f64,
    /// Fills served cache-to-cache from remote private caches.
    pub remote_fills: u64,
}

impl RunResult {
    /// Instructions per cycle across the whole machine.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total.committed as f64 / self.cycles as f64
        }
    }
}

/// A simulated multicore machine.
pub struct Machine {
    mem: MemorySystem,
    cores: Vec<Core>,
}

impl Machine {
    /// Builds a machine with one core per stream.
    ///
    /// # Panics
    /// Panics if the number of streams does not match `cfg.cores` or the
    /// configuration is invalid.
    pub fn new(cfg: &SystemConfig, streams: Vec<Box<dyn InstrStream>>) -> Self {
        assert_eq!(
            streams.len(),
            cfg.cores,
            "one instruction stream per core required"
        );
        let mem = MemorySystem::new(cfg);
        let cores = streams
            .into_iter()
            .enumerate()
            .map(|(i, s)| Core::new(CoreId::new(i as u16), cfg.core, cfg.mem.l1d.hit_latency, s))
            .collect();
        Machine { mem, cores }
    }

    /// Read access to a core (e.g. to enable load recording before running).
    pub fn core_mut(&mut self, i: usize) -> &mut Core {
        &mut self.cores[i]
    }

    /// Read access to the memory system (tests inspect functional state).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable access to the memory system (tests pre-seed values).
    pub fn memory_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Runs until every core drains or `limit` cycles elapse.
    ///
    /// # Errors
    /// Returns [`SimTimeout`] when the budget is exhausted — usually a sign
    /// of a deadlocked workload or an undersized limit.
    pub fn run(&mut self, limit: u64) -> Result<RunResult, SimTimeout> {
        let mut now = Cycle::ZERO;
        while now.raw() < limit {
            if self.cores.iter().all(|c| c.finished()) {
                break;
            }
            for ev in self.mem.tick(now) {
                let target = match ev {
                    row_mem::MemEvent::Fill { core, .. } => core,
                    row_mem::MemEvent::FarDone { core, .. } => core,
                    row_mem::MemEvent::ExternalObserved { core, .. } => core,
                };
                self.cores[target.index()].handle_mem_event(&ev, now, &mut self.mem);
            }
            for c in self.cores.iter_mut() {
                if !c.finished() {
                    c.cycle(now, &mut self.mem);
                }
            }
            now += 1;
        }
        if !self.cores.iter().all(|c| c.finished()) {
            return Err(SimTimeout {
                limit,
                unfinished: self
                    .cores
                    .iter()
                    .filter(|c| !c.finished())
                    .map(|c| c.id().index() as u16)
                    .collect(),
            });
        }
        Ok(self.collect())
    }

    fn collect(&self) -> RunResult {
        let per_core: Vec<CoreStats> = self.cores.iter().map(|c| c.stats().clone()).collect();
        let mut total = CoreStats::default();
        for s in &per_core {
            total.merge(s);
        }
        let cycles = total.finished_at.map(|c| c.raw()).unwrap_or(0);
        let mut accuracy: Option<AccuracyCounter> = None;
        for c in &self.cores {
            if let Some(a) = c.row_accuracy() {
                accuracy.get_or_insert_with(AccuracyCounter::new).merge(a);
            }
        }
        let (mut preds, mut miss) = (0u64, 0u64);
        for c in &self.cores {
            preds += c.branch_stats().predictions;
            miss += c.branch_stats().mispredictions;
        }
        RunResult {
            cycles,
            total,
            per_core,
            miss_latency: self.mem.stats().miss_latency_all,
            accuracy,
            branch_miss_rate: if preds == 0 {
                0.0
            } else {
                miss as f64 / preds as f64
            },
            remote_fills: self.mem.stats().remote_fills,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use row_common::ids::{Addr, Pc};
    use row_cpu::instr::{Instr, Op, RmwKind, VecStream};

    fn faa_prog(n: u64, addr: u64) -> Box<dyn InstrStream> {
        let prog: Vec<Instr> = (0..n)
            .map(|_| {
                Instr::simple(
                    Pc::new(0x40),
                    Op::Atomic {
                        rmw: RmwKind::Faa(1),
                        addr: Addr::new(addr),
                    },
                )
            })
            .collect();
        Box::new(VecStream::new(prog))
    }

    #[test]
    fn four_core_faa_sums_exactly() {
        let cfg = SystemConfig::small(4);
        let streams: Vec<Box<dyn InstrStream>> =
            (0..4).map(|_| faa_prog(25, 0xabc000)).collect();
        let mut m = Machine::new(&cfg, streams);
        let r = m.run(3_000_000).expect("finishes");
        assert_eq!(m.memory().read_word(Addr::new(0xabc000)), 100);
        assert_eq!(r.total.atomics, 100);
        assert!(r.cycles > 0);
        assert!(r.ipc() > 0.0);
    }

    #[test]
    fn timeout_is_reported() {
        let cfg = SystemConfig::small(2);
        let streams: Vec<Box<dyn InstrStream>> =
            (0..2).map(|_| faa_prog(50, 0xddd000)).collect();
        let mut m = Machine::new(&cfg, streams);
        let err = m.run(10).expect_err("cannot finish in 10 cycles");
        assert_eq!(err.limit, 10);
        assert!(!err.unfinished.is_empty());
        assert!(!err.to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "one instruction stream per core")]
    fn stream_count_must_match() {
        let cfg = SystemConfig::small(2);
        Machine::new(&cfg, vec![faa_prog(1, 0)]);
    }
}
