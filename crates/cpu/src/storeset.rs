//! StoreSet memory-dependence predictor (Chrysos & Emer, ISCA '98).
//!
//! Table I lists StoreSet as the memory-dependence predictor. Loads that have
//! historically conflicted with a store are steered to wait for that store;
//! everything else speculates past unresolved stores, and a mis-speculation
//! (detected when the store's address resolves) trains the tables.
//!
//! Structure: the SSIT maps a PC to a store-set id; the LFST maps a store-set
//! id to the most recently dispatched in-flight store of that set.

use row_common::ids::Pc;
use row_common::persist::{Codec, Persist, PersistError, Reader, Writer};

const SSIT_BITS: usize = 10; // 1024 entries
const MAX_SETS: usize = 256;

/// StoreSet predictor state.
///
/// # Example
/// ```
/// use row_common::ids::Pc;
/// use row_cpu::storeset::StoreSets;
///
/// let mut ss = StoreSets::new();
/// let (ld, st) = (Pc::new(0x10), Pc::new(0x20));
/// assert!(ss.dependence_for_load(ld).is_none()); // untrained: speculate
/// ss.train_violation(ld, st);
/// ss.store_dispatched(st, 7);
/// assert_eq!(ss.dependence_for_load(ld), Some(7)); // now waits for store 7
/// ```
#[derive(Clone, Debug)]
pub struct StoreSets {
    ssit: Vec<Option<u16>>,
    lfst: Vec<Option<u64>>,
    next_set: u16,
}

impl StoreSets {
    /// Creates cleared tables.
    pub fn new() -> Self {
        StoreSets {
            ssit: vec![None; 1 << SSIT_BITS],
            lfst: vec![None; MAX_SETS],
            next_set: 0,
        }
    }

    fn idx(pc: Pc) -> usize {
        ((pc.raw() >> 2) as usize ^ (pc.raw() >> (2 + SSIT_BITS as u64)) as usize)
            & ((1 << SSIT_BITS) - 1)
    }

    /// Records that the store at `pc` (instruction id `uid`) was dispatched;
    /// it becomes the last fetched store of its set, if it belongs to one.
    pub fn store_dispatched(&mut self, pc: Pc, uid: u64) {
        if let Some(set) = self.ssit[Self::idx(pc)] {
            self.lfst[set as usize] = Some(uid);
        }
    }

    /// The store `uid` a load at `pc` should wait for, if any.
    pub fn dependence_for_load(&self, pc: Pc) -> Option<u64> {
        let set = self.ssit[Self::idx(pc)]?;
        self.lfst[set as usize]
    }

    /// Clears the last-fetched-store entry when the store `uid` (at `pc`)
    /// completes or retires.
    pub fn store_completed(&mut self, pc: Pc, uid: u64) {
        if let Some(set) = self.ssit[Self::idx(pc)] {
            if self.lfst[set as usize] == Some(uid) {
                self.lfst[set as usize] = None;
            }
        }
    }

    /// Trains on a memory-order violation between the load at `load_pc` and
    /// the store at `store_pc`: both are placed in the same store set.
    pub fn train_violation(&mut self, load_pc: Pc, store_pc: Pc) {
        let li = Self::idx(load_pc);
        let si = Self::idx(store_pc);
        let set = match (self.ssit[li], self.ssit[si]) {
            (Some(a), Some(b)) => {
                // Merge: both adopt the smaller id (the paper's rule).
                let s = a.min(b);
                self.ssit[li] = Some(s);
                self.ssit[si] = Some(s);
                s
            }
            (Some(a), None) => {
                self.ssit[si] = Some(a);
                a
            }
            (None, Some(b)) => {
                self.ssit[li] = Some(b);
                b
            }
            (None, None) => {
                let s = self.next_set % MAX_SETS as u16;
                self.next_set = self.next_set.wrapping_add(1);
                self.ssit[li] = Some(s);
                self.ssit[si] = Some(s);
                s
            }
        };
        let _ = set;
    }
}

impl Default for StoreSets {
    fn default() -> Self {
        StoreSets::new()
    }
}

impl Persist for StoreSets {
    fn persist(&self, w: &mut Writer) {
        self.ssit.encode(w);
        self.lfst.encode(w);
        w.put_u16(self.next_set);
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        let ssit = Vec::<Option<u16>>::decode(r)?;
        let lfst = Vec::<Option<u64>>::decode(r)?;
        if ssit.len() != self.ssit.len() || lfst.len() != self.lfst.len() {
            return Err(PersistError::Corrupt("store-set table size mismatch"));
        }
        self.ssit = ssit;
        self.lfst = lfst;
        self.next_set = r.get_u16()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_loads_speculate() {
        let ss = StoreSets::new();
        assert!(ss.dependence_for_load(Pc::new(0x44)).is_none());
    }

    #[test]
    fn violation_creates_dependence() {
        let mut ss = StoreSets::new();
        let (ld, st) = (Pc::new(0x100), Pc::new(0x200));
        ss.train_violation(ld, st);
        ss.store_dispatched(st, 42);
        assert_eq!(ss.dependence_for_load(ld), Some(42));
    }

    #[test]
    fn completion_clears_dependence() {
        let mut ss = StoreSets::new();
        let (ld, st) = (Pc::new(0x100), Pc::new(0x200));
        ss.train_violation(ld, st);
        ss.store_dispatched(st, 42);
        ss.store_completed(st, 42);
        assert!(ss.dependence_for_load(ld).is_none());
    }

    #[test]
    fn newer_store_of_same_set_supersedes() {
        let mut ss = StoreSets::new();
        let (ld, st) = (Pc::new(0x100), Pc::new(0x200));
        ss.train_violation(ld, st);
        ss.store_dispatched(st, 1);
        ss.store_dispatched(st, 2);
        assert_eq!(ss.dependence_for_load(ld), Some(2));
        // Completing the *old* incarnation must not clear the new one.
        ss.store_completed(st, 1);
        assert_eq!(ss.dependence_for_load(ld), Some(2));
    }

    #[test]
    fn sets_merge_on_shared_violations() {
        let mut ss = StoreSets::new();
        let (ld1, st1) = (Pc::new(0x10), Pc::new(0x20));
        let (ld2, st2) = (Pc::new(0x30), Pc::new(0x40));
        ss.train_violation(ld1, st1);
        ss.train_violation(ld2, st2);
        // ld1 also violates st2: the sets merge.
        ss.train_violation(ld1, st2);
        ss.store_dispatched(st2, 9);
        assert_eq!(ss.dependence_for_load(ld1), Some(9));
    }

    #[test]
    fn unrelated_pcs_stay_independent() {
        let mut ss = StoreSets::new();
        ss.train_violation(Pc::new(0x10), Pc::new(0x20));
        ss.store_dispatched(Pc::new(0x20), 1);
        assert!(ss.dependence_for_load(Pc::new(0x5000)).is_none());
    }
}
