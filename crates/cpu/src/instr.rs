//! The instruction vocabulary the simulated core executes.
//!
//! Instructions come from an [`InstrStream`] (the Sniper-front-end
//! substitute): a deterministic per-thread generator that supplies decoded
//! instructions with explicit register dependencies, resolved branch
//! outcomes, and concrete memory addresses. Atomic RMWs appear as single
//! instructions; the core cracks them into the Free-Atomics µ-op sequence
//! (`load_lock` / ALU / `store_unlock`) internally.

use row_common::ids::{Addr, Pc};
use row_common::persist::{Codec, PersistError, Reader, Writer};

/// An architectural register index (the traces use `0..NUM_REGS`).
pub type Reg = u8;

/// Number of architectural registers trace generators may use.
pub const NUM_REGS: usize = 32;

/// The modify operation of an atomic RMW (re-exported from
/// [`row_common::rmw`] so the memory system can execute far atomics).
pub use row_common::rmw::RmwKind;

/// One decoded instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// An arithmetic/logic operation with the given execution latency.
    Alu {
        /// Execution latency in cycles (1 for simple ops, more for mul/div).
        latency: u8,
    },
    /// A load from `addr`.
    Load {
        /// Byte address accessed.
        addr: Addr,
    },
    /// A store to `addr`, optionally writing `value` to the functional word
    /// store when it drains (tests use this to check ordering).
    Store {
        /// Byte address accessed.
        addr: Addr,
        /// Value written functionally; `None` for timing-only stores.
        value: Option<u64>,
    },
    /// An atomic RMW on `addr` (with the x86 `lock` prefix, unfenced).
    Atomic {
        /// The modify operation.
        rmw: RmwKind,
        /// Byte address accessed (8-byte aligned in practice).
        addr: Addr,
    },
    /// A conditional branch whose resolved direction is `taken`.
    Branch {
        /// Architectural outcome from the trace.
        taken: bool,
    },
    /// An explicit `mfence`.
    Fence,
}

impl Op {
    /// Whether this instruction occupies a load-queue entry.
    pub const fn uses_lq(&self) -> bool {
        matches!(self, Op::Load { .. } | Op::Atomic { .. })
    }

    /// Whether this instruction occupies a store-buffer entry.
    pub const fn uses_sb(&self) -> bool {
        matches!(self, Op::Store { .. } | Op::Atomic { .. })
    }

    /// Whether this is an atomic RMW.
    pub const fn is_atomic(&self) -> bool {
        matches!(self, Op::Atomic { .. })
    }

    /// The memory address accessed, if any.
    pub const fn addr(&self) -> Option<Addr> {
        match *self {
            Op::Load { addr } | Op::Store { addr, .. } | Op::Atomic { addr, .. } => Some(addr),
            _ => None,
        }
    }
}

/// A decoded instruction with its register dependencies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Instr {
    /// Program counter (identifies the static instruction; indexes RoW's
    /// contention predictor for atomics).
    pub pc: Pc,
    /// The operation.
    pub op: Op,
    /// Source registers (up to two).
    pub srcs: [Option<Reg>; 2],
    /// Destination register.
    pub dst: Option<Reg>,
}

impl Instr {
    /// A dependency-free instruction (convenience constructor).
    pub fn simple(pc: Pc, op: Op) -> Self {
        Instr {
            pc,
            op,
            srcs: [None, None],
            dst: None,
        }
    }

    /// Builder-style: sets the source registers.
    pub fn with_srcs(mut self, a: Option<Reg>, b: Option<Reg>) -> Self {
        self.srcs = [a, b];
        self
    }

    /// Builder-style: sets the destination register.
    pub fn with_dst(mut self, dst: Reg) -> Self {
        self.dst = Some(dst);
        self
    }
}

/// A per-thread supplier of decoded instructions (the trace front-end).
///
/// Implementations must be deterministic: two iterations from equal initial
/// state must produce equal streams (the core may *not* rewind the stream —
/// it buffers in-flight instructions itself for squash replay). Streams are
/// `Send` so whole machines can run on worker threads in the bench harness.
pub trait InstrStream: Send {
    /// The next instruction in program order, or `None` when the thread's
    /// parallel phase is complete.
    fn next_instr(&mut self) -> Option<Instr>;

    /// Appends the stream's mutable state (generator position, RNG, queued
    /// instructions) to `w` for checkpointing. The default is a no-op, which
    /// is only correct for genuinely stateless streams; every stream that
    /// advances must override this together with [`InstrStream::load_state`]
    /// or checkpoint/restore will replay it from the beginning.
    fn save_state(&self, w: &mut Writer) {
        let _ = w;
    }

    /// Restores the stream's mutable state written by
    /// [`InstrStream::save_state`]. The stream must have been constructed
    /// identically (same program/seed) to the one that was saved.
    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        let _ = r;
        Ok(())
    }
}

/// A trivial stream over a vector (tests and microbenchmarks).
#[derive(Clone, Debug, Default)]
pub struct VecStream {
    instrs: Vec<Instr>,
    pos: usize,
}

impl VecStream {
    /// Creates a stream that yields `instrs` in order.
    pub fn new(instrs: Vec<Instr>) -> Self {
        VecStream { instrs, pos: 0 }
    }
}

impl InstrStream for VecStream {
    fn next_instr(&mut self) -> Option<Instr> {
        let i = self.instrs.get(self.pos).copied();
        self.pos += 1;
        i
    }

    fn save_state(&self, w: &mut Writer) {
        w.put_u64(self.pos as u64);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        self.pos = r.get_u64()? as usize;
        Ok(())
    }
}

impl Codec for Op {
    fn encode(&self, w: &mut Writer) {
        match *self {
            Op::Alu { latency } => {
                w.put_u8(0);
                w.put_u8(latency);
            }
            Op::Load { addr } => {
                w.put_u8(1);
                addr.encode(w);
            }
            Op::Store { addr, value } => {
                w.put_u8(2);
                addr.encode(w);
                value.encode(w);
            }
            Op::Atomic { rmw, addr } => {
                w.put_u8(3);
                rmw.encode(w);
                addr.encode(w);
            }
            Op::Branch { taken } => {
                w.put_u8(4);
                w.put_bool(taken);
            }
            Op::Fence => w.put_u8(5),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.get_u8()? {
            0 => Op::Alu {
                latency: r.get_u8()?,
            },
            1 => Op::Load {
                addr: Addr::decode(r)?,
            },
            2 => Op::Store {
                addr: Addr::decode(r)?,
                value: Option::<u64>::decode(r)?,
            },
            3 => Op::Atomic {
                rmw: RmwKind::decode(r)?,
                addr: Addr::decode(r)?,
            },
            4 => Op::Branch {
                taken: r.get_bool()?,
            },
            5 => Op::Fence,
            tag => return Err(PersistError::BadTag { what: "Op", tag }),
        })
    }
}

impl Codec for Instr {
    fn encode(&self, w: &mut Writer) {
        self.pc.encode(w);
        self.op.encode(w);
        self.srcs.encode(w);
        self.dst.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Instr {
            pc: Pc::decode(r)?,
            op: Op::decode(r)?,
            srcs: <[Option<Reg>; 2]>::decode(r)?,
            dst: Option::<Reg>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmw_semantics() {
        assert_eq!(RmwKind::Faa(1).apply(41), (42, true));
        assert_eq!(RmwKind::Swap(5).apply(3), (5, true));
        assert_eq!(
            RmwKind::Cas {
                expected: 3,
                new: 7
            }
            .apply(3),
            (7, true)
        );
        assert_eq!(
            RmwKind::Cas {
                expected: 3,
                new: 7
            }
            .apply(4),
            (4, false)
        );
        assert_eq!(RmwKind::Faa(1).apply(u64::MAX), (0, true), "wrapping add");
    }

    #[test]
    fn queue_usage() {
        let l = Op::Load { addr: Addr::new(8) };
        let s = Op::Store {
            addr: Addr::new(8),
            value: None,
        };
        let a = Op::Atomic {
            rmw: RmwKind::Faa(1),
            addr: Addr::new(8),
        };
        assert!(l.uses_lq() && !l.uses_sb());
        assert!(!s.uses_lq() && s.uses_sb());
        assert!(a.uses_lq() && a.uses_sb() && a.is_atomic());
        assert!(!Op::Fence.uses_lq());
    }

    #[test]
    fn addr_extraction() {
        assert_eq!(
            Op::Load {
                addr: Addr::new(64)
            }
            .addr(),
            Some(Addr::new(64))
        );
        assert_eq!(Op::Alu { latency: 1 }.addr(), None);
    }

    #[test]
    fn builders() {
        let i = Instr::simple(Pc::new(4), Op::Alu { latency: 1 })
            .with_srcs(Some(1), None)
            .with_dst(2);
        assert_eq!(i.srcs, [Some(1), None]);
        assert_eq!(i.dst, Some(2));
    }

    #[test]
    fn vec_stream_yields_in_order_then_none() {
        let mut s = VecStream::new(vec![
            Instr::simple(Pc::new(0), Op::Alu { latency: 1 }),
            Instr::simple(Pc::new(4), Op::Fence),
        ]);
        assert_eq!(s.next_instr().unwrap().pc, Pc::new(0));
        assert_eq!(s.next_instr().unwrap().pc, Pc::new(4));
        assert!(s.next_instr().is_none());
        assert!(s.next_instr().is_none());
    }
}
