//! Out-of-order x86-TSO core model with unfenced atomics.
//!
//! The in-house core model of the paper, rebuilt from scratch:
//!
//! * [`instr`] — the decoded-instruction vocabulary and the
//!   [`InstrStream`] front-end trait (the Sniper substitute).
//! * [`branch`] — TAGE-lite direction prediction (Table I: TAGE-SC-L).
//! * [`storeset`] — StoreSet memory-dependence prediction (Table I).
//! * [`core`] — the pipeline: 512-entry ROB, 192-entry LQ, 128-entry TSO SB,
//!   16-entry Atomic Queue, store→load forwarding, eager/lazy/RoW atomic
//!   scheduling, cache locking via the memory system, and a fenced mode for
//!   the Fig. 2 microbenchmark.
//! * [`stats`] — per-core counters for every figure.
//!
//! # Example
//!
//! ```
//! use row_common::{Cycle, SystemConfig, ids::{Addr, CoreId, Pc}};
//! use row_cpu::instr::{Instr, Op, RmwKind, VecStream};
//! use row_cpu::Core;
//! use row_mem::MemorySystem;
//!
//! let cfg = SystemConfig::small(1);
//! let prog = vec![Instr::simple(
//!     Pc::new(0x40),
//!     Op::Atomic { rmw: RmwKind::Faa(1), addr: Addr::new(0x1000) },
//! )];
//! let mut mem = MemorySystem::new(&cfg);
//! let mut core = Core::new(CoreId::new(0), cfg.core, cfg.mem.l1d.hit_latency,
//!                          Box::new(VecStream::new(prog)));
//! let mut now = Cycle::ZERO;
//! while !core.finished() && now.raw() < 100_000 {
//!     for ev in mem.tick(now) {
//!         core.handle_mem_event(&ev, now, &mut mem);
//!     }
//!     core.cycle(now, &mut mem);
//!     now += 1;
//! }
//! assert_eq!(mem.read_word(Addr::new(0x1000)), 1);
//! ```
//!
//! [`InstrStream`]: instr::InstrStream

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod core;
pub mod instr;
pub mod stats;
pub mod storeset;

pub use crate::core::{Core, LoadObservation};
pub use crate::instr::{Instr, InstrStream, Op, RmwKind};
pub use crate::stats::CoreStats;
