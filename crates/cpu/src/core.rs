//! The out-of-order x86-TSO core with unfenced atomics (Free Atomics).
//!
//! One [`Core`] models one hardware thread: a 512-entry-ROB (Table I)
//! out-of-order pipeline with a load queue, a TSO store buffer, an issue
//! queue, a 16-entry Atomic Queue, TAGE-lite branch prediction, StoreSet
//! memory-dependence prediction, store→load forwarding, and the three atomic
//! execution disciplines the paper studies:
//!
//! * **eager** — the atomic's memory request issues as soon as its operands
//!   are ready (Free Atomics);
//! * **lazy** — the request waits until the atomic is the oldest entry in
//!   the LQ *and* the SB holds no older stores (younger instructions still
//!   execute speculatively — this is not a fence);
//! * **RoW** — a per-PC contention prediction picks one of the two, with the
//!   `only-calculate-address` early issue (extending the contention-tracking
//!   window), the directory-latency heuristic at fill time, and the
//!   store-forwarding locality override.
//!
//! A `Fenced` mode reproduces pre-Coffee-Lake behaviour for the Fig. 2
//! microbenchmark: atomics and `mfence` act as two-sided barriers.
//!
//! The core is driven by an [`InstrStream`] and interacts with the
//! [`MemorySystem`] through demand accesses and events; everything is
//! deterministic.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use row_common::choice;
use row_common::config::{AtomicPlacement, AtomicPolicy, CoreConfig, DetectorKind, FenceModel};
use row_common::coverage::{self, CpuEvent};
use row_common::fastmap::FastMap;
use row_common::ids::{Addr, CoreId, LineAddr, Pc};
use row_common::persist::{Codec, Persist, PersistError, Reader, Writer};
use row_common::sched::EventQueue;
use row_common::Cycle;

use row_core::{detect, ExecMode, RowEngine};
use row_mem::{AccessKind, FillSource, MemEvent, MemorySystem, ReqMeta};

use crate::branch::TageLite;
use crate::instr::{Instr, InstrStream, Op, RmwKind, NUM_REGS};
use crate::stats::CoreStats;
use crate::storeset::StoreSets;

/// Cycles without a commit before the deadlock breaker fires (plus a
/// per-core stagger so two cores never break simultaneously).
///
/// Eager atomics can acquire cache locks out of program order, so two cores
/// can reach a genuine hold-and-wait cycle (core X locks A and waits for B,
/// core Y locks B and waits for A). The breaker squashes the locked,
/// uncommitted atomic and replays it lazy — the recovery any real
/// implementation of unfenced atomics needs. The threshold only has to
/// exceed the longest legitimate no-commit stretch (a memory-latency queue),
/// so it recovers quickly.
pub const DEADLOCK_CYCLES: u64 = 5_000;

const TAG_DEMAND: u64 = 0;
const TAG_SB_WRITE: u64 = 1;

#[derive(Clone, Copy, Debug)]
enum Comp {
    /// ALU or branch execution finished.
    Exec,
    /// A load/store/atomic finished address generation.
    AddrCalc,
    /// A lazy atomic's `only-calculate-address` pass finished.
    AtomicAddrOnly,
    /// Load data is available (fill, forward, or replay).
    LoadDone { forwarded: bool },
    /// The atomic's ALU phase produced its result.
    AtomicValue,
    /// An SB entry's write to the L1D completed.
    SbWrite,
}

#[derive(Clone, Debug)]
struct RobEntry {
    order: u64,
    instr: Instr,
    pending_deps: u32,
    in_iq: bool,
    issued_at: Option<Cycle>,
    completed_at: Option<Cycle>,
    /// For loads: which store forwarded to it (uid, order).
    forwarded_from: Option<(u64, u64)>,
    /// For loads: a demand request is outstanding in the memory system.
    mem_outstanding: bool,
}

#[derive(Clone, Debug)]
struct SbEntry {
    uid: u64,
    order: u64,
    pc: Pc,
    addr: Option<Addr>,
    value: Option<u64>,
    atomic: bool,
    committed: bool,
    inflight: bool,
}

#[derive(Clone, Debug)]
struct AqEntry {
    uid: u64,
    order: u64,
    pc: Pc,
    rmw: RmwKind,
    addr: Addr,
    addr_known: bool,
    locked: bool,
    /// The fill arrived but the lock was released because an older atomic
    /// had not locked yet (in-order lock acquisition); re-acquired when this
    /// entry becomes the oldest unlocked one.
    fill_pending: bool,
    contended: bool,
    predicted_contended: bool,
    mode: ExecMode,
    dispatched_at: Cycle,
    mem_issued_at: Option<Cycle>,
    locked_at: Option<Cycle>,
    issued14: u16,
    forwarded: bool,
}

/// Snapshot of a load the core observed (for TSO litmus tests).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LoadObservation {
    /// The load's PC.
    pub pc: Pc,
    /// The address read.
    pub addr: Addr,
    /// The 64-bit value observed.
    pub value: u64,
}

/// One simulated out-of-order core.
pub struct Core {
    id: CoreId,
    cfg: CoreConfig,
    l1_lat: u64,
    stream: Box<dyn InstrStream>,
    stream_done: bool,
    peeked: Option<Instr>,
    replay: VecDeque<(u64, Instr)>,
    next_order: u64,
    next_uid: u64,

    rob: VecDeque<u64>,
    entries: FastMap<u64, RobEntry>,
    rename: [Option<u64>; NUM_REGS],
    waiters: FastMap<u64, Vec<u64>>,
    ready: BTreeMap<u64, u64>,
    lazy_wait: BTreeMap<u64, u64>,
    waiting_on_store: FastMap<u64, Vec<u64>>,
    /// Recycled dependency-list allocations for `waiters`/`waiting_on_store`:
    /// those lists churn roughly once per instruction, so removals park their
    /// emptied `Vec` here instead of freeing it. Derived scratch — never
    /// persisted or compared.
    waiter_pool: Vec<Vec<u64>>,
    /// Reusable issue-selection scratch (see [`Core::issue`]). Never
    /// persisted.
    scratch_pick: Vec<u64>,
    iq_used: usize,
    lq: BTreeMap<u64, u64>,
    sb: VecDeque<SbEntry>,
    aq: VecDeque<AqEntry>,
    barriers: BTreeSet<u64>,
    exec_done: EventQueue<(u64, Comp)>,
    sb_miss_inflight: bool,

    branch_stall: Option<u64>,
    fetch_resume_at: Cycle,
    bp: TageLite,
    ss: StoreSets,
    row: Option<RowEngine>,
    stats_detector: DetectorKind,
    force_lazy: BTreeSet<u64>,

    last_commit: Cycle,
    stats: CoreStats,
    load_log: Option<Vec<LoadObservation>>,
    /// Explorer commit-timing decision for the atomic at the ROB head:
    /// `(uid, release cycle)` chosen via [`row_common::choice`] when the RMW
    /// first became commit-ready. `None` between atomics. With no controller
    /// installed the release is the ready cycle itself (no behaviour change).
    commit_release: Option<(u64, Cycle)>,
    /// ROB-head uid known to still be incomplete (`completed_at == None`),
    /// so `commit` can break without a map lookup on stalled cycles. Cleared
    /// whenever that uid completes or is squashed. Derived cache — never
    /// persisted (cleared on restore) or compared.
    head_wait: Option<u64>,
}

impl Core {
    /// Creates a core fed by `stream`. `l1_lat` is the L1D hit latency used
    /// for forwarding timing (Table I: 5 cycles).
    pub fn new(id: CoreId, cfg: CoreConfig, l1_lat: u64, stream: Box<dyn InstrStream>) -> Self {
        let row = cfg.atomic_policy.row().map(|rc| RowEngine::new(*rc));
        let stats_detector = row
            .as_ref()
            .map(|r| r.detector())
            .unwrap_or_else(DetectorKind::rw_dir_default);
        Core {
            id,
            cfg,
            l1_lat,
            stream,
            stream_done: false,
            peeked: None,
            replay: VecDeque::new(),
            next_order: 0,
            next_uid: 1,
            rob: VecDeque::new(),
            entries: FastMap::new(),
            rename: [None; NUM_REGS],
            waiters: FastMap::new(),
            ready: BTreeMap::new(),
            lazy_wait: BTreeMap::new(),
            waiting_on_store: FastMap::new(),
            waiter_pool: Vec::new(),
            scratch_pick: Vec::new(),
            iq_used: 0,
            lq: BTreeMap::new(),
            sb: VecDeque::new(),
            aq: VecDeque::new(),
            barriers: BTreeSet::new(),
            exec_done: EventQueue::new(),
            sb_miss_inflight: false,
            branch_stall: None,
            fetch_resume_at: Cycle::ZERO,
            bp: TageLite::new(),
            ss: StoreSets::new(),
            row,
            stats_detector,
            force_lazy: BTreeSet::new(),
            last_commit: Cycle::ZERO,
            stats: CoreStats::default(),
            load_log: None,
            commit_release: None,
            head_wait: None,
        }
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Moves the statistics out of the core, leaving zeroed counters.
    ///
    /// Result assembly at the end of a run uses this instead of cloning:
    /// the accumulators (histogram-free, but still several means) are the
    /// largest part of a core's result footprint, and the core is done
    /// counting once its trace has drained.
    pub fn take_stats(&mut self) -> CoreStats {
        std::mem::take(&mut self.stats)
    }

    /// Branch-predictor statistics.
    pub fn branch_stats(&self) -> &crate::branch::BranchStats {
        self.bp.stats()
    }

    /// RoW accuracy counters (when running under the RoW policy).
    pub fn row_accuracy(&self) -> Option<&row_common::stats::AccuracyCounter> {
        self.row.as_ref().map(|r| r.accuracy())
    }

    /// Enables recording of every load's observed value (TSO litmus tests).
    pub fn record_loads(&mut self) {
        self.load_log = Some(Vec::new());
    }

    /// The recorded load observations (empty unless
    /// [`Core::record_loads`] was called).
    pub fn load_observations(&self) -> &[LoadObservation] {
        self.load_log.as_deref().unwrap_or(&[])
    }

    /// Whether the core has drained: trace exhausted and pipeline empty.
    pub fn finished(&self) -> bool {
        self.stream_done
            && self.peeked.is_none()
            && self.replay.is_empty()
            && self.rob.is_empty()
            && self.sb.is_empty()
    }

    /// Occupied ROB entries (stall diagnostics).
    pub fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }

    /// Occupied store-buffer entries (stall diagnostics).
    pub fn sb_occupancy(&self) -> usize {
        self.sb.len()
    }

    /// Occupied atomic-queue entries (stall diagnostics).
    pub fn aq_occupancy(&self) -> usize {
        self.aq.len()
    }

    /// Cycle of the most recent commit (`Cycle::ZERO` before the first).
    pub fn last_commit(&self) -> Cycle {
        self.last_commit
    }

    /// A human-readable description of the ROB-head instruction, if any —
    /// the instruction the core is stuck on when it stops committing.
    pub fn head_instr(&self) -> Option<String> {
        let uid = *self.rob.front()?;
        let e = self.entries.get(&uid)?;
        let i = &e.instr;
        let what = match i.op {
            Op::Alu { latency } => format!("alu(lat {latency})"),
            Op::Load { addr } => format!("load {addr}"),
            Op::Store { addr, .. } => format!("store {addr}"),
            Op::Atomic { rmw, addr } => format!("atomic {rmw:?} {addr}"),
            Op::Branch { taken } => format!("branch(taken {taken})"),
            Op::Fence => "fence".to_string(),
        };
        Some(format!("#{} pc {} {}", e.order, i.pc, what))
    }

    fn req_id(uid: u64, tag: u64) -> u64 {
        uid << 1 | tag
    }

    fn far(&self) -> bool {
        self.cfg.atomic_placement == AtomicPlacement::Far
    }

    /// Routes a memory-system event to this core. Call before
    /// [`Core::cycle`] for the same `now`.
    pub fn handle_mem_event(&mut self, ev: &MemEvent, now: Cycle, mem: &mut MemorySystem) {
        match *ev {
            MemEvent::Fill {
                req_id,
                at,
                source,
                kind,
                line,
                ..
            } => {
                let uid = req_id >> 1;
                let tag = req_id & 1;
                if tag == TAG_SB_WRITE {
                    self.exec_done.push(at.max(now), (uid, Comp::SbWrite));
                    return;
                }
                if !self.entries.contains_key(&uid) {
                    // Squashed instruction's fill. An Rmw auto-locked the
                    // line; release it.
                    if kind == AccessKind::Rmw {
                        mem.unlock(self.id, line, now);
                    }
                    return;
                }
                match self.entries[&uid].instr.op {
                    Op::Load { .. } => {
                        self.exec_done
                            .push(at.max(now), (uid, Comp::LoadDone { forwarded: false }));
                    }
                    Op::Atomic { .. } => {
                        let lock_at = at.max(now);
                        let pos = self.aq.iter().position(|a| a.uid == uid);
                        if let Some(pos) = pos {
                            let all_older_locked = self.aq.iter().take(pos).all(|a| a.locked);
                            let a = &mut self.aq[pos];
                            if detect::marks_on_fill(
                                self.stats_detector,
                                source == FillSource::RemotePrivate,
                                a.issued14,
                                at,
                            ) {
                                a.contended = true;
                            }
                            if all_older_locked {
                                a.locked = true;
                                a.locked_at = Some(lock_at);
                                self.cascade_locks(lock_at, mem);
                            } else {
                                // In-order lock acquisition: an atomic may
                                // only hold its cache lock once every older
                                // atomic holds its own, which rules out
                                // younger-holds-while-older-waits deadlock
                                // cycles across cores. Release and re-acquire
                                // when our turn comes.
                                a.fill_pending = true;
                                mem.unlock(self.id, line, lock_at);
                            }
                        } else {
                            mem.unlock(self.id, line, now);
                            return;
                        }
                        self.exec_done.push(lock_at + 1, (uid, Comp::AtomicValue));
                    }
                    _ => {}
                }
            }
            MemEvent::FarDone { req_id, at, .. } => {
                let uid = req_id >> 1;
                if !self.entries.contains_key(&uid) {
                    return; // squashed far atomic: nothing to release
                }
                let done_at = at.max(now);
                if let Some(a) = self.aq.iter_mut().find(|a| a.uid == uid) {
                    // "Locked" stands in for "performed at home": the commit
                    // gate is the same.
                    a.locked = true;
                    a.locked_at = Some(done_at);
                }
                self.exec_done.push(done_at, (uid, Comp::AtomicValue));
            }
            MemEvent::ExternalObserved { line, at, .. } => {
                // Contention tracking: snoop the AQ.
                for a in self.aq.iter_mut() {
                    if a.addr_known
                        && a.addr.line() == line
                        && detect::marks_on_external(self.stats_detector, a.addr_known, a.locked)
                    {
                        a.contended = true;
                    }
                }
                // TSO: squash speculative loads that already read this line.
                self.squash_loads_on_line(line, at.max(now), mem);
            }
        }
    }

    fn squash_loads_on_line(&mut self, line: LineAddr, now: Cycle, mem: &mut MemorySystem) {
        // Arena walk: `entries` holds exactly the ROB's live set, and taking
        // the minimum order matches the old oldest-first ROB scan.
        let mut squash_order: Option<u64> = None;
        for (_, e) in self.entries.iter() {
            if let Op::Load { addr } = e.instr.op {
                if addr.line() == line
                    && e.completed_at.is_some()
                    && e.forwarded_from.is_none()
                    && squash_order.is_none_or(|o| e.order < o)
                {
                    squash_order = Some(e.order);
                }
            }
        }
        if let Some(order) = squash_order {
            self.stats.inv_squashes += 1;
            self.squash_from(order, now, mem);
        }
    }

    /// Advances the core by one cycle.
    pub fn cycle(&mut self, now: Cycle, mem: &mut MemorySystem) {
        self.completions(now, mem);
        self.commit(now);
        self.drain_sb(now, mem);
        self.issue(now, mem);
        self.dispatch(now);
        self.deadlock_check(now, mem);
        if self.finished() && self.stats.finished_at.is_none() {
            self.stats.finished_at = Some(now);
        }
    }

    /// Earliest future cycle at which this core could make progress again,
    /// or `None` when it must run next cycle.
    ///
    /// `Some(w)` is a *proof obligation*: every phase of [`Core::cycle`] is a
    /// state no-op for all cycles in `(now, w)` provided no memory event is
    /// delivered to the core in between — the caller must re-run the core as
    /// soon as it routes one (see `Machine::step_cycle`). The conditions
    /// mirror the phases one-to-one:
    ///
    /// * completions — the event wheel's next entry is in the future;
    /// * commit — the ROB head is memoized incomplete ([`Core::head_wait`]),
    ///   and completion only happens via the wheel or a memory event;
    /// * SB drain — serialized on a miss, or the front entry is not
    ///   drainable (uncommitted, or already in flight);
    /// * issue — nothing ready, nothing lazily waiting;
    /// * dispatch — structurally blocked (ROB/IQ full, or the replayed front
    ///   instruction's LQ/SB/AQ resource is full), fetch-stalled, or the
    ///   stream is exhausted. Resources only free via commit or events;
    /// * deadlock watchdog — woken exactly at its deadline.
    pub fn sleep_until(&self, now: Cycle) -> Option<Cycle> {
        if !self.ready.is_empty() || !self.lazy_wait.is_empty() {
            return None;
        }
        let &head = self.rob.front()?;
        if self.head_wait != Some(head) {
            return None;
        }
        if !self.sb_miss_inflight {
            if let Some(s) = self.sb.front() {
                if s.committed && !s.inflight {
                    return None;
                }
            }
        }
        let fetch_stalled = self.branch_stall.is_some() || now < self.fetch_resume_at;
        let dispatch_inert = self.rob.len() >= self.cfg.rob_entries
            || self.iq_used >= self.cfg.iq_entries
            || fetch_stalled
            || match self.replay.front() {
                // The front instruction was unfetched on a structural
                // hazard; dispatch stays a push-pop no-op while the
                // blocking resource is full.
                Some((_, i)) => match i.op {
                    Op::Load { .. } => self.lq.len() >= self.cfg.lq_entries,
                    Op::Store { .. } => self.sb.len() >= self.cfg.sb_entries,
                    Op::Atomic { .. } => {
                        self.lq.len() >= self.cfg.lq_entries
                            || (!self.far() && self.sb.len() >= self.cfg.sb_entries)
                            || self.aq.len() >= self.cfg.aq_entries
                    }
                    _ => false,
                },
                None => self.peeked.is_none() && self.stream_done,
            };
        if !dispatch_inert {
            return None;
        }
        // Earliest time-driven transition: the deadlock watchdog deadline,
        // the next wheel completion, and a pending fetch resume.
        let mut wake = self.last_commit + (DEADLOCK_CYCLES + self.id.index() as u64 * 211);
        if let Some(c) = self.exec_done.next_cycle() {
            wake = wake.min(c);
        }
        if self.fetch_resume_at > now {
            wake = wake.min(self.fetch_resume_at);
        }
        (wake > now).then_some(wake)
    }

    // ------------------------------------------------------------------
    // Completion handling
    // ------------------------------------------------------------------

    fn completions(&mut self, now: Cycle, mem: &mut MemorySystem) {
        while let Some((uid, comp)) = self.exec_done.pop_ready(now) {
            match comp {
                Comp::SbWrite => self.sb_write_done(uid, now, mem),
                _ if !self.entries.contains_key(&uid) => {} // squashed
                Comp::Exec => self.complete(uid, now),
                Comp::AddrCalc => self.addr_calc_done(uid, now, mem),
                Comp::AtomicAddrOnly => self.atomic_addr_only_done(uid, now, mem),
                Comp::LoadDone { forwarded } => self.load_done(uid, now, forwarded, mem),
                Comp::AtomicValue => self.complete(uid, now),
            }
        }
    }

    /// Marks `uid` completed and wakes dependents.
    fn complete(&mut self, uid: u64, now: Cycle) {
        let e = self.entries.get_mut(&uid).expect("completing live entry");
        if e.completed_at.is_some() {
            return;
        }
        e.completed_at = Some(now);
        if self.head_wait == Some(uid) {
            self.head_wait = None;
        }
        let is_branch = matches!(e.instr.op, Op::Branch { .. });
        let is_fence = matches!(e.instr.op, Op::Fence);
        let order = e.order;
        if is_fence {
            self.barriers.remove(&order);
        }
        if is_branch && self.branch_stall == Some(uid) {
            self.branch_stall = None;
            self.fetch_resume_at = now + self.cfg.frontend_depth;
        }
        if let Some(mut ws) = self.waiters.remove(&uid) {
            for &w in ws.iter() {
                if let Some(c) = self.entries.get_mut(&w) {
                    c.pending_deps -= 1;
                    if c.pending_deps == 0 {
                        self.ready.insert(c.order, w);
                    }
                }
            }
            ws.clear();
            self.waiter_pool.push(ws);
        }
    }

    fn addr_calc_done(&mut self, uid: u64, now: Cycle, mem: &mut MemorySystem) {
        let e = &self.entries[&uid];
        match e.instr.op {
            Op::Load { addr } => {
                let pc = e.instr.pc;
                // StoreSet: wait for a predicted-conflicting older store
                // whose address is still unknown.
                if let Some(dep) = self.ss.dependence_for_load(pc) {
                    if let Some(se) = self.entries.get(&dep) {
                        let addr_unknown = self.sb.iter().any(|s| s.uid == dep && s.addr.is_none());
                        if se.order < e.order && addr_unknown {
                            let pool = &mut self.waiter_pool;
                            self.waiting_on_store
                                .get_or_insert_with(dep, || pool.pop().unwrap_or_default())
                                .push(uid);
                            return;
                        }
                    }
                }
                self.issue_load_mem(uid, addr, now, mem);
            }
            Op::Store { addr, value } => {
                if let Some(s) = self.sb.iter_mut().find(|s| s.uid == uid) {
                    s.addr = Some(addr);
                    s.value = value;
                }
                self.complete(uid, now);
                self.check_violations(uid, addr, now, mem);
                if let Some(mut loads) = self.waiting_on_store.remove(&uid) {
                    for &l in &loads {
                        if let Some(le) = self.entries.get(&l) {
                            if let Op::Load { addr } = le.instr.op {
                                self.issue_load_mem(l, addr, now, mem);
                            }
                        }
                    }
                    loads.clear();
                    self.waiter_pool.push(loads);
                }
            }
            Op::Atomic { addr, .. } => {
                self.atomic_mem_request(uid, addr, now, mem);
            }
            _ => unreachable!("addr calc for non-memory op"),
        }
    }

    fn issue_load_mem(&mut self, uid: u64, addr: Addr, now: Cycle, mem: &mut MemorySystem) {
        let order = self.entries[&uid].order;
        let word = addr.raw() & !7;
        // Store→load forwarding: youngest older store with a matching word.
        let fwd = self
            .sb
            .iter()
            .rev()
            .filter(|s| s.order < order && !s.atomic)
            .find(|s| s.addr.is_some_and(|a| a.raw() & !7 == word));
        if let Some(st) = fwd {
            let (st_uid, st_order) = (st.uid, st.order);
            self.stats.loads_forwarded += 1;
            let e = self.entries.get_mut(&uid).expect("live load");
            e.forwarded_from = Some((st_uid, st_order));
            self.exec_done
                .push(now + self.l1_lat, (uid, Comp::LoadDone { forwarded: true }));
            return;
        }
        let pc = self.entries[&uid].instr.pc;
        self.entries
            .get_mut(&uid)
            .expect("live load")
            .mem_outstanding = true;
        mem.access(
            self.id,
            addr.line(),
            ReqMeta {
                req_id: Self::req_id(uid, TAG_DEMAND),
                pc: Some(pc),
                prefetch: false,
                kind: AccessKind::Read,
            },
            now,
        );
    }

    fn load_done(&mut self, uid: u64, now: Cycle, forwarded: bool, mem: &mut MemorySystem) {
        let e = self.entries.get_mut(&uid).expect("live load");
        e.mem_outstanding = false;
        let observed = if forwarded {
            let st = e.forwarded_from.map(|(u, _)| u);
            self.sb
                .iter()
                .find(|s| Some(s.uid) == st)
                .and_then(|s| s.value)
        } else {
            None
        };
        let (pc, addr) = match self.entries[&uid].instr.op {
            Op::Load { addr } => (self.entries[&uid].instr.pc, addr),
            _ => unreachable!(),
        };
        let value = observed.unwrap_or_else(|| mem.read_word(addr));
        if let Some(log) = self.load_log.as_mut() {
            log.push(LoadObservation { pc, addr, value });
        }
        self.complete(uid, now);
    }

    /// When a store's address resolves, squash younger completed loads that
    /// read the same word without forwarding from it (memory-order
    /// violation), and train StoreSet.
    fn check_violations(&mut self, store_uid: u64, addr: Addr, now: Cycle, mem: &mut MemorySystem) {
        let store = &self.entries[&store_uid];
        let (st_order, st_pc) = (store.order, store.instr.pc);
        let word = addr.raw() & !7;
        // Arena walk (see `squash_loads_on_line`): min order == oldest-first.
        let mut victim: Option<(u64, Pc)> = None;
        for (_, e) in self.entries.iter() {
            if e.order <= st_order {
                continue;
            }
            if let Op::Load { addr: la } = e.instr.op {
                if la.raw() & !7 == word && e.completed_at.is_some() {
                    let fwd_ok = e.forwarded_from.is_some_and(|(_, fo)| fo > st_order);
                    if !fwd_ok && victim.is_none_or(|(o, _)| e.order < o) {
                        victim = Some((e.order, e.instr.pc));
                    }
                }
            }
        }
        if let Some((order, load_pc)) = victim {
            self.stats.violations += 1;
            self.ss.train_violation(load_pc, st_pc);
            self.squash_from(order, now, mem);
        }
    }

    // ------------------------------------------------------------------
    // Atomic execution
    // ------------------------------------------------------------------

    fn atomic_addr_only_done(&mut self, uid: u64, now: Cycle, mem: &mut MemorySystem) {
        let Some(pos) = self.aq.iter().position(|a| a.uid == uid) else {
            return;
        };
        self.aq[pos].addr_known = true;
        let addr = self.aq[pos].addr;
        // Locality override (Section IV-E): a matching older store in the SB
        // flips the lazy atomic eager.
        let override_on = self
            .row
            .as_ref()
            .is_some_and(|r| r.locality_override() && self.cfg.forward_to_atomics);
        if override_on && self.sb_forward_match(self.aq[pos].order, addr) {
            self.stats.locality_overrides += 1;
            coverage::record(coverage::cpu_slot(CpuEvent::LocalityOverride));
            self.aq[pos].mode = ExecMode::Eager;
            self.atomic_mem_request(uid, addr, now, mem);
            return;
        }
        coverage::record(coverage::cpu_slot(CpuEvent::LazyWait));
        let order = self.entries[&uid].order;
        self.lazy_wait.insert(order, uid);
    }

    fn sb_forward_match(&self, order: u64, addr: Addr) -> bool {
        let word = addr.raw() & !7;
        self.sb
            .iter()
            .any(|s| s.order < order && !s.atomic && s.addr.is_some_and(|a| a.raw() & !7 == word))
    }

    /// Issues the atomic's real memory request (the `load_lock`).
    fn atomic_mem_request(&mut self, uid: u64, addr: Addr, now: Cycle, mem: &mut MemorySystem) {
        let e = self.entries.get_mut(&uid).expect("live atomic");
        let (order, pc) = (e.order, e.instr.pc);
        // Fig. 4 probes.
        let mut older_unexecuted = 0u64;
        let mut younger_started = 0u64;
        for &u in &self.rob {
            let o = &self.entries[&u];
            if o.order < order && o.completed_at.is_none() {
                older_unexecuted += 1;
            }
            if o.order > order && o.issued_at.is_some() {
                younger_started += 1;
            }
        }
        self.stats.older_unexecuted_at_issue.add(older_unexecuted);
        self.stats.younger_started_at_issue.add(younger_started);

        let fwd = self.cfg.forward_to_atomics && self.sb_forward_match(order, addr);
        {
            let a = self
                .aq
                .iter_mut()
                .find(|a| a.uid == uid)
                .expect("AQ entry for live atomic");
            a.addr_known = true;
            a.mem_issued_at = Some(now);
            a.issued14 = now.timestamp14();
            a.forwarded = fwd;
        }
        if fwd {
            self.stats.atomics_forwarded += 1;
            coverage::record(coverage::cpu_slot(CpuEvent::Forwarded));
        }
        let mode = self.aq.iter().find(|a| a.uid == uid).map(|a| a.mode);
        coverage::record(coverage::cpu_slot(match (self.far(), mode) {
            (true, _) => CpuEvent::FarIssue,
            (false, Some(ExecMode::Lazy)) => CpuEvent::LazyIssue,
            (false, _) => CpuEvent::EagerIssue,
        }));
        if self.iq_used > 0 {
            // The atomic's IQ entry is released on its real issue.
            if self.entries.get_mut(&uid).expect("live").in_iq {
                self.entries.get_mut(&uid).expect("live").in_iq = false;
                self.iq_used -= 1;
            }
        }
        if self.far() {
            let rmw = self
                .aq
                .iter()
                .find(|a| a.uid == uid)
                .map(|a| a.rmw)
                .expect("AQ entry");
            mem.far_atomic(
                self.id,
                addr.line(),
                rmw,
                Self::req_id(uid, TAG_DEMAND),
                now + 1,
            );
            return;
        }
        mem.access(
            self.id,
            addr.line(),
            ReqMeta {
                req_id: Self::req_id(uid, TAG_DEMAND),
                pc: Some(pc),
                prefetch: false,
                kind: AccessKind::Rmw,
            },
            now,
        );
    }

    /// After any lock state change, let the oldest unlocked atomic (re-)take
    /// its lock if its fill already arrived.
    fn cascade_locks(&mut self, now: Cycle, mem: &mut MemorySystem) {
        loop {
            let Some(pos) = self.aq.iter().position(|a| !a.locked) else {
                return;
            };
            if !self.aq[pos].fill_pending {
                return;
            }
            let (uid, addr, pc) = (self.aq[pos].uid, self.aq[pos].addr, self.aq[pos].pc);
            let line = addr.line();
            self.aq[pos].fill_pending = false;
            if mem.owns(self.id, line) {
                mem.lock(self.id, line);
                coverage::record(coverage::cpu_slot(CpuEvent::LockAcquire));
                let a = &mut self.aq[pos];
                a.locked = true;
                a.locked_at = Some(now);
                continue; // the next pending entry may follow suit
            }
            // The line was stolen while we waited our turn: re-request.
            self.stats.lock_reacquires += 1;
            coverage::record(coverage::cpu_slot(CpuEvent::LockReacquire));
            let a = &mut self.aq[pos];
            a.issued14 = now.timestamp14();
            mem.access(
                self.id,
                line,
                ReqMeta {
                    req_id: Self::req_id(uid, TAG_DEMAND),
                    pc: Some(pc),
                    prefetch: false,
                    kind: AccessKind::Rmw,
                },
                now,
            );
            return;
        }
    }

    fn lazy_eligible(&self, order: u64) -> bool {
        let older_load = self.lq.keys().next().is_some_and(|&o| o < order);
        let older_store = self.sb.front().is_some_and(|s| s.order < order);
        !older_load && !older_store
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit(&mut self, now: Cycle) {
        for _ in 0..self.cfg.commit_width {
            let Some(&uid) = self.rob.front() else { break };
            // Memoized stall: the head is known incomplete and nothing has
            // completed it since — skip the entry lookup entirely.
            if self.head_wait == Some(uid) {
                break;
            }
            let e = &self.entries[&uid];
            let done = match e.instr.op {
                // Until the RMW completes (fill arrives) it cannot commit;
                // skip the AQ scan on the stalled-waiting-for-fill cycles.
                Op::Atomic { .. } if e.completed_at.is_none_or(|c| c > now) => false,
                Op::Atomic { .. } => {
                    // The previous atomic's AQ entry may linger until its STU
                    // writes, so find ours by uid rather than at the head.
                    let a = self
                        .aq
                        .iter()
                        .find(|a| a.uid == uid)
                        .expect("AQ entry for atomic at ROB head");
                    // Near atomics own the SB head entry at this point; far
                    // atomics have no SB entry — either way, nothing older
                    // may remain buffered.
                    let order = e.order;
                    let sb_drained = self.sb.front().is_none_or(|s| s.order >= order);
                    let ready = e.completed_at.is_some_and(|c| c <= now) && a.locked && sb_drained;
                    // Explorer decision point, asked exactly once when the
                    // RMW first becomes commit-ready: the controller may hold
                    // the commit for whole quanta (the paper's "no rush" knob
                    // as an enumerable choice). Alternative 0 — every run
                    // without a controller — releases at the ready cycle.
                    if ready {
                        let release = match self.commit_release {
                            Some((u, rel)) if u == uid => rel,
                            _ => {
                                let alt = choice::choose(
                                    choice::ChoiceKind::Commit,
                                    self.id.index() as u16,
                                    self.id.index() as u16,
                                    a.addr.line().raw(),
                                    now.raw(),
                                    choice::N_ALTS,
                                );
                                let rel = now + choice::commit_delay(alt);
                                self.commit_release = Some((uid, rel));
                                rel
                            }
                        };
                        now >= release
                    } else {
                        false
                    }
                }
                _ => e.completed_at.is_some_and(|c| c <= now),
            };
            if !done {
                // Only an incomplete head is safe to memoize: lock/release/
                // SB conditions can change without a completion event.
                if e.completed_at.is_none() {
                    self.head_wait = Some(uid);
                }
                break;
            }
            self.rob.pop_front();
            let e = self.entries.remove(&uid).expect("committed entry");
            self.stats.committed += 1;
            self.last_commit = now;
            match e.instr.op {
                Op::Load { .. } => {
                    self.lq.remove(&e.order);
                }
                Op::Store { .. } => {
                    if let Some(s) = self.sb.iter_mut().find(|s| s.uid == uid) {
                        s.committed = true;
                    }
                }
                Op::Atomic { .. } => {
                    self.lq.remove(&e.order);
                    self.commit_release = None;
                    if self.far() {
                        self.finish_far_atomic(uid, now);
                    } else if let Some(s) = self.sb.iter_mut().find(|s| s.uid == uid) {
                        s.committed = true;
                    }
                }
                _ => {}
            }
            // Clean the rename entry that still points at this uid (only the
            // instruction's own dst register can — rename is written at
            // dispatch and squash-rebuild exclusively from `instr.dst`).
            if let Some(d) = e.instr.dst {
                if self.rename[d as usize] == Some(uid) {
                    self.rename[d as usize] = None;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Store buffer drain (TSO: in order)
    // ------------------------------------------------------------------

    fn drain_sb(&mut self, now: Cycle, mem: &mut MemorySystem) {
        if self.sb_miss_inflight {
            return;
        }
        let mut initiated = 0;
        for i in 0..self.sb.len() {
            if initiated >= 2 {
                break;
            }
            let s = &self.sb[i];
            if !s.committed {
                break;
            }
            if s.inflight {
                continue;
            }
            let Some(addr) = s.addr else { break };
            let line = addr.line();
            let owned = s.atomic || mem.owns(self.id, line);
            let (uid, pc) = (s.uid, s.pc);
            self.sb[i].inflight = true;
            mem.access(
                self.id,
                line,
                ReqMeta {
                    req_id: Self::req_id(uid, TAG_SB_WRITE),
                    pc: Some(pc),
                    prefetch: false,
                    kind: AccessKind::Write,
                },
                now,
            );
            initiated += 1;
            if !owned {
                // A write miss serializes the drain (TSO order).
                self.sb_miss_inflight = true;
                break;
            }
        }
    }

    fn sb_write_done(&mut self, uid: u64, now: Cycle, mem: &mut MemorySystem) {
        let Some(pos) = self.sb.iter().position(|s| s.uid == uid) else {
            return;
        };
        if pos != 0 {
            // An older write is still in flight (e.g. it hit in L2 while this
            // one hit in L1). TSO: retire strictly in order — retry shortly.
            self.exec_done.push(now + 1, (uid, Comp::SbWrite));
            return;
        }
        let s = self.sb.remove(pos).expect("present");
        self.sb_miss_inflight = false;
        if self.sb.is_empty() && !self.lazy_wait.is_empty() {
            coverage::record(coverage::cpu_slot(CpuEvent::SbDrain));
        }
        if s.atomic {
            self.finish_atomic(uid, now, mem);
        } else {
            let addr = s.addr.expect("written store has an address");
            if let Some(v) = s.value {
                mem.store_word(self.id, addr, v, now);
            }
            self.ss.store_completed(s.pc, uid);
        }
    }

    /// The `store_unlock` wrote: perform the functional RMW, release the
    /// lock, train RoW, and record the Fig. 6 breakdown.
    fn finish_atomic(&mut self, uid: u64, now: Cycle, mem: &mut MemorySystem) {
        let pos = self
            .aq
            .iter()
            .position(|a| a.uid == uid)
            .expect("AQ entry for finishing atomic");
        debug_assert_eq!(pos, 0, "AQ unlocks from its head");
        let a = self.aq.remove(pos).expect("present");
        mem.apply_rmw(self.id, a.addr, a.rmw, now);
        mem.unlock(self.id, a.addr.line(), now);
        if self.cfg.fence_model == FenceModel::Fenced {
            self.barriers.remove(&a.order);
        }

        self.stats.atomics += 1;
        if a.contended {
            self.stats.contended_atomics += 1;
        }
        match a.mode {
            ExecMode::Eager => self.stats.atomics_eager += 1,
            ExecMode::Lazy => self.stats.atomics_lazy += 1,
        }
        let mem_issued = a.mem_issued_at.unwrap_or(a.dispatched_at);
        let locked = a.locked_at.unwrap_or(mem_issued);
        self.stats.breakdown.record(
            mem_issued.saturating_since(a.dispatched_at),
            locked.saturating_since(mem_issued),
            now.saturating_since(locked),
        );
        self.stats
            .atomic_latency
            .add(now.saturating_since(a.dispatched_at));
        if let Some(row) = self.row.as_mut() {
            row.complete(a.pc, a.predicted_contended, a.contended);
        }
        self.cascade_locks(now, mem);
    }

    /// Retires a far atomic at commit: the RMW already performed at the home
    /// directory; only bookkeeping remains.
    fn finish_far_atomic(&mut self, uid: u64, now: Cycle) {
        let pos = self
            .aq
            .iter()
            .position(|a| a.uid == uid)
            .expect("AQ entry for far atomic");
        let a = self.aq.remove(pos).expect("present");
        self.stats.atomics += 1;
        self.stats.atomics_lazy += 1;
        let mem_issued = a.mem_issued_at.unwrap_or(a.dispatched_at);
        let done = a.locked_at.unwrap_or(mem_issued);
        self.stats.breakdown.record(
            mem_issued.saturating_since(a.dispatched_at),
            done.saturating_since(mem_issued),
            now.saturating_since(done),
        );
        self.stats
            .atomic_latency
            .add(now.saturating_since(a.dispatched_at));
    }

    // ------------------------------------------------------------------
    // Issue
    // ------------------------------------------------------------------

    fn issue(&mut self, now: Cycle, mem: &mut MemorySystem) {
        // Stalled-core fast path: nothing waiting, nothing ready.
        if self.lazy_wait.is_empty() && self.ready.is_empty() {
            return;
        }
        // Lazy atomics / fences: only the oldest can be eligible.
        while let Some((&order, &uid)) = self.lazy_wait.iter().next() {
            if !self.lazy_eligible(order) {
                break;
            }
            self.lazy_wait.remove(&order);
            match self.entries[&uid].instr.op {
                Op::Fence => {
                    self.exec_done.push(now + 1, (uid, Comp::Exec));
                }
                Op::Atomic { addr, .. } => {
                    // Address was pre-computed (copy from the AQ entry) or is
                    // computed now (EW / plain-lazy path).
                    let known = self
                        .aq
                        .iter()
                        .find(|a| a.uid == uid)
                        .is_some_and(|a| a.addr_known);
                    if known {
                        self.atomic_mem_request(uid, addr, now, mem);
                    } else {
                        self.exec_done.push(now + 1, (uid, Comp::AddrCalc));
                    }
                }
                _ => unreachable!("only fences and atomics wait lazily"),
            }
        }

        let barrier = self.barriers.iter().next().copied();
        let mut issued = 0;
        let mut pick = std::mem::take(&mut self.scratch_pick);
        for (&order, &uid) in self.ready.iter() {
            if issued >= self.cfg.issue_width {
                break;
            }
            let e = &self.entries[&uid];
            // A barrier blocks younger *memory* operations.
            let is_mem = e.instr.op.addr().is_some();
            if is_mem && barrier.is_some_and(|b| order > b) {
                continue;
            }
            pick.push(uid);
            issued += 1;
        }
        for &uid in &pick {
            let e = self.entries.get_mut(&uid).expect("ready entry");
            let order = e.order;
            e.issued_at = Some(now);
            self.ready.remove(&order);
            let free_iq = !matches!(e.instr.op, Op::Atomic { .. });
            if free_iq && e.in_iq {
                e.in_iq = false;
                self.iq_used -= 1;
            }
            match e.instr.op {
                Op::Alu { latency } => {
                    self.exec_done
                        .push(now + latency.max(1) as u64, (uid, Comp::Exec));
                }
                Op::Branch { .. } => {
                    self.exec_done.push(now + 1, (uid, Comp::Exec));
                }
                Op::Fence => {
                    self.lazy_wait.insert(order, uid);
                }
                Op::Load { .. } | Op::Store { .. } => {
                    self.exec_done.push(now + 1, (uid, Comp::AddrCalc));
                }
                Op::Atomic { .. } => {
                    if self.far() {
                        self.lazy_wait.insert(order, uid);
                        continue;
                    }
                    let mode = self
                        .aq
                        .iter()
                        .find(|a| a.uid == uid)
                        .map(|a| a.mode)
                        .expect("AQ entry");
                    let fenced = self.cfg.fence_model == FenceModel::Fenced;
                    match (fenced, mode) {
                        (true, _) => {
                            // Fenced atomics behave like the lazy discipline
                            // plus the two-sided barrier (set at dispatch).
                            self.exec_done.push(now + 1, (uid, Comp::AtomicAddrOnly));
                        }
                        (false, ExecMode::Eager) => {
                            self.exec_done.push(now + 1, (uid, Comp::AddrCalc));
                        }
                        (false, ExecMode::Lazy) => {
                            if self.stats_detector == DetectorKind::ExecutionWindow {
                                // No early address computation: the EW
                                // mechanism lacks the only-calculate-address
                                // pass.
                                self.lazy_wait.insert(order, uid);
                            } else {
                                self.exec_done.push(now + 1, (uid, Comp::AtomicAddrOnly));
                            }
                        }
                    }
                }
            }
        }
        pick.clear();
        self.scratch_pick = pick;
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    fn next_instr(&mut self) -> Option<(u64, Instr)> {
        if let Some(front) = self.replay.pop_front() {
            return Some(front);
        }
        if self.peeked.is_none() && !self.stream_done {
            self.peeked = self.stream.next_instr();
            if self.peeked.is_none() {
                self.stream_done = true;
            }
        }
        let i = self.peeked.take()?;
        let order = self.next_order;
        self.next_order += 1;
        Some((order, i))
    }

    fn unfetch(&mut self, order: u64, instr: Instr) {
        self.replay.push_front((order, instr));
    }

    fn dispatch(&mut self, now: Cycle) {
        if self.branch_stall.is_some() || now < self.fetch_resume_at {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.rob.len() >= self.cfg.rob_entries || self.iq_used >= self.cfg.iq_entries {
                break;
            }
            let Some((order, instr)) = self.next_instr() else {
                break;
            };
            // Structural hazards per op class.
            let blocked = match instr.op {
                Op::Load { .. } => self.lq.len() >= self.cfg.lq_entries,
                Op::Store { .. } => self.sb.len() >= self.cfg.sb_entries,
                Op::Atomic { .. } => {
                    self.lq.len() >= self.cfg.lq_entries
                        || (!self.far() && self.sb.len() >= self.cfg.sb_entries)
                        || self.aq.len() >= self.cfg.aq_entries
                }
                _ => false,
            };
            if blocked {
                self.unfetch(order, instr);
                break;
            }
            let uid = self.next_uid;
            self.next_uid += 1;

            let mut deps = 0;
            for src in instr.srcs.into_iter().flatten() {
                if let Some(p) = self.rename[src as usize] {
                    if self
                        .entries
                        .get(&p)
                        .is_some_and(|pe| pe.completed_at.is_none())
                    {
                        deps += 1;
                        let pool = &mut self.waiter_pool;
                        self.waiters
                            .get_or_insert_with(p, || pool.pop().unwrap_or_default())
                            .push(uid);
                    }
                }
            }
            if let Some(d) = instr.dst {
                self.rename[d as usize] = Some(uid);
            }

            match instr.op {
                Op::Load { .. } => {
                    self.lq.insert(order, uid);
                }
                Op::Store { .. } => {
                    self.sb.push_back(SbEntry {
                        uid,
                        order,
                        pc: instr.pc,
                        addr: None,
                        value: None,
                        atomic: false,
                        committed: false,
                        inflight: false,
                    });
                    self.ss.store_dispatched(instr.pc, uid);
                }
                Op::Atomic { rmw, addr } => {
                    self.lq.insert(order, uid);
                    if !self.far() {
                        self.sb.push_back(SbEntry {
                            uid,
                            order,
                            pc: instr.pc,
                            addr: Some(addr),
                            value: None,
                            atomic: true,
                            committed: false,
                            inflight: false,
                        });
                    }
                    let (mode, predicted) = if self.far() {
                        // Far atomics use the lazy discipline (TSO order is
                        // enforced by issuing after the SB drains) and skip
                        // the contention predictor entirely.
                        (ExecMode::Lazy, false)
                    } else {
                        self.decide_mode(instr.pc, order)
                    };
                    self.aq.push_back(AqEntry {
                        uid,
                        order,
                        pc: instr.pc,
                        rmw,
                        addr,
                        addr_known: false,
                        locked: false,
                        fill_pending: false,
                        contended: false,
                        predicted_contended: predicted,
                        mode,
                        dispatched_at: now,
                        mem_issued_at: None,
                        locked_at: None,
                        issued14: 0,
                        forwarded: false,
                    });
                    if self.cfg.fence_model == FenceModel::Fenced {
                        self.barriers.insert(order);
                    }
                }
                Op::Fence => {
                    self.barriers.insert(order);
                }
                _ => {}
            }

            let mut stall_after = false;
            if let Op::Branch { taken } = instr.op {
                let pred = self.bp.predict(instr.pc);
                self.bp.update(instr.pc, taken, pred);
                if pred != taken {
                    self.branch_stall = Some(uid);
                    stall_after = true;
                }
            }

            self.entries.insert(
                uid,
                RobEntry {
                    order,
                    instr,
                    pending_deps: deps,
                    in_iq: true,
                    issued_at: None,
                    completed_at: None,
                    forwarded_from: None,
                    mem_outstanding: false,
                },
            );
            self.rob.push_back(uid);
            self.iq_used += 1;
            if deps == 0 {
                self.ready.insert(order, uid);
            }
            if stall_after {
                break;
            }
        }
    }

    fn decide_mode(&mut self, pc: Pc, order: u64) -> (ExecMode, bool) {
        if self.force_lazy.remove(&order) {
            return (ExecMode::Lazy, true);
        }
        match self.cfg.atomic_policy {
            AtomicPolicy::Eager => (ExecMode::Eager, false),
            AtomicPolicy::Lazy => (ExecMode::Lazy, false),
            AtomicPolicy::Row(_) => {
                let row = self.row.as_ref().expect("RoW engine for RoW policy");
                let predicted = row.predicts_contended(pc);
                (
                    if predicted {
                        ExecMode::Lazy
                    } else {
                        ExecMode::Eager
                    },
                    predicted,
                )
            }
        }
    }

    // ------------------------------------------------------------------
    // Squash and deadlock handling
    // ------------------------------------------------------------------

    fn squash_from(&mut self, order: u64, now: Cycle, mem: &mut MemorySystem) {
        let mut squashed: Vec<(u64, Instr)> = Vec::new();
        while let Some(&uid) = self.rob.back() {
            if self.entries[&uid].order < order {
                break;
            }
            self.rob.pop_back();
            let e = self.entries.remove(&uid).expect("squashing live entry");
            squashed.push((e.order, e.instr));
            if e.in_iq {
                self.iq_used -= 1;
            }
            self.lq.remove(&e.order);
            self.ready.remove(&e.order);
            self.lazy_wait.remove(&e.order);
            self.barriers.remove(&e.order);
            if let Some(mut ws) = self.waiters.remove(&uid) {
                ws.clear();
                self.waiter_pool.push(ws);
            }
            if let Some(pos) = self.sb.iter().position(|s| s.uid == uid) {
                debug_assert!(!self.sb[pos].committed, "cannot squash committed store");
                self.sb.remove(pos);
            }
            if let Some(pos) = self.aq.iter().position(|a| a.uid == uid) {
                let a = self.aq.remove(pos).expect("present");
                if a.locked {
                    mem.unlock(self.id, a.addr.line(), now);
                }
            }
            if self.branch_stall == Some(uid) {
                self.branch_stall = None;
            }
        }
        squashed.sort_by_key(|(o, _)| *o);
        for item in squashed.into_iter().rev() {
            self.replay.push_front(item);
        }
        // Purge dangling waiter references and rebuild the rename map.
        for ws in self.waiters.values_mut() {
            ws.retain(|w| self.entries.contains_key(w));
        }
        let mut waiting_dead: Vec<u64> = Vec::new();
        for (st, ls) in self.waiting_on_store.iter_mut() {
            ls.retain(|l| self.entries.contains_key(l));
            if !self.entries.contains_key(&st) || ls.is_empty() {
                waiting_dead.push(st);
            }
        }
        for st in waiting_dead {
            if let Some(mut ls) = self.waiting_on_store.remove(&st) {
                ls.clear();
                self.waiter_pool.push(ls);
            }
        }
        self.rename = [None; NUM_REGS];
        for &uid in &self.rob {
            if let Some(d) = self.entries[&uid].instr.dst {
                self.rename[d as usize] = Some(uid);
            }
        }
        self.fetch_resume_at = self.fetch_resume_at.max(now + self.cfg.frontend_depth);
        self.cascade_locks(now, mem);
    }

    fn deadlock_check(&mut self, now: Cycle, mem: &mut MemorySystem) {
        if self.rob.is_empty() {
            self.last_commit = now;
            return;
        }
        let threshold = DEADLOCK_CYCLES + self.id.index() as u64 * 211;
        if now.saturating_since(self.last_commit) < threshold {
            return;
        }
        // Break a potential cross-core lock cycle: squash the oldest locked,
        // uncommitted atomic and replay it lazy.
        let victim = self
            .aq
            .iter()
            .find(|a| a.locked && self.entries.contains_key(&a.uid))
            .map(|a| a.order);
        if let Some(order) = victim {
            self.stats.deadlock_breaks += 1;
            coverage::record(coverage::cpu_slot(CpuEvent::DeadlockBreak));
            self.force_lazy.insert(order);
            self.head_wait = None;
            self.squash_from(order, now, mem);
        }
        self.last_commit = now; // rearm either way
    }
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("rob", &self.rob.len())
            .field("sb", &self.sb.len())
            .field("aq", &self.aq.len())
            .field("committed", &self.stats.committed)
            .finish()
    }
}

impl Codec for Comp {
    fn encode(&self, w: &mut Writer) {
        match *self {
            Comp::Exec => w.put_u8(0),
            Comp::AddrCalc => w.put_u8(1),
            Comp::AtomicAddrOnly => w.put_u8(2),
            Comp::LoadDone { forwarded } => {
                w.put_u8(3);
                w.put_bool(forwarded);
            }
            Comp::AtomicValue => w.put_u8(4),
            Comp::SbWrite => w.put_u8(5),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.get_u8()? {
            0 => Comp::Exec,
            1 => Comp::AddrCalc,
            2 => Comp::AtomicAddrOnly,
            3 => Comp::LoadDone {
                forwarded: r.get_bool()?,
            },
            4 => Comp::AtomicValue,
            5 => Comp::SbWrite,
            tag => return Err(PersistError::BadTag { what: "Comp", tag }),
        })
    }
}

impl Codec for RobEntry {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.order);
        self.instr.encode(w);
        w.put_u32(self.pending_deps);
        w.put_bool(self.in_iq);
        self.issued_at.encode(w);
        self.completed_at.encode(w);
        self.forwarded_from.encode(w);
        w.put_bool(self.mem_outstanding);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(RobEntry {
            order: r.get_u64()?,
            instr: Instr::decode(r)?,
            pending_deps: r.get_u32()?,
            in_iq: r.get_bool()?,
            issued_at: Option::<Cycle>::decode(r)?,
            completed_at: Option::<Cycle>::decode(r)?,
            forwarded_from: Option::<(u64, u64)>::decode(r)?,
            mem_outstanding: r.get_bool()?,
        })
    }
}

impl Codec for SbEntry {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.uid);
        w.put_u64(self.order);
        self.pc.encode(w);
        self.addr.encode(w);
        self.value.encode(w);
        w.put_bool(self.atomic);
        w.put_bool(self.committed);
        w.put_bool(self.inflight);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(SbEntry {
            uid: r.get_u64()?,
            order: r.get_u64()?,
            pc: Pc::decode(r)?,
            addr: Option::<Addr>::decode(r)?,
            value: Option::<u64>::decode(r)?,
            atomic: r.get_bool()?,
            committed: r.get_bool()?,
            inflight: r.get_bool()?,
        })
    }
}

impl Codec for AqEntry {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.uid);
        w.put_u64(self.order);
        self.pc.encode(w);
        self.rmw.encode(w);
        self.addr.encode(w);
        w.put_bool(self.addr_known);
        w.put_bool(self.locked);
        w.put_bool(self.fill_pending);
        w.put_bool(self.contended);
        w.put_bool(self.predicted_contended);
        self.mode.encode(w);
        self.dispatched_at.encode(w);
        self.mem_issued_at.encode(w);
        self.locked_at.encode(w);
        w.put_u16(self.issued14);
        w.put_bool(self.forwarded);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(AqEntry {
            uid: r.get_u64()?,
            order: r.get_u64()?,
            pc: Pc::decode(r)?,
            rmw: RmwKind::decode(r)?,
            addr: Addr::decode(r)?,
            addr_known: r.get_bool()?,
            locked: r.get_bool()?,
            fill_pending: r.get_bool()?,
            contended: r.get_bool()?,
            predicted_contended: r.get_bool()?,
            mode: ExecMode::decode(r)?,
            dispatched_at: Cycle::decode(r)?,
            mem_issued_at: Option::<Cycle>::decode(r)?,
            locked_at: Option::<Cycle>::decode(r)?,
            issued14: r.get_u16()?,
            forwarded: r.get_bool()?,
        })
    }
}

impl Codec for LoadObservation {
    fn encode(&self, w: &mut Writer) {
        self.pc.encode(w);
        self.addr.encode(w);
        w.put_u64(self.value);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(LoadObservation {
            pc: Pc::decode(r)?,
            addr: Addr::decode(r)?,
            value: r.get_u64()?,
        })
    }
}

impl Persist for Core {
    // `id`, `cfg`, `l1_lat`, and `stats_detector` are construction parameters
    // and stay; the instruction stream persists only its own mutable state
    // (the program itself is reconstructed from the config/seed).
    fn persist(&self, w: &mut Writer) {
        self.stream.save_state(w);
        w.put_bool(self.stream_done);
        self.peeked.encode(w);
        self.replay.encode(w);
        w.put_u64(self.next_order);
        w.put_u64(self.next_uid);
        self.rob.encode(w);
        self.entries.encode(w);
        self.rename.encode(w);
        self.waiters.encode(w);
        self.ready.encode(w);
        self.lazy_wait.encode(w);
        self.waiting_on_store.encode(w);
        self.iq_used.encode(w);
        self.lq.encode(w);
        self.sb.encode(w);
        self.aq.encode(w);
        self.barriers.encode(w);
        self.exec_done.encode(w);
        w.put_bool(self.sb_miss_inflight);
        self.branch_stall.encode(w);
        self.fetch_resume_at.encode(w);
        self.bp.persist(w);
        self.ss.persist(w);
        match &self.row {
            None => w.put_u8(0),
            Some(r) => {
                w.put_u8(1);
                r.persist(w);
            }
        }
        self.force_lazy.encode(w);
        self.last_commit.encode(w);
        self.stats.encode(w);
        self.load_log.encode(w);
        self.commit_release.encode(w);
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        self.stream.load_state(r)?;
        self.stream_done = r.get_bool()?;
        self.peeked = Option::<Instr>::decode(r)?;
        self.replay = VecDeque::<(u64, Instr)>::decode(r)?;
        self.next_order = r.get_u64()?;
        self.next_uid = r.get_u64()?;
        self.rob = VecDeque::<u64>::decode(r)?;
        self.entries = FastMap::<u64, RobEntry>::decode(r)?;
        self.rename = <[Option<u64>; NUM_REGS]>::decode(r)?;
        self.waiters = FastMap::<u64, Vec<u64>>::decode(r)?;
        self.ready = BTreeMap::<u64, u64>::decode(r)?;
        self.lazy_wait = BTreeMap::<u64, u64>::decode(r)?;
        self.waiting_on_store = FastMap::<u64, Vec<u64>>::decode(r)?;
        self.iq_used = usize::decode(r)?;
        self.lq = BTreeMap::<u64, u64>::decode(r)?;
        self.sb = VecDeque::<SbEntry>::decode(r)?;
        self.aq = VecDeque::<AqEntry>::decode(r)?;
        self.barriers = BTreeSet::<u64>::decode(r)?;
        self.exec_done = EventQueue::<(u64, Comp)>::decode(r)?;
        self.sb_miss_inflight = r.get_bool()?;
        self.branch_stall = Option::<u64>::decode(r)?;
        self.fetch_resume_at = Cycle::decode(r)?;
        self.bp.restore(r)?;
        self.ss.restore(r)?;
        match (r.get_u8()?, self.row.as_mut()) {
            (1, Some(row)) => row.restore(r)?,
            (0, None) => {}
            _ => return Err(PersistError::Corrupt("RoW engine presence mismatch")),
        }
        self.force_lazy = BTreeSet::<u64>::decode(r)?;
        self.last_commit = Cycle::decode(r)?;
        self.stats = CoreStats::decode(r)?;
        self.load_log = Option::<Vec<LoadObservation>>::decode(r)?;
        self.commit_release = Option::<(u64, Cycle)>::decode(r)?;
        // Derived caches restart cold.
        self.head_wait = None;
        Ok(())
    }
}
