//! TAGE-lite branch direction predictor.
//!
//! Table I specifies TAGE-SC-L; the statistical corrector and loop predictor
//! contribute accuracy that is irrelevant to atomic-instruction timing, so we
//! implement the TAGE core: a bimodal base predictor plus four tagged tables
//! indexed by geometrically increasing global-history lengths, with the
//! standard provider/altpred, useful-bit, and allocation-on-mispredict rules.

use row_common::ids::Pc;
use row_common::persist::{Codec, Persist, PersistError, Reader, Writer};

const BIMODAL_BITS: usize = 12; // 4096 entries
const TAGGED_ENTRIES_BITS: usize = 10; // 1024 entries per table
const TAG_BITS: u32 = 8;
const HISTORIES: [usize; 4] = [8, 24, 64, 128];

#[derive(Clone, Copy, Debug, Default)]
struct TaggedEntry {
    tag: u16,
    ctr: i8, // -4..=3, taken when >= 0
    useful: u8,
}

/// A global-history register holding the last 128 branch outcomes.
#[derive(Clone, Copy, Debug, Default)]
struct History {
    bits: u128,
}

impl History {
    fn push(&mut self, taken: bool) {
        self.bits = (self.bits << 1) | (taken as u128);
    }

    fn folded(&self, length: usize, out_bits: usize) -> u64 {
        let mask = if length >= 128 {
            u128::MAX
        } else {
            (1u128 << length) - 1
        };
        let mut h = self.bits & mask;
        let mut acc: u64 = 0;
        while h != 0 {
            acc ^= (h as u64) & ((1u64 << out_bits) - 1);
            h >>= out_bits;
        }
        acc
    }
}

/// TAGE-lite predictor.
///
/// # Example
/// ```
/// use row_common::ids::Pc;
/// use row_cpu::branch::TageLite;
///
/// let mut bp = TageLite::new();
/// let pc = Pc::new(0x400);
/// for _ in 0..100 {
///     let pred = bp.predict(pc);
///     bp.update(pc, true, pred);
/// }
/// assert!(bp.predict(pc)); // learned always-taken
/// ```
#[derive(Clone, Debug)]
pub struct TageLite {
    bimodal: Vec<i8>, // 2-bit counters, taken when >= 0 (-2..=1)
    tables: Vec<Vec<TaggedEntry>>,
    hist: History,
    /// Deterministic LFSR for the allocation tie-break.
    lfsr: u32,
    stats: BranchStats,
}

/// Branch-prediction counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BranchStats {
    /// Predictions made.
    pub predictions: u64,
    /// Mispredictions.
    pub mispredictions: u64,
}

impl BranchStats {
    /// Misprediction rate in [0, 1].
    pub fn mpki_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

impl TageLite {
    /// Creates a predictor with cleared tables.
    pub fn new() -> Self {
        TageLite {
            bimodal: vec![0; 1 << BIMODAL_BITS],
            tables: HISTORIES
                .iter()
                .map(|_| vec![TaggedEntry::default(); 1 << TAGGED_ENTRIES_BITS])
                .collect(),
            hist: History::default(),
            lfsr: 0xace1,
            stats: BranchStats::default(),
        }
    }

    fn index(&self, pc: Pc, t: usize) -> usize {
        let h = self.hist.folded(HISTORIES[t], TAGGED_ENTRIES_BITS);
        ((pc.raw() ^ (pc.raw() >> TAGGED_ENTRIES_BITS as u64) ^ h) as usize)
            & ((1 << TAGGED_ENTRIES_BITS) - 1)
    }

    fn tag(&self, pc: Pc, t: usize) -> u16 {
        let h = self.hist.folded(HISTORIES[t], TAG_BITS as usize);
        (((pc.raw() >> 2) ^ h ^ (h << 1)) & ((1 << TAG_BITS) - 1)) as u16
    }

    fn bimodal_index(&self, pc: Pc) -> usize {
        (pc.raw() as usize >> 2) & ((1 << BIMODAL_BITS) - 1)
    }

    fn provider(&self, pc: Pc) -> Option<(usize, usize)> {
        for t in (0..self.tables.len()).rev() {
            let i = self.index(pc, t);
            if self.tables[t][i].tag == self.tag(pc, t) {
                return Some((t, i));
            }
        }
        None
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: Pc) -> bool {
        match self.provider(pc) {
            Some((t, i)) => self.tables[t][i].ctr >= 0,
            None => self.bimodal[self.bimodal_index(pc)] >= 0,
        }
    }

    fn rand_bit(&mut self) -> bool {
        let bit = (self.lfsr ^ (self.lfsr >> 2) ^ (self.lfsr >> 3) ^ (self.lfsr >> 5)) & 1;
        self.lfsr = (self.lfsr >> 1) | (bit << 15);
        bit == 1
    }

    /// Updates the predictor with the architectural outcome. `predicted` is
    /// the direction [`TageLite::predict`] returned for this instance.
    pub fn update(&mut self, pc: Pc, taken: bool, predicted: bool) {
        self.stats.predictions += 1;
        if predicted != taken {
            self.stats.mispredictions += 1;
        }
        match self.provider(pc) {
            Some((t, i)) => {
                let correct = (self.tables[t][i].ctr >= 0) == taken;
                let e = &mut self.tables[t][i];
                e.ctr = (e.ctr + if taken { 1 } else { -1 }).clamp(-4, 3);
                if correct {
                    e.useful = (e.useful + 1).min(3);
                } else {
                    e.useful = e.useful.saturating_sub(1);
                    // Allocate in a longer-history table.
                    self.allocate(pc, taken, t + 1);
                }
            }
            None => {
                let i = self.bimodal_index(pc);
                self.bimodal[i] = (self.bimodal[i] + if taken { 1 } else { -1 }).clamp(-2, 1);
                if (self.bimodal[i] >= 0) != taken && predicted != taken {
                    self.allocate(pc, taken, 0);
                }
            }
        }
        self.hist.push(taken);
    }

    fn allocate(&mut self, pc: Pc, taken: bool, from: usize) {
        if from >= self.tables.len() {
            return;
        }
        // Probabilistically pick among candidate tables with useful == 0.
        for t in from..self.tables.len() {
            let i = self.index(pc, t);
            let tag = self.tag(pc, t);
            if self.tables[t][i].useful == 0 {
                if t + 1 < self.tables.len() && self.rand_bit() {
                    continue; // sometimes skip to a longer table
                }
                self.tables[t][i] = TaggedEntry {
                    tag,
                    ctr: if taken { 0 } else { -1 },
                    useful: 0,
                };
                return;
            }
        }
        // No free slot: age useful bits along the way.
        for t in from..self.tables.len() {
            let i = self.index(pc, t);
            self.tables[t][i].useful = self.tables[t][i].useful.saturating_sub(1);
        }
    }

    /// Prediction counters.
    pub fn stats(&self) -> &BranchStats {
        &self.stats
    }
}

impl Default for TageLite {
    fn default() -> Self {
        TageLite::new()
    }
}

impl Codec for TaggedEntry {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(self.tag);
        self.ctr.encode(w);
        w.put_u8(self.useful);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(TaggedEntry {
            tag: r.get_u16()?,
            ctr: i8::decode(r)?,
            useful: r.get_u8()?,
        })
    }
}

impl Codec for BranchStats {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.predictions);
        w.put_u64(self.mispredictions);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(BranchStats {
            predictions: r.get_u64()?,
            mispredictions: r.get_u64()?,
        })
    }
}

impl Persist for TageLite {
    fn persist(&self, w: &mut Writer) {
        self.bimodal.encode(w);
        self.tables.encode(w);
        w.put_u128(self.hist.bits);
        w.put_u32(self.lfsr);
        self.stats.encode(w);
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        let bimodal = Vec::<i8>::decode(r)?;
        let tables = Vec::<Vec<TaggedEntry>>::decode(r)?;
        if bimodal.len() != self.bimodal.len()
            || tables.len() != self.tables.len()
            || tables
                .iter()
                .zip(&self.tables)
                .any(|(a, b)| a.len() != b.len())
        {
            return Err(PersistError::Corrupt("branch predictor geometry mismatch"));
        }
        self.bimodal = bimodal;
        self.tables = tables;
        self.hist = History {
            bits: r.get_u128()?,
        };
        self.lfsr = r.get_u32()?;
        self.stats = BranchStats::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(bp: &mut TageLite, pc: Pc, pattern: &[bool], reps: usize) -> f64 {
        let mut wrong = 0usize;
        let mut total = 0usize;
        for _ in 0..reps {
            for &o in pattern {
                let p = bp.predict(pc);
                if p != o {
                    wrong += 1;
                }
                bp.update(pc, o, p);
                total += 1;
            }
        }
        wrong as f64 / total as f64
    }

    #[test]
    fn learns_always_taken() {
        let mut bp = TageLite::new();
        let rate = train(&mut bp, Pc::new(0x100), &[true], 200);
        assert!(rate < 0.05, "misprediction rate {rate}");
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut bp = TageLite::new();
        let rate = train(&mut bp, Pc::new(0x200), &[true, false], 500);
        assert!(rate < 0.2, "misprediction rate {rate}");
    }

    #[test]
    fn learns_short_loop_pattern() {
        // taken x7, not-taken x1 (an 8-iteration loop).
        let mut bp = TageLite::new();
        let mut pat = vec![true; 7];
        pat.push(false);
        let rate = train(&mut bp, Pc::new(0x300), &pat, 300);
        assert!(rate < 0.15, "misprediction rate {rate}");
    }

    #[test]
    fn random_pattern_is_hard() {
        let mut bp = TageLite::new();
        let mut rng = row_common::rng::SplitMix64::new(11);
        let pat: Vec<bool> = (0..64).map(|_| rng.chance(0.5)).collect();
        // Even "random" fixed patterns get partially memorized, but early
        // accuracy should be near chance — just assert it runs and counts.
        let _ = train(&mut bp, Pc::new(0x400), &pat, 10);
        assert_eq!(bp.stats().predictions, 640);
    }

    #[test]
    fn distinct_branches_do_not_destructively_interfere() {
        let mut bp = TageLite::new();
        let r1 = train(&mut bp, Pc::new(0x1000), &[true], 100);
        let r2 = train(&mut bp, Pc::new(0x2004), &[false], 100);
        assert!(r1 < 0.1 && r2 < 0.1, "{r1} {r2}");
    }

    #[test]
    fn stats_rate() {
        let s = BranchStats {
            predictions: 100,
            mispredictions: 7,
        };
        assert!((s.mpki_rate() - 0.07).abs() < 1e-12);
        assert_eq!(BranchStats::default().mpki_rate(), 0.0);
    }
}
