//! Per-core statistics: everything the paper's figures need.

use row_common::persist::{Codec, PersistError, Reader, Writer};
use row_common::stats::{AtomicLatencyBreakdown, LogHistogram, RunningMean};
use row_common::Cycle;

/// Counters and accumulators gathered by one core over a run.
#[derive(Clone, Debug, Default)]
pub struct CoreStats {
    /// Instructions committed.
    pub committed: u64,
    /// Atomic RMWs committed.
    pub atomics: u64,
    /// Atomics whose detector marked them contended.
    pub contended_atomics: u64,
    /// Atomics that executed eager (includes locality-override flips).
    pub atomics_eager: u64,
    /// Atomics that executed lazy.
    pub atomics_lazy: u64,
    /// Atomics that received data via store→atomic forwarding.
    pub atomics_forwarded: u64,
    /// Predicted-lazy atomics flipped eager by the locality override.
    pub locality_overrides: u64,
    /// Loads served by store→load forwarding from the SB.
    pub loads_forwarded: u64,
    /// Memory-order violations (load squashes trained into StoreSet).
    pub violations: u64,
    /// Loads squashed by external invalidations (TSO consistency).
    pub inv_squashes: u64,
    /// Deadlock-breaker firings (locked atomic squashed and retried lazy).
    pub deadlock_breaks: u64,
    /// Lock re-acquisitions: an atomic's line was stolen while it waited for
    /// older atomics to lock first (in-order lock acquisition).
    pub lock_reacquires: u64,
    /// Fig. 6 latency breakdown of committed atomics.
    pub breakdown: AtomicLatencyBreakdown,
    /// Full dispatch→unlock latency distribution of committed atomics,
    /// log-bucketed so soak runs can report p50/p99/p999 per policy.
    pub atomic_latency: LogHistogram,
    /// Fig. 4, first bar: instructions older than an atomic not yet executed
    /// when the atomic issued its memory request.
    pub older_unexecuted_at_issue: RunningMean,
    /// Fig. 4, second bar: instructions younger than an atomic that had
    /// already started executing when the atomic issued.
    pub younger_started_at_issue: RunningMean,
    /// Cycle this core finished its parallel phase (trace drained and
    /// pipeline empty).
    pub finished_at: Option<Cycle>,
}

impl CoreStats {
    /// Atomics per 10 000 committed instructions (Fig. 5, left axis).
    pub fn atomics_per_10k(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.atomics as f64 * 10_000.0 / self.committed as f64
        }
    }

    /// Fraction of atomics detected contended (Fig. 5, right axis).
    pub fn contended_fraction(&self) -> f64 {
        if self.atomics == 0 {
            0.0
        } else {
            self.contended_atomics as f64 / self.atomics as f64
        }
    }

    /// Merges another core's stats into this one (for whole-app aggregates).
    pub fn merge(&mut self, other: &CoreStats) {
        self.committed += other.committed;
        self.atomics += other.atomics;
        self.contended_atomics += other.contended_atomics;
        self.atomics_eager += other.atomics_eager;
        self.atomics_lazy += other.atomics_lazy;
        self.atomics_forwarded += other.atomics_forwarded;
        self.locality_overrides += other.locality_overrides;
        self.loads_forwarded += other.loads_forwarded;
        self.violations += other.violations;
        self.inv_squashes += other.inv_squashes;
        self.deadlock_breaks += other.deadlock_breaks;
        self.lock_reacquires += other.lock_reacquires;
        self.breakdown.merge(&other.breakdown);
        self.atomic_latency.merge(&other.atomic_latency);
        self.older_unexecuted_at_issue
            .merge(&other.older_unexecuted_at_issue);
        self.younger_started_at_issue
            .merge(&other.younger_started_at_issue);
        self.finished_at = match (self.finished_at, other.finished_at) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

impl Codec for CoreStats {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.committed);
        w.put_u64(self.atomics);
        w.put_u64(self.contended_atomics);
        w.put_u64(self.atomics_eager);
        w.put_u64(self.atomics_lazy);
        w.put_u64(self.atomics_forwarded);
        w.put_u64(self.locality_overrides);
        w.put_u64(self.loads_forwarded);
        w.put_u64(self.violations);
        w.put_u64(self.inv_squashes);
        w.put_u64(self.deadlock_breaks);
        w.put_u64(self.lock_reacquires);
        self.breakdown.encode(w);
        self.atomic_latency.encode(w);
        self.older_unexecuted_at_issue.encode(w);
        self.younger_started_at_issue.encode(w);
        self.finished_at.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(CoreStats {
            committed: r.get_u64()?,
            atomics: r.get_u64()?,
            contended_atomics: r.get_u64()?,
            atomics_eager: r.get_u64()?,
            atomics_lazy: r.get_u64()?,
            atomics_forwarded: r.get_u64()?,
            locality_overrides: r.get_u64()?,
            loads_forwarded: r.get_u64()?,
            violations: r.get_u64()?,
            inv_squashes: r.get_u64()?,
            deadlock_breaks: r.get_u64()?,
            lock_reacquires: r.get_u64()?,
            breakdown: AtomicLatencyBreakdown::decode(r)?,
            atomic_latency: LogHistogram::decode(r)?,
            older_unexecuted_at_issue: RunningMean::decode(r)?,
            younger_started_at_issue: RunningMean::decode(r)?,
            finished_at: Option::<Cycle>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = CoreStats {
            committed: 20_000,
            atomics: 10,
            contended_atomics: 4,
            ..CoreStats::default()
        };
        assert!((s.atomics_per_10k() - 5.0).abs() < 1e-12);
        assert!((s.contended_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(CoreStats::default().atomics_per_10k(), 0.0);
        assert_eq!(CoreStats::default().contended_fraction(), 0.0);
    }

    #[test]
    fn merge_takes_latest_finish() {
        let mut a = CoreStats {
            finished_at: Some(Cycle::new(10)),
            committed: 1,
            ..CoreStats::default()
        };
        let b = CoreStats {
            finished_at: Some(Cycle::new(30)),
            committed: 2,
            ..CoreStats::default()
        };
        a.merge(&b);
        assert_eq!(a.finished_at, Some(Cycle::new(30)));
        assert_eq!(a.committed, 3);
    }
}
