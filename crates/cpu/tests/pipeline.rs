//! End-to-end pipeline tests: one or two cores driving the real memory
//! system, exercising commits, forwarding, atomics in all three disciplines,
//! fences, and cross-core contention.

use row_common::config::{AtomicPolicy, FenceModel, RowConfig};
use row_common::ids::{Addr, CoreId, Pc};
use row_common::{Cycle, SystemConfig};
use row_cpu::instr::{Instr, Op, RmwKind, VecStream};
use row_cpu::Core;
use row_mem::MemorySystem;

const LIMIT: u64 = 400_000;

fn run_single(cfg: &SystemConfig, prog: Vec<Instr>) -> (Core, MemorySystem, Cycle) {
    let mut mem = MemorySystem::new(cfg);
    let mut core = Core::new(
        CoreId::new(0),
        cfg.core,
        cfg.mem.l1d.hit_latency,
        Box::new(VecStream::new(prog)),
    );
    core.record_loads();
    let mut now = Cycle::ZERO;
    while !core.finished() && now.raw() < LIMIT {
        for ev in mem.tick(now) {
            core.handle_mem_event(&ev, now, &mut mem);
        }
        core.cycle(now, &mut mem);
        now += 1;
    }
    assert!(core.finished(), "core did not drain within {LIMIT} cycles");
    (core, mem, now)
}

fn run_pair(cfg: &SystemConfig, progs: [Vec<Instr>; 2]) -> (Vec<Core>, MemorySystem, Cycle) {
    let mut mem = MemorySystem::new(cfg);
    let mut cores: Vec<Core> = progs
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            Core::new(
                CoreId::new(i as u16),
                cfg.core,
                cfg.mem.l1d.hit_latency,
                Box::new(VecStream::new(p)),
            )
        })
        .collect();
    let mut now = Cycle::ZERO;
    while cores.iter().any(|c| !c.finished()) && now.raw() < LIMIT {
        for ev in mem.tick(now) {
            let target = match ev {
                row_mem::MemEvent::Fill { core, .. } => core,
                row_mem::MemEvent::FarDone { core, .. } => core,
                row_mem::MemEvent::ExternalObserved { core, .. } => core,
            };
            cores[target.index()].handle_mem_event(&ev, now, &mut mem);
        }
        for c in cores.iter_mut() {
            c.cycle(now, &mut mem);
        }
        now += 1;
    }
    assert!(
        cores.iter().all(|c| c.finished()),
        "cores did not drain within {LIMIT} cycles"
    );
    (cores, mem, now)
}

fn alu(pc: u64) -> Instr {
    Instr::simple(Pc::new(pc), Op::Alu { latency: 1 })
}

fn load(pc: u64, addr: u64) -> Instr {
    Instr::simple(
        Pc::new(pc),
        Op::Load {
            addr: Addr::new(addr),
        },
    )
}

fn store(pc: u64, addr: u64, v: u64) -> Instr {
    Instr::simple(
        Pc::new(pc),
        Op::Store {
            addr: Addr::new(addr),
            value: Some(v),
        },
    )
}

fn faa(pc: u64, addr: u64, d: u64) -> Instr {
    Instr::simple(
        Pc::new(pc),
        Op::Atomic {
            rmw: RmwKind::Faa(d),
            addr: Addr::new(addr),
        },
    )
}

#[test]
fn alu_program_commits_everything() {
    let cfg = SystemConfig::small(1);
    let prog: Vec<Instr> = (0..100).map(|i| alu(i * 4)).collect();
    let (core, _, _) = run_single(&cfg, prog);
    assert_eq!(core.stats().committed, 100);
}

#[test]
fn dependent_alu_chain_is_serialized() {
    let cfg = SystemConfig::small(1);
    // 50 independent ALUs vs 50 chained ALUs: the chain must take longer.
    let indep: Vec<Instr> = (0..50).map(|i| alu(i * 4)).collect();
    let (_, _, t_indep) = run_single(&cfg, indep);
    let chain: Vec<Instr> = (0..50)
        .map(|i| alu(i * 4).with_srcs(Some(1), None).with_dst(1))
        .collect();
    let (_, _, t_chain) = run_single(&cfg, chain);
    assert!(
        t_chain.raw() > t_indep.raw() + 30,
        "chain {t_chain} vs indep {t_indep}"
    );
}

#[test]
fn stores_write_functionally_in_order() {
    let cfg = SystemConfig::small(1);
    let prog = vec![store(0, 0x100, 1), store(4, 0x100, 2), store(8, 0x200, 9)];
    let (_, mem, _) = run_single(&cfg, prog);
    assert_eq!(mem.read_word(Addr::new(0x100)), 2);
    assert_eq!(mem.read_word(Addr::new(0x200)), 9);
}

#[test]
fn load_observes_forwarded_store_value() {
    let cfg = SystemConfig::small(1);
    let prog = vec![store(0, 0x300, 77), load(4, 0x300)];
    let (core, _, _) = run_single(&cfg, prog);
    assert_eq!(core.stats().loads_forwarded, 1);
    let obs = core.load_observations();
    assert_eq!(obs.len(), 1);
    assert_eq!(obs[0].value, 77);
}

#[test]
fn load_from_memory_observes_prior_run_value() {
    let cfg = SystemConfig::small(1);
    let mut mem = MemorySystem::new(&cfg);
    mem.write_word(Addr::new(0x400), 1234);
    let mut core = Core::new(
        CoreId::new(0),
        cfg.core,
        cfg.mem.l1d.hit_latency,
        Box::new(VecStream::new(vec![load(0, 0x400)])),
    );
    core.record_loads();
    let mut now = Cycle::ZERO;
    while !core.finished() && now.raw() < LIMIT {
        for ev in mem.tick(now) {
            core.handle_mem_event(&ev, now, &mut mem);
        }
        core.cycle(now, &mut mem);
        now += 1;
    }
    assert_eq!(core.load_observations()[0].value, 1234);
}

#[test]
fn single_atomic_rmw_applies() {
    let cfg = SystemConfig::small(1);
    let (core, mem, _) = run_single(&cfg, vec![faa(0, 0x1000, 5)]);
    assert_eq!(mem.read_word(Addr::new(0x1000)), 5);
    assert_eq!(core.stats().atomics, 1);
    assert_eq!(core.stats().atomics_eager, 1);
    assert!(!mem.is_locked(CoreId::new(0), Addr::new(0x1000).line()));
}

#[test]
fn repeated_atomics_accumulate() {
    let cfg = SystemConfig::small(1);
    let prog: Vec<Instr> = (0..20).map(|_| faa(0x40, 0x1000, 1)).collect();
    let (core, mem, _) = run_single(&cfg, prog);
    assert_eq!(mem.read_word(Addr::new(0x1000)), 20);
    assert_eq!(core.stats().atomics, 20);
}

#[test]
fn cas_success_and_failure() {
    let cfg = SystemConfig::small(1);
    let prog = vec![
        Instr::simple(
            Pc::new(0),
            Op::Atomic {
                rmw: RmwKind::Cas {
                    expected: 0,
                    new: 7,
                },
                addr: Addr::new(0x2000),
            },
        ),
        Instr::simple(
            Pc::new(4),
            Op::Atomic {
                rmw: RmwKind::Cas {
                    expected: 0,
                    new: 9,
                },
                addr: Addr::new(0x2000),
            },
        ),
    ];
    let (_, mem, _) = run_single(&cfg, prog);
    assert_eq!(mem.read_word(Addr::new(0x2000)), 7, "second CAS must fail");
}

#[test]
fn lazy_policy_counts_lazy_and_matches_result() {
    let cfg = SystemConfig::small(1).with_policy(AtomicPolicy::Lazy);
    let prog = vec![store(0, 0x5000, 1), faa(4, 0x6000, 3)];
    let (core, mem, _) = run_single(&cfg, prog);
    assert_eq!(mem.read_word(Addr::new(0x6000)), 3);
    assert_eq!(core.stats().atomics_lazy, 1);
    // The lazy atomic issued after dispatch with a visible wait.
    assert!(core.stats().breakdown.dispatch_to_issue.mean() > 0.0);
}

#[test]
fn lazy_atomic_issues_after_older_store_drains() {
    // Older store misses (cold line): the lazy atomic must wait for the full
    // drain, so its dispatch→issue latency exceeds the eager one's.
    let prog = || vec![store(0, 0x7000, 1), faa(4, 0x8000, 1)];
    let eager_cfg = SystemConfig::small(1).with_policy(AtomicPolicy::Eager);
    let lazy_cfg = SystemConfig::small(1).with_policy(AtomicPolicy::Lazy);
    let (ecore, _, _) = run_single(&eager_cfg, prog());
    let (lcore, _, _) = run_single(&lazy_cfg, prog());
    let e_wait = ecore.stats().breakdown.dispatch_to_issue.mean();
    let l_wait = lcore.stats().breakdown.dispatch_to_issue.mean();
    assert!(
        l_wait > e_wait + 50.0,
        "lazy dispatch→issue {l_wait} vs eager {e_wait}"
    );
}

#[test]
fn mfence_serializes_independent_loads() {
    // Two independent cold loads: with an mfence between them the second
    // can't overlap the first's miss latency.
    let cfg = SystemConfig::small(1);
    let free = vec![load(0, 0x10000), load(4, 0x20000)];
    let fenced = vec![
        load(0, 0x10000),
        Instr::simple(Pc::new(8), Op::Fence),
        load(4, 0x20000),
    ];
    let (_, _, t_free) = run_single(&cfg, free);
    let (_, _, t_fenced) = run_single(&cfg, fenced);
    assert!(
        t_fenced.raw() > t_free.raw() + 100,
        "fenced {t_fenced} vs free {t_free}"
    );
}

#[test]
fn fenced_core_model_serializes_atomics() {
    // Unfenced atomics overlap their miss latency with neighbours; fenced
    // atomics serialize. Interleave atomics with independent cold loads.
    let prog = || {
        let mut p = Vec::new();
        for i in 0..8u64 {
            p.push(load(i * 16, 0x100_000 + i * 4096));
            p.push(faa(8 + i * 16, 0x200_000 + i * 4096, 1));
        }
        p
    };
    let unfenced = SystemConfig::small(1).with_fence_model(FenceModel::Unfenced);
    let fenced = SystemConfig::small(1).with_fence_model(FenceModel::Fenced);
    let (_, _, t_u) = run_single(&unfenced, prog());
    let (_, _, t_f) = run_single(&fenced, prog());
    assert!(
        t_f.raw() as f64 > t_u.raw() as f64 * 1.5,
        "fenced {t_f} vs unfenced {t_u}"
    );
}

#[test]
fn branch_heavy_code_still_commits_all() {
    let cfg = SystemConfig::small(1);
    let mut prog = Vec::new();
    for i in 0..200u64 {
        prog.push(alu(i * 16));
        prog.push(Instr::simple(
            Pc::new(i * 16 + 4),
            Op::Branch { taken: i % 3 == 0 },
        ));
    }
    let (core, _, _) = run_single(&cfg, prog);
    assert_eq!(core.stats().committed, 400);
    assert!(core.branch_stats().predictions >= 200);
}

#[test]
fn two_cores_atomics_are_linearizable() {
    let cfg = SystemConfig::small(2);
    let per_core = 30u64;
    let prog: Vec<Instr> = (0..per_core).map(|_| faa(0x40, 0xbeef00, 1)).collect();
    let (cores, mem, _) = run_pair(&cfg, [prog.clone(), prog]);
    assert_eq!(
        mem.read_word(Addr::new(0xbeef00)),
        2 * per_core,
        "every FAA must be applied exactly once"
    );
    let total: u64 = cores.iter().map(|c| c.stats().atomics).sum();
    assert_eq!(total, 2 * per_core);
}

#[test]
fn contended_atomics_are_detected() {
    let cfg = SystemConfig::small(2);
    let prog: Vec<Instr> = (0..40).map(|_| faa(0x40, 0xcafe00, 1)).collect();
    let (cores, _, _) = run_pair(&cfg, [prog.clone(), prog]);
    let contended: u64 = cores.iter().map(|c| c.stats().contended_atomics).sum();
    assert!(
        contended >= 10,
        "hot-line atomics should be detected contended, got {contended}"
    );
}

#[test]
fn row_learns_to_run_contended_atomics_lazy() {
    let row_cfg = RowConfig::best().with_locality_override(false);
    let cfg = SystemConfig::small(2).with_policy(AtomicPolicy::Row(row_cfg));
    let prog: Vec<Instr> = (0..60).map(|_| faa(0x80, 0xdead00, 1)).collect();
    let (cores, mem, _) = run_pair(&cfg, [prog.clone(), prog]);
    assert_eq!(mem.read_word(Addr::new(0xdead00)), 120);
    let lazy: u64 = cores.iter().map(|c| c.stats().atomics_lazy).sum();
    assert!(
        lazy >= 20,
        "RoW should shift contended atomics lazy, got {lazy}"
    );
    let acc = cores[0].row_accuracy().expect("RoW runs track accuracy");
    assert!(acc.total() > 0);
}

#[test]
fn row_keeps_private_atomics_eager() {
    let cfg = SystemConfig::small(2).with_policy(AtomicPolicy::Row(RowConfig::best()));
    // Each core pounds its own line: no contention, everything stays eager.
    let prog0: Vec<Instr> = (0..40).map(|_| faa(0x80, 0x111100, 1)).collect();
    let prog1: Vec<Instr> = (0..40).map(|_| faa(0x84, 0x222200, 1)).collect();
    let (cores, _, _) = run_pair(&cfg, [prog0, prog1]);
    for c in &cores {
        assert_eq!(c.stats().atomics_lazy, 0, "no contention -> no lazy");
    }
}

#[test]
fn store_to_atomic_forwarding_is_counted() {
    let mut cfg = SystemConfig::small(1).with_forward_to_atomics(true);
    cfg.core.atomic_policy = AtomicPolicy::Eager;
    let prog = vec![store(0, 0x9000, 4), faa(4, 0x9000, 1)];
    let (core, mem, _) = run_single(&cfg, prog);
    // Functional order preserved: store then FAA.
    assert_eq!(mem.read_word(Addr::new(0x9000)), 5);
    assert_eq!(core.stats().atomics_forwarded, 1);
}

#[test]
fn determinism_across_runs() {
    let cfg = SystemConfig::small(2).with_policy(AtomicPolicy::Row(RowConfig::best()));
    let mk = || {
        let mut p = Vec::new();
        for i in 0..50u64 {
            p.push(store(i * 20, 0x4000 + i * 64, i));
            p.push(faa(4 + i * 20, 0xfeed00, 1));
            p.push(load(8 + i * 20, 0x4000 + i * 64));
        }
        p
    };
    let (c1, _, t1) = run_pair(&cfg, [mk(), mk()]);
    let (c2, _, t2) = run_pair(&cfg, [mk(), mk()]);
    assert_eq!(t1, t2, "identical inputs must give identical cycle counts");
    assert_eq!(c1[0].stats().committed, c2[0].stats().committed);
    assert_eq!(c1[1].stats().atomics, c2[1].stats().atomics);
}

#[test]
fn atomic_breakdown_timestamps_are_sane() {
    let cfg = SystemConfig::small(1);
    let (core, _, _) = run_single(&cfg, vec![faa(0, 0xaaa000, 1)]);
    let b = &core.stats().breakdown;
    assert_eq!(b.dispatch_to_issue.count(), 1);
    assert!(b.issue_to_lock.mean() > 0.0, "cold miss: lock takes time");
    assert!(b.lock_to_unlock.mean() > 0.0);
}

#[test]
fn fig4_probes_record_on_issue() {
    let cfg = SystemConfig::small(1);
    let mut prog: Vec<Instr> = (0..30).map(|i| alu(i * 4)).collect();
    prog.push(faa(0x800, 0xbbb000, 1));
    let (core, _, _) = run_single(&cfg, prog);
    assert_eq!(core.stats().older_unexecuted_at_issue.count(), 1);
    assert_eq!(core.stats().younger_started_at_issue.count(), 1);
}

#[test]
fn cross_core_store_atomic_deadlock_is_broken() {
    // core0: store(L2); faa(L1)   core1: store(L1); faa(L2)
    // Each atomic locks its line eagerly while the older store needs the
    // line the *other* core holds locked — a genuine hold-and-wait cycle
    // that only the deadlock breaker can resolve.
    let l1 = 0x111_0000u64;
    let l2 = 0x222_0000u64;
    let cfg = SystemConfig::small(2);
    let p0 = vec![store(0x10, l2, 1), faa(0x14, l1, 1)];
    let p1 = vec![store(0x20, l1, 2), faa(0x24, l2, 1)];
    let (cores, mem, _) = run_pair(&cfg, [p0, p1]);
    // Cross-core order is unconstrained: each line ends with either
    // store-then-faa or faa-then-store applied.
    let v1 = mem.read_word(Addr::new(l1));
    let v2 = mem.read_word(Addr::new(l2));
    assert!(v1 == 2 || v1 == 3, "l1 = {v1}");
    assert!(v2 == 1 || v2 == 2, "l2 = {v2}");
    let atomics: u64 = cores.iter().map(|c| c.stats().atomics).sum();
    assert_eq!(atomics, 2, "both atomics must complete (no livelock)");
}

#[test]
fn invalidation_squashes_speculative_load() {
    // core0: a long cold load delays commit while a younger load to X
    // completes speculatively; core1 then writes X, invalidating core0's
    // copy — the speculative load must squash and replay (TSO).
    let x = 0x333_0000u64;
    let cfg = SystemConfig::small(2);
    // Warm X into core0 first so the speculative load completes instantly;
    // a chain of dependent cold misses then blocks core0's commit for ~600+
    // cycles, leaving a wide window for core1's invalidation to land.
    let p0 = vec![
        load(0x08, x).with_dst(2),          // warm (will commit)
        load(0x10, 0x444_0000).with_dst(3), // cold miss
        load(0x12, 0x445_0000).with_srcs(Some(3), None).with_dst(4), // chained cold miss
        load(0x13, 0x446_0000).with_srcs(Some(4), None).with_dst(5), // chained cold miss
        load(0x14, x),                      // speculative hit behind the misses
        alu(0x18),
    ];
    let p1 = vec![
        store(0x24, x, 9),        // drains after its GetX (~300 cycles in)
        faa(0x28, 0x666_0000, 1), // padding to keep the core busy
    ];
    let (cores, _, _) = run_pair(&cfg, [p0, p1]);
    assert_eq!(cores[0].stats().committed, 6);
    assert!(
        cores[0].stats().inv_squashes >= 1,
        "the invalidation must squash the speculative load, got {}",
        cores[0].stats().inv_squashes
    );
}

#[test]
fn single_entry_aq_still_completes() {
    let mut cfg = SystemConfig::small(1);
    cfg.core.aq_entries = 1;
    let prog: Vec<Instr> = (0..10).map(|_| faa(0x40, 0x777_0000, 1)).collect();
    let (core, mem, _) = run_single(&cfg, prog);
    assert_eq!(core.stats().atomics, 10);
    assert_eq!(mem.read_word(Addr::new(0x777_0000)), 10);
}

#[test]
fn deep_aq_is_faster_on_atomic_bursts_of_misses() {
    // Independent atomic misses: MLP grows with AQ depth under eager.
    let prog = || -> Vec<Instr> {
        (0..12)
            .map(|i| faa(0x40 + i * 4, 0x800_0000 + i * 0x10_000, 1))
            .collect()
    };
    let mut deep = SystemConfig::small(1);
    deep.core.aq_entries = 16;
    let mut shallow = SystemConfig::small(1);
    shallow.core.aq_entries = 1;
    let (_, _, t_deep) = run_single(&deep, prog());
    let (_, _, t_shallow) = run_single(&shallow, prog());
    assert!(
        t_shallow.raw() as f64 > t_deep.raw() as f64 * 1.5,
        "shallow {t_shallow} vs deep {t_deep}"
    );
}

#[test]
fn store_set_violation_squashes_and_learns() {
    // A load speculates past an older store whose address resolves late
    // (dependence chain): first instance violates, trains StoreSet.
    let mut prog = Vec::new();
    for round in 0..6u64 {
        let base = round * 0x100;
        // Long ALU chain feeding the store's address operand.
        for k in 0..12 {
            prog.push(alu(base + k * 4).with_srcs(Some(1), None).with_dst(1));
        }
        prog.push(
            Instr::simple(
                Pc::new(0x900),
                Op::Store {
                    addr: Addr::new(0x999_0000),
                    value: Some(round),
                },
            )
            .with_srcs(Some(1), None),
        );
        prog.push(load(0x910, 0x999_0000)); // same word: potential violation
        prog.push(alu(base + 0x90));
    }
    let cfg = SystemConfig::small(1);
    let (core, mem, _) = run_single(&cfg, prog);
    assert_eq!(
        mem.read_word(Addr::new(0x999_0000)),
        5,
        "last round's value"
    );
    assert!(
        core.stats().violations >= 1,
        "the first speculation must violate"
    );
    // After training, later rounds should forward instead of violating.
    assert!(
        core.stats().violations < 6,
        "StoreSet must prevent repeat violations, got {}",
        core.stats().violations
    );
}

#[test]
fn lock_reacquire_path_is_exercised_under_multi_line_contention() {
    // Many in-flight atomics to two hot lines from two cores: younger fills
    // release their locks (in-order acquisition) and must sometimes re-fetch.
    let cfg = SystemConfig::small(2);
    let mk = |seed: u64| -> Vec<Instr> {
        let mut rng = row_common::rng::SplitMix64::new(seed);
        (0..80)
            .map(|_| {
                let line = rng.below(2);
                faa(0x40 + line * 4, 0xaaa_0000 + line * 64, 1)
            })
            .collect()
    };
    let (cores, mem, _) = run_pair(&cfg, [mk(1), mk(2)]);
    let total: u64 = (0..2)
        .map(|k| mem.read_word(Addr::new(0xaaa_0000 + k * 64)))
        .sum();
    assert_eq!(total, 160);
    let re: u64 = cores.iter().map(|c| c.stats().lock_reacquires).sum();
    let breaks: u64 = cores.iter().map(|c| c.stats().deadlock_breaks).sum();
    assert_eq!(breaks, 0, "in-order acquisition leaves nothing to break");
    // Re-acquisition may or may not trigger depending on timing; just make
    // sure the run is sane and the counter is wired.
    let _ = re;
}

mod far {
    use super::*;
    use row_common::config::AtomicPlacement;

    fn far_cfg(cores: usize) -> SystemConfig {
        SystemConfig::small(cores).with_placement(AtomicPlacement::Far)
    }

    #[test]
    fn far_atomic_applies_at_home() {
        let (core, mem, _) = run_single(&far_cfg(1), vec![faa(0, 0x5000, 5)]);
        assert_eq!(mem.read_word(Addr::new(0x5000)), 5);
        assert_eq!(core.stats().atomics, 1);
        assert!(!mem.is_locked(CoreId::new(0), Addr::new(0x5000).line()));
    }

    #[test]
    fn far_atomics_sum_across_cores() {
        let prog: Vec<Instr> = (0..40).map(|_| faa(0x40, 0xfa0000, 1)).collect();
        let (cores, mem, _) = run_pair(&far_cfg(2), [prog.clone(), prog]);
        assert_eq!(mem.read_word(Addr::new(0xfa0000)), 80);
        let total: u64 = cores.iter().map(|c| c.stats().atomics).sum();
        assert_eq!(total, 80);
    }

    #[test]
    fn far_atomic_orders_after_older_store_same_word() {
        let prog = vec![store(0x10, 0xfb0000, 100), faa(0x14, 0xfb0000, 1)];
        let (_, mem, _) = run_single(&far_cfg(1), prog);
        assert_eq!(
            mem.read_word(Addr::new(0xfb0000)),
            101,
            "lazy issue discipline orders the far RMW after the store drains"
        );
    }

    #[test]
    fn far_atomic_invalidates_cached_copies() {
        // Core0 reads (caches) the line; core1's far atomic must invalidate
        // it before applying, so a later read by core0 refetches. Core1 is
        // delayed behind a dependent cold load so the read wins the race.
        let p0 = vec![load(0x08, 0xfc0000), alu(0x0c)];
        let p1 = vec![
            load(0x18, 0x77_0000).with_dst(3),
            load(0x1c, 0x78_0000).with_srcs(Some(3), None).with_dst(4),
            alu(0x1e).with_srcs(Some(4), None),
            faa(0x20, 0xfc0000, 7),
        ];
        let (_, mem, _) = run_pair(&far_cfg(2), [p0, p1]);
        assert_eq!(mem.read_word(Addr::new(0xfc0000)), 7);
        assert_eq!(
            mem.priv_state(CoreId::new(0), Addr::new(0xfc0000).line()),
            None,
            "the far atomic invalidates every private copy"
        );
    }

    fn run_many(cfg: &SystemConfig, progs: Vec<Vec<Instr>>) -> (u64, MemorySystem) {
        let mut mem = MemorySystem::new(cfg);
        let mut cores: Vec<Core> = progs
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                Core::new(
                    CoreId::new(i as u16),
                    cfg.core,
                    cfg.mem.l1d.hit_latency,
                    Box::new(VecStream::new(p)),
                )
            })
            .collect();
        let mut now = Cycle::ZERO;
        while cores.iter().any(|c| !c.finished()) && now.raw() < 2_000_000 {
            for ev in mem.tick(now) {
                let t = match ev {
                    row_mem::MemEvent::Fill { core, .. } => core,
                    row_mem::MemEvent::FarDone { core, .. } => core,
                    row_mem::MemEvent::ExternalObserved { core, .. } => core,
                };
                cores[t.index()].handle_mem_event(&ev, now, &mut mem);
            }
            for c in cores.iter_mut() {
                c.cycle(now, &mut mem);
            }
            now += 1;
        }
        assert!(cores.iter().all(|c| c.finished()), "did not drain");
        (now.raw(), mem)
    }

    #[test]
    fn far_beats_lazy_near_under_extreme_contention() {
        // Both far and lazy-near issue with the same discipline (oldest
        // memory instruction, drained SB); the difference is pure coherence
        // traffic: lazy-near must *fetch and lock* the hot line every time,
        // far sends one control round trip and never moves the line.
        let cores = 8;
        let mk = |_t: usize| -> Vec<Instr> {
            let mut p = Vec::new();
            for i in 0..30u64 {
                for k in 0..3 {
                    p.push(alu(0x100 + i * 16 + k * 4));
                }
                p.push(faa(0x104, 0xfd0000, 1));
            }
            p
        };
        let near_lazy =
            SystemConfig::small(cores).with_policy(row_common::config::AtomicPolicy::Lazy);
        let (t_lazy, _) = run_many(&near_lazy, (0..cores).map(mk).collect());
        let (t_far, mem) = run_many(&far_cfg(cores), (0..cores).map(mk).collect());
        assert_eq!(mem.read_word(Addr::new(0xfd0000)), 8 * 30);
        assert!(
            t_far < t_lazy,
            "far {t_far} should beat lazy-near {t_lazy} on a single hot line"
        );
    }

    #[test]
    fn near_beats_far_on_private_reuse() {
        // One core repeatedly FAAs its own line: near keeps it in L1, far
        // pays a NoC round trip every time.
        let prog: Vec<Instr> = (0..50).map(|_| faa(0x40, 0xfe0000, 1)).collect();
        let (_, _, t_near) = run_single(&SystemConfig::small(2), prog.clone());
        let (_, _, t_far) = run_single(&far_cfg(2), prog);
        assert!(
            t_near.raw() < t_far.raw(),
            "near {t_near} should beat far {t_far} on private reuse"
        );
    }
}
