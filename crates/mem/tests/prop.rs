//! Randomized tests of the coherence protocol and cache arrays.
//!
//! The heavyweight one drives the full [`MemorySystem`] with random atomic
//! traffic from several cores (locking/unlocking through the public API) and
//! asserts linearizability of the increments plus the single-writer
//! invariant after the system drains.
//!
//! Randomness comes from the in-tree deterministic [`SplitMix64`] (the
//! original `proptest` dependency is unavailable offline); assertions are
//! unchanged.

use row_common::config::{CacheConfig, SystemConfig};
use row_common::ids::{Addr, CoreId, LineAddr};
use row_common::rng::SplitMix64;
use row_common::Cycle;
use row_mem::array::{CacheArray, Insert};
use row_mem::{AccessKind, DirState, MemEvent, MemorySystem, PrivState, ReqMeta};

/// N cores perform random FAAs on a small line set, holding each lock a
/// random number of cycles. The final sum is exact and the directory /
/// private states satisfy single-writer–multiple-reader.
#[test]
fn random_rmw_traffic_is_linearizable() {
    let mut g = SplitMix64::new(0x3e3_0001);
    for _case in 0..16 {
        let cores = 2 + g.below(3) as usize;
        let lines = 1 + g.below(3);
        let ops_per_core = 5 + g.below(20);
        let hold = 1 + g.below(79);
        let seed = g.below(500);

        let mut mem = MemorySystem::new(&SystemConfig::small(cores));
        let mut rng = SplitMix64::new(seed);

        // Per-core driver state machine: Idle -> Requested -> Locked(until).
        #[derive(Clone, Copy, PartialEq)]
        enum St {
            Idle,
            Requested,
            Locked(u64),
        }
        let mut st = vec![St::Idle; cores];
        let mut done = vec![0u64; cores];
        let mut held = vec![LineAddr::new(0); cores];
        let mut req = 0u64;

        let line_of = |k: u64| LineAddr::new(0x9000 + k);
        let mut cycle = 0u64;
        while done.iter().any(|&d| d < ops_per_core) {
            assert!(cycle < 10_000_000, "driver did not converge");
            let now = Cycle::new(cycle);
            for ev in mem.tick(now) {
                if let MemEvent::Fill {
                    core,
                    kind: AccessKind::Rmw,
                    line,
                    ..
                } = ev
                {
                    let c = core.index();
                    assert!(st[c] == St::Requested);
                    // The fill auto-locked the line: do the functional RMW
                    // now and release after `hold` cycles.
                    let a = line.base_addr();
                    let v = mem.read_word(a);
                    mem.write_word(a, v + 1);
                    held[c] = line;
                    st[c] = St::Locked(cycle + 1 + rng.below(hold));
                }
            }
            for c in 0..cores {
                match st[c] {
                    St::Idle if done[c] < ops_per_core => {
                        let line = line_of(rng.below(lines));
                        req += 1;
                        mem.access(
                            CoreId::new(c as u16),
                            line,
                            ReqMeta {
                                req_id: req,
                                pc: None,
                                prefetch: false,
                                kind: AccessKind::Rmw,
                            },
                            now,
                        );
                        st[c] = St::Requested;
                    }
                    St::Locked(until) if cycle >= until => {
                        mem.unlock(CoreId::new(c as u16), held[c], now);
                        st[c] = St::Idle;
                        done[c] += 1;
                    }
                    _ => {}
                }
            }
            cycle += 1;
        }
        // Drain in-flight messages.
        for k in 0..5_000 {
            let _ = mem.tick(Cycle::new(cycle + k));
        }

        // Linearizability: every FAA applied exactly once.
        let total: u64 = (0..lines)
            .map(|k| mem.read_word(line_of(k).base_addr()))
            .sum();
        assert_eq!(total, cores as u64 * ops_per_core);

        // SWMR: one modified owner at most, never M alongside S.
        for k in 0..lines {
            let line = line_of(k);
            let owners: Vec<usize> = (0..cores)
                .filter(|&c| {
                    matches!(
                        mem.priv_state(CoreId::new(c as u16), line),
                        Some(PrivState::M) | Some(PrivState::E)
                    )
                })
                .collect();
            assert!(owners.len() <= 1, "multiple owners of {line}: {owners:?}");
            if owners.len() == 1 {
                for c in 0..cores {
                    if c != owners[0] {
                        let s = mem.priv_state(CoreId::new(c as u16), line);
                        assert!(
                            !matches!(s, Some(PrivState::S)),
                            "sharer alongside an owner at {line}"
                        );
                    }
                }
            }
            // The directory agrees there is at most one exclusive owner.
            if let DirState::Exclusive(o) = mem.dir_state(line) {
                assert!(owners.contains(&o.index()) || owners.is_empty());
            }
        }
    }
}

/// Cache arrays never exceed capacity, and inserted lines are present
/// unless every way was pinned.
#[test]
fn cache_array_capacity_and_presence() {
    let mut g = SplitMix64::new(0x3e3_0002);
    for _case in 0..64 {
        let ways = 1 + g.below(8) as usize;
        let sets = 1usize << g.below(5);
        let n = 1 + g.below(200) as usize;
        let mut c = CacheArray::new(CacheConfig {
            size_bytes: ways * sets * 64,
            ways,
            hit_latency: 1,
        });
        let mut pinned: std::collections::HashSet<LineAddr> = Default::default();
        for _ in 0..n {
            let raw = g.below(256);
            let pin = g.chance(0.5);
            let line = LineAddr::new(raw);
            if pin && pinned.len() < ways.saturating_sub(1) {
                pinned.insert(line);
            }
            let p = pinned.clone();
            let outcome = c.insert(line, |l| !p.contains(&l));
            match outcome {
                Insert::NoVictim => assert!(!c.contains(line)),
                _ => assert!(c.contains(line)),
            }
            assert!(c.occupancy() <= ways * sets);
        }
    }
}

/// Functional word store: last write wins per 8-byte word.
#[test]
fn word_store_last_write_wins() {
    let mut g = SplitMix64::new(0x3e3_0003);
    for _case in 0..64 {
        let n = 1 + g.below(100) as usize;
        let mut mem = MemorySystem::new(&SystemConfig::small(1));
        let mut model = std::collections::HashMap::new();
        for _ in 0..n {
            let w = g.below(128);
            let v = g.next_u64();
            let a = Addr::new(w * 8);
            mem.write_word(a, v);
            model.insert(w, v);
        }
        for (&w, &v) in &model {
            assert_eq!(mem.read_word(Addr::new(w * 8)), v);
        }
    }
}
