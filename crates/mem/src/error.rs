//! Structured protocol errors.
//!
//! The coherence controllers historically panicked (or hit `unreachable!`)
//! when a message arrived that the protocol has no transition for. Those
//! paths now surface a [`ProtocolError`] instead, which the simulation loop
//! propagates as a first-class error — so a corrupted or mis-modelled
//! protocol state is diagnosable rather than fatal, and robustness tests can
//! assert on it. The same type carries the violations found by `row-check`'s
//! coherence invariant sweep (SWMR, directory/private agreement, Blocked
//! queue boundedness).

use row_common::ids::{CoreId, LineAddr};

use crate::directory::DirState;
use crate::msg::{Endpoint, Msg};
use crate::private::PrivState;

/// A coherence-protocol invariant was broken.
///
/// Every variant names the line and agent involved so a failing stress run
/// points directly at the offending transition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProtocolError {
    /// A request handler that must only see stable entries found the entry
    /// Blocked (the caller is responsible for queueing against Blocked).
    BlockedEntryReentered {
        /// The directory bank.
        tile: usize,
        /// The offending message.
        msg: Msg,
    },
    /// The directory received a message kind it has no transition for.
    DirUnexpectedMessage {
        /// The directory bank.
        tile: usize,
        /// The offending message.
        msg: Msg,
    },
    /// A private cache received a message kind it has no transition for.
    CacheUnexpectedMessage {
        /// The receiving core.
        core: CoreId,
        /// The offending message.
        msg: Msg,
    },
    /// Data arrived at a private cache with no matching MSHR.
    DataWithoutMshr {
        /// The receiving core.
        core: CoreId,
        /// The filled line.
        line: LineAddr,
    },
    /// An unlock was issued for a line that is not locked.
    UnlockOfUnlocked {
        /// The unlocking core.
        core: CoreId,
        /// The line.
        line: LineAddr,
    },
    /// SWMR violated: more than one private cache owns (M/E) the line.
    MultipleOwners {
        /// The line.
        line: LineAddr,
        /// Every core holding the line in M or E.
        owners: Vec<CoreId>,
    },
    /// A private cache's state for a line disagrees with its home
    /// directory entry.
    DirectoryMismatch {
        /// The line.
        line: LineAddr,
        /// The disagreeing core.
        core: CoreId,
        /// What the home directory believes.
        dir: DirState,
        /// What the private cache holds.
        cache: Option<PrivState>,
    },
    /// A Blocked directory entry's wait queue exceeded its bound.
    BlockedQueueOverflow {
        /// The directory bank.
        tile: usize,
        /// The blocked line.
        line: LineAddr,
        /// Observed queue depth.
        depth: usize,
        /// The configured (or derived) bound.
        bound: usize,
    },
    /// The recoverable transport exhausted its retransmission budget for a
    /// message: the channel is effectively severed (fault rates beyond what
    /// bounded retry can mask), so forward progress can no longer be
    /// guaranteed.
    TransportGiveUp {
        /// Sending endpoint of the abandoned channel message.
        src: Endpoint,
        /// Destination endpoint.
        dst: Endpoint,
        /// Channel sequence number of the abandoned message.
        seq: u64,
        /// Transmission attempts made before giving up.
        attempts: u32,
        /// The abandoned protocol message.
        msg: Msg,
    },
    /// A line in the lock table is not held in M, so the "external requests
    /// stall against locked lines" guarantee cannot hold.
    LockedLineNotModified {
        /// The locking core.
        core: CoreId,
        /// The line.
        line: LineAddr,
        /// The state actually held.
        state: Option<PrivState>,
    },
    /// A sequenced transport frame arrived but no transport is configured —
    /// the frame queue is corrupt (only a transport produces such frames).
    TransportAbsent {
        /// Sending endpoint of the orphaned frame.
        src: Endpoint,
        /// Destination endpoint.
        dst: Endpoint,
        /// Channel sequence number.
        seq: u64,
    },
    /// The directory received more invalidation acks than it was waiting
    /// for: the ack count would underflow, meaning the sharer bookkeeping of
    /// an in-flight transaction is corrupt.
    InvAckUnderflow {
        /// The directory bank.
        tile: usize,
        /// The line whose transaction miscounted.
        line: LineAddr,
        /// The core whose ack had no matching pending invalidation.
        from: CoreId,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BlockedEntryReentered { tile, msg } => write!(
                f,
                "dir bank {tile}: request handler re-entered a Blocked entry with {msg:?}"
            ),
            ProtocolError::DirUnexpectedMessage { tile, msg } => {
                write!(f, "dir bank {tile}: unexpected message {msg:?}")
            }
            ProtocolError::CacheUnexpectedMessage { core, msg } => {
                write!(f, "core {core}: private cache received unexpected {msg:?}")
            }
            ProtocolError::DataWithoutMshr { core, line } => {
                write!(f, "core {core}: Data for line {line} with no MSHR")
            }
            ProtocolError::UnlockOfUnlocked { core, line } => {
                write!(f, "core {core}: unlock of unlocked line {line}")
            }
            ProtocolError::MultipleOwners { line, owners } => {
                write!(f, "SWMR violated on line {line}: owners {owners:?}")
            }
            ProtocolError::DirectoryMismatch {
                line,
                core,
                dir,
                cache,
            } => write!(
                f,
                "line {line}: directory says {dir:?} but core {core} holds {cache:?}"
            ),
            ProtocolError::BlockedQueueOverflow {
                tile,
                line,
                depth,
                bound,
            } => write!(
                f,
                "dir bank {tile}: Blocked entry for {line} queues {depth} requests (bound {bound})"
            ),
            ProtocolError::TransportGiveUp {
                src,
                dst,
                seq,
                attempts,
                msg,
            } => write!(
                f,
                "transport gave up on {msg:?} ({src:?} -> {dst:?}, seq {seq}) \
                 after {attempts} attempts"
            ),
            ProtocolError::LockedLineNotModified { core, line, state } => write!(
                f,
                "core {core}: locked line {line} held in {state:?}, not M"
            ),
            ProtocolError::TransportAbsent { src, dst, seq } => write!(
                f,
                "sequenced frame ({src:?} -> {dst:?}, seq {seq}) arrived \
                 without a transport configured"
            ),
            ProtocolError::InvAckUnderflow { tile, line, from } => write!(
                f,
                "dir bank {tile}: InvAck from core {from} for {line} with no \
                 pending invalidation (ack count underflow)"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_line_and_agents() {
        let e = ProtocolError::MultipleOwners {
            line: LineAddr::new(7),
            owners: vec![CoreId::new(0), CoreId::new(3)],
        };
        let s = e.to_string();
        assert!(s.contains("SWMR"), "{s}");
        let e = ProtocolError::UnlockOfUnlocked {
            core: CoreId::new(1),
            line: LineAddr::new(9),
        };
        assert!(e.to_string().contains("unlock"));
        let e = ProtocolError::TransportGiveUp {
            src: Endpoint::Core(CoreId::new(2)),
            dst: Endpoint::Dir(0),
            seq: 11,
            attempts: 16,
            msg: Msg::Inv {
                line: LineAddr::new(4),
            },
        };
        let s = e.to_string();
        assert!(s.contains("gave up") && s.contains("16 attempts"), "{s}");
    }
}
