//! Per-core private cache controller (L1D + private L2).
//!
//! The controller owns the coherence state of its private domain, the MSHRs,
//! the IP-stride prefetcher, and — crucially for this paper — the *lock
//! table* and the *stall queue* for external coherence requests that hit
//! locked lines. The Atomic Queue in the core locks/unlocks lines through
//! [`PrivateCache::lock`] / [`PrivateCache::unlock`]; while a line is locked,
//! invalidations and downgrades targeting it are queued here and answered
//! only after the unlock, exactly as cache locking requires.
//!
//! The controller is a pure state machine: handlers return [`CacheAction`]s
//! (messages to send, events to emit) that the [`MemorySystem`] executes,
//! which keeps this module independently unit-testable.
//!
//! [`MemorySystem`]: crate::system::MemorySystem

use std::collections::VecDeque;

use row_common::config::MemoryConfig;
use row_common::coverage;
use row_common::fastmap::FastMap;
use row_common::ids::{CoreId, LineAddr};
use row_common::persist::{Codec, Persist, PersistError, Reader, Writer};
use row_common::Cycle;

use crate::array::{CacheArray, Insert};
use crate::error::ProtocolError;
use crate::msg::{AccessKind, Endpoint, FillSource, MemEvent, Msg, ReqMeta};
use crate::prefetch::IpStridePrefetcher;

/// Coherence state of a line within a private domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrivState {
    /// Shared, read-only.
    S,
    /// Exclusive, clean; silently upgradable to M.
    E,
    /// Modified, owned.
    M,
    /// Writeback (`PutM`) in flight; awaiting `WbAck`/`WbStale`.
    Evicting,
}

/// An action the controller asks the memory system to perform.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheAction {
    /// Send `msg` towards `to`, entering the NoC at cycle `at`.
    Send {
        /// Destination endpoint.
        to: Endpoint,
        /// The protocol message.
        msg: Msg,
        /// NoC injection cycle.
        at: Cycle,
    },
    /// Report an event to the core side.
    Emit(MemEvent),
    /// Apply a far atomic's RMW to the functional word store at the home
    /// tile (performed by the memory system, which owns the store), then
    /// deliver a `FarDone` to `req`.
    ApplyRmw {
        /// Requesting core (receives the `FarDone`).
        req: CoreId,
        /// The line operated on.
        line: LineAddr,
        /// The modify operation.
        rmw: row_common::rmw::RmwKind,
        /// Echo of the request id.
        req_id: u64,
        /// Cycle the operation performs at the home bank.
        at: Cycle,
    },
}

/// Outcome of a core-side access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessOutcome {
    /// The access hits in the private domain and completes at `complete_at`.
    Hit {
        /// Completion cycle.
        complete_at: Cycle,
        /// L1 or L2.
        source: FillSource,
    },
    /// The access misses (or waits); a [`MemEvent::Fill`] will follow.
    Pending,
}

/// Aggregate counters for one private hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PrivStats {
    /// Demand accesses that hit in L1D.
    pub l1_hits: u64,
    /// Demand accesses that hit in the private L2.
    pub l2_hits: u64,
    /// Demand accesses that left the private domain.
    pub misses: u64,
    /// Prefetch requests issued to the network.
    pub prefetches: u64,
    /// External requests that arrived while their line was locked.
    pub ext_stalled: u64,
    /// External requests processed in total.
    pub ext_seen: u64,
    /// Writebacks (PutM) issued.
    pub writebacks: u64,
}

#[derive(Clone, Debug)]
struct Mshr {
    /// True when the outstanding request is a GetX.
    excl: bool,
    /// Requests completed by the pending fill.
    waiters: Vec<ReqMeta>,
    /// Requests that need exclusive permission but merged onto a GetS; a GetX
    /// is issued for them once the shared fill lands.
    upgrade_waiters: Vec<ReqMeta>,
    /// Cycle the request message left the private hierarchy (the AQ's
    /// `request issued cycle` in RoW).
    issued_at: Cycle,
}

/// The private cache controller for one core.
#[derive(Clone, Debug)]
pub struct PrivateCache {
    id: CoreId,
    home_of: fn(LineAddr, usize) -> usize,
    tiles: usize,
    l1: CacheArray,
    l2: CacheArray,
    l1_lat: u64,
    l2_lat: u64,
    coh: FastMap<LineAddr, PrivState>,
    mshrs: FastMap<LineAddr, Mshr>,
    mshr_limit: usize,
    pending: VecDeque<ReqMetaLine>,
    locked: FastMap<LineAddr, u32>,
    stalled_ext: FastMap<LineAddr, VecDeque<Msg>>,
    prefetcher: Option<IpStridePrefetcher>,
    stats: PrivStats,
}

#[derive(Clone, Copy, Debug)]
struct ReqMetaLine {
    meta: ReqMeta,
    line: LineAddr,
}

impl PrivateCache {
    /// Builds the controller for core `id` in a system of `tiles` tiles.
    /// `home_of` maps a line to its home directory tile.
    pub fn new(
        id: CoreId,
        cfg: &MemoryConfig,
        tiles: usize,
        home_of: fn(LineAddr, usize) -> usize,
    ) -> Self {
        PrivateCache {
            id,
            home_of,
            tiles,
            l1: CacheArray::new(cfg.l1d),
            l2: CacheArray::new(cfg.l2),
            l1_lat: cfg.l1d.hit_latency,
            l2_lat: cfg.l2.hit_latency,
            coh: FastMap::new(),
            mshrs: FastMap::new(),
            mshr_limit: cfg.mshr_entries,
            pending: VecDeque::new(),
            locked: FastMap::new(),
            stalled_ext: FastMap::new(),
            prefetcher: cfg
                .prefetcher
                .then(|| IpStridePrefetcher::new(64, cfg.prefetch_degree)),
            stats: PrivStats::default(),
        }
    }

    /// This controller's core.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Counters so far.
    pub fn stats(&self) -> &PrivStats {
        &self.stats
    }

    /// Coherence state of `line`, if present in the private domain.
    pub fn state(&self, line: LineAddr) -> Option<PrivState> {
        self.coh.get(&line).copied()
    }

    /// Whether `line` is currently locked by the core's AQ.
    pub fn is_locked(&self, line: LineAddr) -> bool {
        self.locked.get(&line).is_some_and(|c| *c > 0)
    }

    /// Whether this core already owns `line` (M or E): a store to it can
    /// retire from the SB without a coherence transaction.
    pub fn owns(&self, line: LineAddr) -> bool {
        matches!(self.coh.get(&line), Some(PrivState::M) | Some(PrivState::E))
    }

    /// Number of in-flight misses.
    pub fn outstanding_misses(&self) -> usize {
        self.mshrs.len()
    }

    /// Every line with a coherence state in this private domain (iteration
    /// order is unspecified).
    pub fn lines(&self) -> impl Iterator<Item = (LineAddr, PrivState)> + '_ {
        self.coh.iter().map(|(l, &s)| (l, s))
    }

    /// Lines with an in-flight miss (an allocated MSHR).
    pub fn mshr_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.mshrs.keys()
    }

    /// Lines currently held locked by the core's AQ.
    pub fn locked_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.locked.iter().filter(|(_, c)| **c > 0).map(|(l, _)| l)
    }

    /// Overwrites the coherence state of `line`, bypassing the protocol.
    /// **Robustness-testing instrumentation only**: used to verify the
    /// invariant checker catches corrupted cache state. `None` removes the
    /// line.
    pub fn corrupt_state_for_test(&mut self, line: LineAddr, state: Option<PrivState>) {
        match state {
            Some(s) => {
                self.coh.insert(line, s);
            }
            None => {
                self.coh.remove(&line);
            }
        }
    }

    fn dir(&self, line: LineAddr) -> Endpoint {
        Endpoint::Dir((self.home_of)(line, self.tiles))
    }

    /// Core-side access (load, SB store write, or atomic `load_lock`).
    ///
    /// On a hit the outcome names the completion cycle; on a miss a
    /// [`MemEvent::Fill`] is emitted later. `actions` receives any messages
    /// to send (miss requests, prefetches, writebacks of victims).
    pub fn access(
        &mut self,
        meta: ReqMeta,
        line: LineAddr,
        now: Cycle,
        actions: &mut Vec<CacheAction>,
    ) -> AccessOutcome {
        // Train the prefetcher on demand loads before the hit/miss split so
        // streaming patterns prefetch ahead of demand.
        if !meta.prefetch && meta.kind == AccessKind::Read {
            if let (Some(pf), Some(pc)) = (self.prefetcher.as_mut(), meta.pc) {
                let targets = pf.observe(pc, line.base_addr());
                for t in targets {
                    self.maybe_prefetch(t, now, actions);
                }
            }
        }

        let state = self.coh.get(&line).copied();
        let writable = matches!(state, Some(PrivState::M) | Some(PrivState::E));
        let readable = matches!(
            state,
            Some(PrivState::S) | Some(PrivState::E) | Some(PrivState::M)
        );
        let hit = if meta.kind.needs_exclusive() {
            writable
        } else {
            readable
        };
        if hit {
            if meta.kind.needs_exclusive() && state == Some(PrivState::E) {
                self.coh.insert(line, PrivState::M);
            }
            if meta.kind == AccessKind::Rmw {
                // Cache locking is atomic with the access: no external
                // request may slip in between the grant and the lock.
                self.lock(line);
            }
            let (lat, source) = self.hit_latency(line);
            if meta.prefetch {
                return AccessOutcome::Hit {
                    complete_at: now,
                    source,
                };
            }
            return AccessOutcome::Hit {
                complete_at: now + lat,
                source,
            };
        }

        if meta.prefetch {
            // Prefetches never queue behind full MSHRs.
            self.maybe_prefetch(line, now, actions);
            return AccessOutcome::Pending;
        }

        self.stats.misses += 1;
        self.start_miss(meta, line, now, actions);
        AccessOutcome::Pending
    }

    fn hit_latency(&mut self, line: LineAddr) -> (u64, FillSource) {
        if self.l1.touch(line) {
            self.stats.l1_hits += 1;
            (self.l1_lat, FillSource::L1)
        } else if self.l2.touch(line) {
            self.stats.l2_hits += 1;
            // Refill L1 from L2 (drop silently from L1's victim: L2 is
            // inclusive, so no writeback is needed).
            let locked = &self.locked;
            let _ = self
                .l1
                .insert(line, |l| !matches!(locked.get(&l), Some(c) if *c > 0));
            (self.l1_lat + self.l2_lat, FillSource::L2)
        } else {
            // Resident only via the lock table (all ways were pinned when the
            // fill landed): treat as an L1 hit.
            self.stats.l1_hits += 1;
            (self.l1_lat, FillSource::L1)
        }
    }

    fn maybe_prefetch(&mut self, line: LineAddr, now: Cycle, actions: &mut Vec<CacheAction>) {
        let present = matches!(
            self.coh.get(&line),
            Some(PrivState::S) | Some(PrivState::E) | Some(PrivState::M)
        );
        if present || self.mshrs.contains_key(&line) || self.mshrs.len() >= self.mshr_limit {
            return;
        }
        let meta = ReqMeta {
            req_id: u64::MAX,
            pc: None,
            prefetch: true,
            kind: AccessKind::Read,
        };
        self.stats.prefetches += 1;
        self.send_miss(meta, line, now, actions);
    }

    fn start_miss(
        &mut self,
        meta: ReqMeta,
        line: LineAddr,
        now: Cycle,
        actions: &mut Vec<CacheAction>,
    ) {
        if let Some(m) = self.mshrs.get_mut(&line) {
            if m.excl || !meta.kind.needs_exclusive() {
                m.waiters.push(meta);
            } else {
                m.upgrade_waiters.push(meta);
            }
            return;
        }
        if self.mshrs.len() >= self.mshr_limit || self.coh.get(&line) == Some(&PrivState::Evicting)
        {
            self.pending.push_back(ReqMetaLine { meta, line });
            return;
        }
        self.send_miss(meta, line, now, actions);
    }

    fn send_miss(
        &mut self,
        meta: ReqMeta,
        line: LineAddr,
        now: Cycle,
        actions: &mut Vec<CacheAction>,
    ) {
        let excl = meta.kind.needs_exclusive();
        let issued_at = now + self.l1_lat + self.l2_lat;
        self.mshrs.insert(
            line,
            Mshr {
                excl,
                waiters: vec![meta],
                upgrade_waiters: Vec::new(),
                issued_at,
            },
        );
        let msg = if excl {
            Msg::GetX { req: self.id, line }
        } else {
            Msg::GetS { req: self.id, line }
        };
        actions.push(CacheAction::Send {
            to: self.dir(line),
            msg,
            at: issued_at,
        });
    }

    /// Re-examines the pending queue (called once per cycle by the system,
    /// and after MSHR-freeing events).
    pub fn promote_pending(&mut self, now: Cycle, actions: &mut Vec<CacheAction>) {
        while let Some(front) = self.pending.front().copied() {
            // A fill may have landed meanwhile and turned this into a hit.
            let state = self.coh.get(&front.line).copied();
            let satisfied = if front.meta.kind.needs_exclusive() {
                matches!(state, Some(PrivState::M) | Some(PrivState::E))
            } else {
                matches!(
                    state,
                    Some(PrivState::S) | Some(PrivState::E) | Some(PrivState::M)
                )
            };
            if satisfied {
                self.pending.pop_front();
                if front.meta.kind.needs_exclusive() && state == Some(PrivState::E) {
                    self.coh.insert(front.line, PrivState::M);
                }
                if front.meta.kind == AccessKind::Rmw {
                    self.lock(front.line);
                }
                let (lat, source) = self.hit_latency(front.line);
                actions.push(CacheAction::Emit(MemEvent::Fill {
                    core: self.id,
                    req_id: front.meta.req_id,
                    line: front.line,
                    at: now + lat,
                    issued_at: now,
                    source,
                    kind: front.meta.kind,
                }));
                continue;
            }
            if let Some(m) = self.mshrs.get_mut(&front.line) {
                self.pending.pop_front();
                if m.excl || !front.meta.kind.needs_exclusive() {
                    m.waiters.push(front.meta);
                } else {
                    m.upgrade_waiters.push(front.meta);
                }
                continue;
            }
            if self.mshrs.len() < self.mshr_limit
                && self.coh.get(&front.line) != Some(&PrivState::Evicting)
            {
                self.pending.pop_front();
                self.send_miss(front.meta, front.line, now, actions);
                continue;
            }
            break; // head-of-line blocked
        }
    }

    /// Locks `line` (AQ `load_lock` completed). Locks nest per AQ entry.
    ///
    /// `Rmw` accesses lock automatically when they hit or fill (the lock is
    /// atomic with the permission grant); the core only calls
    /// [`PrivateCache::unlock`] when the `store_unlock` writes. This method
    /// exists for additional nesting and for tests.
    pub fn lock(&mut self, line: LineAddr) {
        *self.locked.get_or_insert_with(line, || 0) += 1;
        debug_assert!(
            matches!(self.coh.get(&line), Some(PrivState::M)),
            "locking a line not in M: {:?}",
            self.coh.get(&line)
        );
    }

    /// Unlocks `line` (AQ `store_unlock` wrote). When the last lock drops,
    /// stalled external requests are answered in arrival order.
    pub fn unlock(
        &mut self,
        line: LineAddr,
        now: Cycle,
        actions: &mut Vec<CacheAction>,
    ) -> Result<(), ProtocolError> {
        let Some(c) = self.locked.get_mut(&line) else {
            return Err(ProtocolError::UnlockOfUnlocked {
                core: self.id,
                line,
            });
        };
        *c -= 1;
        if *c > 0 {
            return Ok(());
        }
        self.locked.remove(&line);
        if let Some(q) = self.stalled_ext.remove(&line) {
            for msg in q {
                self.apply_external(msg, now + self.l1_lat, actions)?;
            }
        }
        Ok(())
    }

    /// Handles a protocol message addressed to this controller.
    pub fn handle_msg(
        &mut self,
        msg: Msg,
        now: Cycle,
        actions: &mut Vec<CacheAction>,
    ) -> Result<(), ProtocolError> {
        self.record_coverage(&msg);
        match msg {
            Msg::Inv { line } | Msg::FwdGetS { line, .. } | Msg::FwdGetX { line, .. } => {
                self.stats.ext_seen += 1;
                let stalled = self.is_locked(line);
                actions.push(CacheAction::Emit(MemEvent::ExternalObserved {
                    core: self.id,
                    line,
                    at: now,
                    stalled,
                }));
                if stalled {
                    self.stats.ext_stalled += 1;
                    self.stalled_ext
                        .get_or_insert_with(line, VecDeque::new)
                        .push_back(msg);
                } else {
                    self.apply_external(msg, now, actions)?;
                }
            }
            Msg::Data {
                line,
                excl,
                from_private,
                ..
            } => self.handle_data(line, excl, from_private, now, actions)?,
            Msg::WbAck { line } | Msg::WbStale { line } => {
                if self.coh.get(&line) == Some(&PrivState::Evicting) {
                    self.coh.remove(&line);
                }
                self.promote_pending(now, actions);
            }
            Msg::FarDone { req_id, line, .. } => {
                actions.push(CacheAction::Emit(MemEvent::FarDone {
                    core: self.id,
                    line,
                    req_id,
                    at: now,
                }));
            }
            other => {
                return Err(ProtocolError::CacheUnexpectedMessage {
                    core: self.id,
                    msg: other,
                })
            }
        }
        Ok(())
    }

    /// Records the `(state-before, event)` transition-coverage slot for an
    /// incoming message. A no-op unless a fuzz coverage sink is installed.
    fn record_coverage(&self, msg: &Msg) {
        use coverage::{PrivEvent as Ev, PrivState as St};
        let (line, event) = match msg {
            Msg::Inv { line } => (Some(*line), Ev::Inv),
            Msg::FwdGetS { line, .. } => (Some(*line), Ev::FwdGetS),
            Msg::FwdGetX { line, .. } => (Some(*line), Ev::FwdGetX),
            Msg::Data { line, .. } => (Some(*line), Ev::Data),
            Msg::WbAck { line } => (Some(*line), Ev::WbAck),
            Msg::WbStale { line } => (Some(*line), Ev::WbStale),
            Msg::FarDone { line, .. } => (Some(*line), Ev::FarDone),
            _ => (None, Ev::Other),
        };
        let state = match line.and_then(|l| self.coh.get(&l)) {
            None => St::I,
            Some(PrivState::S) => St::S,
            Some(PrivState::E) => St::E,
            Some(PrivState::M) => St::M,
            Some(PrivState::Evicting) => St::Evicting,
        };
        coverage::record(coverage::priv_slot(state, event));
    }

    fn apply_external(
        &mut self,
        msg: Msg,
        now: Cycle,
        actions: &mut Vec<CacheAction>,
    ) -> Result<(), ProtocolError> {
        match msg {
            Msg::Inv { line } => {
                self.drop_line(line);
                actions.push(CacheAction::Send {
                    to: self.dir(line),
                    msg: Msg::InvAck {
                        from: self.id,
                        line,
                    },
                    at: now,
                });
            }
            Msg::FwdGetS { req, line } => {
                // Serve from our copy and downgrade to S. If we were mid-
                // eviction the directory ordered the forward first; we serve
                // it and let our PutM be rejected as stale.
                let served_at = now + self.l1_lat;
                actions.push(CacheAction::Send {
                    to: Endpoint::Core(req),
                    msg: Msg::Data {
                        req,
                        line,
                        excl: false,
                        from_private: true,
                    },
                    at: served_at,
                });
                match self.coh.get(&line) {
                    Some(PrivState::Evicting) => {} // dropped after WbStale
                    Some(_) => {
                        self.coh.insert(line, PrivState::S);
                    }
                    None => {}
                }
            }
            Msg::FwdGetX { req, line } => {
                let served_at = now + self.l1_lat;
                actions.push(CacheAction::Send {
                    to: Endpoint::Core(req),
                    msg: Msg::Data {
                        req,
                        line,
                        excl: true,
                        from_private: true,
                    },
                    at: served_at,
                });
                if self.coh.get(&line) == Some(&PrivState::Evicting) {
                    // Keep the Evicting marker for WbStale bookkeeping.
                } else {
                    self.drop_line(line);
                }
            }
            other => {
                return Err(ProtocolError::CacheUnexpectedMessage {
                    core: self.id,
                    msg: other,
                })
            }
        }
        Ok(())
    }

    fn drop_line(&mut self, line: LineAddr) {
        self.coh.remove(&line);
        self.l1.invalidate(line);
        self.l2.invalidate(line);
    }

    fn handle_data(
        &mut self,
        line: LineAddr,
        excl: bool,
        from_private: bool,
        now: Cycle,
        actions: &mut Vec<CacheAction>,
    ) -> Result<(), ProtocolError> {
        let Some(mshr) = self.mshrs.remove(&line) else {
            return Err(ProtocolError::DataWithoutMshr {
                core: self.id,
                line,
            });
        };
        let state = if mshr.excl {
            PrivState::M
        } else if excl {
            PrivState::E
        } else {
            PrivState::S
        };
        self.coh.insert(line, state);
        self.install(line, now, actions);

        let source = if from_private {
            FillSource::RemotePrivate
        } else {
            FillSource::L3
        };
        for w in &mshr.waiters {
            if w.kind == AccessKind::Rmw {
                self.lock(line);
            }
        }
        for w in &mshr.waiters {
            if !w.prefetch {
                actions.push(CacheAction::Emit(MemEvent::Fill {
                    core: self.id,
                    req_id: w.req_id,
                    line,
                    at: now,
                    issued_at: mshr.issued_at,
                    source,
                    kind: w.kind,
                }));
            }
        }
        actions.push(CacheAction::Send {
            to: self.dir(line),
            msg: Msg::Unblock {
                from: self.id,
                line,
            },
            at: now,
        });
        if !mshr.upgrade_waiters.is_empty() {
            // Got S but writers are waiting: immediately request ownership.
            let mut it = mshr.upgrade_waiters.into_iter();
            let first = it.next().expect("non-empty");
            self.send_miss(first, line, now, actions);
            let m = self.mshrs.get_mut(&line).expect("just inserted");
            m.waiters.extend(it);
        }
        self.promote_pending(now, actions);
        Ok(())
    }

    fn install(&mut self, line: LineAddr, now: Cycle, actions: &mut Vec<CacheAction>) {
        // L2 first (inclusive). The pin closure queries the lock table
        // directly instead of materializing a locked-lines Vec per install.
        let locked = &self.locked;
        match self
            .l2
            .insert(line, |l| !matches!(locked.get(&l), Some(c) if *c > 0))
        {
            Insert::Evicted(victim) => {
                self.l1.invalidate(victim);
                self.writeback_victim(victim, now, actions);
            }
            Insert::NoVictim => {
                // Every way pinned: the line lives in the lock-table limbo;
                // correctness is preserved via `coh`.
            }
            _ => {}
        }
        // L1: victims need no writeback (L2 inclusive holds them).
        let locked = &self.locked;
        let _ = self
            .l1
            .insert(line, |l| !matches!(locked.get(&l), Some(c) if *c > 0));
    }

    fn writeback_victim(&mut self, victim: LineAddr, now: Cycle, actions: &mut Vec<CacheAction>) {
        match self.coh.get(&victim) {
            Some(PrivState::M) | Some(PrivState::E) => {
                self.coh.insert(victim, PrivState::Evicting);
                self.stats.writebacks += 1;
                actions.push(CacheAction::Send {
                    to: self.dir(victim),
                    msg: Msg::PutM {
                        from: self.id,
                        line: victim,
                    },
                    at: now,
                });
            }
            Some(PrivState::S) => {
                // Silent drop: the directory tolerates acks from non-sharers.
                self.coh.remove(&victim);
            }
            _ => {}
        }
    }
}

impl Codec for PrivState {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            PrivState::S => 0,
            PrivState::E => 1,
            PrivState::M => 2,
            PrivState::Evicting => 3,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.get_u8()? {
            0 => PrivState::S,
            1 => PrivState::E,
            2 => PrivState::M,
            3 => PrivState::Evicting,
            tag => {
                return Err(PersistError::BadTag {
                    what: "PrivState",
                    tag,
                })
            }
        })
    }
}

impl Codec for PrivStats {
    fn encode(&self, w: &mut Writer) {
        for v in [
            self.l1_hits,
            self.l2_hits,
            self.misses,
            self.prefetches,
            self.ext_stalled,
            self.ext_seen,
            self.writebacks,
        ] {
            w.put_u64(v);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(PrivStats {
            l1_hits: r.get_u64()?,
            l2_hits: r.get_u64()?,
            misses: r.get_u64()?,
            prefetches: r.get_u64()?,
            ext_stalled: r.get_u64()?,
            ext_seen: r.get_u64()?,
            writebacks: r.get_u64()?,
        })
    }
}

impl Codec for Mshr {
    fn encode(&self, w: &mut Writer) {
        w.put_bool(self.excl);
        self.waiters.encode(w);
        self.upgrade_waiters.encode(w);
        self.issued_at.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Mshr {
            excl: r.get_bool()?,
            waiters: Vec::<ReqMeta>::decode(r)?,
            upgrade_waiters: Vec::<ReqMeta>::decode(r)?,
            issued_at: Cycle::decode(r)?,
        })
    }
}

impl Codec for ReqMetaLine {
    fn encode(&self, w: &mut Writer) {
        self.meta.encode(w);
        self.line.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(ReqMetaLine {
            meta: ReqMeta::decode(r)?,
            line: LineAddr::decode(r)?,
        })
    }
}

impl Persist for PrivateCache {
    // `id`, `home_of`, `tiles`, latencies, and the MSHR limit are
    // config-derived and kept; everything a running protocol mutates moves.
    fn persist(&self, w: &mut Writer) {
        self.l1.persist(w);
        self.l2.persist(w);
        self.coh.encode(w);
        self.mshrs.encode(w);
        self.pending.encode(w);
        self.locked.encode(w);
        self.stalled_ext.encode(w);
        match &self.prefetcher {
            None => w.put_bool(false),
            Some(p) => {
                w.put_bool(true);
                p.persist(w);
            }
        }
        self.stats.encode(w);
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        self.l1.restore(r)?;
        self.l2.restore(r)?;
        self.coh = FastMap::decode(r)?;
        self.mshrs = FastMap::decode(r)?;
        self.pending = VecDeque::decode(r)?;
        self.locked = FastMap::decode(r)?;
        self.stalled_ext = FastMap::decode(r)?;
        let has_prefetcher = r.get_bool()?;
        match (&mut self.prefetcher, has_prefetcher) {
            (Some(p), true) => p.restore(r)?,
            (None, false) => {}
            _ => return Err(PersistError::Corrupt("prefetcher presence mismatch")),
        }
        self.stats = PrivStats::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use row_common::ids::Pc;

    fn home(_: LineAddr, _: usize) -> usize {
        0
    }

    fn cache() -> PrivateCache {
        let mut cfg = MemoryConfig::alder_lake();
        cfg.l1d.size_bytes = 4 * 1024; // 64 lines
        cfg.l1d.ways = 4;
        cfg.l2.size_bytes = 16 * 1024;
        cfg.l2.ways = 4;
        cfg.prefetcher = false;
        PrivateCache::new(CoreId::new(0), &cfg, 1, home)
    }

    fn meta(id: u64, kind: AccessKind) -> ReqMeta {
        ReqMeta {
            req_id: id,
            pc: Some(Pc::new(0x100)),
            prefetch: false,
            kind,
        }
    }

    fn fill(c: &mut PrivateCache, line: LineAddr, excl: bool, now: Cycle) -> Vec<CacheAction> {
        let mut acts = Vec::new();
        c.handle_msg(
            Msg::Data {
                req: c.id(),
                line,
                excl,
                from_private: false,
            },
            now,
            &mut acts,
        )
        .unwrap();
        acts
    }

    #[test]
    fn read_miss_sends_gets_then_fill_hits() {
        let mut c = cache();
        let line = LineAddr::new(10);
        let mut acts = Vec::new();
        let out = c.access(meta(1, AccessKind::Read), line, Cycle::ZERO, &mut acts);
        assert_eq!(out, AccessOutcome::Pending);
        assert!(matches!(
            acts[0],
            CacheAction::Send {
                msg: Msg::GetS { .. },
                ..
            }
        ));
        let acts = fill(&mut c, line, false, Cycle::new(100));
        // Fill event + Unblock.
        assert!(acts.iter().any(|a| matches!(
            a,
            CacheAction::Emit(MemEvent::Fill {
                req_id: 1,
                source: FillSource::L3,
                ..
            })
        )));
        assert!(acts.iter().any(|a| matches!(
            a,
            CacheAction::Send {
                msg: Msg::Unblock { .. },
                ..
            }
        )));
        assert_eq!(c.state(line), Some(PrivState::S));
        // Now a read hits in L1.
        let mut acts2 = Vec::new();
        let out = c.access(meta(2, AccessKind::Read), line, Cycle::new(200), &mut acts2);
        assert!(matches!(
            out,
            AccessOutcome::Hit {
                source: FillSource::L1,
                ..
            }
        ));
    }

    #[test]
    fn exclusive_fill_grants_e_and_write_upgrades_silently() {
        let mut c = cache();
        let line = LineAddr::new(11);
        let mut acts = Vec::new();
        c.access(meta(1, AccessKind::Read), line, Cycle::ZERO, &mut acts);
        fill(&mut c, line, true, Cycle::new(50)); // E grant
        assert_eq!(c.state(line), Some(PrivState::E));
        let mut acts = Vec::new();
        let out = c.access(meta(2, AccessKind::Write), line, Cycle::new(60), &mut acts);
        assert!(matches!(out, AccessOutcome::Hit { .. }));
        assert_eq!(c.state(line), Some(PrivState::M));
    }

    #[test]
    fn write_to_shared_line_requests_ownership() {
        let mut c = cache();
        let line = LineAddr::new(12);
        let mut acts = Vec::new();
        c.access(meta(1, AccessKind::Read), line, Cycle::ZERO, &mut acts);
        fill(&mut c, line, false, Cycle::new(50)); // S
        let mut acts = Vec::new();
        let out = c.access(meta(2, AccessKind::Write), line, Cycle::new(60), &mut acts);
        assert_eq!(out, AccessOutcome::Pending);
        assert!(acts.iter().any(|a| matches!(
            a,
            CacheAction::Send {
                msg: Msg::GetX { .. },
                ..
            }
        )));
    }

    #[test]
    fn reads_merge_into_outstanding_miss() {
        let mut c = cache();
        let line = LineAddr::new(13);
        let mut acts = Vec::new();
        c.access(meta(1, AccessKind::Read), line, Cycle::ZERO, &mut acts);
        c.access(meta(2, AccessKind::Read), line, Cycle::new(1), &mut acts);
        assert_eq!(c.outstanding_misses(), 1);
        let acts = fill(&mut c, line, false, Cycle::new(80));
        let fills: Vec<u64> = acts
            .iter()
            .filter_map(|a| match a {
                CacheAction::Emit(MemEvent::Fill { req_id, .. }) => Some(*req_id),
                _ => None,
            })
            .collect();
        assert_eq!(fills, vec![1, 2]);
    }

    #[test]
    fn write_merging_onto_gets_triggers_upgrade_after_fill() {
        let mut c = cache();
        let line = LineAddr::new(14);
        let mut acts = Vec::new();
        c.access(meta(1, AccessKind::Read), line, Cycle::ZERO, &mut acts);
        c.access(meta(2, AccessKind::Write), line, Cycle::new(1), &mut acts);
        let acts = fill(&mut c, line, false, Cycle::new(80)); // S fill
                                                              // Reader completes; writer re-requests with GetX.
        assert!(acts
            .iter()
            .any(|a| matches!(a, CacheAction::Emit(MemEvent::Fill { req_id: 1, .. }))));
        assert!(acts.iter().any(|a| matches!(
            a,
            CacheAction::Send {
                msg: Msg::GetX { .. },
                ..
            }
        )));
        let acts = fill(&mut c, line, true, Cycle::new(160));
        assert!(acts
            .iter()
            .any(|a| matches!(a, CacheAction::Emit(MemEvent::Fill { req_id: 2, .. }))));
        assert_eq!(c.state(line), Some(PrivState::M));
    }

    #[test]
    fn inv_on_unlocked_line_acks_and_drops() {
        let mut c = cache();
        let line = LineAddr::new(15);
        let mut acts = Vec::new();
        c.access(meta(1, AccessKind::Read), line, Cycle::ZERO, &mut acts);
        fill(&mut c, line, false, Cycle::new(50));
        let mut acts = Vec::new();
        c.handle_msg(Msg::Inv { line }, Cycle::new(60), &mut acts)
            .unwrap();
        assert!(acts.iter().any(|a| matches!(
            a,
            CacheAction::Emit(MemEvent::ExternalObserved { stalled: false, .. })
        )));
        assert!(acts.iter().any(|a| matches!(
            a,
            CacheAction::Send {
                msg: Msg::InvAck { .. },
                ..
            }
        )));
        assert_eq!(c.state(line), None);
    }

    #[test]
    fn external_request_stalls_on_locked_line_until_unlock() {
        let mut c = cache();
        let line = LineAddr::new(16);
        let mut acts = Vec::new();
        c.access(meta(1, AccessKind::Rmw), line, Cycle::ZERO, &mut acts);
        fill(&mut c, line, true, Cycle::new(50)); // Rmw fill auto-locks
        assert!(c.is_locked(line));
        let mut acts = Vec::new();
        c.handle_msg(
            Msg::FwdGetX {
                req: CoreId::new(1),
                line,
            },
            Cycle::new(60),
            &mut acts,
        )
        .unwrap();
        assert!(acts.iter().any(|a| matches!(
            a,
            CacheAction::Emit(MemEvent::ExternalObserved { stalled: true, .. })
        )));
        // No data served yet.
        assert!(!acts.iter().any(|a| matches!(
            a,
            CacheAction::Send {
                msg: Msg::Data { .. },
                ..
            }
        )));
        assert_eq!(c.stats().ext_stalled, 1);

        let mut acts = Vec::new();
        c.unlock(line, Cycle::new(200), &mut acts).unwrap();
        let served = acts.iter().find_map(|a| match a {
            CacheAction::Send {
                msg: Msg::Data {
                    from_private, excl, ..
                },
                at,
                ..
            } => Some((*from_private, *excl, *at)),
            _ => None,
        });
        let (from_private, excl, at) = served.expect("data served after unlock");
        assert!(from_private && excl);
        assert!(at > Cycle::new(200));
        assert_eq!(c.state(line), None, "ownership transferred");
    }

    #[test]
    fn fwd_gets_downgrades_to_shared() {
        let mut c = cache();
        let line = LineAddr::new(17);
        let mut acts = Vec::new();
        c.access(meta(1, AccessKind::Write), line, Cycle::ZERO, &mut acts);
        fill(&mut c, line, true, Cycle::new(50));
        assert_eq!(c.state(line), Some(PrivState::M));
        let mut acts = Vec::new();
        c.handle_msg(
            Msg::FwdGetS {
                req: CoreId::new(1),
                line,
            },
            Cycle::new(60),
            &mut acts,
        )
        .unwrap();
        assert_eq!(c.state(line), Some(PrivState::S));
        assert!(acts.iter().any(|a| matches!(
            a,
            CacheAction::Send {
                msg: Msg::Data {
                    excl: false,
                    from_private: true,
                    ..
                },
                ..
            }
        )));
    }

    #[test]
    fn capacity_eviction_of_modified_line_writes_back() {
        let mut c = cache();
        // Fill one L2 set (4 ways) with M lines, then fill a 5th.
        let sets = 64; // 16KB/64B/4ways
        let lines: Vec<LineAddr> = (0..5).map(|k| LineAddr::new(1 + k * sets)).collect();
        for (i, &l) in lines.iter().enumerate() {
            let mut acts = Vec::new();
            c.access(meta(i as u64, AccessKind::Write), l, Cycle::ZERO, &mut acts);
            let acts = fill(&mut c, l, true, Cycle::new(10 * (i as u64 + 1)));
            if i == 4 {
                assert!(
                    acts.iter().any(|a| matches!(
                        a,
                        CacheAction::Send {
                            msg: Msg::PutM { .. },
                            ..
                        }
                    )),
                    "5th fill must evict and write back an M line"
                );
            }
        }
        assert_eq!(c.state(lines[0]), Some(PrivState::Evicting));
        let mut acts = Vec::new();
        c.handle_msg(Msg::WbAck { line: lines[0] }, Cycle::new(100), &mut acts)
            .unwrap();
        assert_eq!(c.state(lines[0]), None);
    }

    #[test]
    fn locked_lines_are_never_victims() {
        let mut c = cache();
        let sets = 64;
        let locked_line = LineAddr::new(2);
        let mut acts = Vec::new();
        c.access(
            meta(0, AccessKind::Rmw),
            locked_line,
            Cycle::ZERO,
            &mut acts,
        );
        fill(&mut c, locked_line, true, Cycle::new(10)); // auto-locks
                                                         // Flood the same set.
        for k in 1..=6u64 {
            let l = LineAddr::new(2 + k * sets);
            let mut acts = Vec::new();
            c.access(meta(k, AccessKind::Write), l, Cycle::new(20 + k), &mut acts);
            fill(&mut c, l, true, Cycle::new(30 + 10 * k));
        }
        assert_eq!(c.state(locked_line), Some(PrivState::M));
        assert!(c.is_locked(locked_line));
    }

    #[test]
    fn mshr_limit_queues_then_promotes() {
        let mut cfg = MemoryConfig::alder_lake();
        cfg.mshr_entries = 1;
        cfg.prefetcher = false;
        let mut c = PrivateCache::new(CoreId::new(0), &cfg, 1, home);
        let a = LineAddr::new(30);
        let b = LineAddr::new(31);
        let mut acts = Vec::new();
        c.access(meta(1, AccessKind::Read), a, Cycle::ZERO, &mut acts);
        c.access(meta(2, AccessKind::Read), b, Cycle::new(1), &mut acts);
        assert_eq!(c.outstanding_misses(), 1);
        assert_eq!(
            acts.iter()
                .filter(|x| matches!(
                    x,
                    CacheAction::Send {
                        msg: Msg::GetS { .. },
                        ..
                    }
                ))
                .count(),
            1
        );
        let acts = fill(&mut c, a, false, Cycle::new(100));
        // Promoting the queue sends the second GetS.
        assert!(acts.iter().any(|x| matches!(
            x,
            CacheAction::Send { msg: Msg::GetS { line, .. }, .. } if *line == b
        )));
    }

    #[test]
    fn rmw_hit_in_m_state_completes_locally() {
        let mut c = cache();
        let line = LineAddr::new(40);
        let mut acts = Vec::new();
        c.access(meta(1, AccessKind::Write), line, Cycle::ZERO, &mut acts);
        fill(&mut c, line, true, Cycle::new(10));
        let mut acts = Vec::new();
        let out = c.access(meta(2, AccessKind::Rmw), line, Cycle::new(20), &mut acts);
        assert!(matches!(out, AccessOutcome::Hit { .. }));
    }

    #[test]
    fn nested_locks_release_in_order() {
        let mut c = cache();
        let line = LineAddr::new(41);
        let mut acts = Vec::new();
        c.access(meta(1, AccessKind::Rmw), line, Cycle::ZERO, &mut acts);
        fill(&mut c, line, true, Cycle::new(10)); // lock count 1
        c.lock(line); // a second in-flight atomic to the same line
        let mut acts = Vec::new();
        c.unlock(line, Cycle::new(20), &mut acts).unwrap();
        assert!(c.is_locked(line));
        c.unlock(line, Cycle::new(30), &mut acts).unwrap();
        assert!(!c.is_locked(line));
    }

    #[test]
    fn prefetcher_issues_gets_for_strided_loads() {
        let mut cfg = MemoryConfig::alder_lake();
        cfg.prefetcher = true;
        cfg.prefetch_degree = 1;
        let mut c = PrivateCache::new(CoreId::new(0), &cfg, 1, home);
        let pc = Pc::new(0x700);
        let mk = |id: u64| ReqMeta {
            req_id: id,
            pc: Some(pc),
            prefetch: false,
            kind: AccessKind::Read,
        };
        let mut acts = Vec::new();
        for k in 0..3u64 {
            c.access(mk(k), LineAddr::new(100 + k), Cycle::new(k), &mut acts);
        }
        let gets: Vec<LineAddr> = acts
            .iter()
            .filter_map(|a| match a {
                CacheAction::Send {
                    msg: Msg::GetS { line, .. },
                    ..
                } => Some(*line),
                _ => None,
            })
            .collect();
        // 3 demand + at least 1 prefetch beyond line 102.
        assert!(gets.len() >= 4, "got {gets:?}");
        assert!(gets.contains(&LineAddr::new(103)));
        assert!(c.stats().prefetches >= 1);
    }
}

#[cfg(test)]
mod race_tests {
    use super::*;
    use crate::msg::{AccessKind, MemEvent, Msg};
    use row_common::config::MemoryConfig;
    use row_common::ids::CoreId;

    fn home(_: LineAddr, _: usize) -> usize {
        0
    }

    fn cache() -> PrivateCache {
        let mut cfg = MemoryConfig::alder_lake();
        cfg.l1d.size_bytes = 4 * 1024;
        cfg.l1d.ways = 4;
        cfg.l2.size_bytes = 16 * 1024;
        cfg.l2.ways = 4;
        cfg.prefetcher = false;
        PrivateCache::new(CoreId::new(0), &cfg, 1, home)
    }

    fn own_line(c: &mut PrivateCache, line: LineAddr, id: u64) {
        let meta = ReqMeta {
            req_id: id,
            pc: None,
            prefetch: false,
            kind: AccessKind::Write,
        };
        let mut acts = Vec::new();
        c.access(meta, line, Cycle::ZERO, &mut acts);
        c.handle_msg(
            Msg::Data {
                req: c.id(),
                line,
                excl: true,
                from_private: false,
            },
            Cycle::new(10),
            &mut acts,
        )
        .unwrap();
    }

    #[test]
    fn fwd_getx_while_evicting_serves_data_and_survives_wbstale() {
        let mut c = cache();
        let sets = 64;
        // Fill a set until an M line enters Evicting.
        for k in 0..5u64 {
            own_line(&mut c, LineAddr::new(3 + k * sets), k);
        }
        let victim = LineAddr::new(3);
        assert_eq!(c.state(victim), Some(PrivState::Evicting));

        // The directory processed another core's GetX before our PutM.
        let mut acts = Vec::new();
        c.handle_msg(
            Msg::FwdGetX {
                req: CoreId::new(1),
                line: victim,
            },
            Cycle::new(50),
            &mut acts,
        )
        .unwrap();
        assert!(
            acts.iter().any(|a| matches!(
                a,
                CacheAction::Send {
                    msg: Msg::Data {
                        from_private: true,
                        ..
                    },
                    ..
                }
            )),
            "the evicting owner still serves the forward"
        );
        // Our stale PutM is rejected; the entry finally drops.
        let mut acts = Vec::new();
        c.handle_msg(Msg::WbStale { line: victim }, Cycle::new(80), &mut acts)
            .unwrap();
        assert_eq!(c.state(victim), None);
    }

    #[test]
    fn inv_for_absent_line_still_acks() {
        let mut c = cache();
        let line = LineAddr::new(99);
        let mut acts = Vec::new();
        c.handle_msg(Msg::Inv { line }, Cycle::new(5), &mut acts)
            .unwrap();
        assert!(acts.iter().any(|a| matches!(
            a,
            CacheAction::Send {
                msg: Msg::InvAck { .. },
                ..
            }
        )));
    }

    #[test]
    fn multiple_externals_stall_in_arrival_order() {
        let mut c = cache();
        let line = LineAddr::new(7);
        let meta = ReqMeta {
            req_id: 1,
            pc: None,
            prefetch: false,
            kind: AccessKind::Rmw,
        };
        let mut acts = Vec::new();
        c.access(meta, line, Cycle::ZERO, &mut acts);
        c.handle_msg(
            Msg::Data {
                req: c.id(),
                line,
                excl: true,
                from_private: false,
            },
            Cycle::new(10),
            &mut acts,
        )
        .unwrap(); // auto-locked
        let mut acts = Vec::new();
        c.handle_msg(
            Msg::FwdGetS {
                req: CoreId::new(1),
                line,
            },
            Cycle::new(20),
            &mut acts,
        )
        .unwrap();
        assert_eq!(c.stats().ext_stalled, 1);
        let mut acts = Vec::new();
        c.unlock(line, Cycle::new(100), &mut acts).unwrap();
        let served: Vec<CoreId> = acts
            .iter()
            .filter_map(|a| match a {
                CacheAction::Send {
                    msg: Msg::Data { req, .. },
                    ..
                } => Some(*req),
                _ => None,
            })
            .collect();
        assert_eq!(served, vec![CoreId::new(1)]);
        assert_eq!(c.state(line), Some(PrivState::S), "downgraded after serve");
    }

    #[test]
    fn far_done_is_emitted_to_the_core() {
        let mut c = cache();
        let line = LineAddr::new(11);
        let mut acts = Vec::new();
        c.handle_msg(
            Msg::FarDone {
                req: c.id(),
                line,
                req_id: 44,
            },
            Cycle::new(9),
            &mut acts,
        )
        .unwrap();
        assert!(matches!(
            acts[0],
            CacheAction::Emit(MemEvent::FarDone { req_id: 44, .. })
        ));
    }
}
