//! Coherence message and request/response vocabulary.
//!
//! The protocol is a classic unblock-based MESI directory (in the style of
//! GEMS `MESI_CMP_directory`, which the paper uses): requests block the
//! directory entry until the requester's `Unblock` confirms receipt, and
//! requests arriving meanwhile queue at the directory — the exact dynamics of
//! the paper's Fig. 8.

use row_common::ids::{CoreId, LineAddr, Pc};
use row_common::persist::{Codec, PersistError, Reader, Writer};
use row_common::rmw::RmwKind;
use row_common::Cycle;

/// What kind of access a core requests from its memory hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// A regular load: shared permission suffices (GetS on miss).
    Read,
    /// A committed store draining from the SB: needs ownership (GetX).
    Write,
    /// An atomic's `load_lock` µ-op: needs ownership, and the core will lock
    /// the line in its AQ when the fill arrives (GetX).
    Rmw,
}

impl AccessKind {
    /// Whether this access requires exclusive ownership.
    pub const fn needs_exclusive(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::Rmw)
    }
}

/// Caller-supplied bookkeeping attached to a request and echoed in its fill.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReqMeta {
    /// Opaque request identifier, assigned by the core.
    pub req_id: u64,
    /// Program counter of the requesting instruction (drives the IP-stride
    /// prefetcher); `None` for hardware-generated requests.
    pub pc: Option<Pc>,
    /// Whether this is a hardware prefetch (no fill event is emitted).
    pub prefetch: bool,
    /// Access kind.
    pub kind: AccessKind,
}

/// Where a fill's data came from — the information the RW+Dir contention
/// detector keys on ("the sender of the cacheline is a remote private cache").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FillSource {
    /// Hit in the local L1D.
    L1,
    /// Hit in the local private L2.
    L2,
    /// Served by the home L3 bank.
    L3,
    /// Fetched from main memory.
    Memory,
    /// Transferred from another core's private cache.
    RemotePrivate,
}

/// An event the memory system reports to the core side.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemEvent {
    /// A request completed; the line is now present with sufficient
    /// permission.
    Fill {
        /// Requesting core.
        core: CoreId,
        /// Echo of [`ReqMeta::req_id`].
        req_id: u64,
        /// The line.
        line: LineAddr,
        /// Completion cycle.
        at: Cycle,
        /// When the miss request left the private hierarchy (equals `at`
        /// minus the hit latency for hits).
        issued_at: Cycle,
        /// Where the data came from.
        source: FillSource,
        /// Access kind of the original request.
        kind: AccessKind,
    },
    /// A far atomic completed at the home directory.
    FarDone {
        /// Requesting core.
        core: CoreId,
        /// The line operated on.
        line: LineAddr,
        /// Echo of the request id.
        req_id: u64,
        /// Completion (response-arrival) cycle.
        at: Cycle,
    },
    /// An external coherence request (invalidation or downgrade) reached this
    /// core for `line`. Emitted *when it arrives*, even if it then stalls
    /// against a locked line — this is what the ready-window detector snoops.
    ExternalObserved {
        /// The core receiving the external request.
        core: CoreId,
        /// The line being invalidated/downgraded.
        line: LineAddr,
        /// Arrival cycle.
        at: Cycle,
        /// Whether the request found the line locked and stalled.
        stalled: bool,
    },
}

/// Network-visible protocol messages.
///
/// Field meanings are uniform across variants: `req` is the requesting
/// core, `line` the cacheline concerned, `from` the sender.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Msg {
    /// Read request to the home directory.
    GetS { req: CoreId, line: LineAddr },
    /// Ownership request to the home directory.
    GetX { req: CoreId, line: LineAddr },
    /// Directory forwards a read to the current owner.
    FwdGetS { req: CoreId, line: LineAddr },
    /// Directory forwards an ownership request to the current owner.
    FwdGetX { req: CoreId, line: LineAddr },
    /// Directory invalidates a sharer (acks go back to the directory).
    Inv { line: LineAddr },
    /// Sharer acknowledges an invalidation.
    InvAck { from: CoreId, line: LineAddr },
    /// Data grant to a requester.
    Data {
        req: CoreId,
        line: LineAddr,
        /// Permission granted.
        excl: bool,
        /// True when a remote private cache supplied the line.
        from_private: bool,
    },
    /// Requester confirms receipt; unblocks the directory entry.
    Unblock { from: CoreId, line: LineAddr },
    /// Owner writes back / evicts a line.
    PutM { from: CoreId, line: LineAddr },
    /// Directory accepts the writeback.
    WbAck { line: LineAddr },
    /// Directory rejects a stale writeback (a forward raced past it).
    WbStale { line: LineAddr },
    /// A far atomic: the RMW executes at the home directory (§VII's
    /// near-vs-far design alternative), after all private copies are
    /// invalidated.
    AtomicFar {
        req: CoreId,
        line: LineAddr,
        rmw: RmwKind,
        req_id: u64,
    },
    /// The home directory performed a far atomic.
    FarDone {
        req: CoreId,
        line: LineAddr,
        req_id: u64,
    },
}

impl Msg {
    /// The line a message concerns.
    pub fn line(&self) -> LineAddr {
        match *self {
            Msg::GetS { line, .. }
            | Msg::GetX { line, .. }
            | Msg::FwdGetS { line, .. }
            | Msg::FwdGetX { line, .. }
            | Msg::Inv { line }
            | Msg::InvAck { line, .. }
            | Msg::Data { line, .. }
            | Msg::Unblock { line, .. }
            | Msg::PutM { line, .. }
            | Msg::WbAck { line }
            | Msg::WbStale { line }
            | Msg::AtomicFar { line, .. }
            | Msg::FarDone { line, .. } => line,
        }
    }

    /// Whether the message carries a full cache line (data-class on the NoC).
    pub const fn carries_data(&self) -> bool {
        matches!(self, Msg::Data { .. } | Msg::PutM { .. })
    }
}

/// Delivery endpoint of a message.
///
/// Ordered and hashable so it can key transport channels: `Core(i)` and
/// `Dir(i)` share a mesh node but are distinct endpoints, so channel
/// identity must be endpoint-based, not node-based.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Endpoint {
    /// A core's private cache controller.
    Core(CoreId),
    /// The directory/L3 bank at a tile.
    Dir(usize),
}

/// One unit of traffic on the memory system's internal network.
///
/// Fault-free and delay-only configurations carry every protocol message as
/// a bare [`Frame::Msg`], preserving the pre-transport behaviour bit for
/// bit. Lossy chaos instead wraps protocol messages into sequenced,
/// checksummed [`Frame::Seq`] frames and adds transport-level
/// acknowledgements, so drops, duplicates, and corruption can be recovered
/// from (retransmission) or rejected (dedup, NACK) at delivery time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Frame {
    /// An unsequenced protocol message (reliable-network fast path).
    Msg {
        /// Delivery endpoint.
        to: Endpoint,
        /// The protocol message.
        msg: Msg,
    },
    /// A sequenced, checksummed protocol message on channel `(src, dst)`.
    Seq {
        /// Sending endpoint (channel key and ACK return address).
        src: Endpoint,
        /// Delivery endpoint.
        dst: Endpoint,
        /// Per-channel sequence number, assigned in send order.
        seq: u64,
        /// The protocol message.
        msg: Msg,
        /// [`msg_checksum`] of `msg` as sent (mismatches on arrival mean
        /// in-flight corruption).
        check: u64,
    },
    /// Delivery acknowledgement for `(src, dst, seq)`, travelling *to*
    /// `src`. Retires the sender's in-flight entry.
    Ack {
        /// Original sender (the frame's destination).
        src: Endpoint,
        /// Original receiver (the frame's origin).
        dst: Endpoint,
        /// Acknowledged sequence number.
        seq: u64,
    },
    /// Corruption report for `(src, dst, seq)`, travelling *to* `src`:
    /// requests an immediate retransmission without waiting for the timeout.
    Nack {
        /// Original sender (the frame's destination).
        src: Endpoint,
        /// Original receiver (the frame's origin).
        dst: Endpoint,
        /// Sequence number whose payload failed its checksum.
        seq: u64,
    },
}

/// Checksum a sequenced frame carries alongside its payload: FNV-1a over
/// the message's canonical encoding.
pub fn msg_checksum(msg: &Msg) -> u64 {
    let mut w = Writer::new();
    msg.encode(&mut w);
    row_common::persist::fnv1a(w.bytes())
}

impl Codec for AccessKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
            AccessKind::Rmw => 2,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.get_u8()? {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            2 => AccessKind::Rmw,
            tag => {
                return Err(PersistError::BadTag {
                    what: "AccessKind",
                    tag,
                })
            }
        })
    }
}

impl Codec for ReqMeta {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.req_id);
        self.pc.encode(w);
        w.put_bool(self.prefetch);
        self.kind.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(ReqMeta {
            req_id: r.get_u64()?,
            pc: Option::<Pc>::decode(r)?,
            prefetch: r.get_bool()?,
            kind: AccessKind::decode(r)?,
        })
    }
}

impl Codec for FillSource {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            FillSource::L1 => 0,
            FillSource::L2 => 1,
            FillSource::L3 => 2,
            FillSource::Memory => 3,
            FillSource::RemotePrivate => 4,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.get_u8()? {
            0 => FillSource::L1,
            1 => FillSource::L2,
            2 => FillSource::L3,
            3 => FillSource::Memory,
            4 => FillSource::RemotePrivate,
            tag => {
                return Err(PersistError::BadTag {
                    what: "FillSource",
                    tag,
                })
            }
        })
    }
}

impl Codec for MemEvent {
    fn encode(&self, w: &mut Writer) {
        match *self {
            MemEvent::Fill {
                core,
                req_id,
                line,
                at,
                issued_at,
                source,
                kind,
            } => {
                w.put_u8(0);
                core.encode(w);
                w.put_u64(req_id);
                line.encode(w);
                at.encode(w);
                issued_at.encode(w);
                source.encode(w);
                kind.encode(w);
            }
            MemEvent::FarDone {
                core,
                line,
                req_id,
                at,
            } => {
                w.put_u8(1);
                core.encode(w);
                line.encode(w);
                w.put_u64(req_id);
                at.encode(w);
            }
            MemEvent::ExternalObserved {
                core,
                line,
                at,
                stalled,
            } => {
                w.put_u8(2);
                core.encode(w);
                line.encode(w);
                at.encode(w);
                w.put_bool(stalled);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.get_u8()? {
            0 => MemEvent::Fill {
                core: CoreId::decode(r)?,
                req_id: r.get_u64()?,
                line: LineAddr::decode(r)?,
                at: Cycle::decode(r)?,
                issued_at: Cycle::decode(r)?,
                source: FillSource::decode(r)?,
                kind: AccessKind::decode(r)?,
            },
            1 => MemEvent::FarDone {
                core: CoreId::decode(r)?,
                line: LineAddr::decode(r)?,
                req_id: r.get_u64()?,
                at: Cycle::decode(r)?,
            },
            2 => MemEvent::ExternalObserved {
                core: CoreId::decode(r)?,
                line: LineAddr::decode(r)?,
                at: Cycle::decode(r)?,
                stalled: r.get_bool()?,
            },
            tag => {
                return Err(PersistError::BadTag {
                    what: "MemEvent",
                    tag,
                })
            }
        })
    }
}

impl Codec for Msg {
    fn encode(&self, w: &mut Writer) {
        match *self {
            Msg::GetS { req, line } => {
                w.put_u8(0);
                req.encode(w);
                line.encode(w);
            }
            Msg::GetX { req, line } => {
                w.put_u8(1);
                req.encode(w);
                line.encode(w);
            }
            Msg::FwdGetS { req, line } => {
                w.put_u8(2);
                req.encode(w);
                line.encode(w);
            }
            Msg::FwdGetX { req, line } => {
                w.put_u8(3);
                req.encode(w);
                line.encode(w);
            }
            Msg::Inv { line } => {
                w.put_u8(4);
                line.encode(w);
            }
            Msg::InvAck { from, line } => {
                w.put_u8(5);
                from.encode(w);
                line.encode(w);
            }
            Msg::Data {
                req,
                line,
                excl,
                from_private,
            } => {
                w.put_u8(6);
                req.encode(w);
                line.encode(w);
                w.put_bool(excl);
                w.put_bool(from_private);
            }
            Msg::Unblock { from, line } => {
                w.put_u8(7);
                from.encode(w);
                line.encode(w);
            }
            Msg::PutM { from, line } => {
                w.put_u8(8);
                from.encode(w);
                line.encode(w);
            }
            Msg::WbAck { line } => {
                w.put_u8(9);
                line.encode(w);
            }
            Msg::WbStale { line } => {
                w.put_u8(10);
                line.encode(w);
            }
            Msg::AtomicFar {
                req,
                line,
                rmw,
                req_id,
            } => {
                w.put_u8(11);
                req.encode(w);
                line.encode(w);
                rmw.encode(w);
                w.put_u64(req_id);
            }
            Msg::FarDone { req, line, req_id } => {
                w.put_u8(12);
                req.encode(w);
                line.encode(w);
                w.put_u64(req_id);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.get_u8()? {
            0 => Msg::GetS {
                req: CoreId::decode(r)?,
                line: LineAddr::decode(r)?,
            },
            1 => Msg::GetX {
                req: CoreId::decode(r)?,
                line: LineAddr::decode(r)?,
            },
            2 => Msg::FwdGetS {
                req: CoreId::decode(r)?,
                line: LineAddr::decode(r)?,
            },
            3 => Msg::FwdGetX {
                req: CoreId::decode(r)?,
                line: LineAddr::decode(r)?,
            },
            4 => Msg::Inv {
                line: LineAddr::decode(r)?,
            },
            5 => Msg::InvAck {
                from: CoreId::decode(r)?,
                line: LineAddr::decode(r)?,
            },
            6 => Msg::Data {
                req: CoreId::decode(r)?,
                line: LineAddr::decode(r)?,
                excl: r.get_bool()?,
                from_private: r.get_bool()?,
            },
            7 => Msg::Unblock {
                from: CoreId::decode(r)?,
                line: LineAddr::decode(r)?,
            },
            8 => Msg::PutM {
                from: CoreId::decode(r)?,
                line: LineAddr::decode(r)?,
            },
            9 => Msg::WbAck {
                line: LineAddr::decode(r)?,
            },
            10 => Msg::WbStale {
                line: LineAddr::decode(r)?,
            },
            11 => Msg::AtomicFar {
                req: CoreId::decode(r)?,
                line: LineAddr::decode(r)?,
                rmw: RmwKind::decode(r)?,
                req_id: r.get_u64()?,
            },
            12 => Msg::FarDone {
                req: CoreId::decode(r)?,
                line: LineAddr::decode(r)?,
                req_id: r.get_u64()?,
            },
            tag => return Err(PersistError::BadTag { what: "Msg", tag }),
        })
    }
}

impl Codec for Endpoint {
    fn encode(&self, w: &mut Writer) {
        match *self {
            Endpoint::Core(c) => {
                w.put_u8(0);
                c.encode(w);
            }
            Endpoint::Dir(t) => {
                w.put_u8(1);
                t.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.get_u8()? {
            0 => Endpoint::Core(CoreId::decode(r)?),
            1 => Endpoint::Dir(usize::decode(r)?),
            tag => {
                return Err(PersistError::BadTag {
                    what: "Endpoint",
                    tag,
                })
            }
        })
    }
}

impl Codec for Frame {
    fn encode(&self, w: &mut Writer) {
        match *self {
            Frame::Msg { to, msg } => {
                w.put_u8(0);
                to.encode(w);
                msg.encode(w);
            }
            Frame::Seq {
                src,
                dst,
                seq,
                msg,
                check,
            } => {
                w.put_u8(1);
                src.encode(w);
                dst.encode(w);
                w.put_u64(seq);
                msg.encode(w);
                w.put_u64(check);
            }
            Frame::Ack { src, dst, seq } => {
                w.put_u8(2);
                src.encode(w);
                dst.encode(w);
                w.put_u64(seq);
            }
            Frame::Nack { src, dst, seq } => {
                w.put_u8(3);
                src.encode(w);
                dst.encode(w);
                w.put_u64(seq);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.get_u8()? {
            0 => Frame::Msg {
                to: Endpoint::decode(r)?,
                msg: Msg::decode(r)?,
            },
            1 => Frame::Seq {
                src: Endpoint::decode(r)?,
                dst: Endpoint::decode(r)?,
                seq: r.get_u64()?,
                msg: Msg::decode(r)?,
                check: r.get_u64()?,
            },
            2 => Frame::Ack {
                src: Endpoint::decode(r)?,
                dst: Endpoint::decode(r)?,
                seq: r.get_u64()?,
            },
            3 => Frame::Nack {
                src: Endpoint::decode(r)?,
                dst: Endpoint::decode(r)?,
                seq: r.get_u64()?,
            },
            tag => return Err(PersistError::BadTag { what: "Frame", tag }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_requirement() {
        assert!(!AccessKind::Read.needs_exclusive());
        assert!(AccessKind::Write.needs_exclusive());
        assert!(AccessKind::Rmw.needs_exclusive());
    }

    #[test]
    fn msg_line_extraction() {
        let l = LineAddr::new(42);
        let msgs = [
            Msg::GetS {
                req: CoreId::new(0),
                line: l,
            },
            Msg::Inv { line: l },
            Msg::Data {
                req: CoreId::new(1),
                line: l,
                excl: true,
                from_private: false,
            },
            Msg::WbAck { line: l },
        ];
        for m in msgs {
            assert_eq!(m.line(), l);
        }
    }

    #[test]
    fn data_class_flags() {
        let l = LineAddr::new(1);
        assert!(Msg::Data {
            req: CoreId::new(0),
            line: l,
            excl: false,
            from_private: false
        }
        .carries_data());
        assert!(Msg::PutM {
            from: CoreId::new(0),
            line: l
        }
        .carries_data());
        assert!(!Msg::Inv { line: l }.carries_data());
    }

    #[test]
    fn checksum_distinguishes_messages() {
        let a = Msg::GetS {
            req: CoreId::new(0),
            line: LineAddr::new(1),
        };
        let b = Msg::GetS {
            req: CoreId::new(0),
            line: LineAddr::new(2),
        };
        assert_eq!(msg_checksum(&a), msg_checksum(&a));
        assert_ne!(msg_checksum(&a), msg_checksum(&b));
    }

    #[test]
    fn frame_roundtrips() {
        let msg = Msg::Data {
            req: CoreId::new(3),
            line: LineAddr::new(99),
            excl: true,
            from_private: true,
        };
        let frames = [
            Frame::Msg {
                to: Endpoint::Dir(2),
                msg,
            },
            Frame::Seq {
                src: Endpoint::Core(CoreId::new(3)),
                dst: Endpoint::Dir(2),
                seq: 17,
                msg,
                check: msg_checksum(&msg),
            },
            Frame::Ack {
                src: Endpoint::Dir(2),
                dst: Endpoint::Core(CoreId::new(3)),
                seq: 17,
            },
            Frame::Nack {
                src: Endpoint::Dir(2),
                dst: Endpoint::Core(CoreId::new(3)),
                seq: 18,
            },
        ];
        for f in frames {
            assert_eq!(row_common::persist::roundtrip(&f).unwrap(), f);
        }
    }
}
