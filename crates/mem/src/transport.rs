//! Recoverable message transport between the memory system and the mesh.
//!
//! Delay-only chaos keeps the historical behaviour: each delivery gets a
//! seeded bounded jitter, with per-(src,dst)-node order preserved. Any
//! *lossy* fault rate ([`FaultConfig::lossy`]) switches every protocol
//! message onto a sequenced channel per `(source endpoint, destination
//! endpoint)` pair with the classic reliable-delivery toolkit:
//!
//! * **Sequence numbers + receive-side dedup/reordering.** The receiver
//!   delivers each channel's messages in send order, exactly once; early
//!   arrivals are buffered, repeats are dropped and re-ACKed.
//! * **ACKs and timeout retransmission with bounded exponential backoff.**
//!   An un-ACKed message is retransmitted after a timeout that doubles per
//!   attempt up to a cap; a bounded attempt budget turns a permanently lost
//!   message into a structured [`ProtocolError::TransportGiveUp`] instead of
//!   a silent deadlock.
//! * **Payload checksums + NACK.** A corrupted payload is detected at the
//!   receiver, discarded, and NACKed for an immediate retransmission.
//!
//! Faults (drop/duplicate/corrupt draws) apply to every wire transmission,
//! retransmissions included, from the same [`SplitMix64`] stream as the
//! delay jitter — so a chaos seed fully determines the fault schedule and
//! equal seeds reproduce identical retry counts. Channels are keyed by
//! *endpoint* pairs, not mesh nodes: `Core(i)` and `Dir(i)` share a node but
//! must not share sequence-number spaces.
//!
//! All state (RNG, channels, in-flight copies, timers, counters) implements
//! [`Codec`], so checkpoint/restore stays bit-exact mid-retry.

use std::collections::{BTreeMap, HashMap};

use row_common::config::{FaultConfig, PerturbConfig};
use row_common::coverage::{self, TransportEvent};
use row_common::persist::{Codec, PersistError, Reader, Writer};
use row_common::rng::SplitMix64;
use row_common::sched::EventQueue;
use row_common::stats::TransportStats;
use row_common::Cycle;
use row_noc::{Mesh, MsgClass, NodeId};

use crate::error::ProtocolError;
use crate::msg::{msg_checksum, Endpoint, Frame, Msg};

/// Fault probabilities are expressed in parts per million of this scale.
const PPM_SCALE: u64 = 1_000_000;
/// First retransmission timeout, in cycles. Comfortably above the worst
/// uncongested round trip (mesh traversal + jitter bound + ACK return).
const TIMEOUT_BASE: u64 = 1_024;
/// Backoff cap: timeouts double per attempt but never exceed this.
const TIMEOUT_CAP: u64 = 16_384;
/// Retransmission budget per message before the transport gives up.
const MAX_ATTEMPTS: u32 = 16;
/// XOR mask the fault injector applies to a corrupted frame's checksum
/// (corrupting the checksum is indistinguishable from corrupting the
/// payload, and keeps the in-memory `Msg` well-formed).
const CORRUPT_MASK: u64 = 0xbad0_c0de_dead_beef;

/// A transport channel: ordered, sequenced traffic from one endpoint to
/// another.
type ChanId = (Endpoint, Endpoint);

/// The mesh node an endpoint lives on. `Core(i)` and `Dir(i)` share node
/// `i` (each tile hosts a core and an L3/directory bank).
pub(crate) fn node_of(e: Endpoint) -> NodeId {
    match e {
        Endpoint::Core(c) => NodeId::new(c.index() as u16),
        Endpoint::Dir(t) => NodeId::new(t as u16),
    }
}

/// Sender-side copy of an un-ACKed message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct InFlight {
    msg: Msg,
    first_sent: Cycle,
    attempts: u32,
}

/// Receiver-side channel state: next expected sequence number plus a
/// reorder buffer for early arrivals.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct RxState {
    next_expected: u64,
    buffered: BTreeMap<u64, Msg>,
}

/// Diagnostic snapshot of one un-ACKed transport transaction, surfaced in
/// stall reports so a watchdog firing distinguishes "a message is lost and
/// being retried" from "the protocol itself is livelocked".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InflightProbe {
    /// Sending endpoint.
    pub src: Endpoint,
    /// Destination endpoint.
    pub dst: Endpoint,
    /// Channel sequence number.
    pub seq: u64,
    /// Cycle of the first transmission (age = now − this).
    pub first_sent: Cycle,
    /// Transmissions so far (1 = original send, not yet retried).
    pub attempts: u32,
}

/// Fault injection plus (when lossy) reliable delivery. See the module docs.
#[derive(Clone, Debug)]
pub(crate) struct Transport {
    cfg: FaultConfig,
    /// Targeted schedule-perturbation bursts (the fuzzer's genome half).
    /// Config-derived, not part of the persisted state: restore re-injects
    /// it from the owning system's `SystemConfig`.
    perturb_cfg: Option<PerturbConfig>,
    rng: SplitMix64,
    /// Last perturbed delivery cycle per (src, dst) node pair — preserves
    /// the mesh's per-pair ordering guarantee under jitter.
    last: HashMap<(usize, usize), Cycle>,
    /// Next sequence number to assign, per channel.
    next_seq: BTreeMap<ChanId, u64>,
    /// Un-ACKed messages, per channel, by sequence number.
    inflight: BTreeMap<ChanId, BTreeMap<u64, InFlight>>,
    /// Receiver-side state, per channel.
    rx: BTreeMap<ChanId, RxState>,
    /// Pending retransmission timers: (channel, seq, attempt number the
    /// timer was armed for). Stale timers (message ACKed, or superseded by
    /// a NACK retransmission) are recognized and skipped on expiry.
    timeouts: EventQueue<(ChanId, u64, u32)>,
    stats: TransportStats,
}

impl Transport {
    pub fn new(cfg: FaultConfig) -> Self {
        Transport {
            cfg,
            perturb_cfg: None,
            rng: SplitMix64::new(cfg.seed),
            last: HashMap::new(),
            next_seq: BTreeMap::new(),
            inflight: BTreeMap::new(),
            rx: BTreeMap::new(),
            timeouts: EventQueue::new(),
            stats: TransportStats::default(),
        }
    }

    /// A fault-free transport used when only schedule perturbation is
    /// requested: zero jitter, zero loss, bursts only.
    pub fn inert() -> Self {
        Transport::new(FaultConfig {
            seed: 0,
            max_extra_latency: 0,
            drop_ppm: 0,
            dup_ppm: 0,
            corrupt_ppm: 0,
        })
    }

    /// Installs (or clears) the schedule-perturbation burst table. Called at
    /// construction and again after a checkpoint restore, since the table is
    /// configuration, not state.
    pub fn set_perturb(&mut self, p: Option<PerturbConfig>) {
        self.perturb_cfg = p;
    }

    /// Whether the lossy machinery (sequencing, ACKs, retransmission) is
    /// engaged. When false the transport is a pure delay jitterer.
    pub fn lossy(&self) -> bool {
        self.cfg.lossy()
    }

    pub fn stats(&self) -> &TransportStats {
        &self.stats
    }

    /// No un-ACKed messages and no buffered early arrivals anywhere.
    pub fn idle(&self) -> bool {
        self.inflight.is_empty() && self.rx.values().all(|r| r.buffered.is_empty())
    }

    /// The oldest un-ACKed transaction, if any (ties broken by channel id).
    pub fn oldest_inflight(&self) -> Option<InflightProbe> {
        self.inflight
            .iter()
            .flat_map(|(chan, msgs)| {
                msgs.iter().map(move |(&seq, inf)| InflightProbe {
                    src: chan.0,
                    dst: chan.1,
                    seq,
                    first_sent: inf.first_sent,
                    attempts: inf.attempts,
                })
            })
            .min_by_key(|p| p.first_sent)
    }

    fn draw(&mut self, ppm: u32) -> bool {
        ppm > 0 && self.rng.below(PPM_SCALE) < u64::from(ppm)
    }

    /// Perturbs a delivery cycle with bounded jitter plus any targeted
    /// delay-burst hits, keeping same-node-pair messages in order. With no
    /// burst table this is the delay-only chaos behaviour, unchanged; burst
    /// delays land *before* the per-pair ordering floor, so every perturbed
    /// schedule remains one the mesh could legally produce.
    pub fn perturb(&mut self, src: NodeId, dst: NodeId, deliver: Cycle) -> Cycle {
        let jitter = if self.cfg.max_extra_latency == 0 {
            0
        } else {
            self.rng.below(self.cfg.max_extra_latency + 1)
        };
        let key = (src.index(), dst.index());
        let mut at = deliver + jitter;
        if let Some(p) = &self.perturb_cfg {
            let extra = p.extra_delay(deliver.raw(), key.0, key.1);
            if extra > 0 {
                coverage::record(coverage::transport_slot(TransportEvent::BurstDelay));
                at += extra;
            }
        }
        if let Some(&prev) = self.last.get(&key) {
            if at <= prev {
                at = prev + 1;
            }
        }
        self.last.insert(key, at);
        at
    }

    fn timeout_after(attempt: u32) -> u64 {
        (TIMEOUT_BASE << attempt.saturating_sub(1).min(31)).min(TIMEOUT_CAP)
    }

    /// Submits one logical message for sequenced (lossy-path) delivery.
    /// Frames to enqueue on the network are appended to `out`.
    pub fn send(
        &mut self,
        from: Endpoint,
        to: Endpoint,
        msg: Msg,
        deliver: Cycle,
        now: Cycle,
        out: &mut Vec<(Cycle, Frame)>,
    ) {
        let chan = (from, to);
        let seq = {
            let s = self.next_seq.entry(chan).or_insert(0);
            let v = *s;
            *s += 1;
            v
        };
        self.stats.sent += 1;
        coverage::record(coverage::transport_slot(TransportEvent::Send));
        self.inflight.entry(chan).or_default().insert(
            seq,
            InFlight {
                msg,
                first_sent: now,
                attempts: 1,
            },
        );
        self.timeouts
            .push(now + Self::timeout_after(1), (chan, seq, 1));
        self.transmit(chan, seq, msg, deliver, out);
    }

    /// One wire transmission of `(chan, seq)`, through the fault injector.
    /// Draw order is fixed (drop, duplicate, corrupt, jitter per copy) so a
    /// seed fully determines the fault schedule.
    fn transmit(
        &mut self,
        chan: ChanId,
        seq: u64,
        msg: Msg,
        deliver: Cycle,
        out: &mut Vec<(Cycle, Frame)>,
    ) {
        let (src, dst) = (node_of(chan.0), node_of(chan.1));
        let dropped = self.draw(self.cfg.drop_ppm);
        let duplicated = self.draw(self.cfg.dup_ppm);
        let corrupted = self.draw(self.cfg.corrupt_ppm);
        let mut check = msg_checksum(&msg);
        if corrupted {
            self.stats.corrupts_injected += 1;
            check ^= CORRUPT_MASK;
        }
        if dropped {
            coverage::record(coverage::transport_slot(TransportEvent::Drop));
        }
        if duplicated {
            coverage::record(coverage::transport_slot(TransportEvent::Dup));
        }
        let frame = Frame::Seq {
            src: chan.0,
            dst: chan.1,
            seq,
            msg,
            check,
        };
        let at = self.perturb(src, dst, deliver);
        if dropped {
            // The retransmission timer armed by the caller recovers this.
            self.stats.drops_injected += 1;
        } else {
            out.push((at, frame));
        }
        if duplicated {
            self.stats.dups_injected += 1;
            let at2 = self.perturb(src, dst, deliver);
            out.push((at2, frame));
        }
    }

    /// ACK/NACK transmission time: control-class on the mesh, jittered, but
    /// never dropped/duplicated/corrupted — transport control traffic rides
    /// the reliable substrate so recovery itself terminates. (A lost ACK
    /// would anyway only cause a retransmission the receiver dedups.)
    fn control_at(&mut self, from: Endpoint, to: Endpoint, now: Cycle, mesh: &mut Mesh) -> Cycle {
        let (src, dst) = (node_of(from), node_of(to));
        let deliver = mesh.send(src, dst, MsgClass::Control, now);
        self.perturb(src, dst, deliver)
    }

    /// Handles an arriving sequenced frame. In-order deliverables (the
    /// frame's message and/or buffered successors) are appended to
    /// `deliver`; the ACK/NACK response is appended to `out`.
    #[allow(clippy::too_many_arguments)]
    pub fn receive(
        &mut self,
        src_ep: Endpoint,
        dst_ep: Endpoint,
        seq: u64,
        msg: Msg,
        check: u64,
        now: Cycle,
        mesh: &mut Mesh,
        deliver: &mut Vec<(Endpoint, Msg)>,
        out: &mut Vec<(Cycle, Frame)>,
    ) {
        let chan = (src_ep, dst_ep);
        if msg_checksum(&msg) != check {
            self.stats.corrupt_dropped += 1;
            coverage::record(coverage::transport_slot(TransportEvent::CorruptNack));
            let at = self.control_at(dst_ep, src_ep, now, mesh);
            out.push((
                at,
                Frame::Nack {
                    src: src_ep,
                    dst: dst_ep,
                    seq,
                },
            ));
            return;
        }
        let rx = self.rx.entry(chan).or_default();
        if seq < rx.next_expected || rx.buffered.contains_key(&seq) {
            self.stats.dup_dropped += 1;
            coverage::record(coverage::transport_slot(TransportEvent::Dedup));
        } else if seq == rx.next_expected {
            rx.next_expected += 1;
            deliver.push((dst_ep, msg));
            self.stats.delivered += 1;
            coverage::record(coverage::transport_slot(TransportEvent::Deliver));
            while let Some(m) = rx.buffered.remove(&rx.next_expected) {
                rx.next_expected += 1;
                deliver.push((dst_ep, m));
                self.stats.delivered += 1;
                coverage::record(coverage::transport_slot(TransportEvent::Deliver));
            }
        } else {
            rx.buffered.insert(seq, msg);
            coverage::record(coverage::transport_slot(TransportEvent::ReorderBuffered));
        }
        // ACK every structurally intact arrival — re-ACKing a duplicate
        // covers the lost-ACK case.
        self.stats.acks_sent += 1;
        let at = self.control_at(dst_ep, src_ep, now, mesh);
        out.push((
            at,
            Frame::Ack {
                src: src_ep,
                dst: dst_ep,
                seq,
            },
        ));
    }

    /// Retires an in-flight message on ACK. Stale ACKs (duplicates, or for
    /// already-retired messages) are ignored.
    pub fn on_ack(&mut self, chan: ChanId, seq: u64) {
        if let Some(msgs) = self.inflight.get_mut(&chan) {
            if msgs.remove(&seq).is_some() {
                coverage::record(coverage::transport_slot(TransportEvent::Ack));
            }
            if msgs.is_empty() {
                self.inflight.remove(&chan);
            }
        }
    }

    /// Retransmits immediately in response to a corruption NACK.
    pub fn on_nack(
        &mut self,
        chan: ChanId,
        seq: u64,
        now: Cycle,
        mesh: &mut Mesh,
        out: &mut Vec<(Cycle, Frame)>,
    ) {
        let Some(inf) = self.inflight.get_mut(&chan).and_then(|m| m.get_mut(&seq)) else {
            return; // Already ACKed (e.g. a duplicate copy survived).
        };
        inf.attempts += 1;
        let (msg, attempts) = (inf.msg, inf.attempts);
        self.stats.nack_retransmits += 1;
        coverage::record(coverage::transport_slot(TransportEvent::Nack));
        // Re-arm the timer for the new attempt; the old timer goes stale.
        self.timeouts
            .push(now + Self::timeout_after(attempts), (chan, seq, attempts));
        let class = if msg.carries_data() {
            MsgClass::Data
        } else {
            MsgClass::Control
        };
        let deliver = mesh.send(node_of(chan.0), node_of(chan.1), class, now);
        self.transmit(chan, seq, msg, deliver, out);
    }

    /// Fires due retransmission timers: stale timers are skipped; live ones
    /// either retransmit with doubled timeout or, past the attempt budget,
    /// give the message up with a structured error.
    pub fn process_timeouts(
        &mut self,
        now: Cycle,
        mesh: &mut Mesh,
        out: &mut Vec<(Cycle, Frame)>,
    ) -> Result<(), ProtocolError> {
        let mut first_err = Ok(());
        while let Some((chan, seq, armed_for)) = self.timeouts.pop_ready(now) {
            let Some(inf) = self.inflight.get(&chan).and_then(|m| m.get(&seq)) else {
                continue; // ACKed since the timer was armed.
            };
            if inf.attempts != armed_for {
                continue; // Superseded by a NACK retransmission's timer.
            }
            let msg = inf.msg;
            if inf.attempts >= MAX_ATTEMPTS {
                self.stats.giveups += 1;
                coverage::record(coverage::transport_slot(TransportEvent::GiveUp));
                self.on_ack(chan, seq); // Drop it so the error fires once.
                let e = ProtocolError::TransportGiveUp {
                    src: chan.0,
                    dst: chan.1,
                    seq,
                    attempts: armed_for,
                    msg,
                };
                if first_err.is_ok() {
                    first_err = Err(e);
                }
                continue;
            }
            let attempts = armed_for + 1;
            if let Some(inf) = self.inflight.get_mut(&chan).and_then(|m| m.get_mut(&seq)) {
                inf.attempts = attempts;
            }
            self.stats.retries += 1;
            coverage::record(coverage::transport_slot(TransportEvent::Retransmit));
            self.timeouts
                .push(now + Self::timeout_after(attempts), (chan, seq, attempts));
            let class = if msg.carries_data() {
                MsgClass::Data
            } else {
                MsgClass::Control
            };
            let deliver = mesh.send(node_of(chan.0), node_of(chan.1), class, now);
            self.transmit(chan, seq, msg, deliver, out);
        }
        first_err
    }
}

impl Codec for InFlight {
    fn encode(&self, w: &mut Writer) {
        self.msg.encode(w);
        self.first_sent.encode(w);
        w.put_u32(self.attempts);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(InFlight {
            msg: Msg::decode(r)?,
            first_sent: Cycle::decode(r)?,
            attempts: r.get_u32()?,
        })
    }
}

impl Codec for RxState {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.next_expected);
        self.buffered.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(RxState {
            next_expected: r.get_u64()?,
            buffered: BTreeMap::decode(r)?,
        })
    }
}

impl Codec for Transport {
    fn encode(&self, w: &mut Writer) {
        // The config is re-derivable from `SystemConfig` but is encoded so
        // restore can cross-check presence/shape via the caller.
        w.put_u64(self.cfg.seed);
        w.put_u64(self.cfg.max_extra_latency);
        w.put_u32(self.cfg.drop_ppm);
        w.put_u32(self.cfg.dup_ppm);
        w.put_u32(self.cfg.corrupt_ppm);
        self.rng.encode(w);
        self.last.encode(w);
        self.next_seq.encode(w);
        self.inflight.encode(w);
        self.rx.encode(w);
        self.timeouts.encode(w);
        self.stats.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let cfg = FaultConfig {
            seed: r.get_u64()?,
            max_extra_latency: r.get_u64()?,
            drop_ppm: r.get_u32()?,
            dup_ppm: r.get_u32()?,
            corrupt_ppm: r.get_u32()?,
        };
        Ok(Transport {
            cfg,
            // Config-derived; the owning system re-injects after restore.
            perturb_cfg: None,
            rng: SplitMix64::decode(r)?,
            last: HashMap::decode(r)?,
            next_seq: BTreeMap::decode(r)?,
            inflight: BTreeMap::decode(r)?,
            rx: BTreeMap::decode(r)?,
            timeouts: EventQueue::decode(r)?,
            stats: TransportStats::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use row_common::config::NocConfig;
    use row_common::ids::{CoreId, LineAddr};
    use row_common::persist::roundtrip;

    fn lossy_cfg() -> FaultConfig {
        FaultConfig {
            seed: 7,
            max_extra_latency: 10,
            drop_ppm: 0,
            dup_ppm: 0,
            corrupt_ppm: 0,
        }
    }

    fn mesh() -> Mesh {
        Mesh::new(NocConfig::mesh_8x4(), 4)
    }

    fn msg(n: u64) -> Msg {
        Msg::GetS {
            req: CoreId::new(0),
            line: LineAddr::new(n),
        }
    }

    const CH: ChanId = (Endpoint::Core(CoreId::new(0)), Endpoint::Dir(1));

    #[test]
    fn in_order_delivery_and_ack() {
        let mut t = Transport::new(lossy_cfg());
        let mut mesh = mesh();
        let mut out = Vec::new();
        t.send(CH.0, CH.1, msg(1), Cycle::new(10), Cycle::new(5), &mut out);
        t.send(CH.0, CH.1, msg(2), Cycle::new(11), Cycle::new(6), &mut out);
        assert_eq!(out.len(), 2);
        assert!(!t.idle());

        let mut deliver = Vec::new();
        let mut resp = Vec::new();
        for (_, f) in out.clone() {
            let Frame::Seq {
                src,
                dst,
                seq,
                msg,
                check,
            } = f
            else {
                panic!("expected Seq frame")
            };
            t.receive(
                src,
                dst,
                seq,
                msg,
                check,
                Cycle::new(20),
                &mut mesh,
                &mut deliver,
                &mut resp,
            );
        }
        assert_eq!(deliver.len(), 2);
        assert_eq!(deliver[0].1, msg(1));
        assert_eq!(deliver[1].1, msg(2));
        for (_, f) in resp {
            let Frame::Ack { src, dst, seq } = f else {
                panic!("expected Ack")
            };
            t.on_ack((src, dst), seq);
        }
        assert!(t.idle(), "all messages ACKed");
        assert_eq!(t.stats().delivered, 2);
    }

    #[test]
    fn out_of_order_arrival_is_buffered_and_duplicates_dropped() {
        let mut t = Transport::new(lossy_cfg());
        let mut mesh = mesh();
        let mut out = Vec::new();
        t.send(CH.0, CH.1, msg(1), Cycle::new(10), Cycle::new(5), &mut out);
        t.send(CH.0, CH.1, msg(2), Cycle::new(11), Cycle::new(6), &mut out);

        let frames: Vec<Frame> = out.iter().map(|&(_, f)| f).collect();
        let mut deliver = Vec::new();
        let mut resp = Vec::new();
        // Deliver seq 1 first: buffered, not delivered.
        let Frame::Seq {
            src,
            dst,
            seq,
            msg: m,
            check,
        } = frames[1]
        else {
            panic!()
        };
        t.receive(
            src,
            dst,
            seq,
            m,
            check,
            Cycle::new(20),
            &mut mesh,
            &mut deliver,
            &mut resp,
        );
        assert!(deliver.is_empty(), "early arrival must wait for seq 0");
        // A duplicate of the buffered frame is dropped.
        t.receive(
            src,
            dst,
            seq,
            m,
            check,
            Cycle::new(21),
            &mut mesh,
            &mut deliver,
            &mut resp,
        );
        assert_eq!(t.stats().dup_dropped, 1);
        // Seq 0 arrives: both deliver, in order.
        let Frame::Seq {
            src,
            dst,
            seq,
            msg: m,
            check,
        } = frames[0]
        else {
            panic!()
        };
        t.receive(
            src,
            dst,
            seq,
            m,
            check,
            Cycle::new(22),
            &mut mesh,
            &mut deliver,
            &mut resp,
        );
        assert_eq!(deliver.len(), 2);
        assert_eq!(deliver[0].1, msg(1));
        assert_eq!(deliver[1].1, msg(2));
        assert_eq!(t.stats().delivered, 2);
    }

    #[test]
    fn corrupt_frame_is_nacked_and_renack_retransmits() {
        let mut t = Transport::new(lossy_cfg());
        let mut mesh = mesh();
        let mut out = Vec::new();
        t.send(CH.0, CH.1, msg(1), Cycle::new(10), Cycle::new(5), &mut out);
        let Frame::Seq {
            src,
            dst,
            seq,
            msg: m,
            check,
        } = out[0].1
        else {
            panic!()
        };
        let mut deliver = Vec::new();
        let mut resp = Vec::new();
        t.receive(
            src,
            dst,
            seq,
            m,
            check ^ 1, // corrupted in flight
            Cycle::new(20),
            &mut mesh,
            &mut deliver,
            &mut resp,
        );
        assert!(deliver.is_empty());
        assert_eq!(t.stats().corrupt_dropped, 1);
        let Frame::Nack { src, dst, seq } = resp[0].1 else {
            panic!("expected Nack, got {:?}", resp[0].1)
        };
        let mut out2 = Vec::new();
        t.on_nack((src, dst), seq, Cycle::new(25), &mut mesh, &mut out2);
        assert_eq!(t.stats().nack_retransmits, 1);
        assert!(
            matches!(out2[0].1, Frame::Seq { seq: 0, .. }),
            "retransmission of seq 0"
        );
    }

    #[test]
    fn timeout_retransmits_with_backoff_then_gives_up() {
        let mut t = Transport::new(lossy_cfg());
        let mut mesh = mesh();
        let mut out = Vec::new();
        t.send(CH.0, CH.1, msg(1), Cycle::new(10), Cycle::ZERO, &mut out);
        let mut now = Cycle::ZERO;
        let mut retransmissions = 0;
        let gave_up = loop {
            now += TIMEOUT_CAP + 1;
            let mut o = Vec::new();
            match t.process_timeouts(now, &mut mesh, &mut o) {
                Ok(()) => retransmissions += o.len(),
                Err(ProtocolError::TransportGiveUp { attempts, .. }) => break attempts,
                Err(e) => panic!("unexpected error {e}"),
            }
            assert!(now.raw() < 100 * TIMEOUT_CAP, "give-up never fired");
        };
        assert_eq!(gave_up, MAX_ATTEMPTS);
        assert_eq!(retransmissions as u32, MAX_ATTEMPTS - 1);
        assert_eq!(t.stats().giveups, 1);
        assert!(t.idle(), "given-up message is dropped from in-flight");
    }

    #[test]
    fn backoff_schedule_is_bounded() {
        assert_eq!(Transport::timeout_after(1), TIMEOUT_BASE);
        assert_eq!(Transport::timeout_after(2), 2 * TIMEOUT_BASE);
        assert_eq!(Transport::timeout_after(5), TIMEOUT_CAP);
        assert_eq!(Transport::timeout_after(40), TIMEOUT_CAP);
    }

    #[test]
    fn state_roundtrips_mid_retry() {
        let mut t = Transport::new(FaultConfig {
            drop_ppm: 300_000,
            dup_ppm: 200_000,
            corrupt_ppm: 100_000,
            ..lossy_cfg()
        });
        let mut out = Vec::new();
        for i in 0..20 {
            t.send(
                CH.0,
                CH.1,
                msg(i),
                Cycle::new(10 + i),
                Cycle::new(i),
                &mut out,
            );
        }
        let mut mesh = mesh();
        let _ = t.process_timeouts(Cycle::new(5 * TIMEOUT_BASE), &mut mesh, &mut out);
        assert!(!t.idle());
        let back = roundtrip(&t).unwrap();
        assert_eq!(back.stats(), t.stats());
        assert_eq!(back.inflight, t.inflight);
        assert_eq!(back.next_seq, t.next_seq);
        assert_eq!(back.oldest_inflight(), t.oldest_inflight());
    }
}
