//! The full memory system: private caches + directory banks + mesh.
//!
//! [`MemorySystem`] owns one [`PrivateCache`] per core, one [`DirBank`] per
//! tile, the [`Mesh`], a global event wheel for in-flight messages, and the
//! *functional* word store (real 64-bit values per 8-byte word, so atomics
//! truly read-modify-write and integration tests can assert linearizable
//! outcomes).
//!
//! The core-side contract:
//!
//! 1. Call [`MemorySystem::access`] for loads, SB writes, and atomic
//!    `load_lock`s; completions arrive as [`MemEvent::Fill`]s from
//!    [`MemorySystem::tick`] (hits included, with their hit latency).
//! 2. On an `Rmw` fill, the core locks the line with [`MemorySystem::lock`]
//!    before acting on it and unlocks with [`MemorySystem::unlock`] when the
//!    `store_unlock` writes. External requests targeting a locked line stall
//!    inside the private controller until the unlock.
//! 3. [`MemEvent::ExternalObserved`] fires whenever an invalidation or
//!    downgrade reaches a core — the hook for RoW's ready-window detector and
//!    for LQ squashing.

use std::collections::HashMap;

use row_common::config::{FaultConfig, SystemConfig};
use row_common::ids::{Addr, CoreId, LineAddr};
use row_common::persist::{Codec, Persist, PersistError, Reader, Writer};
use row_common::rng::SplitMix64;
use row_common::sched::EventQueue;
use row_common::stats::RunningMean;
use row_common::Cycle;

use crate::directory::{BlockedEntrySnapshot, DirBank, DirState};
use crate::error::ProtocolError;
use crate::msg::{Endpoint, MemEvent, Msg, ReqMeta};
use crate::private::{AccessOutcome, CacheAction, PrivState, PrivateCache};
use row_noc::{Mesh, MsgClass, NodeId};

fn home_of(line: LineAddr, tiles: usize) -> usize {
    (line.raw() as usize) % tiles
}

/// Aggregate memory-system statistics (drives Fig. 11).
#[derive(Clone, Debug, Default)]
pub struct MemStats {
    /// Mean L1D miss latency per core (demand requests, access → fill).
    pub miss_latency: Vec<RunningMean>,
    /// Mean miss latency across all cores.
    pub miss_latency_all: RunningMean,
    /// Fills served by a remote private cache.
    pub remote_fills: u64,
    /// Fills served by L3 or memory.
    pub home_fills: u64,
}

/// Deterministic delivery-perturbation state (chaos mode).
///
/// Adds a seeded, bounded extra latency to every message delivery. Because
/// the mesh serializes each link (a data message occupies a link for its
/// full flit count), messages between the same (src, dst) pair can never
/// reorder natively — so the perturbation preserves per-pair delivery order
/// and only reorders messages across distinct pairs, which the protocol must
/// already tolerate.
#[derive(Clone, Debug)]
struct FaultState {
    rng: SplitMix64,
    max_extra: u64,
    /// Last perturbed delivery cycle per (src, dst) node pair.
    last: HashMap<(usize, usize), Cycle>,
}

impl FaultState {
    fn new(cfg: FaultConfig) -> Self {
        FaultState {
            rng: SplitMix64::new(cfg.seed),
            max_extra: cfg.max_extra_latency,
            last: HashMap::new(),
        }
    }

    /// Perturbs a delivery cycle, keeping same-pair messages in order.
    fn perturb(&mut self, src: NodeId, dst: NodeId, deliver: Cycle) -> Cycle {
        let jitter = if self.max_extra == 0 {
            0
        } else {
            self.rng.below(self.max_extra + 1)
        };
        let key = (src.index(), dst.index());
        let mut at = deliver + jitter;
        if let Some(&prev) = self.last.get(&key) {
            if at <= prev {
                at = prev + 1;
            }
        }
        self.last.insert(key, at);
        at
    }
}

/// The simulated memory hierarchy shared by all cores.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    tiles: usize,
    mesh: Mesh,
    dirs: Vec<DirBank>,
    caches: Vec<PrivateCache>,
    net: EventQueue<(Endpoint, Msg)>,
    out: Vec<MemEvent>,
    words: HashMap<u64, u64>,
    starts: HashMap<(CoreId, u64), Cycle>,
    stats: MemStats,
    fault: Option<FaultState>,
    /// First protocol error observed; sticky so the simulation loop can
    /// surface it even though core-facing entry points stay infallible.
    err: Option<ProtocolError>,
}

impl MemorySystem {
    /// Builds the memory system for `cfg`.
    ///
    /// # Panics
    /// Panics if the configuration does not validate.
    pub fn new(cfg: &SystemConfig) -> Self {
        cfg.validate().expect("invalid system configuration");
        let tiles = cfg.cores;
        let dirs = (0..tiles)
            .map(|t| DirBank::new(t, cfg.mem.l3_bank, cfg.mem.mem_latency))
            .collect();
        let caches = (0..tiles)
            .map(|i| PrivateCache::new(CoreId::new(i as u16), &cfg.mem, tiles, home_of))
            .collect();
        MemorySystem {
            tiles,
            mesh: Mesh::new(cfg.noc, tiles),
            dirs,
            caches,
            net: EventQueue::new(),
            out: Vec::new(),
            words: HashMap::new(),
            starts: HashMap::new(),
            stats: MemStats {
                miss_latency: vec![RunningMean::new(); tiles],
                ..MemStats::default()
            },
            fault: cfg.check.chaos.map(FaultState::new),
            err: None,
        }
    }

    /// Issues a core-side access. The completion arrives as a
    /// [`MemEvent::Fill`] from a subsequent [`MemorySystem::tick`].
    pub fn access(&mut self, core: CoreId, line: LineAddr, meta: ReqMeta, now: Cycle) {
        let mut actions = Vec::new();
        let outcome = self.caches[core.index()].access(meta, line, now, &mut actions);
        match outcome {
            AccessOutcome::Hit {
                complete_at,
                source,
            } => {
                if !meta.prefetch {
                    self.out.push(MemEvent::Fill {
                        core,
                        req_id: meta.req_id,
                        line,
                        at: complete_at,
                        issued_at: now,
                        source,
                        kind: meta.kind,
                    });
                }
            }
            AccessOutcome::Pending => {
                if !meta.prefetch {
                    self.starts.insert((core, meta.req_id), now);
                }
            }
        }
        self.run_actions(Endpoint::Core(core), actions);
    }

    /// Issues a *far* atomic (Section VII's alternative placement): the RMW
    /// executes at the line's home directory bank after all private copies
    /// are invalidated; the completion arrives as [`MemEvent::FarDone`].
    pub fn far_atomic(
        &mut self,
        core: CoreId,
        line: LineAddr,
        rmw: row_common::rmw::RmwKind,
        req_id: u64,
        now: Cycle,
    ) {
        let msg = Msg::AtomicFar {
            req: core,
            line,
            rmw,
            req_id,
        };
        let to = Endpoint::Dir(home_of(line, self.tiles));
        self.run_actions(
            Endpoint::Core(core),
            vec![CacheAction::Send { to, msg, at: now }],
        );
    }

    /// Locks `line` in `core`'s AQ (must hold it in M — i.e. right after an
    /// `Rmw` fill).
    pub fn lock(&mut self, core: CoreId, line: LineAddr) {
        self.caches[core.index()].lock(line);
    }

    /// Unlocks `line`; stalled external requests are then served.
    ///
    /// An unlock of an unlocked line records a [`ProtocolError`] (see
    /// [`MemorySystem::protocol_error`]) instead of panicking.
    pub fn unlock(&mut self, core: CoreId, line: LineAddr, now: Cycle) {
        let mut actions = Vec::new();
        let r = self.caches[core.index()].unlock(line, now, &mut actions);
        self.absorb(r);
        self.run_actions(Endpoint::Core(core), actions);
    }

    /// Whether `core` currently holds `line` locked.
    pub fn is_locked(&self, core: CoreId, line: LineAddr) -> bool {
        self.caches[core.index()].is_locked(line)
    }

    /// Whether `core` owns `line` (M/E) so an SB write would hit locally.
    pub fn owns(&self, core: CoreId, line: LineAddr) -> bool {
        self.caches[core.index()].owns(line)
    }

    /// Coherence state of `line` in `core`'s private domain.
    pub fn priv_state(&self, core: CoreId, line: LineAddr) -> Option<PrivState> {
        self.caches[core.index()].state(line)
    }

    /// Directory state of `line` at its home bank.
    pub fn dir_state(&self, line: LineAddr) -> DirState {
        self.dirs[home_of(line, self.tiles)].state(line)
    }

    /// Advances the message network to `now` and returns all events produced
    /// since the last tick (fills, external-request observations).
    ///
    /// Protocol errors raised by the controllers are recorded (sticky; see
    /// [`MemorySystem::protocol_error`]) rather than panicking, so the
    /// simulation loop can surface them as first-class failures.
    pub fn tick(&mut self, now: Cycle) -> Vec<MemEvent> {
        while let Some((to, msg)) = self.net.pop_ready(now) {
            let mut actions = Vec::new();
            let r = match to {
                Endpoint::Core(c) => self.caches[c.index()].handle_msg(msg, now, &mut actions),
                Endpoint::Dir(t) => self.dirs[t].handle_msg(msg, now, &mut actions),
            };
            self.absorb(r);
            self.run_actions(to, actions);
        }
        for i in 0..self.caches.len() {
            let mut actions = Vec::new();
            self.caches[i].promote_pending(now, &mut actions);
            self.run_actions(Endpoint::Core(CoreId::new(i as u16)), actions);
        }
        std::mem::take(&mut self.out)
    }

    /// The first protocol error observed, if any. Once set it stays set: the
    /// system's state is no longer trustworthy past this point.
    pub fn protocol_error(&self) -> Option<&ProtocolError> {
        self.err.as_ref()
    }

    /// Records a protocol error for later injection (used by `row-check`'s
    /// invariant sweep, which borrows the system immutably and reports
    /// through the same channel).
    pub fn record_protocol_error(&mut self, e: ProtocolError) {
        self.absorb(Err(e));
    }

    fn absorb(&mut self, r: Result<(), ProtocolError>) {
        if let Err(e) = r {
            self.err.get_or_insert(e);
        }
    }

    /// Earliest cycle at which a pending message wants to be delivered.
    pub fn next_event_cycle(&self) -> Option<Cycle> {
        self.net.next_cycle()
    }

    fn run_actions(&mut self, from: Endpoint, actions: Vec<CacheAction>) {
        for a in actions {
            match a {
                CacheAction::Send { to, msg, at } => {
                    let src = self.node_of(from);
                    let dst = self.node_of(to);
                    let class = if msg.carries_data() {
                        MsgClass::Data
                    } else {
                        MsgClass::Control
                    };
                    let mut deliver = self.mesh.send(src, dst, class, at);
                    if let Some(f) = self.fault.as_mut() {
                        deliver = f.perturb(src, dst, deliver);
                    }
                    self.net.push(deliver, (to, msg));
                }
                CacheAction::ApplyRmw {
                    req,
                    line,
                    rmw,
                    req_id,
                    at,
                } => {
                    // The home bank owns the only copy now: apply in place.
                    let a = line.base_addr();
                    let old = self.read_word(a);
                    let (new, wrote) = rmw.apply(old);
                    if wrote {
                        self.write_word(a, new);
                    }
                    let src = self.node_of(from);
                    let dst = self.node_of(Endpoint::Core(req));
                    let mut deliver = self.mesh.send(src, dst, MsgClass::Control, at);
                    if let Some(f) = self.fault.as_mut() {
                        deliver = f.perturb(src, dst, deliver);
                    }
                    self.net.push(
                        deliver,
                        (Endpoint::Core(req), Msg::FarDone { req, line, req_id }),
                    );
                }
                CacheAction::Emit(ev) => {
                    if let MemEvent::Fill {
                        core,
                        req_id,
                        at,
                        source,
                        ..
                    } = ev
                    {
                        if let Some(start) = self.starts.remove(&(core, req_id)) {
                            let lat = at.saturating_since(start);
                            self.stats.miss_latency[core.index()].add(lat);
                            self.stats.miss_latency_all.add(lat);
                        }
                        match source {
                            crate::msg::FillSource::RemotePrivate => self.stats.remote_fills += 1,
                            crate::msg::FillSource::L3 | crate::msg::FillSource::Memory => {
                                self.stats.home_fills += 1
                            }
                            _ => {}
                        }
                    }
                    self.out.push(ev);
                }
            }
        }
    }

    fn node_of(&self, e: Endpoint) -> NodeId {
        match e {
            Endpoint::Core(c) => NodeId::new(c.index() as u16),
            Endpoint::Dir(t) => NodeId::new(t as u16),
        }
    }

    /// Reads the 64-bit word containing `addr` from the functional store.
    pub fn read_word(&self, addr: Addr) -> u64 {
        self.words.get(&(addr.raw() & !7)).copied().unwrap_or(0)
    }

    /// Writes the 64-bit word containing `addr` in the functional store.
    pub fn write_word(&mut self, addr: Addr, value: u64) {
        self.words.insert(addr.raw() & !7, value);
    }

    /// Memory-system statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Per-core private-cache statistics.
    pub fn cache_stats(&self, core: CoreId) -> &crate::private::PrivStats {
        self.caches[core.index()].stats()
    }

    /// Number of cores (= tiles) in the system.
    pub fn cores(&self) -> usize {
        self.tiles
    }

    /// Every line `core` holds, with its coherence state (order unspecified).
    pub fn private_lines(&self, core: CoreId) -> Vec<(LineAddr, PrivState)> {
        self.caches[core.index()].lines().collect()
    }

    /// Lines with an in-flight miss at `core`.
    pub fn mshr_lines(&self, core: CoreId) -> Vec<LineAddr> {
        self.caches[core.index()].mshr_lines().collect()
    }

    /// Lines `core` currently holds locked.
    pub fn locked_lines(&self, core: CoreId) -> Vec<LineAddr> {
        self.caches[core.index()].locked_lines().collect()
    }

    /// Every line tracked by any directory bank, with its externally
    /// visible state (order unspecified).
    pub fn dir_lines(&self) -> Vec<(LineAddr, DirState)> {
        self.dirs.iter().flat_map(|d| d.lines()).collect()
    }

    /// Snapshots of all Blocked directory entries across banks, tagged with
    /// their bank's tile, sorted by line address.
    pub fn blocked_dir_entries(&self) -> Vec<(usize, BlockedEntrySnapshot)> {
        let mut out: Vec<(usize, BlockedEntrySnapshot)> = self
            .dirs
            .iter()
            .flat_map(|d| d.blocked_entries().into_iter().map(move |s| (d.tile(), s)))
            .collect();
        out.sort_by_key(|(_, s)| s.line.raw());
        out
    }

    /// The mesh's latest link `busy_until` horizon (stall diagnostics).
    pub fn noc_busy_horizon(&self) -> Cycle {
        self.mesh.busy_horizon()
    }

    /// Corrupts the private-cache state of `line` at `core`, bypassing the
    /// protocol. **Robustness-testing instrumentation only.**
    pub fn corrupt_private_state_for_test(
        &mut self,
        core: CoreId,
        line: LineAddr,
        state: Option<PrivState>,
    ) {
        self.caches[core.index()].corrupt_state_for_test(line, state);
    }

    /// Corrupts the home-directory entry of `line`, bypassing the protocol.
    /// **Robustness-testing instrumentation only.**
    pub fn corrupt_dir_state_for_test(&mut self, line: LineAddr, state: DirState) {
        self.dirs[home_of(line, self.tiles)].corrupt_entry_for_test(line, state);
    }

    /// Interconnect statistics.
    pub fn noc_stats(&self) -> &row_noc::NocStats {
        self.mesh.stats()
    }
}

impl Codec for MemStats {
    fn encode(&self, w: &mut Writer) {
        self.miss_latency.encode(w);
        self.miss_latency_all.encode(w);
        w.put_u64(self.remote_fills);
        w.put_u64(self.home_fills);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(MemStats {
            miss_latency: Vec::<RunningMean>::decode(r)?,
            miss_latency_all: RunningMean::decode(r)?,
            remote_fills: r.get_u64()?,
            home_fills: r.get_u64()?,
        })
    }
}

impl Codec for FaultState {
    fn encode(&self, w: &mut Writer) {
        self.rng.encode(w);
        w.put_u64(self.max_extra);
        self.last.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(FaultState {
            rng: SplitMix64::decode(r)?,
            max_extra: r.get_u64()?,
            last: HashMap::decode(r)?,
        })
    }
}

impl Persist for MemorySystem {
    // `tiles` is config-derived. A checkpoint is only taken when no sticky
    // protocol error is set (the machine refuses otherwise), so `err` is not
    // encoded and restore clears it.
    fn persist(&self, w: &mut Writer) {
        self.mesh.persist(w);
        w.put_len(self.dirs.len());
        for d in &self.dirs {
            d.persist(w);
        }
        w.put_len(self.caches.len());
        for c in &self.caches {
            c.persist(w);
        }
        self.net.encode(w);
        self.out.encode(w);
        self.words.encode(w);
        self.starts.encode(w);
        self.stats.encode(w);
        match &self.fault {
            None => w.put_u8(0),
            Some(f) => {
                w.put_u8(1);
                f.encode(w);
            }
        }
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        self.mesh.restore(r)?;
        if r.get_len()? != self.dirs.len() {
            return Err(PersistError::Corrupt("directory bank count mismatch"));
        }
        for d in &mut self.dirs {
            d.restore(r)?;
        }
        if r.get_len()? != self.caches.len() {
            return Err(PersistError::Corrupt("private cache count mismatch"));
        }
        for c in &mut self.caches {
            c.restore(r)?;
        }
        self.net = EventQueue::decode(r)?;
        self.out = Vec::decode(r)?;
        self.words = HashMap::decode(r)?;
        self.starts = HashMap::decode(r)?;
        self.stats = MemStats::decode(r)?;
        let fault = Option::<FaultState>::decode(r)?;
        if fault.is_some() != self.fault.is_some() {
            return Err(PersistError::Corrupt("chaos-mode presence mismatch"));
        }
        self.fault = fault;
        self.err = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::AccessKind;

    fn sys(cores: usize) -> MemorySystem {
        MemorySystem::new(&SystemConfig::small(cores))
    }

    fn meta(id: u64, kind: AccessKind) -> ReqMeta {
        ReqMeta {
            req_id: id,
            pc: None,
            prefetch: false,
            kind,
        }
    }

    /// Runs ticks until `pred` returns Some, or panics after `max` cycles.
    fn run_until<T>(
        m: &mut MemorySystem,
        start: Cycle,
        max: u64,
        mut pred: impl FnMut(&MemEvent) -> Option<T>,
    ) -> (Cycle, T) {
        for c in start.raw()..start.raw() + max {
            let now = Cycle::new(c);
            for ev in m.tick(now) {
                if let Some(t) = pred(&ev) {
                    return (now, t);
                }
            }
        }
        panic!("event not observed within {max} cycles");
    }

    #[test]
    fn read_miss_fills_with_home_source() {
        let mut m = sys(2);
        let line = LineAddr::new(100);
        m.access(CoreId::new(0), line, meta(1, AccessKind::Read), Cycle::ZERO);
        let (_, (src, at)) = run_until(&mut m, Cycle::ZERO, 2000, |ev| match ev {
            MemEvent::Fill {
                req_id: 1,
                source,
                at,
                ..
            } => Some((*source, *at)),
            _ => None,
        });
        assert_eq!(src, crate::msg::FillSource::L3);
        // First touch pays memory latency.
        assert!(at.raw() > 160, "fill at {at}");
        assert_eq!(m.priv_state(CoreId::new(0), line), Some(PrivState::E));
    }

    #[test]
    fn second_core_write_transfers_ownership_cache_to_cache() {
        let mut m = sys(2);
        let line = LineAddr::new(101);
        let (c0, c1) = (CoreId::new(0), CoreId::new(1));
        m.access(c0, line, meta(1, AccessKind::Write), Cycle::ZERO);
        let (t1, _) = run_until(&mut m, Cycle::ZERO, 2000, |ev| match ev {
            MemEvent::Fill { req_id: 1, .. } => Some(()),
            _ => None,
        });
        assert_eq!(m.priv_state(c0, line), Some(PrivState::M));

        m.access(c1, line, meta(2, AccessKind::Write), t1 + 1);
        let (_, src) = run_until(&mut m, t1 + 1, 2000, |ev| match ev {
            MemEvent::Fill {
                req_id: 2, source, ..
            } => Some(*source),
            _ => None,
        });
        assert_eq!(src, crate::msg::FillSource::RemotePrivate);
        assert_eq!(m.priv_state(c0, line), None, "old owner invalidated");
        assert_eq!(m.priv_state(c1, line), Some(PrivState::M));
        // Drain the in-flight Unblock before inspecting the directory.
        for c in 0..500u64 {
            let _ = m.tick(Cycle::new(10_000 + c));
        }
        assert_eq!(m.dir_state(line), DirState::Exclusive(c1));
    }

    #[test]
    fn locked_line_stalls_rival_until_unlock() {
        let mut m = sys(2);
        let line = LineAddr::new(102);
        let (c0, c1) = (CoreId::new(0), CoreId::new(1));
        m.access(c0, line, meta(1, AccessKind::Rmw), Cycle::ZERO);
        let (t1, _) = run_until(&mut m, Cycle::ZERO, 2000, |ev| match ev {
            MemEvent::Fill { req_id: 1, .. } => Some(()),
            _ => None,
        });
        assert!(m.is_locked(c0, line), "Rmw fill locks atomically");

        m.access(c1, line, meta(2, AccessKind::Rmw), t1 + 1);
        // The external request reaches core0 and stalls.
        let (t2, stalled) = run_until(&mut m, t1 + 1, 4000, |ev| match ev {
            MemEvent::ExternalObserved { core, stalled, .. } if *core == c0 => Some(*stalled),
            _ => None,
        });
        assert!(stalled);

        // Hold the lock for 500 more cycles; core1 must not fill meanwhile.
        let hold = 500;
        for c in t2.raw()..t2.raw() + hold {
            for ev in m.tick(Cycle::new(c)) {
                assert!(
                    !matches!(ev, MemEvent::Fill { req_id: 2, .. }),
                    "fill leaked past a locked line"
                );
            }
        }
        let unlock_at = t2 + hold;
        m.unlock(c0, line, unlock_at);
        let (t3, src) = run_until(&mut m, unlock_at, 2000, |ev| match ev {
            MemEvent::Fill {
                req_id: 2, source, ..
            } => Some(*source),
            _ => None,
        });
        assert_eq!(src, crate::msg::FillSource::RemotePrivate);
        assert!(t3 >= unlock_at);
        assert!(m.priv_state(c1, line) == Some(PrivState::M));
    }

    #[test]
    fn contended_fill_latency_exceeds_uncontended() {
        let mut m = sys(4);
        let line = LineAddr::new(103);
        let c0 = CoreId::new(0);
        let c1 = CoreId::new(1);
        // Uncontended remote transfer first (unlock immediately).
        m.access(c0, line, meta(1, AccessKind::Rmw), Cycle::ZERO);
        let (t1, _) = run_until(&mut m, Cycle::ZERO, 2000, |ev| match ev {
            MemEvent::Fill { req_id: 1, .. } => Some(()),
            _ => None,
        });
        m.unlock(c0, line, t1);
        m.access(c1, line, meta(2, AccessKind::Rmw), t1 + 1);
        let (_, uncontended) = run_until(&mut m, t1 + 1, 2000, |ev| match ev {
            MemEvent::Fill {
                req_id: 2,
                at,
                issued_at,
                ..
            } => Some(at.saturating_since(*issued_at)),
            _ => None,
        });

        // Contended: owner holds the lock for 600 cycles.
        let line2 = LineAddr::new(203);
        m.access(c0, line2, meta(3, AccessKind::Rmw), Cycle::new(10_000));
        let (t2, _) = run_until(&mut m, Cycle::new(10_000), 2000, |ev| match ev {
            MemEvent::Fill { req_id: 3, .. } => Some(()),
            _ => None,
        });
        // The Rmw fill auto-locked line2 at core0; hold it for 600 cycles.
        m.access(c1, line2, meta(4, AccessKind::Rmw), t2 + 1);
        for c in t2.raw() + 1..t2.raw() + 600 {
            let _ = m.tick(Cycle::new(c));
        }
        m.unlock(c0, line2, t2 + 600);
        let (_, contended) = run_until(&mut m, t2 + 600, 2000, |ev| match ev {
            MemEvent::Fill {
                req_id: 4,
                at,
                issued_at,
                ..
            } => Some(at.saturating_since(*issued_at)),
            _ => None,
        });
        assert!(
            contended > uncontended + 400,
            "contended {contended} vs uncontended {uncontended}"
        );
    }

    #[test]
    fn functional_word_store_round_trips() {
        let mut m = sys(1);
        assert_eq!(m.read_word(Addr::new(0x1000)), 0);
        m.write_word(Addr::new(0x1000), 7);
        assert_eq!(m.read_word(Addr::new(0x1004)), 7, "same 8-byte word");
        m.write_word(Addr::new(0x1008), 9);
        assert_eq!(m.read_word(Addr::new(0x1000)), 7);
    }

    #[test]
    fn read_sharing_then_upgrade_invalidates_reader() {
        let mut m = sys(3);
        let line = LineAddr::new(104);
        let (c0, c1) = (CoreId::new(0), CoreId::new(1));
        m.access(c0, line, meta(1, AccessKind::Read), Cycle::ZERO);
        let (t1, _) = run_until(&mut m, Cycle::ZERO, 2000, |ev| match ev {
            MemEvent::Fill { req_id: 1, .. } => Some(()),
            _ => None,
        });
        m.access(c1, line, meta(2, AccessKind::Read), t1 + 1);
        let (t2, _) = run_until(&mut m, t1 + 1, 2000, |ev| match ev {
            MemEvent::Fill { req_id: 2, .. } => Some(()),
            _ => None,
        });
        assert_eq!(m.priv_state(c0, line), Some(PrivState::S));
        assert_eq!(m.priv_state(c1, line), Some(PrivState::S));

        m.access(c1, line, meta(3, AccessKind::Write), t2 + 1);
        let (_, _) = run_until(&mut m, t2 + 1, 4000, |ev| match ev {
            MemEvent::Fill { req_id: 3, .. } => Some(()),
            _ => None,
        });
        assert_eq!(m.priv_state(c0, line), None);
        assert_eq!(m.priv_state(c1, line), Some(PrivState::M));
    }

    #[test]
    fn miss_latency_stats_accumulate() {
        let mut m = sys(2);
        m.access(
            CoreId::new(0),
            LineAddr::new(500),
            meta(1, AccessKind::Read),
            Cycle::ZERO,
        );
        run_until(&mut m, Cycle::ZERO, 2000, |ev| match ev {
            MemEvent::Fill { req_id: 1, .. } => Some(()),
            _ => None,
        });
        assert_eq!(m.stats().miss_latency_all.count(), 1);
        assert!(m.stats().miss_latency_all.mean() > 100.0);
    }

    #[test]
    fn single_core_system_works_end_to_end() {
        let mut m = sys(1);
        let c0 = CoreId::new(0);
        for k in 0..20u64 {
            m.access(
                c0,
                LineAddr::new(k * 3),
                meta(k, AccessKind::Read),
                Cycle::new(k),
            );
        }
        let mut fills = 0;
        for c in 0..5000u64 {
            fills += m
                .tick(Cycle::new(c))
                .iter()
                .filter(|e| matches!(e, MemEvent::Fill { .. }))
                .count();
        }
        assert_eq!(fills, 20);
    }
}
