//! The full memory system: private caches + directory banks + mesh.
//!
//! [`MemorySystem`] owns one [`PrivateCache`] per core, one [`DirBank`] per
//! tile, the [`Mesh`], a global event wheel for in-flight messages, and the
//! *functional* word store (real 64-bit values per 8-byte word, so atomics
//! truly read-modify-write and integration tests can assert linearizable
//! outcomes).
//!
//! The core-side contract:
//!
//! 1. Call [`MemorySystem::access`] for loads, SB writes, and atomic
//!    `load_lock`s; completions arrive as [`MemEvent::Fill`]s from
//!    [`MemorySystem::tick`] (hits included, with their hit latency).
//! 2. On an `Rmw` fill, the core locks the line with [`MemorySystem::lock`]
//!    before acting on it and unlocks with [`MemorySystem::unlock`] when the
//!    `store_unlock` writes. External requests targeting a locked line stall
//!    inside the private controller until the unlock.
//! 3. [`MemEvent::ExternalObserved`] fires whenever an invalidation or
//!    downgrade reaches a core — the hook for RoW's ready-window detector and
//!    for LQ squashing.

use std::collections::HashMap;

use row_common::choice;
use row_common::config::{PerturbConfig, SystemConfig};
use row_common::fastmap::FastMap;
use row_common::ids::{Addr, CoreId, LineAddr};
use row_common::persist::{Codec, Persist, PersistError, Reader, Writer};
use row_common::rmw::RmwKind;
use row_common::sched::EventQueue;
use row_common::stats::{RunningMean, TransportStats};
use row_common::Cycle;

use crate::directory::{BlockedEntrySnapshot, DirBank, DirState};
use crate::error::ProtocolError;
use crate::journal::{OpKind, OpRecord};
use crate::msg::{Endpoint, Frame, MemEvent, Msg, ReqMeta};
use crate::private::{AccessOutcome, CacheAction, PrivState, PrivateCache};
use crate::transport::{node_of, InflightProbe, Transport};
use row_noc::{Mesh, MsgClass};

fn home_of(line: LineAddr, tiles: usize) -> usize {
    (line.raw() as usize) % tiles
}

/// Aggregate memory-system statistics (drives Fig. 11).
#[derive(Clone, Debug, Default)]
pub struct MemStats {
    /// Mean L1D miss latency per core (demand requests, access → fill).
    pub miss_latency: Vec<RunningMean>,
    /// Mean miss latency across all cores.
    pub miss_latency_all: RunningMean,
    /// Fills served by a remote private cache.
    pub remote_fills: u64,
    /// Fills served by L3 or memory.
    pub home_fills: u64,
}

/// The simulated memory hierarchy shared by all cores.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    tiles: usize,
    mesh: Mesh,
    dirs: Vec<DirBank>,
    caches: Vec<PrivateCache>,
    net: EventQueue<Frame>,
    out: Vec<MemEvent>,
    words: HashMap<u64, u64>,
    starts: FastMap<(CoreId, u64), Cycle>,
    stats: MemStats,
    /// Chaos-mode fault injection plus, when lossy faults are enabled, the
    /// recoverable transport (sequencing, ACK/NACK, retransmission).
    transport: Option<Transport>,
    /// Schedule-perturbation bursts from the config; kept here (not only in
    /// the transport) so a checkpoint restore can re-inject them — the burst
    /// table is configuration, not persisted state.
    perturb: Option<PerturbConfig>,
    /// Apply-order journal of architectural writes for the differential
    /// oracle (`CheckConfig::oracle` or `CheckConfig::oracle_online`);
    /// `None` when both are off. In online mode the simulation loop drains
    /// it every cycle via [`MemorySystem::drain_journal_into`].
    journal: Option<Vec<OpRecord>>,
    /// Armed test-only atomicity bug (lost + duplicated FAA); see
    /// [`MemorySystem::inject_net_zero_faa_for_test`].
    bug: Option<NetZeroFaaBug>,
    /// First protocol error observed; sticky so the simulation loop can
    /// surface it even though core-facing entry points stay infallible.
    err: Option<ProtocolError>,
    /// Lines whose coherence-relevant state may have changed since the last
    /// [`MemorySystem::take_dirty_lines`] drain. `Some` only while a checker
    /// has opted in via [`MemorySystem::track_dirty_lines`] — the hot path
    /// pays nothing otherwise. Every state change flows through a marked
    /// choke point: a core-side call (`access`/`lock`/`unlock`), a delivered
    /// protocol message, or an *outgoing* message (which covers eviction
    /// side-effects: installing line X evicts Y by sending a PutM on Y).
    /// Not persisted: the sweeper re-primes with a full sweep after restore.
    dirty: Option<FastMap<LineAddr, ()>>,
    /// Reusable `CacheAction` buffer threaded through `access`/`unlock`/
    /// `dispatch`/`tick` so the per-call `Vec` lives once instead of being
    /// reallocated millions of times per run. Always empty between calls;
    /// never persisted or compared.
    scratch_actions: Vec<CacheAction>,
}

/// State of the injected net-zero lost+duplicated-FAA bug: count down to the
/// victim FAA, lose it (journal without applying), then apply the *next* FAA
/// on the same word twice while journaling it once. The end state nets out.
#[derive(Clone, Copy, Debug)]
struct NetZeroFaaBug {
    countdown: u64,
    dup_word: Option<u64>,
}

impl MemorySystem {
    /// Builds the memory system for `cfg`.
    ///
    /// # Panics
    /// Panics if the configuration does not validate.
    pub fn new(cfg: &SystemConfig) -> Self {
        cfg.validate().expect("invalid system configuration");
        let tiles = cfg.cores;
        let dirs = (0..tiles)
            .map(|t| DirBank::new(t, cfg.mem.l3_bank, cfg.mem.mem_latency))
            .collect();
        let caches = (0..tiles)
            .map(|i| PrivateCache::new(CoreId::new(i as u16), &cfg.mem, tiles, home_of))
            .collect();
        MemorySystem {
            tiles,
            mesh: Mesh::new(cfg.noc, tiles),
            dirs,
            caches,
            net: EventQueue::new(),
            out: Vec::new(),
            words: HashMap::new(),
            starts: FastMap::new(),
            stats: MemStats {
                miss_latency: vec![RunningMean::new(); tiles],
                ..MemStats::default()
            },
            transport: {
                // Chaos builds its usual transport; perturbation alone rides
                // a fault-free ("inert") one so bursts apply on the jitter
                // path without enabling any loss.
                let mut t = match (cfg.check.chaos, cfg.check.perturb) {
                    (Some(fc), _) => Some(Transport::new(fc)),
                    (None, Some(_)) => Some(Transport::inert()),
                    (None, None) => None,
                };
                if let Some(t) = t.as_mut() {
                    t.set_perturb(cfg.check.perturb);
                }
                t
            },
            perturb: cfg.check.perturb,
            journal: (cfg.check.oracle || cfg.check.oracle_online).then(Vec::new),
            bug: None,
            err: None,
            dirty: None,
            scratch_actions: Vec::new(),
        }
    }

    /// Turns dirty-line tracking on or off. While on, every line whose
    /// coherence state may have changed is recorded until the next
    /// [`MemorySystem::take_dirty_lines`]; the incremental invariant sweep
    /// then touches only those lines. Turning tracking on clears any stale
    /// set.
    pub fn track_dirty_lines(&mut self, on: bool) {
        self.dirty = on.then(FastMap::new);
    }

    /// Drains and returns the dirty lines accumulated since the last drain,
    /// sorted ascending (empty when tracking is off).
    pub fn take_dirty_lines(&mut self) -> Vec<LineAddr> {
        let Some(d) = self.dirty.as_mut() else {
            return Vec::new();
        };
        let mut v: Vec<LineAddr> = d.keys().collect();
        d.clear();
        v.sort_unstable();
        v
    }

    #[inline]
    fn mark_dirty(&mut self, line: LineAddr) {
        if let Some(d) = self.dirty.as_mut() {
            d.insert(line, ());
        }
    }

    /// Issues a core-side access. The completion arrives as a
    /// [`MemEvent::Fill`] from a subsequent [`MemorySystem::tick`].
    pub fn access(&mut self, core: CoreId, line: LineAddr, meta: ReqMeta, now: Cycle) {
        self.mark_dirty(line);
        let mut actions = std::mem::take(&mut self.scratch_actions);
        let outcome = self.caches[core.index()].access(meta, line, now, &mut actions);
        match outcome {
            AccessOutcome::Hit {
                complete_at,
                source,
            } => {
                if !meta.prefetch {
                    self.out.push(MemEvent::Fill {
                        core,
                        req_id: meta.req_id,
                        line,
                        at: complete_at,
                        issued_at: now,
                        source,
                        kind: meta.kind,
                    });
                }
            }
            AccessOutcome::Pending => {
                if !meta.prefetch {
                    self.starts.insert((core, meta.req_id), now);
                }
            }
        }
        self.run_actions(Endpoint::Core(core), &mut actions);
        self.scratch_actions = actions;
    }

    /// Issues a *far* atomic (Section VII's alternative placement): the RMW
    /// executes at the line's home directory bank after all private copies
    /// are invalidated; the completion arrives as [`MemEvent::FarDone`].
    pub fn far_atomic(
        &mut self,
        core: CoreId,
        line: LineAddr,
        rmw: row_common::rmw::RmwKind,
        req_id: u64,
        now: Cycle,
    ) {
        let msg = Msg::AtomicFar {
            req: core,
            line,
            rmw,
            req_id,
        };
        let to = Endpoint::Dir(home_of(line, self.tiles));
        let mut actions = std::mem::take(&mut self.scratch_actions);
        actions.push(CacheAction::Send { to, msg, at: now });
        self.run_actions(Endpoint::Core(core), &mut actions);
        self.scratch_actions = actions;
    }

    /// Locks `line` in `core`'s AQ (must hold it in M — i.e. right after an
    /// `Rmw` fill).
    pub fn lock(&mut self, core: CoreId, line: LineAddr) {
        self.mark_dirty(line);
        self.caches[core.index()].lock(line);
    }

    /// Unlocks `line`; stalled external requests are then served.
    ///
    /// An unlock of an unlocked line records a [`ProtocolError`] (see
    /// [`MemorySystem::protocol_error`]) instead of panicking.
    pub fn unlock(&mut self, core: CoreId, line: LineAddr, now: Cycle) {
        self.mark_dirty(line);
        let mut actions = std::mem::take(&mut self.scratch_actions);
        let r = self.caches[core.index()].unlock(line, now, &mut actions);
        self.absorb(r);
        self.run_actions(Endpoint::Core(core), &mut actions);
        self.scratch_actions = actions;
    }

    /// Whether `core` currently holds `line` locked.
    pub fn is_locked(&self, core: CoreId, line: LineAddr) -> bool {
        self.caches[core.index()].is_locked(line)
    }

    /// Whether `core` owns `line` (M/E) so an SB write would hit locally.
    pub fn owns(&self, core: CoreId, line: LineAddr) -> bool {
        self.caches[core.index()].owns(line)
    }

    /// Coherence state of `line` in `core`'s private domain.
    pub fn priv_state(&self, core: CoreId, line: LineAddr) -> Option<PrivState> {
        self.caches[core.index()].state(line)
    }

    /// Directory state of `line` at its home bank.
    pub fn dir_state(&self, line: LineAddr) -> DirState {
        self.dirs[home_of(line, self.tiles)].state(line)
    }

    /// `(home tile, queued-request depth)` when `line`'s home entry is
    /// Blocked, `None` otherwise (the incremental sweep's queue-bound probe).
    pub fn dir_blocked_depth(&self, line: LineAddr) -> Option<(usize, usize)> {
        let tile = home_of(line, self.tiles);
        self.dirs[tile].blocked_depth(line).map(|d| (tile, d))
    }

    /// Advances the message network to `now` and returns all events produced
    /// since the last tick (fills, external-request observations).
    ///
    /// Protocol errors raised by the controllers are recorded (sticky; see
    /// [`MemorySystem::protocol_error`]) rather than panicking, so the
    /// simulation loop can surface them as first-class failures.
    pub fn tick(&mut self, now: Cycle) -> Vec<MemEvent> {
        // Retransmission timers fire before this cycle's deliveries.
        if let Some(t) = self.transport.as_mut() {
            if t.lossy() {
                let mut sends = Vec::new();
                let r = t.process_timeouts(now, &mut self.mesh, &mut sends);
                for (at, f) in sends {
                    self.net.push(at, f);
                }
                if let Err(e) = r {
                    self.absorb(Err(e));
                }
            }
        }
        while let Some(frame) = self.net.pop_ready(now) {
            match frame {
                Frame::Msg { to, msg } => self.dispatch(to, msg, now),
                Frame::Seq {
                    src,
                    dst,
                    seq,
                    msg,
                    check,
                } => {
                    let mut deliver = Vec::new();
                    let mut sends = Vec::new();
                    // A sequenced frame can only have been produced by a
                    // transport; seeing one without a transport configured
                    // means the frame queue is corrupt. Triage instead of
                    // aborting the worker: record and drop the frame.
                    let Some(t) = self.transport.as_mut() else {
                        self.absorb(Err(ProtocolError::TransportAbsent { src, dst, seq }));
                        continue;
                    };
                    t.receive(
                        src,
                        dst,
                        seq,
                        msg,
                        check,
                        now,
                        &mut self.mesh,
                        &mut deliver,
                        &mut sends,
                    );
                    for (at, f) in sends {
                        self.net.push(at, f);
                    }
                    for (to, m) in deliver {
                        self.dispatch(to, m, now);
                    }
                }
                Frame::Ack { src, dst, seq } => {
                    if let Some(t) = self.transport.as_mut() {
                        t.on_ack((src, dst), seq);
                    }
                }
                Frame::Nack { src, dst, seq } => {
                    let mut sends = Vec::new();
                    if let Some(t) = self.transport.as_mut() {
                        t.on_nack((src, dst), seq, now, &mut self.mesh, &mut sends);
                    }
                    for (at, f) in sends {
                        self.net.push(at, f);
                    }
                }
            }
        }
        let mut actions = std::mem::take(&mut self.scratch_actions);
        for i in 0..self.caches.len() {
            self.caches[i].promote_pending(now, &mut actions);
            if !actions.is_empty() {
                self.run_actions(Endpoint::Core(CoreId::new(i as u16)), &mut actions);
            }
        }
        self.scratch_actions = actions;
        std::mem::take(&mut self.out)
    }

    /// Hands one protocol message to its endpoint's controller.
    fn dispatch(&mut self, to: Endpoint, msg: Msg, now: Cycle) {
        self.mark_dirty(msg.line());
        let mut actions = std::mem::take(&mut self.scratch_actions);
        let r = match to {
            Endpoint::Core(c) => self.caches[c.index()].handle_msg(msg, now, &mut actions),
            Endpoint::Dir(t) => self.dirs[t].handle_msg(msg, now, &mut actions),
        };
        self.absorb(r);
        self.run_actions(to, &mut actions);
        self.scratch_actions = actions;
    }

    /// The first protocol error observed, if any. Once set it stays set: the
    /// system's state is no longer trustworthy past this point.
    pub fn protocol_error(&self) -> Option<&ProtocolError> {
        self.err.as_ref()
    }

    /// Records a protocol error for later injection (used by `row-check`'s
    /// invariant sweep, which borrows the system immutably and reports
    /// through the same channel).
    pub fn record_protocol_error(&mut self, e: ProtocolError) {
        self.absorb(Err(e));
    }

    fn absorb(&mut self, r: Result<(), ProtocolError>) {
        if let Err(e) = r {
            self.err.get_or_insert(e);
        }
    }

    /// Earliest cycle at which a pending message wants to be delivered.
    pub fn next_event_cycle(&self) -> Option<Cycle> {
        self.net.next_cycle()
    }

    /// Routes one protocol message from `from` to `to`: mesh timing, then
    /// either the bare-frame fast path (reliable network, optionally delay-
    /// jittered) or the sequenced lossy transport.
    fn send_msg(&mut self, from: Endpoint, to: Endpoint, msg: Msg, at: Cycle) {
        // Sends mark too: an eviction changes the victim line's private
        // state at install time, visible here as the outgoing PutM.
        self.mark_dirty(msg.line());
        let src = node_of(from);
        let dst = node_of(to);
        let class = if msg.carries_data() {
            MsgClass::Data
        } else {
            MsgClass::Control
        };
        let deliver = self.mesh.send(src, dst, class, at);
        // Explorer decision point: the controller may hold this message for
        // whole delivery quanta past its mesh-computed cycle. Alternative 0 —
        // what every run without an installed controller gets — is the
        // undelayed schedule, bit-for-bit.
        let alt = choice::choose(
            choice::ChoiceKind::Delivery,
            src.index() as u16,
            dst.index() as u16,
            msg.line().raw(),
            at.raw(),
            choice::N_ALTS,
        );
        let deliver = deliver + choice::delivery_delay(alt);
        match self.transport.as_mut() {
            None => self.net.push(deliver, Frame::Msg { to, msg }),
            Some(t) if !t.lossy() => {
                let jittered = t.perturb(src, dst, deliver);
                self.net.push(jittered, Frame::Msg { to, msg });
            }
            Some(t) => {
                let mut sends = Vec::new();
                t.send(from, to, msg, deliver, at, &mut sends);
                for (c, f) in sends {
                    self.net.push(c, f);
                }
            }
        }
    }

    /// Executes and drains `actions`, leaving the buffer empty for reuse.
    fn run_actions(&mut self, from: Endpoint, actions: &mut Vec<CacheAction>) {
        for a in actions.drain(..) {
            match a {
                CacheAction::Send { to, msg, at } => self.send_msg(from, to, msg, at),
                CacheAction::ApplyRmw {
                    req,
                    line,
                    rmw,
                    req_id,
                    at,
                } => {
                    // The home bank owns the only copy now: apply in place.
                    self.apply_rmw(req, line.base_addr(), rmw, at);
                    self.send_msg(
                        from,
                        Endpoint::Core(req),
                        Msg::FarDone { req, line, req_id },
                        at,
                    );
                }
                CacheAction::Emit(ev) => {
                    if let MemEvent::Fill {
                        core,
                        req_id,
                        at,
                        source,
                        ..
                    } = ev
                    {
                        if let Some(start) = self.starts.remove(&(core, req_id)) {
                            let lat = at.saturating_since(start);
                            self.stats.miss_latency[core.index()].add(lat);
                            self.stats.miss_latency_all.add(lat);
                        }
                        match source {
                            crate::msg::FillSource::RemotePrivate => self.stats.remote_fills += 1,
                            crate::msg::FillSource::L3 | crate::msg::FillSource::Memory => {
                                self.stats.home_fills += 1
                            }
                            _ => {}
                        }
                    }
                    self.out.push(ev);
                }
            }
        }
    }

    /// Reads the 64-bit word containing `addr` from the functional store.
    pub fn read_word(&self, addr: Addr) -> u64 {
        self.words.get(&(addr.raw() & !7)).copied().unwrap_or(0)
    }

    /// Writes the 64-bit word containing `addr` in the functional store.
    ///
    /// This raw entry point bypasses the oracle journal — use it only for
    /// pre-seeding memory before a run (or in tests). Architectural writes
    /// go through [`MemorySystem::store_word`] / [`MemorySystem::apply_rmw`].
    pub fn write_word(&mut self, addr: Addr, value: u64) {
        self.words.insert(addr.raw() & !7, value);
    }

    /// Architecturally applies an atomic RMW at `addr` on behalf of `core`:
    /// reads the word, applies `rmw`, writes back if the operation writes,
    /// and journals the application when the oracle is enabled. Returns the
    /// observed old value (the RMW's architectural return value).
    pub fn apply_rmw(&mut self, core: CoreId, addr: Addr, rmw: RmwKind, now: Cycle) -> u64 {
        let old = self.read_word(addr);
        let (_, wrote) = rmw.apply(old);
        let mut applications: u32 = u32::from(wrote);
        if let (Some(bug), RmwKind::Faa(_)) = (self.bug.as_mut(), rmw) {
            let word = addr.raw() & !7;
            if bug.dup_word == Some(word) {
                // The compensating half: apply this FAA twice while
                // journaling it once. Combined with the lost half below, the
                // word's end state (and every per-core journal count) is
                // exactly what a correct run produces.
                applications = 2;
                self.bug = None;
            } else if bug.dup_word.is_none() {
                if bug.countdown == 0 {
                    // The victim: journal the application (claiming the
                    // machine performed it) but skip the functional write.
                    applications = 0;
                    bug.dup_word = Some(word);
                } else {
                    bug.countdown -= 1;
                }
            }
        }
        let mut cur = old;
        for _ in 0..applications {
            let (next, _) = rmw.apply(cur);
            self.write_word(addr, next);
            cur = next;
        }
        if let Some(j) = self.journal.as_mut() {
            j.push(OpRecord {
                core,
                at: now,
                kind: OpKind::Rmw {
                    addr,
                    rmw,
                    observed_old: old,
                },
            });
        }
        old
    }

    /// Architecturally commits a plain store by `core`, journaling it when
    /// the oracle is enabled.
    pub fn store_word(&mut self, core: CoreId, addr: Addr, value: u64, now: Cycle) {
        self.write_word(addr, value);
        if let Some(j) = self.journal.as_mut() {
            j.push(OpRecord {
                core,
                at: now,
                kind: OpKind::Store { addr, value },
            });
        }
    }

    /// The full functional word store (word address → value).
    pub fn words(&self) -> &HashMap<u64, u64> {
        &self.words
    }

    /// The oracle journal, when `CheckConfig::oracle` is enabled.
    pub fn journal(&self) -> Option<&[OpRecord]> {
        self.journal.as_deref()
    }

    /// Moves all journaled records accumulated since the last drain into
    /// `out` (appending), leaving the journal empty but allocated. This is
    /// how the online checker consumes the apply order in O(live ops)
    /// memory: the journal never grows beyond one drain interval. No-op
    /// when journaling is off.
    pub fn drain_journal_into(&mut self, out: &mut Vec<OpRecord>) {
        if let Some(j) = self.journal.as_mut() {
            out.append(j);
        }
    }

    /// Test instrumentation: arms a *net-zero* atomicity bug. After
    /// `countdown` more FAA applications, one FAA is "lost" (journaled but
    /// not applied) and the next FAA on the same word is applied twice
    /// (journaled once). End-of-run word values and per-core journal counts
    /// are indistinguishable from a correct run — only a per-operation
    /// return-value check can see it. Not persisted across
    /// checkpoint/restore; arm it after any restore.
    pub fn inject_net_zero_faa_for_test(&mut self, countdown: u64) {
        self.bug = Some(NetZeroFaaBug {
            countdown,
            dup_word: None,
        });
    }

    /// Test instrumentation: re-plants the seed-era GetS-on-Shared directory
    /// race in every bank (see [`DirBank::inject_early_unblock_for_test`]).
    /// The schedule fuzzer's regression corpus hunts this. Not persisted
    /// across checkpoint/restore; arm it after any restore.
    pub fn inject_early_unblock_for_test(&mut self) {
        for d in &mut self.dirs {
            d.inject_early_unblock_for_test();
        }
    }

    /// Transport counters, present only when lossy chaos is active (the
    /// delay-only injector has no transport behaviour to count).
    pub fn transport_stats(&self) -> Option<&TransportStats> {
        self.transport
            .as_ref()
            .filter(|t| t.lossy())
            .map(|t| t.stats())
    }

    /// Whether the lossy transport has fully drained (no un-ACKed messages,
    /// no buffered early arrivals). Vacuously true without lossy chaos.
    pub fn transport_idle(&self) -> bool {
        self.transport.as_ref().is_none_or(|t| t.idle())
    }

    /// The oldest un-ACKed transport transaction, for stall diagnostics.
    pub fn oldest_inflight(&self) -> Option<InflightProbe> {
        self.transport.as_ref().and_then(|t| t.oldest_inflight())
    }

    /// Memory-system statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Per-core private-cache statistics.
    pub fn cache_stats(&self, core: CoreId) -> &crate::private::PrivStats {
        self.caches[core.index()].stats()
    }

    /// Number of cores (= tiles) in the system.
    pub fn cores(&self) -> usize {
        self.tiles
    }

    /// Every line `core` holds, with its coherence state (order unspecified).
    pub fn private_lines(&self, core: CoreId) -> Vec<(LineAddr, PrivState)> {
        self.caches[core.index()].lines().collect()
    }

    /// Lines with an in-flight miss at `core`.
    pub fn mshr_lines(&self, core: CoreId) -> Vec<LineAddr> {
        self.caches[core.index()].mshr_lines().collect()
    }

    /// Lines `core` currently holds locked.
    pub fn locked_lines(&self, core: CoreId) -> Vec<LineAddr> {
        self.caches[core.index()].locked_lines().collect()
    }

    /// Borrowing form of [`locked_lines`](Self::locked_lines) for hot paths
    /// (the incremental invariant sweep walks every core's lock set each
    /// sweep; a per-call `Vec` there is pure churn).
    pub fn locked_lines_iter(&self, core: CoreId) -> impl Iterator<Item = LineAddr> + '_ {
        self.caches[core.index()].locked_lines()
    }

    /// Every line tracked by any directory bank, with its externally
    /// visible state (order unspecified).
    pub fn dir_lines(&self) -> Vec<(LineAddr, DirState)> {
        self.dirs.iter().flat_map(|d| d.lines()).collect()
    }

    /// Snapshots of all Blocked directory entries across banks, tagged with
    /// their bank's tile, sorted by line address.
    pub fn blocked_dir_entries(&self) -> Vec<(usize, BlockedEntrySnapshot)> {
        let mut out: Vec<(usize, BlockedEntrySnapshot)> = self
            .dirs
            .iter()
            .flat_map(|d| d.blocked_entries().into_iter().map(move |s| (d.tile(), s)))
            .collect();
        out.sort_by_key(|(_, s)| s.line.raw());
        out
    }

    /// The mesh's latest link `busy_until` horizon (stall diagnostics).
    pub fn noc_busy_horizon(&self) -> Cycle {
        self.mesh.busy_horizon()
    }

    /// Corrupts the private-cache state of `line` at `core`, bypassing the
    /// protocol. **Robustness-testing instrumentation only.**
    pub fn corrupt_private_state_for_test(
        &mut self,
        core: CoreId,
        line: LineAddr,
        state: Option<PrivState>,
    ) {
        self.mark_dirty(line);
        self.caches[core.index()].corrupt_state_for_test(line, state);
    }

    /// Corrupts the home-directory entry of `line`, bypassing the protocol.
    /// **Robustness-testing instrumentation only.**
    pub fn corrupt_dir_state_for_test(&mut self, line: LineAddr, state: DirState) {
        self.mark_dirty(line);
        self.dirs[home_of(line, self.tiles)].corrupt_entry_for_test(line, state);
    }

    /// Interconnect statistics.
    pub fn noc_stats(&self) -> &row_noc::NocStats {
        self.mesh.stats()
    }
}

impl Codec for MemStats {
    fn encode(&self, w: &mut Writer) {
        self.miss_latency.encode(w);
        self.miss_latency_all.encode(w);
        w.put_u64(self.remote_fills);
        w.put_u64(self.home_fills);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(MemStats {
            miss_latency: Vec::<RunningMean>::decode(r)?,
            miss_latency_all: RunningMean::decode(r)?,
            remote_fills: r.get_u64()?,
            home_fills: r.get_u64()?,
        })
    }
}

impl Persist for MemorySystem {
    // `tiles` is config-derived. A checkpoint is only taken when no sticky
    // protocol error is set (the machine refuses otherwise), so `err` is not
    // encoded and restore clears it.
    fn persist(&self, w: &mut Writer) {
        self.mesh.persist(w);
        w.put_len(self.dirs.len());
        for d in &self.dirs {
            d.persist(w);
        }
        w.put_len(self.caches.len());
        for c in &self.caches {
            c.persist(w);
        }
        self.net.encode(w);
        self.out.encode(w);
        self.words.encode(w);
        self.starts.encode(w);
        self.stats.encode(w);
        self.transport.encode(w);
        self.journal.encode(w);
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        self.mesh.restore(r)?;
        if r.get_len()? != self.dirs.len() {
            return Err(PersistError::Corrupt("directory bank count mismatch"));
        }
        for d in &mut self.dirs {
            d.restore(r)?;
        }
        if r.get_len()? != self.caches.len() {
            return Err(PersistError::Corrupt("private cache count mismatch"));
        }
        for c in &mut self.caches {
            c.restore(r)?;
        }
        self.net = EventQueue::decode(r)?;
        self.out = Vec::decode(r)?;
        self.words = HashMap::decode(r)?;
        self.starts = FastMap::decode(r)?;
        self.stats = MemStats::decode(r)?;
        let transport = Option::<Transport>::decode(r)?;
        if transport.is_some() != self.transport.is_some() {
            return Err(PersistError::Corrupt("chaos-mode presence mismatch"));
        }
        self.transport = transport;
        if let Some(t) = self.transport.as_mut() {
            // The burst table is configuration, not state: re-inject it.
            t.set_perturb(self.perturb);
        }
        let journal = Option::<Vec<OpRecord>>::decode(r)?;
        if journal.is_some() != self.journal.is_some() {
            return Err(PersistError::Corrupt("oracle-journal presence mismatch"));
        }
        self.journal = journal;
        self.err = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::AccessKind;

    fn sys(cores: usize) -> MemorySystem {
        MemorySystem::new(&SystemConfig::small(cores))
    }

    fn meta(id: u64, kind: AccessKind) -> ReqMeta {
        ReqMeta {
            req_id: id,
            pc: None,
            prefetch: false,
            kind,
        }
    }

    /// Runs ticks until `pred` returns Some, or panics after `max` cycles.
    fn run_until<T>(
        m: &mut MemorySystem,
        start: Cycle,
        max: u64,
        mut pred: impl FnMut(&MemEvent) -> Option<T>,
    ) -> (Cycle, T) {
        for c in start.raw()..start.raw() + max {
            let now = Cycle::new(c);
            for ev in m.tick(now) {
                if let Some(t) = pred(&ev) {
                    return (now, t);
                }
            }
        }
        panic!("event not observed within {max} cycles");
    }

    #[test]
    fn read_miss_fills_with_home_source() {
        let mut m = sys(2);
        let line = LineAddr::new(100);
        m.access(CoreId::new(0), line, meta(1, AccessKind::Read), Cycle::ZERO);
        let (_, (src, at)) = run_until(&mut m, Cycle::ZERO, 2000, |ev| match ev {
            MemEvent::Fill {
                req_id: 1,
                source,
                at,
                ..
            } => Some((*source, *at)),
            _ => None,
        });
        assert_eq!(src, crate::msg::FillSource::L3);
        // First touch pays memory latency.
        assert!(at.raw() > 160, "fill at {at}");
        assert_eq!(m.priv_state(CoreId::new(0), line), Some(PrivState::E));
    }

    #[test]
    fn second_core_write_transfers_ownership_cache_to_cache() {
        let mut m = sys(2);
        let line = LineAddr::new(101);
        let (c0, c1) = (CoreId::new(0), CoreId::new(1));
        m.access(c0, line, meta(1, AccessKind::Write), Cycle::ZERO);
        let (t1, _) = run_until(&mut m, Cycle::ZERO, 2000, |ev| match ev {
            MemEvent::Fill { req_id: 1, .. } => Some(()),
            _ => None,
        });
        assert_eq!(m.priv_state(c0, line), Some(PrivState::M));

        m.access(c1, line, meta(2, AccessKind::Write), t1 + 1);
        let (_, src) = run_until(&mut m, t1 + 1, 2000, |ev| match ev {
            MemEvent::Fill {
                req_id: 2, source, ..
            } => Some(*source),
            _ => None,
        });
        assert_eq!(src, crate::msg::FillSource::RemotePrivate);
        assert_eq!(m.priv_state(c0, line), None, "old owner invalidated");
        assert_eq!(m.priv_state(c1, line), Some(PrivState::M));
        // Drain the in-flight Unblock before inspecting the directory.
        for c in 0..500u64 {
            let _ = m.tick(Cycle::new(10_000 + c));
        }
        assert_eq!(m.dir_state(line), DirState::Exclusive(c1));
    }

    #[test]
    fn locked_line_stalls_rival_until_unlock() {
        let mut m = sys(2);
        let line = LineAddr::new(102);
        let (c0, c1) = (CoreId::new(0), CoreId::new(1));
        m.access(c0, line, meta(1, AccessKind::Rmw), Cycle::ZERO);
        let (t1, _) = run_until(&mut m, Cycle::ZERO, 2000, |ev| match ev {
            MemEvent::Fill { req_id: 1, .. } => Some(()),
            _ => None,
        });
        assert!(m.is_locked(c0, line), "Rmw fill locks atomically");

        m.access(c1, line, meta(2, AccessKind::Rmw), t1 + 1);
        // The external request reaches core0 and stalls.
        let (t2, stalled) = run_until(&mut m, t1 + 1, 4000, |ev| match ev {
            MemEvent::ExternalObserved { core, stalled, .. } if *core == c0 => Some(*stalled),
            _ => None,
        });
        assert!(stalled);

        // Hold the lock for 500 more cycles; core1 must not fill meanwhile.
        let hold = 500;
        for c in t2.raw()..t2.raw() + hold {
            for ev in m.tick(Cycle::new(c)) {
                assert!(
                    !matches!(ev, MemEvent::Fill { req_id: 2, .. }),
                    "fill leaked past a locked line"
                );
            }
        }
        let unlock_at = t2 + hold;
        m.unlock(c0, line, unlock_at);
        let (t3, src) = run_until(&mut m, unlock_at, 2000, |ev| match ev {
            MemEvent::Fill {
                req_id: 2, source, ..
            } => Some(*source),
            _ => None,
        });
        assert_eq!(src, crate::msg::FillSource::RemotePrivate);
        assert!(t3 >= unlock_at);
        assert!(m.priv_state(c1, line) == Some(PrivState::M));
    }

    #[test]
    fn contended_fill_latency_exceeds_uncontended() {
        let mut m = sys(4);
        let line = LineAddr::new(103);
        let c0 = CoreId::new(0);
        let c1 = CoreId::new(1);
        // Uncontended remote transfer first (unlock immediately).
        m.access(c0, line, meta(1, AccessKind::Rmw), Cycle::ZERO);
        let (t1, _) = run_until(&mut m, Cycle::ZERO, 2000, |ev| match ev {
            MemEvent::Fill { req_id: 1, .. } => Some(()),
            _ => None,
        });
        m.unlock(c0, line, t1);
        m.access(c1, line, meta(2, AccessKind::Rmw), t1 + 1);
        let (_, uncontended) = run_until(&mut m, t1 + 1, 2000, |ev| match ev {
            MemEvent::Fill {
                req_id: 2,
                at,
                issued_at,
                ..
            } => Some(at.saturating_since(*issued_at)),
            _ => None,
        });

        // Contended: owner holds the lock for 600 cycles.
        let line2 = LineAddr::new(203);
        m.access(c0, line2, meta(3, AccessKind::Rmw), Cycle::new(10_000));
        let (t2, _) = run_until(&mut m, Cycle::new(10_000), 2000, |ev| match ev {
            MemEvent::Fill { req_id: 3, .. } => Some(()),
            _ => None,
        });
        // The Rmw fill auto-locked line2 at core0; hold it for 600 cycles.
        m.access(c1, line2, meta(4, AccessKind::Rmw), t2 + 1);
        for c in t2.raw() + 1..t2.raw() + 600 {
            let _ = m.tick(Cycle::new(c));
        }
        m.unlock(c0, line2, t2 + 600);
        let (_, contended) = run_until(&mut m, t2 + 600, 2000, |ev| match ev {
            MemEvent::Fill {
                req_id: 4,
                at,
                issued_at,
                ..
            } => Some(at.saturating_since(*issued_at)),
            _ => None,
        });
        assert!(
            contended > uncontended + 400,
            "contended {contended} vs uncontended {uncontended}"
        );
    }

    #[test]
    fn functional_word_store_round_trips() {
        let mut m = sys(1);
        assert_eq!(m.read_word(Addr::new(0x1000)), 0);
        m.write_word(Addr::new(0x1000), 7);
        assert_eq!(m.read_word(Addr::new(0x1004)), 7, "same 8-byte word");
        m.write_word(Addr::new(0x1008), 9);
        assert_eq!(m.read_word(Addr::new(0x1000)), 7);
    }

    #[test]
    fn read_sharing_then_upgrade_invalidates_reader() {
        let mut m = sys(3);
        let line = LineAddr::new(104);
        let (c0, c1) = (CoreId::new(0), CoreId::new(1));
        m.access(c0, line, meta(1, AccessKind::Read), Cycle::ZERO);
        let (t1, _) = run_until(&mut m, Cycle::ZERO, 2000, |ev| match ev {
            MemEvent::Fill { req_id: 1, .. } => Some(()),
            _ => None,
        });
        m.access(c1, line, meta(2, AccessKind::Read), t1 + 1);
        let (t2, _) = run_until(&mut m, t1 + 1, 2000, |ev| match ev {
            MemEvent::Fill { req_id: 2, .. } => Some(()),
            _ => None,
        });
        assert_eq!(m.priv_state(c0, line), Some(PrivState::S));
        assert_eq!(m.priv_state(c1, line), Some(PrivState::S));

        m.access(c1, line, meta(3, AccessKind::Write), t2 + 1);
        let (_, _) = run_until(&mut m, t2 + 1, 4000, |ev| match ev {
            MemEvent::Fill { req_id: 3, .. } => Some(()),
            _ => None,
        });
        assert_eq!(m.priv_state(c0, line), None);
        assert_eq!(m.priv_state(c1, line), Some(PrivState::M));
    }

    #[test]
    fn miss_latency_stats_accumulate() {
        let mut m = sys(2);
        m.access(
            CoreId::new(0),
            LineAddr::new(500),
            meta(1, AccessKind::Read),
            Cycle::ZERO,
        );
        run_until(&mut m, Cycle::ZERO, 2000, |ev| match ev {
            MemEvent::Fill { req_id: 1, .. } => Some(()),
            _ => None,
        });
        assert_eq!(m.stats().miss_latency_all.count(), 1);
        assert!(m.stats().miss_latency_all.mean() > 100.0);
    }

    #[test]
    fn single_core_system_works_end_to_end() {
        let mut m = sys(1);
        let c0 = CoreId::new(0);
        for k in 0..20u64 {
            m.access(
                c0,
                LineAddr::new(k * 3),
                meta(k, AccessKind::Read),
                Cycle::new(k),
            );
        }
        let mut fills = 0;
        for c in 0..5000u64 {
            fills += m
                .tick(Cycle::new(c))
                .iter()
                .filter(|e| matches!(e, MemEvent::Fill { .. }))
                .count();
        }
        assert_eq!(fills, 20);
    }
}
