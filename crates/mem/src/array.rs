//! A generic set-associative cache array with true-LRU replacement.
//!
//! The array tracks *presence* (tags) only; coherence state lives in the
//! controllers. Victim selection accepts an evictability predicate so cache
//! locking (Atomic Queue) can pin lines, exactly as the paper's AQ annotates
//! set/way to block evictions of locked lines.

use row_common::config::CacheConfig;
use row_common::ids::LineAddr;
use row_common::persist::{Codec, Persist, PersistError, Reader, Writer};

/// Outcome of inserting a line into a [`CacheArray`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Insert {
    /// The line was already present (refreshed LRU).
    Hit,
    /// Inserted into an empty/invalid way.
    Placed,
    /// Inserted after evicting the returned victim.
    Evicted(LineAddr),
    /// Every candidate way is pinned; the line was *not* cached.
    NoVictim,
}

#[derive(Clone, Debug)]
struct Way {
    tag: Option<LineAddr>,
    /// Larger = more recently used.
    lru: u64,
}

/// Set-associative tag array with true-LRU replacement.
///
/// # Example
/// ```
/// use row_common::config::CacheConfig;
/// use row_common::ids::LineAddr;
/// use row_mem::array::CacheArray;
///
/// let mut c = CacheArray::new(CacheConfig { size_bytes: 1024, ways: 2, hit_latency: 1 });
/// c.insert(LineAddr::new(1), |_| true);
/// assert!(c.contains(LineAddr::new(1)));
/// ```
#[derive(Clone, Debug)]
pub struct CacheArray {
    sets: usize,
    ways: usize,
    data: Vec<Way>,
    tick: u64,
}

impl CacheArray {
    /// Builds an array from a geometry description.
    ///
    /// # Panics
    /// Panics if the geometry does not divide into whole sets.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        CacheArray {
            sets,
            ways: cfg.ways,
            data: vec![Way { tag: None, lru: 0 }; sets * cfg.ways],
            tick: 0,
        }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.raw() as usize) % self.sets
    }

    fn set_slice(&mut self, set: usize) -> &mut [Way] {
        &mut self.data[set * self.ways..(set + 1) * self.ways]
    }

    /// Number of sets.
    pub const fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub const fn ways(&self) -> usize {
        self.ways
    }

    /// Whether `line` is present (does not update LRU).
    pub fn contains(&self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        self.data[set * self.ways..(set + 1) * self.ways]
            .iter()
            .any(|w| w.tag == Some(line))
    }

    /// Looks up `line`, refreshing LRU on hit.
    pub fn touch(&mut self, line: LineAddr) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        for w in self.set_slice(set) {
            if w.tag == Some(line) {
                w.lru = tick;
                return true;
            }
        }
        false
    }

    /// Inserts `line`, evicting the LRU way among those for which
    /// `evictable` returns `true`. Pinned (non-evictable) lines are never
    /// chosen as victims.
    pub fn insert(&mut self, line: LineAddr, evictable: impl Fn(LineAddr) -> bool) -> Insert {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        let slice = self.set_slice(set);
        // Already present?
        for w in slice.iter_mut() {
            if w.tag == Some(line) {
                w.lru = tick;
                return Insert::Hit;
            }
        }
        // Empty way?
        for w in slice.iter_mut() {
            if w.tag.is_none() {
                w.tag = Some(line);
                w.lru = tick;
                return Insert::Placed;
            }
        }
        // LRU among evictable ways.
        let victim = slice
            .iter_mut()
            .filter(|w| w.tag.is_some_and(&evictable))
            .min_by_key(|w| w.lru);
        match victim {
            Some(w) => {
                let old = w.tag.expect("victim has a tag");
                w.tag = Some(line);
                w.lru = tick;
                Insert::Evicted(old)
            }
            None => Insert::NoVictim,
        }
    }

    /// Removes `line` if present; returns whether it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        for w in self.set_slice(set) {
            if w.tag == Some(line) {
                w.tag = None;
                w.lru = 0;
                return true;
            }
        }
        false
    }

    /// Number of resident lines (O(capacity); for tests/stats).
    pub fn occupancy(&self) -> usize {
        self.data.iter().filter(|w| w.tag.is_some()).count()
    }
}

impl Codec for Way {
    fn encode(&self, w: &mut Writer) {
        self.tag.encode(w);
        w.put_u64(self.lru);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Way {
            tag: Option::<LineAddr>::decode(r)?,
            lru: r.get_u64()?,
        })
    }
}

impl Persist for CacheArray {
    // Geometry (sets/ways) is config-derived; tags and LRU state are mutable.
    fn persist(&self, w: &mut Writer) {
        self.data.encode(w);
        w.put_u64(self.tick);
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        let data = Vec::<Way>::decode(r)?;
        if data.len() != self.data.len() {
            return Err(PersistError::Corrupt("cache array geometry mismatch"));
        }
        self.data = data;
        self.tick = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: usize, sets: usize) -> CacheArray {
        CacheArray::new(CacheConfig {
            size_bytes: ways * sets * 64,
            ways,
            hit_latency: 1,
        })
    }

    fn line_in_set(set: usize, k: u64, sets: usize) -> LineAddr {
        LineAddr::new(set as u64 + k * sets as u64)
    }

    #[test]
    fn insert_then_contains() {
        let mut c = tiny(2, 4);
        assert_eq!(c.insert(LineAddr::new(5), |_| true), Insert::Placed);
        assert!(c.contains(LineAddr::new(5)));
        assert!(!c.contains(LineAddr::new(6)));
    }

    #[test]
    fn reinsert_is_hit() {
        let mut c = tiny(2, 4);
        c.insert(LineAddr::new(5), |_| true);
        assert_eq!(c.insert(LineAddr::new(5), |_| true), Insert::Hit);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2, 4);
        let a = line_in_set(0, 0, 4);
        let b = line_in_set(0, 1, 4);
        let d = line_in_set(0, 2, 4);
        c.insert(a, |_| true);
        c.insert(b, |_| true);
        c.touch(a); // b is now LRU
        assert_eq!(c.insert(d, |_| true), Insert::Evicted(b));
        assert!(c.contains(a) && c.contains(d) && !c.contains(b));
    }

    #[test]
    fn pinned_lines_survive() {
        let mut c = tiny(2, 4);
        let a = line_in_set(1, 0, 4);
        let b = line_in_set(1, 1, 4);
        let d = line_in_set(1, 2, 4);
        c.insert(a, |_| true);
        c.insert(b, |_| true);
        // `a` is LRU but pinned: `b` must be evicted instead.
        assert_eq!(c.insert(d, |l| l != a), Insert::Evicted(b));
        assert!(c.contains(a));
    }

    #[test]
    fn all_pinned_yields_no_victim() {
        let mut c = tiny(2, 4);
        let a = line_in_set(2, 0, 4);
        let b = line_in_set(2, 1, 4);
        let d = line_in_set(2, 2, 4);
        c.insert(a, |_| true);
        c.insert(b, |_| true);
        assert_eq!(c.insert(d, |_| false), Insert::NoVictim);
        assert!(!c.contains(d));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny(2, 4);
        c.insert(LineAddr::new(9), |_| true);
        assert!(c.invalidate(LineAddr::new(9)));
        assert!(!c.contains(LineAddr::new(9)));
        assert!(!c.invalidate(LineAddr::new(9)));
    }

    #[test]
    fn occupancy_counts() {
        let mut c = tiny(2, 4);
        assert_eq!(c.occupancy(), 0);
        c.insert(LineAddr::new(1), |_| true);
        c.insert(LineAddr::new(2), |_| true);
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny(1, 4);
        for k in 0..4u64 {
            assert_eq!(c.insert(LineAddr::new(k), |_| true), Insert::Placed);
        }
        assert_eq!(c.occupancy(), 4);
    }
}
