//! Cache hierarchy and directory coherence — the GEMS substitute.
//!
//! This crate implements everything below the core's load/store ports:
//!
//! * [`mod@array`] — set-associative tag arrays with LRU and pinnable
//!   (locked) lines.
//! * [`prefetch`] — the L1D IP-stride prefetcher from Table I.
//! * [`private`] — the per-core private controller (L1D + L2): MSHRs,
//!   coherence state, the cache-lock table, and the stall queue for external
//!   requests that hit locked lines.
//! * [`directory`] — unblock-based MESI directory banks with *Blocked*
//!   transient states (the Fig. 8 dynamics).
//! * [`system`] — [`MemorySystem`], gluing caches, directories and the
//!   [`row_noc`] mesh together, plus the functional word store used to prove
//!   atomicity end-to-end.
//! * [`mod@transport`] — chaos-mode fault injection and, under *lossy*
//!   faults (drop/duplicate/corrupt), the recoverable transport: sequence
//!   numbers, dedup, checksums + NACK, and timeout retransmission with
//!   bounded exponential backoff.
//! * [`mod@journal`] — the apply-order write journal replayed by the
//!   `row-oracle` differential checker.
//!
//! # Example
//!
//! ```
//! use row_common::{Cycle, SystemConfig, ids::{CoreId, LineAddr}};
//! use row_mem::{AccessKind, MemEvent, MemorySystem, ReqMeta};
//!
//! let mut mem = MemorySystem::new(&SystemConfig::small(2));
//! let meta = ReqMeta { req_id: 1, pc: None, prefetch: false, kind: AccessKind::Read };
//! mem.access(CoreId::new(0), LineAddr::new(42), meta, Cycle::ZERO);
//! let mut filled = false;
//! for c in 0..2000 {
//!     for ev in mem.tick(Cycle::new(c)) {
//!         if let MemEvent::Fill { req_id: 1, .. } = ev { filled = true; }
//!     }
//! }
//! assert!(filled);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod directory;
pub mod error;
pub mod journal;
pub mod msg;
pub mod prefetch;
pub mod private;
pub mod system;
pub mod transport;

pub use directory::{BlockedEntrySnapshot, BlockedPhase, DirState, DirStats};
pub use error::ProtocolError;
pub use journal::{OpKind, OpRecord};
pub use msg::{AccessKind, Endpoint, FillSource, Frame, MemEvent, Msg, ReqMeta};
pub use private::{PrivState, PrivStats};
pub use system::{MemStats, MemorySystem};
pub use transport::InflightProbe;
