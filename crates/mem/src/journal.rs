//! Apply-order journal of architectural memory writes.
//!
//! When `CheckConfig::oracle` is enabled, the memory system records every
//! atomic RMW application and every committed store in the order it hits the
//! functional word store. That order is a linearization witness: replaying
//! it through `row-oracle`'s sequential golden model must reproduce both
//! every RMW's observed old value (its architectural return value) and the
//! machine's final memory state. A transport bug that applies an atomic
//! twice (duplicate delivery) or never (drop without retransmission) breaks
//! the replay even when the timing side of the run looks healthy.

use row_common::ids::{Addr, CoreId};
use row_common::persist::{Codec, PersistError, Reader, Writer};
use row_common::rmw::RmwKind;
use row_common::Cycle;

/// One architectural write, in apply order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OpRecord {
    /// Core that architecturally performed the write.
    pub core: CoreId,
    /// Cycle the write hit the functional word store.
    pub at: Cycle,
    /// The write itself.
    pub kind: OpKind,
}

/// The write recorded by an [`OpRecord`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// An atomic read-modify-write.
    Rmw {
        /// Address operated on.
        addr: Addr,
        /// The modify operation.
        rmw: RmwKind,
        /// The old value the machine observed — the RMW's return value,
        /// which the oracle's replay must reproduce exactly.
        observed_old: u64,
    },
    /// A committed plain store.
    Store {
        /// Address written.
        addr: Addr,
        /// Value written.
        value: u64,
    },
}

impl Codec for OpKind {
    fn encode(&self, w: &mut Writer) {
        match *self {
            OpKind::Rmw {
                addr,
                rmw,
                observed_old,
            } => {
                w.put_u8(0);
                addr.encode(w);
                rmw.encode(w);
                w.put_u64(observed_old);
            }
            OpKind::Store { addr, value } => {
                w.put_u8(1);
                addr.encode(w);
                w.put_u64(value);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.get_u8()? {
            0 => OpKind::Rmw {
                addr: Addr::decode(r)?,
                rmw: RmwKind::decode(r)?,
                observed_old: r.get_u64()?,
            },
            1 => OpKind::Store {
                addr: Addr::decode(r)?,
                value: r.get_u64()?,
            },
            tag => {
                return Err(PersistError::BadTag {
                    what: "OpKind",
                    tag,
                })
            }
        })
    }
}

impl Codec for OpRecord {
    fn encode(&self, w: &mut Writer) {
        self.core.encode(w);
        self.at.encode(w);
        self.kind.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(OpRecord {
            core: CoreId::decode(r)?,
            at: Cycle::decode(r)?,
            kind: OpKind::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use row_common::persist::roundtrip;

    #[test]
    fn records_roundtrip() {
        let records = [
            OpRecord {
                core: CoreId::new(2),
                at: Cycle::new(77),
                kind: OpKind::Rmw {
                    addr: Addr::new(0xf000),
                    rmw: RmwKind::Faa(3),
                    observed_old: 41,
                },
            },
            OpRecord {
                core: CoreId::new(0),
                at: Cycle::new(78),
                kind: OpKind::Store {
                    addr: Addr::new(0x88),
                    value: 9,
                },
            },
        ];
        for rec in records {
            assert_eq!(roundtrip(&rec).unwrap(), rec);
        }
    }
}
