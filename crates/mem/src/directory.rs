//! Home directory bank (co-located with an L3 slice at each tile).
//!
//! Implements an unblock-based MESI directory in the style of GEMS'
//! `MESI_CMP_directory`, which the paper's memory system uses. The property
//! the paper's Fig. 8 depends on is modelled faithfully: from the moment the
//! directory sends data (or forwards a request) until the requester's
//! `Unblock` arrives, the entry is *Blocked* and later requests queue — so a
//! second core's invalidation only reaches the first core after the
//! unblock/invalidation round trip.
//!
//! # Known-unreachable transition-coverage pairs
//!
//! `norush fuzz`, `norush litmus`, and `norush explore` all track every
//! directory `(state, event)` pair in the shared coverage map
//! ([`row_common::coverage`]) and report never-exercised pairs. The two
//! workloads light complementary regions: the RMW-heavy lock-service fuzz
//! kernels drive the atomic/GetX paths, while the plain-load litmus shapes
//! (notably the three-reader `3r1w` test) drive the Shared-state grant arms
//! — `dir:Shared/GetS`, the arm that hosts the planted
//! `--inject-early-unblock` bug. The following directory pairs are expected
//! to stay dark under *both*; a run that *does* light one indicates a
//! protocol bug, not progress:
//!
//! * `dir:<any>/Other` — every message a directory bank receives is one of
//!   the classified kinds; the catch-all arm exists only for coverage-space
//!   completeness.
//! * `dir:Uncached|Shared|Exclusive/Unblock` — `Unblock` is only ever sent
//!   by a requester that the directory is currently blocked on; its arrival
//!   at a non-Blocked entry is precisely the early-unblock race class the
//!   planted `--inject-early-unblock` bug re-creates.
//! * `dir:Uncached|Shared|Exclusive/InvAck` and
//!   `dir:Blocked/AwaitUnblock/InvAck` — invalidation acks are only
//!   solicited while `Blocked/CollectingAcks`; anywhere else they would be
//!   stray (and trip the sharer-count underflow check).
//!
//! Two more families are unreachable under the *workloads* rather than by
//! protocol design: `dir:<any>/PutM` needs a capacity eviction of a dirty
//! line, and both the lock-service working set and the two-line litmus
//! programs fit the private caches, so no writeback traffic exists. Growing
//! a workload beyond the private-cache footprint would light those
//! legitimately.

use std::collections::{BTreeSet, VecDeque};

use row_common::config::CacheConfig;
use row_common::coverage;
use row_common::fastmap::FastMap;
use row_common::ids::{CoreId, LineAddr};
use row_common::persist::{Codec, Persist, PersistError, Reader, Writer};
use row_common::rmw::RmwKind;
use row_common::Cycle;

use crate::array::CacheArray;
use crate::error::ProtocolError;
use crate::msg::{Endpoint, Msg};
use crate::private::CacheAction;

/// Stable (non-transient) directory state of a line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DirState {
    /// No private copy exists; memory/L3 is the owner.
    Uncached,
    /// Read-only copies at the listed cores.
    Shared(BTreeSet<CoreId>),
    /// A single private cache owns the line (E or M there).
    Exclusive(CoreId),
    /// A transaction is in flight; requests queue.
    Blocked,
}

#[derive(Clone, Debug)]
enum Entry {
    Shared(BTreeSet<CoreId>),
    Exclusive(CoreId),
    Blocked(Box<BlockInfo>),
}

#[derive(Clone, Debug)]
struct BlockInfo {
    next: Entry2,
    phase: Phase,
    queue: VecDeque<Msg>,
}

/// Post-unblock state (cannot itself be Blocked).
#[derive(Clone, Debug)]
enum Entry2 {
    Shared(BTreeSet<CoreId>),
    Exclusive(CoreId),
}

#[derive(Clone, Debug)]
enum Phase {
    /// Data (or a forward) is on its way; waiting for the requester's
    /// `Unblock`.
    AwaitUnblock,
    /// Invalidations outstanding; data (or the far-atomic apply) follows
    /// once all acks arrive.
    CollectingAcks {
        req: CoreId,
        pending: usize,
        /// `Some` when this transaction is a far atomic performed here.
        far: Option<(RmwKind, u64)>,
    },
}

/// The externally visible phase of a Blocked entry (diagnostics).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockedPhase {
    /// Waiting for the requester's `Unblock`.
    AwaitUnblock,
    /// Collecting invalidation acks before serving `req`.
    CollectingAcks {
        /// The requester that will be served once the acks arrive.
        req: CoreId,
        /// Acks still outstanding.
        pending: usize,
        /// Whether the transaction is a far atomic performed at this bank.
        far: bool,
    },
}

/// Diagnostic snapshot of one Blocked directory entry: what the transaction
/// is waiting for, and which requests are queued behind it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockedEntrySnapshot {
    /// The blocked line.
    pub line: LineAddr,
    /// What the in-flight transaction is waiting on.
    pub phase: BlockedPhase,
    /// Requests queued behind the transaction, in arrival order.
    pub queued: Vec<Msg>,
}

/// Directory bank counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DirStats {
    /// GetS requests processed.
    pub gets: u64,
    /// GetX requests processed.
    pub getx: u64,
    /// Requests forwarded to an owner.
    pub forwards: u64,
    /// Invalidations sent to sharers.
    pub invalidations: u64,
    /// Requests that found the entry Blocked and queued.
    pub queued: u64,
    /// L3 data misses (paid the memory latency).
    pub l3_misses: u64,
    /// Writebacks accepted.
    pub writebacks: u64,
    /// Far atomics executed at this bank.
    pub far_atomics: u64,
}

/// One directory bank + L3 slice.
#[derive(Clone, Debug)]
pub struct DirBank {
    tile: usize,
    l3: CacheArray,
    l3_lat: u64,
    mem_lat: u64,
    entries: FastMap<LineAddr, Entry>,
    stats: DirStats,
    /// Armed test-only planted bug: serve GetS-on-Shared *without* blocking
    /// (the seed-era race PR 6 fixed). See
    /// [`DirBank::inject_early_unblock_for_test`].
    early_unblock_bug: bool,
}

impl DirBank {
    /// Creates the bank at `tile` with the given L3-slice geometry.
    pub fn new(tile: usize, l3_cfg: CacheConfig, mem_lat: u64) -> Self {
        DirBank {
            tile,
            l3: CacheArray::new(l3_cfg),
            l3_lat: l3_cfg.hit_latency,
            mem_lat,
            entries: FastMap::new(),
            stats: DirStats::default(),
            early_unblock_bug: false,
        }
    }

    /// Test instrumentation: re-plants the seed-era directory race that PR 6
    /// fixed. A GetS served from a `Shared` entry no longer blocks awaiting
    /// the requester's `Unblock`, so that unconditional `Unblock` can land
    /// while a *later* transaction holds the entry Blocked and release it
    /// prematurely — dropping a CollectingAcks phase (livelock) or replaying
    /// the queue before the new owner has data (double exclusive grant /
    /// SWMR violation). Exists so the schedule fuzzer has a known race class
    /// to regression-find. Not persisted across checkpoint/restore; arm it
    /// after any restore.
    pub fn inject_early_unblock_for_test(&mut self) {
        self.early_unblock_bug = true;
    }

    /// This bank's tile index.
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Counters so far.
    pub fn stats(&self) -> &DirStats {
        &self.stats
    }

    /// The externally visible state of a line (for tests/invariants).
    pub fn state(&self, line: LineAddr) -> DirState {
        match self.entries.get(&line) {
            None => DirState::Uncached,
            Some(Entry::Shared(s)) => DirState::Shared(s.clone()),
            Some(Entry::Exclusive(o)) => DirState::Exclusive(*o),
            Some(Entry::Blocked(_)) => DirState::Blocked,
        }
    }

    /// Every line this bank tracks, with its externally visible state
    /// (iteration order is insertion-stable, not sorted).
    pub fn lines(&self) -> impl Iterator<Item = (LineAddr, DirState)> + '_ {
        self.entries.keys().map(|l| (l, self.state(l)))
    }

    /// Queue depth of `line`'s entry when it is Blocked, `None` otherwise
    /// (the incremental invariant sweep's per-line queue-bound probe).
    pub fn blocked_depth(&self, line: LineAddr) -> Option<usize> {
        match self.entries.get(&line) {
            Some(Entry::Blocked(b)) => Some(b.queue.len()),
            _ => None,
        }
    }

    /// Snapshots of every Blocked entry at this bank (diagnostics).
    pub fn blocked_entries(&self) -> Vec<BlockedEntrySnapshot> {
        let mut out = Vec::new();
        self.blocked_entries_into(&mut out);
        out
    }

    /// Appends a snapshot of every Blocked entry at this bank to `out`
    /// (sorted by line), reusing the caller's buffer — the allocation-free
    /// form diagnostics paths call repeatedly.
    pub fn blocked_entries_into(&self, out: &mut Vec<BlockedEntrySnapshot>) {
        let start = out.len();
        out.extend(self.entries.iter().filter_map(|(line, e)| {
            let Entry::Blocked(b) = e else { return None };
            let phase = match &b.phase {
                Phase::AwaitUnblock => BlockedPhase::AwaitUnblock,
                Phase::CollectingAcks { req, pending, far } => BlockedPhase::CollectingAcks {
                    req: *req,
                    pending: *pending,
                    far: far.is_some(),
                },
            };
            Some(BlockedEntrySnapshot {
                line,
                phase,
                queued: b.queue.iter().copied().collect(),
            })
        }));
        out[start..].sort_by_key(|s| s.line.raw());
    }

    /// Overwrites the entry for `line` with a stable state, bypassing the
    /// protocol. **Robustness-testing instrumentation only**: used to verify
    /// the invariant checker catches corrupted directory state. `Blocked`
    /// installs an empty awaiting-unblock entry.
    pub fn corrupt_entry_for_test(&mut self, line: LineAddr, state: DirState) {
        match state {
            DirState::Uncached => {
                self.entries.remove(&line);
            }
            DirState::Shared(s) => {
                self.entries.insert(line, Entry::Shared(s));
            }
            DirState::Exclusive(o) => {
                self.entries.insert(line, Entry::Exclusive(o));
            }
            DirState::Blocked => {
                self.entries.insert(
                    line,
                    Entry::Blocked(Box::new(BlockInfo {
                        next: Entry2::Exclusive(CoreId::new(0)),
                        phase: Phase::AwaitUnblock,
                        queue: VecDeque::new(),
                    })),
                );
            }
        }
    }

    /// Records the `(state, event)` transition-coverage pair for the fuzzer.
    /// A no-op unless a coverage sink is installed on this thread.
    fn record_coverage(&self, line: LineAddr, msg: &Msg) {
        use coverage::{DirEvent, DirState as CovState};
        let state = match self.entries.get(&line) {
            None => CovState::Uncached,
            Some(Entry::Shared(_)) => CovState::Shared,
            Some(Entry::Exclusive(_)) => CovState::Exclusive,
            Some(Entry::Blocked(b)) => match b.phase {
                Phase::AwaitUnblock => CovState::BlockedAwaitUnblock,
                Phase::CollectingAcks { .. } => CovState::BlockedCollectingAcks,
            },
        };
        let event = match msg {
            Msg::GetS { .. } => DirEvent::GetS,
            Msg::GetX { .. } => DirEvent::GetX,
            Msg::PutM { .. } => DirEvent::PutM,
            Msg::AtomicFar { .. } => DirEvent::AtomicFar,
            Msg::Unblock { .. } => DirEvent::Unblock,
            Msg::InvAck { .. } => DirEvent::InvAck,
            _ => DirEvent::Other,
        };
        coverage::record(coverage::dir_slot(state, event));
    }

    /// Cycle at which the L3 slice can supply data for `line` when accessed
    /// at `now` (charges the memory latency on an L3 miss and allocates).
    fn data_ready(&mut self, line: LineAddr, now: Cycle) -> Cycle {
        if self.l3.touch(line) {
            now + self.l3_lat
        } else {
            self.stats.l3_misses += 1;
            let _ = self.l3.insert(line, |_| true);
            now + self.l3_lat + self.mem_lat
        }
    }

    /// Handles a protocol message addressed to this bank.
    ///
    /// # Errors
    /// Returns a [`ProtocolError`] when the message has no legal transition
    /// from the current entry state (a modelling bug or corrupted state, not
    /// a recoverable condition).
    pub fn handle_msg(
        &mut self,
        msg: Msg,
        now: Cycle,
        actions: &mut Vec<CacheAction>,
    ) -> Result<(), ProtocolError> {
        let line = msg.line();
        self.record_coverage(line, &msg);
        // Requests against a blocked entry queue; unblock/acks pass through.
        if let Some(Entry::Blocked(_)) = self.entries.get(&line) {
            match msg {
                Msg::Unblock { .. } => return self.handle_unblock(line, now, actions),
                Msg::InvAck { from, .. } => return self.handle_inv_ack(from, line, now, actions),
                other => {
                    self.stats.queued += 1;
                    if let Some(Entry::Blocked(b)) = self.entries.get_mut(&line) {
                        b.queue.push_back(other);
                    }
                }
            }
            return Ok(());
        }
        match msg {
            Msg::GetS { req, line } => self.handle_gets(req, line, now, actions),
            Msg::GetX { req, line } => self.handle_getx(req, line, now, actions),
            Msg::PutM { from, line } => {
                self.handle_putm(from, line, now, actions);
                Ok(())
            }
            Msg::AtomicFar {
                req,
                line,
                rmw,
                req_id,
            } => self.handle_far(req, line, rmw, req_id, now, actions),
            Msg::Unblock { .. } => {
                // Unblock for an already-stable entry: ignore (idempotent).
                Ok(())
            }
            Msg::InvAck { .. } => {
                // Ack raced past a resolved transaction: ignore.
                Ok(())
            }
            other => Err(ProtocolError::DirUnexpectedMessage {
                tile: self.tile,
                msg: other,
            }),
        }
    }

    fn handle_gets(
        &mut self,
        req: CoreId,
        line: LineAddr,
        now: Cycle,
        actions: &mut Vec<CacheAction>,
    ) -> Result<(), ProtocolError> {
        self.stats.gets += 1;
        // Take the entry out instead of cloning it: every arm installs a
        // fresh entry, and the sharer sets inside can be arbitrarily large.
        match self.entries.remove(&line) {
            None => {
                // Uncached: grant Exclusive (MESI E) straight away.
                let at = self.data_ready(line, now);
                actions.push(CacheAction::Send {
                    to: Endpoint::Core(req),
                    msg: Msg::Data {
                        req,
                        line,
                        excl: true,
                        from_private: false,
                    },
                    at,
                });
                self.entries.insert(
                    line,
                    Entry::Blocked(Box::new(BlockInfo {
                        next: Entry2::Exclusive(req),
                        phase: Phase::AwaitUnblock,
                        queue: VecDeque::new(),
                    })),
                );
            }
            Some(Entry::Shared(mut s)) => {
                // Serve from the L3 copy, but block until the requester's
                // Unblock arrives. Every fill sends an Unblock; if this grant
                // did not block, that Unblock could land while a *later*
                // transaction holds the entry Blocked and release it
                // prematurely (dropping a CollectingAcks phase or replaying
                // the queue before the new owner has data).
                let at = self.data_ready(line, now);
                actions.push(CacheAction::Send {
                    to: Endpoint::Core(req),
                    msg: Msg::Data {
                        req,
                        line,
                        excl: false,
                        from_private: false,
                    },
                    at,
                });
                s.insert(req);
                if self.early_unblock_bug {
                    // Planted bug: the seed-era non-blocking grant, exactly
                    // the race described above. The requester's unmatched
                    // Unblock is now free to release a later transaction.
                    self.entries.insert(line, Entry::Shared(s));
                } else {
                    self.entries.insert(
                        line,
                        Entry::Blocked(Box::new(BlockInfo {
                            next: Entry2::Shared(s),
                            phase: Phase::AwaitUnblock,
                            queue: VecDeque::new(),
                        })),
                    );
                }
            }
            Some(Entry::Exclusive(owner)) => {
                self.stats.forwards += 1;
                actions.push(CacheAction::Send {
                    to: Endpoint::Core(owner),
                    msg: Msg::FwdGetS { req, line },
                    at: now + self.l3_lat,
                });
                let mut sharers = BTreeSet::new();
                sharers.insert(owner);
                sharers.insert(req);
                self.entries.insert(
                    line,
                    Entry::Blocked(Box::new(BlockInfo {
                        next: Entry2::Shared(sharers),
                        phase: Phase::AwaitUnblock,
                        queue: VecDeque::new(),
                    })),
                );
            }
            Some(e @ Entry::Blocked(_)) => {
                self.entries.insert(line, e);
                debug_assert!(false, "blocked entries are queued by handle_msg");
                return Err(ProtocolError::BlockedEntryReentered {
                    tile: self.tile,
                    msg: Msg::GetS { req, line },
                });
            }
        }
        Ok(())
    }

    fn handle_getx(
        &mut self,
        req: CoreId,
        line: LineAddr,
        now: Cycle,
        actions: &mut Vec<CacheAction>,
    ) -> Result<(), ProtocolError> {
        self.stats.getx += 1;
        match self.entries.remove(&line) {
            None => {
                let at = self.data_ready(line, now);
                actions.push(CacheAction::Send {
                    to: Endpoint::Core(req),
                    msg: Msg::Data {
                        req,
                        line,
                        excl: true,
                        from_private: false,
                    },
                    at,
                });
                self.entries.insert(
                    line,
                    Entry::Blocked(Box::new(BlockInfo {
                        next: Entry2::Exclusive(req),
                        phase: Phase::AwaitUnblock,
                        queue: VecDeque::new(),
                    })),
                );
            }
            Some(Entry::Shared(s)) => {
                // No scratch Vec: count, then walk the set again for the
                // invalidation sends.
                let others = s.iter().filter(|c| **c != req).count();
                if others == 0 {
                    let at = self.data_ready(line, now);
                    actions.push(CacheAction::Send {
                        to: Endpoint::Core(req),
                        msg: Msg::Data {
                            req,
                            line,
                            excl: true,
                            from_private: false,
                        },
                        at,
                    });
                    self.entries.insert(
                        line,
                        Entry::Blocked(Box::new(BlockInfo {
                            next: Entry2::Exclusive(req),
                            phase: Phase::AwaitUnblock,
                            queue: VecDeque::new(),
                        })),
                    );
                } else {
                    for other in s.iter().filter(|c| **c != req) {
                        self.stats.invalidations += 1;
                        actions.push(CacheAction::Send {
                            to: Endpoint::Core(*other),
                            msg: Msg::Inv { line },
                            at: now + self.l3_lat,
                        });
                    }
                    self.entries.insert(
                        line,
                        Entry::Blocked(Box::new(BlockInfo {
                            next: Entry2::Exclusive(req),
                            phase: Phase::CollectingAcks {
                                req,
                                pending: others,
                                far: None,
                            },
                            queue: VecDeque::new(),
                        })),
                    );
                }
            }
            Some(Entry::Exclusive(owner)) => {
                self.stats.forwards += 1;
                actions.push(CacheAction::Send {
                    to: Endpoint::Core(owner),
                    msg: Msg::FwdGetX { req, line },
                    at: now + self.l3_lat,
                });
                self.entries.insert(
                    line,
                    Entry::Blocked(Box::new(BlockInfo {
                        next: Entry2::Exclusive(req),
                        phase: Phase::AwaitUnblock,
                        queue: VecDeque::new(),
                    })),
                );
            }
            Some(e @ Entry::Blocked(_)) => {
                self.entries.insert(line, e);
                debug_assert!(false, "blocked entries are queued by handle_msg");
                return Err(ProtocolError::BlockedEntryReentered {
                    tile: self.tile,
                    msg: Msg::GetX { req, line },
                });
            }
        }
        Ok(())
    }

    fn handle_putm(
        &mut self,
        from: CoreId,
        line: LineAddr,
        now: Cycle,
        actions: &mut Vec<CacheAction>,
    ) {
        let is_owner = matches!(self.entries.get(&line), Some(Entry::Exclusive(o)) if *o == from);
        if is_owner {
            self.stats.writebacks += 1;
            self.entries.remove(&line);
            let _ = self.l3.insert(line, |_| true);
            actions.push(CacheAction::Send {
                to: Endpoint::Core(from),
                msg: Msg::WbAck { line },
                at: now + self.l3_lat,
            });
        } else {
            actions.push(CacheAction::Send {
                to: Endpoint::Core(from),
                msg: Msg::WbStale { line },
                at: now + self.l3_lat,
            });
        }
    }

    fn handle_inv_ack(
        &mut self,
        from: CoreId,
        line: LineAddr,
        now: Cycle,
        actions: &mut Vec<CacheAction>,
    ) -> Result<(), ProtocolError> {
        let tile = self.tile;
        let Some(Entry::Blocked(b)) = self.entries.get_mut(&line) else {
            return Ok(()); // stale ack
        };
        let Phase::CollectingAcks { req, pending, far } = &mut b.phase else {
            return Ok(()); // stale ack
        };
        // An ack with nothing pending means the transaction's sharer
        // bookkeeping is corrupt; surface it instead of underflowing.
        if *pending == 0 {
            return Err(ProtocolError::InvAckUnderflow { tile, line, from });
        }
        *pending -= 1;
        if *pending > 0 {
            return Ok(());
        }
        let req = *req;
        let far = *far;
        match far {
            None => {
                b.phase = Phase::AwaitUnblock;
                let at = self.data_ready(line, now);
                actions.push(CacheAction::Send {
                    to: Endpoint::Core(req),
                    msg: Msg::Data {
                        req,
                        line,
                        excl: true,
                        from_private: false,
                    },
                    at,
                });
            }
            Some((rmw, req_id)) => {
                // All private copies are gone: perform the RMW at home and
                // release the entry without an unblock round trip.
                let at = self.data_ready(line, now);
                actions.push(CacheAction::ApplyRmw {
                    req,
                    line,
                    rmw,
                    req_id,
                    at,
                });
                self.release_blocked(line, now, actions)?;
            }
        }
        Ok(())
    }

    /// Handles a far atomic request at the home (Section VII's alternative
    /// placement): invalidate every private copy, then apply the RMW here.
    fn handle_far(
        &mut self,
        req: CoreId,
        line: LineAddr,
        rmw: RmwKind,
        req_id: u64,
        now: Cycle,
        actions: &mut Vec<CacheAction>,
    ) -> Result<(), ProtocolError> {
        self.stats.far_atomics += 1;
        match self.entries.remove(&line) {
            None => {
                let at = self.data_ready(line, now);
                actions.push(CacheAction::ApplyRmw {
                    req,
                    line,
                    rmw,
                    req_id,
                    at,
                });
            }
            Some(Entry::Shared(s)) => {
                for other in &s {
                    self.stats.invalidations += 1;
                    actions.push(CacheAction::Send {
                        to: Endpoint::Core(*other),
                        msg: Msg::Inv { line },
                        at: now + self.l3_lat,
                    });
                }
                self.entries.insert(
                    line,
                    Entry::Blocked(Box::new(BlockInfo {
                        next: Entry2::Shared(BTreeSet::new()),
                        phase: Phase::CollectingAcks {
                            req,
                            pending: s.len(),
                            far: Some((rmw, req_id)),
                        },
                        queue: VecDeque::new(),
                    })),
                );
            }
            Some(Entry::Exclusive(owner)) => {
                self.stats.invalidations += 1;
                actions.push(CacheAction::Send {
                    to: Endpoint::Core(owner),
                    msg: Msg::Inv { line },
                    at: now + self.l3_lat,
                });
                self.entries.insert(
                    line,
                    Entry::Blocked(Box::new(BlockInfo {
                        next: Entry2::Shared(BTreeSet::new()),
                        phase: Phase::CollectingAcks {
                            req,
                            pending: 1,
                            far: Some((rmw, req_id)),
                        },
                        queue: VecDeque::new(),
                    })),
                );
            }
            Some(e @ Entry::Blocked(_)) => {
                self.entries.insert(line, e);
                debug_assert!(false, "blocked entries are queued by handle_msg");
                return Err(ProtocolError::BlockedEntryReentered {
                    tile: self.tile,
                    msg: Msg::AtomicFar {
                        req,
                        line,
                        rmw,
                        req_id,
                    },
                });
            }
        }
        Ok(())
    }

    /// Removes a Blocked entry (the line returns home / Uncached) and
    /// replays its queued requests in arrival order.
    fn release_blocked(
        &mut self,
        line: LineAddr,
        now: Cycle,
        actions: &mut Vec<CacheAction>,
    ) -> Result<(), ProtocolError> {
        let Some(Entry::Blocked(b)) = self.entries.remove(&line) else {
            return Ok(());
        };
        for msg in b.queue {
            if let Some(Entry::Blocked(nb)) = self.entries.get_mut(&line) {
                nb.queue.push_back(msg);
            } else {
                self.handle_msg(msg, now + 1, actions)?;
            }
        }
        Ok(())
    }

    fn handle_unblock(
        &mut self,
        line: LineAddr,
        now: Cycle,
        actions: &mut Vec<CacheAction>,
    ) -> Result<(), ProtocolError> {
        let Some(Entry::Blocked(b)) = self.entries.remove(&line).map(|e| match e {
            Entry::Blocked(b) => Entry::Blocked(b),
            other => other,
        }) else {
            return Ok(());
        };
        let BlockInfo { next, queue, .. } = *b;
        self.entries.insert(
            line,
            match next {
                Entry2::Shared(s) => Entry::Shared(s),
                Entry2::Exclusive(o) => Entry::Exclusive(o),
            },
        );
        // Replay queued requests in arrival order. Each replay may re-block
        // the entry, in which case the remainder re-queues behind it.
        for msg in queue {
            if let Some(Entry::Blocked(b)) = self.entries.get_mut(&line) {
                b.queue.push_back(msg);
            } else {
                self.handle_msg(msg, now + 1, actions)?;
            }
        }
        Ok(())
    }
}

impl Codec for Entry2 {
    fn encode(&self, w: &mut Writer) {
        match self {
            Entry2::Shared(s) => {
                w.put_u8(0);
                s.encode(w);
            }
            Entry2::Exclusive(c) => {
                w.put_u8(1);
                c.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.get_u8()? {
            0 => Entry2::Shared(BTreeSet::decode(r)?),
            1 => Entry2::Exclusive(CoreId::decode(r)?),
            tag => {
                return Err(PersistError::BadTag {
                    what: "Entry2",
                    tag,
                })
            }
        })
    }
}

impl Codec for Phase {
    fn encode(&self, w: &mut Writer) {
        match self {
            Phase::AwaitUnblock => w.put_u8(0),
            Phase::CollectingAcks { req, pending, far } => {
                w.put_u8(1);
                req.encode(w);
                pending.encode(w);
                match far {
                    None => w.put_bool(false),
                    Some((rmw, req_id)) => {
                        w.put_bool(true);
                        rmw.encode(w);
                        w.put_u64(*req_id);
                    }
                }
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.get_u8()? {
            0 => Phase::AwaitUnblock,
            1 => Phase::CollectingAcks {
                req: CoreId::decode(r)?,
                pending: usize::decode(r)?,
                far: if r.get_bool()? {
                    Some((RmwKind::decode(r)?, r.get_u64()?))
                } else {
                    None
                },
            },
            tag => return Err(PersistError::BadTag { what: "Phase", tag }),
        })
    }
}

impl Codec for Entry {
    fn encode(&self, w: &mut Writer) {
        match self {
            Entry::Shared(s) => {
                w.put_u8(0);
                s.encode(w);
            }
            Entry::Exclusive(c) => {
                w.put_u8(1);
                c.encode(w);
            }
            Entry::Blocked(b) => {
                w.put_u8(2);
                b.next.encode(w);
                b.phase.encode(w);
                b.queue.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.get_u8()? {
            0 => Entry::Shared(BTreeSet::decode(r)?),
            1 => Entry::Exclusive(CoreId::decode(r)?),
            2 => Entry::Blocked(Box::new(BlockInfo {
                next: Entry2::decode(r)?,
                phase: Phase::decode(r)?,
                queue: VecDeque::decode(r)?,
            })),
            tag => return Err(PersistError::BadTag { what: "Entry", tag }),
        })
    }
}

impl Codec for DirStats {
    fn encode(&self, w: &mut Writer) {
        for v in [
            self.gets,
            self.getx,
            self.forwards,
            self.invalidations,
            self.queued,
            self.l3_misses,
            self.writebacks,
            self.far_atomics,
        ] {
            w.put_u64(v);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(DirStats {
            gets: r.get_u64()?,
            getx: r.get_u64()?,
            forwards: r.get_u64()?,
            invalidations: r.get_u64()?,
            queued: r.get_u64()?,
            l3_misses: r.get_u64()?,
            writebacks: r.get_u64()?,
            far_atomics: r.get_u64()?,
        })
    }
}

impl Persist for DirBank {
    // Tile index and latencies are config-derived; the L3 tag array, the
    // directory entries (including Blocked transactions and their queued
    // requesters), and the counters are mutable state.
    fn persist(&self, w: &mut Writer) {
        self.l3.persist(w);
        self.entries.encode(w);
        self.stats.encode(w);
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        self.l3.restore(r)?;
        self.entries = FastMap::decode(r)?;
        self.stats = DirStats::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use row_common::config::MemoryConfig;

    fn bank() -> DirBank {
        let cfg = MemoryConfig::alder_lake();
        DirBank::new(0, cfg.l3_bank, cfg.mem_latency)
    }

    fn c(i: u16) -> CoreId {
        CoreId::new(i)
    }

    fn unblock(d: &mut DirBank, from: CoreId, line: LineAddr, now: Cycle) -> Vec<CacheAction> {
        let mut a = Vec::new();
        d.handle_msg(Msg::Unblock { from, line }, now, &mut a)
            .unwrap();
        a
    }

    #[test]
    fn uncached_gets_grants_exclusive_and_blocks_until_unblock() {
        let mut d = bank();
        let line = LineAddr::new(1);
        let mut a = Vec::new();
        d.handle_msg(Msg::GetS { req: c(0), line }, Cycle::ZERO, &mut a)
            .unwrap();
        assert!(matches!(
            a[0],
            CacheAction::Send {
                msg: Msg::Data {
                    excl: true,
                    from_private: false,
                    ..
                },
                ..
            }
        ));
        assert_eq!(d.state(line), DirState::Blocked);
        unblock(&mut d, c(0), line, Cycle::new(50));
        assert_eq!(d.state(line), DirState::Exclusive(c(0)));
    }

    #[test]
    fn first_touch_pays_memory_latency_second_does_not() {
        let mut d = bank();
        let line = LineAddr::new(2);
        let mut a = Vec::new();
        d.handle_msg(Msg::GetS { req: c(0), line }, Cycle::ZERO, &mut a)
            .unwrap();
        let CacheAction::Send { at: first, .. } = a[0] else {
            panic!()
        };
        assert!(first.raw() >= 35 + 160);
        unblock(&mut d, c(0), line, Cycle::new(400));
        // Writeback returns the line home; next access hits L3.
        let mut a = Vec::new();
        d.handle_msg(Msg::PutM { from: c(0), line }, Cycle::new(500), &mut a)
            .unwrap();
        let mut a = Vec::new();
        d.handle_msg(Msg::GetS { req: c(1), line }, Cycle::new(600), &mut a)
            .unwrap();
        let CacheAction::Send { at: second, .. } = a[0] else {
            panic!()
        };
        assert_eq!(second.raw(), 600 + 35);
    }

    #[test]
    fn gets_on_shared_blocks_until_unblock() {
        let mut d = bank();
        let line = LineAddr::new(3);
        let mut a = Vec::new();
        d.handle_msg(Msg::GetS { req: c(0), line }, Cycle::ZERO, &mut a)
            .unwrap();
        unblock(&mut d, c(0), line, Cycle::new(10));
        // Downgrade path: second reader forwards to owner.
        let mut a = Vec::new();
        d.handle_msg(Msg::GetS { req: c(1), line }, Cycle::new(20), &mut a)
            .unwrap();
        assert!(matches!(
            a[0],
            CacheAction::Send { to: Endpoint::Core(o), msg: Msg::FwdGetS { .. }, .. } if o == c(0)
        ));
        unblock(&mut d, c(1), line, Cycle::new(30));
        let DirState::Shared(s) = d.state(line) else {
            panic!()
        };
        assert_eq!(s.len(), 2);
        // Third reader: served from L3, but the entry blocks until the
        // reader's Unblock arrives — the fill's Unblock must pair with THIS
        // transaction so it can never release a later one prematurely.
        let mut a = Vec::new();
        d.handle_msg(Msg::GetS { req: c(2), line }, Cycle::new(40), &mut a)
            .unwrap();
        assert!(matches!(
            a[0],
            CacheAction::Send {
                msg: Msg::Data { excl: false, .. },
                ..
            }
        ));
        assert_eq!(d.state(line), DirState::Blocked);
        unblock(&mut d, c(2), line, Cycle::new(50));
        let DirState::Shared(s) = d.state(line) else {
            panic!()
        };
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn stray_unblock_on_stable_entry_leaves_state_untouched() {
        // A duplicated (chaos) or stale Unblock must never mutate a stable
        // entry: deleting it would let the next requester take an exclusive
        // grant while the old owner still holds the line (SWMR violation).
        let mut d = bank();
        let line = LineAddr::new(9);
        let mut a = Vec::new();
        d.handle_msg(Msg::GetS { req: c(0), line }, Cycle::ZERO, &mut a)
            .unwrap();
        unblock(&mut d, c(0), line, Cycle::new(10));
        assert_eq!(d.state(line), DirState::Exclusive(c(0)));
        unblock(&mut d, c(0), line, Cycle::new(20)); // duplicate
        assert_eq!(d.state(line), DirState::Exclusive(c(0)));
    }

    #[test]
    fn getx_on_shared_invalidates_then_grants() {
        let mut d = bank();
        let line = LineAddr::new(4);
        // Three sharers: 0, 1, 2.
        let mut a = Vec::new();
        d.handle_msg(Msg::GetS { req: c(0), line }, Cycle::ZERO, &mut a)
            .unwrap();
        unblock(&mut d, c(0), line, Cycle::new(10));
        d.handle_msg(Msg::GetS { req: c(1), line }, Cycle::new(20), &mut a)
            .unwrap();
        unblock(&mut d, c(1), line, Cycle::new(30));
        let DirState::Shared(_) = d.state(line) else {
            panic!()
        };
        let mut a = Vec::new();
        d.handle_msg(Msg::GetS { req: c(2), line }, Cycle::new(40), &mut a)
            .unwrap();
        unblock(&mut d, c(2), line, Cycle::new(45));

        let mut a = Vec::new();
        d.handle_msg(Msg::GetX { req: c(2), line }, Cycle::new(50), &mut a)
            .unwrap();
        let invs: Vec<CoreId> = a
            .iter()
            .filter_map(|x| match x {
                CacheAction::Send {
                    to: Endpoint::Core(cc),
                    msg: Msg::Inv { .. },
                    ..
                } => Some(*cc),
                _ => None,
            })
            .collect();
        assert_eq!(
            invs,
            vec![c(0), c(1)],
            "requester itself is not invalidated"
        );
        // No data until all acks arrive.
        assert!(!a.iter().any(|x| matches!(
            x,
            CacheAction::Send {
                msg: Msg::Data { .. },
                ..
            }
        )));
        let mut a = Vec::new();
        d.handle_msg(Msg::InvAck { from: c(0), line }, Cycle::new(60), &mut a)
            .unwrap();
        assert!(a.is_empty());
        d.handle_msg(Msg::InvAck { from: c(1), line }, Cycle::new(70), &mut a)
            .unwrap();
        assert!(matches!(
            a[0],
            CacheAction::Send {
                msg: Msg::Data { excl: true, .. },
                ..
            }
        ));
        unblock(&mut d, c(2), line, Cycle::new(90));
        assert_eq!(d.state(line), DirState::Exclusive(c(2)));
    }

    #[test]
    fn getx_on_exclusive_forwards_to_owner() {
        let mut d = bank();
        let line = LineAddr::new(5);
        let mut a = Vec::new();
        d.handle_msg(Msg::GetX { req: c(0), line }, Cycle::ZERO, &mut a)
            .unwrap();
        unblock(&mut d, c(0), line, Cycle::new(10));
        let mut a = Vec::new();
        d.handle_msg(Msg::GetX { req: c(1), line }, Cycle::new(20), &mut a)
            .unwrap();
        assert!(matches!(
            a[0],
            CacheAction::Send { to: Endpoint::Core(o), msg: Msg::FwdGetX { .. }, .. } if o == c(0)
        ));
        unblock(&mut d, c(1), line, Cycle::new(40));
        assert_eq!(d.state(line), DirState::Exclusive(c(1)));
    }

    #[test]
    fn requests_queue_while_blocked_and_replay_in_order() {
        let mut d = bank();
        let line = LineAddr::new(6);
        let mut a = Vec::new();
        d.handle_msg(Msg::GetX { req: c(0), line }, Cycle::ZERO, &mut a)
            .unwrap();
        // Two more requesters pile up before core0 unblocks (Fig. 8's [T1]).
        let mut a = Vec::new();
        d.handle_msg(Msg::GetX { req: c(1), line }, Cycle::new(5), &mut a)
            .unwrap();
        d.handle_msg(Msg::GetX { req: c(2), line }, Cycle::new(6), &mut a)
            .unwrap();
        assert!(a.is_empty(), "queued requests produce no actions yet");
        assert_eq!(d.stats().queued, 2);

        // Unblock from core0 replays core1's request -> FwdGetX to core0.
        let a = unblock(&mut d, c(0), line, Cycle::new(100));
        let fwd: Vec<(CoreId, CoreId)> = a
            .iter()
            .filter_map(|x| match x {
                CacheAction::Send {
                    to: Endpoint::Core(owner),
                    msg: Msg::FwdGetX { req, .. },
                    ..
                } => Some((*owner, *req)),
                _ => None,
            })
            .collect();
        assert_eq!(fwd, vec![(c(0), c(1))]);
        // core2 remains queued behind the new transaction.
        assert_eq!(d.state(line), DirState::Blocked);
        let a = unblock(&mut d, c(1), line, Cycle::new(200));
        let fwd: Vec<(CoreId, CoreId)> = a
            .iter()
            .filter_map(|x| match x {
                CacheAction::Send {
                    to: Endpoint::Core(owner),
                    msg: Msg::FwdGetX { req, .. },
                    ..
                } => Some((*owner, *req)),
                _ => None,
            })
            .collect();
        assert_eq!(fwd, vec![(c(1), c(2))]);
    }

    #[test]
    fn putm_from_owner_accepted_from_stranger_stale() {
        let mut d = bank();
        let line = LineAddr::new(7);
        let mut a = Vec::new();
        d.handle_msg(Msg::GetX { req: c(0), line }, Cycle::ZERO, &mut a)
            .unwrap();
        unblock(&mut d, c(0), line, Cycle::new(10));
        let mut a = Vec::new();
        d.handle_msg(Msg::PutM { from: c(1), line }, Cycle::new(20), &mut a)
            .unwrap();
        assert!(matches!(
            a[0],
            CacheAction::Send {
                msg: Msg::WbStale { .. },
                ..
            }
        ));
        assert_eq!(d.state(line), DirState::Exclusive(c(0)));
        let mut a = Vec::new();
        d.handle_msg(Msg::PutM { from: c(0), line }, Cycle::new(30), &mut a)
            .unwrap();
        assert!(matches!(
            a[0],
            CacheAction::Send {
                msg: Msg::WbAck { .. },
                ..
            }
        ));
        assert_eq!(d.state(line), DirState::Uncached);
    }

    #[test]
    fn putm_racing_a_forward_queues_then_goes_stale() {
        let mut d = bank();
        let line = LineAddr::new(8);
        let mut a = Vec::new();
        d.handle_msg(Msg::GetX { req: c(0), line }, Cycle::ZERO, &mut a)
            .unwrap();
        unblock(&mut d, c(0), line, Cycle::new(10));
        // core1 wants the line; dir forwards to core0 and blocks.
        let mut a = Vec::new();
        d.handle_msg(Msg::GetX { req: c(1), line }, Cycle::new(20), &mut a)
            .unwrap();
        // core0's eviction PutM arrives while blocked: queues.
        let mut a = Vec::new();
        d.handle_msg(Msg::PutM { from: c(0), line }, Cycle::new(25), &mut a)
            .unwrap();
        assert!(a.is_empty());
        // core0 served the forward anyway; core1 unblocks; queued PutM
        // replays and is now stale (owner is core1).
        let a = unblock(&mut d, c(1), line, Cycle::new(60));
        assert!(a.iter().any(|x| matches!(
            x,
            CacheAction::Send { to: Endpoint::Core(cc), msg: Msg::WbStale { .. }, .. } if *cc == c(0)
        )));
        assert_eq!(d.state(line), DirState::Exclusive(c(1)));
    }

    #[test]
    fn upgrade_when_sole_sharer_skips_invalidations() {
        let mut d = bank();
        let line = LineAddr::new(9);
        // Make the entry Shared with only core0 (via the fwd path would give
        // two sharers, so build Shared directly through E-grant + downgrade).
        let mut a = Vec::new();
        d.handle_msg(Msg::GetS { req: c(0), line }, Cycle::ZERO, &mut a)
            .unwrap();
        unblock(&mut d, c(0), line, Cycle::new(10));
        // Owner core0 upgrades: dir forwards? No — Exclusive(core0) + GetX
        // from core0 cannot happen (it already owns). Instead check Shared:
        let mut a = Vec::new();
        d.handle_msg(Msg::GetS { req: c(1), line }, Cycle::new(20), &mut a)
            .unwrap();
        unblock(&mut d, c(1), line, Cycle::new(30));
        // Invalidate core0 via core1's upgrade, leaving Shared{core1}... —
        // exercise the sole-sharer fast path directly:
        let mut a = Vec::new();
        d.handle_msg(Msg::GetX { req: c(1), line }, Cycle::new(40), &mut a)
            .unwrap();
        let mut acks = Vec::new();
        d.handle_msg(Msg::InvAck { from: c(0), line }, Cycle::new(50), &mut acks)
            .unwrap();
        unblock(&mut d, c(1), line, Cycle::new(60));
        assert_eq!(d.state(line), DirState::Exclusive(c(1)));
        // Now Shared set was consumed; re-share with just core1, then GetX
        // from core1 goes through the no-invalidation path.
        let mut a = Vec::new();
        d.handle_msg(Msg::PutM { from: c(1), line }, Cycle::new(70), &mut a)
            .unwrap();
        let mut a = Vec::new();
        d.handle_msg(Msg::GetS { req: c(1), line }, Cycle::new(80), &mut a)
            .unwrap();
        unblock(&mut d, c(1), line, Cycle::new(90));
        // Downgrade E->S is silent in the dir? The dir records Exclusive on
        // the E grant; a GetX from the same core can't occur. This test ends
        // by confirming the E grant.
        assert_eq!(d.state(line), DirState::Exclusive(c(1)));
    }

    #[test]
    fn stale_acks_and_unblocks_are_ignored() {
        let mut d = bank();
        let line = LineAddr::new(11);
        let mut a = Vec::new();
        d.handle_msg(Msg::InvAck { from: c(0), line }, Cycle::ZERO, &mut a)
            .unwrap();
        d.handle_msg(Msg::Unblock { from: c(0), line }, Cycle::ZERO, &mut a)
            .unwrap();
        assert!(a.is_empty());
        assert_eq!(d.state(line), DirState::Uncached);
    }
}

#[cfg(test)]
mod far_tests {
    use super::*;
    use row_common::config::MemoryConfig;
    use row_common::rmw::RmwKind;

    fn bank() -> DirBank {
        let cfg = MemoryConfig::alder_lake();
        DirBank::new(0, cfg.l3_bank, cfg.mem_latency)
    }

    fn c(i: u16) -> CoreId {
        CoreId::new(i)
    }

    fn far(d: &mut DirBank, req: CoreId, line: LineAddr, id: u64, now: Cycle) -> Vec<CacheAction> {
        let mut a = Vec::new();
        d.handle_msg(
            Msg::AtomicFar {
                req,
                line,
                rmw: RmwKind::Faa(1),
                req_id: id,
            },
            now,
            &mut a,
        )
        .unwrap();
        a
    }

    #[test]
    fn far_on_uncached_applies_immediately() {
        let mut d = bank();
        let line = LineAddr::new(70);
        let a = far(&mut d, c(0), line, 9, Cycle::ZERO);
        assert!(matches!(a[0], CacheAction::ApplyRmw { req_id: 9, .. }));
        assert_eq!(d.state(line), DirState::Uncached, "no blocking needed");
        assert_eq!(d.stats().far_atomics, 1);
    }

    #[test]
    fn far_on_exclusive_recalls_the_owner_first() {
        let mut d = bank();
        let line = LineAddr::new(71);
        let mut a = Vec::new();
        d.handle_msg(Msg::GetX { req: c(0), line }, Cycle::ZERO, &mut a)
            .unwrap();
        d.handle_msg(Msg::Unblock { from: c(0), line }, Cycle::new(10), &mut a)
            .unwrap();

        let a = far(&mut d, c(1), line, 5, Cycle::new(20));
        assert!(matches!(
            a[0],
            CacheAction::Send { to: Endpoint::Core(o), msg: Msg::Inv { .. }, .. } if o == c(0)
        ));
        assert!(!a.iter().any(|x| matches!(x, CacheAction::ApplyRmw { .. })));
        assert_eq!(d.state(line), DirState::Blocked);

        let mut a = Vec::new();
        d.handle_msg(Msg::InvAck { from: c(0), line }, Cycle::new(60), &mut a)
            .unwrap();
        assert!(matches!(a[0], CacheAction::ApplyRmw { req_id: 5, .. }));
        assert_eq!(d.state(line), DirState::Uncached);
    }

    #[test]
    fn far_on_shared_invalidates_all_sharers() {
        let mut d = bank();
        let line = LineAddr::new(72);
        let mut a = Vec::new();
        // Build Shared{0,1} via E-grant + downgrade.
        d.handle_msg(Msg::GetS { req: c(0), line }, Cycle::ZERO, &mut a)
            .unwrap();
        d.handle_msg(Msg::Unblock { from: c(0), line }, Cycle::new(5), &mut a)
            .unwrap();
        d.handle_msg(Msg::GetS { req: c(1), line }, Cycle::new(10), &mut a)
            .unwrap();
        d.handle_msg(Msg::Unblock { from: c(1), line }, Cycle::new(20), &mut a)
            .unwrap();

        let a = far(&mut d, c(2), line, 3, Cycle::new(30));
        let invs = a
            .iter()
            .filter(|x| {
                matches!(
                    x,
                    CacheAction::Send {
                        msg: Msg::Inv { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(invs, 2);
        let mut a = Vec::new();
        d.handle_msg(Msg::InvAck { from: c(0), line }, Cycle::new(40), &mut a)
            .unwrap();
        assert!(a.is_empty());
        d.handle_msg(Msg::InvAck { from: c(1), line }, Cycle::new(50), &mut a)
            .unwrap();
        assert!(matches!(a[0], CacheAction::ApplyRmw { req_id: 3, .. }));
    }

    #[test]
    fn far_queues_behind_a_blocked_entry_and_replays() {
        let mut d = bank();
        let line = LineAddr::new(73);
        let mut a = Vec::new();
        d.handle_msg(Msg::GetX { req: c(0), line }, Cycle::ZERO, &mut a)
            .unwrap();
        // Entry is Blocked awaiting core0's unblock: the far request queues.
        let a = far(&mut d, c(1), line, 7, Cycle::new(5));
        assert!(a.is_empty());
        let mut a = Vec::new();
        d.handle_msg(Msg::Unblock { from: c(0), line }, Cycle::new(30), &mut a)
            .unwrap();
        // Replay: dir is now Exclusive(core0) -> recall then apply.
        assert!(a.iter().any(|x| matches!(
            x,
            CacheAction::Send { to: Endpoint::Core(o), msg: Msg::Inv { .. }, .. } if *o == c(0)
        )));
    }

    #[test]
    fn consecutive_far_atomics_pipeline_without_blocking() {
        let mut d = bank();
        let line = LineAddr::new(74);
        for k in 0..5 {
            let a = far(&mut d, c(k), line, k as u64, Cycle::new(k as u64 * 10));
            assert!(
                matches!(a[0], CacheAction::ApplyRmw { .. }),
                "uncached far ops never block the entry"
            );
        }
        assert_eq!(d.stats().far_atomics, 5);
    }
}
