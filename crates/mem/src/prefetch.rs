//! IP-stride prefetcher for the L1D (Table I lists one).
//!
//! Classic design: a small table indexed by load PC tracking the last address
//! and the last observed stride; two consecutive equal strides train the
//! entry, after which the next `degree` lines along the stride are prefetched.

use row_common::ids::{Addr, LineAddr, Pc};
use row_common::persist::{Codec, Persist, PersistError, Reader, Writer};

#[derive(Clone, Copy, Debug, Default)]
struct StrideEntry {
    tag: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

/// An IP (instruction-pointer) stride prefetcher.
///
/// # Example
/// ```
/// use row_common::ids::{Addr, Pc};
/// use row_mem::prefetch::IpStridePrefetcher;
///
/// let mut p = IpStridePrefetcher::new(64, 2);
/// let pc = Pc::new(0x400);
/// assert!(p.observe(pc, Addr::new(0)).is_empty());    // first touch
/// assert!(p.observe(pc, Addr::new(64)).is_empty());   // stride learned
/// assert!(!p.observe(pc, Addr::new(128)).is_empty()); // confident: prefetch
/// ```
#[derive(Clone, Debug)]
pub struct IpStridePrefetcher {
    table: Vec<StrideEntry>,
    degree: u64,
}

impl IpStridePrefetcher {
    /// Creates a prefetcher with `entries` table slots issuing `degree`
    /// prefetches per trigger.
    ///
    /// # Panics
    /// Panics if `entries` is zero.
    pub fn new(entries: usize, degree: u64) -> Self {
        assert!(entries > 0, "prefetcher needs at least one entry");
        IpStridePrefetcher {
            table: vec![StrideEntry::default(); entries],
            degree,
        }
    }

    /// Observes a demand load and returns the lines to prefetch (possibly
    /// empty).
    pub fn observe(&mut self, pc: Pc, addr: Addr) -> Vec<LineAddr> {
        let idx = (pc.raw() as usize ^ (pc.raw() >> 8) as usize) % self.table.len();
        let e = &mut self.table[idx];
        let mut out = Vec::new();
        if e.tag != pc.raw() {
            *e = StrideEntry {
                tag: pc.raw(),
                last_addr: addr.raw(),
                stride: 0,
                confidence: 0,
            };
            return out;
        }
        let stride = addr.raw() as i64 - e.last_addr as i64;
        if stride != 0 && stride == e.stride {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            e.confidence = e.confidence.saturating_sub(1);
            e.stride = stride;
        }
        e.last_addr = addr.raw();
        if e.confidence >= 1 && e.stride != 0 {
            for k in 1..=self.degree {
                let target = addr.raw() as i64 + e.stride * k as i64;
                if target >= 0 {
                    let line = Addr::new(target as u64).line();
                    if line != addr.line() && !out.contains(&line) {
                        out.push(line);
                    }
                }
            }
        }
        out
    }
}

impl Codec for StrideEntry {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.tag);
        w.put_u64(self.last_addr);
        self.stride.encode(w);
        w.put_u8(self.confidence);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(StrideEntry {
            tag: r.get_u64()?,
            last_addr: r.get_u64()?,
            stride: i64::decode(r)?,
            confidence: r.get_u8()?,
        })
    }
}

impl Persist for IpStridePrefetcher {
    // Table size and degree are config-derived; only the training state moves.
    fn persist(&self, w: &mut Writer) {
        self.table.encode(w);
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        let table = Vec::<StrideEntry>::decode(r)?;
        if table.len() != self.table.len() {
            return Err(PersistError::Corrupt("prefetcher table size mismatch"));
        }
        self.table = table;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_stride_trains_and_prefetches() {
        let mut p = IpStridePrefetcher::new(16, 2);
        let pc = Pc::new(0x1000);
        assert!(p.observe(pc, Addr::new(0)).is_empty());
        assert!(p.observe(pc, Addr::new(128)).is_empty());
        let pf = p.observe(pc, Addr::new(256));
        assert_eq!(pf, vec![Addr::new(384).line(), Addr::new(512).line()]);
    }

    #[test]
    fn random_pattern_stays_quiet() {
        let mut p = IpStridePrefetcher::new(16, 2);
        let pc = Pc::new(0x2000);
        let mut issued = 0;
        for a in [5u64, 977, 13, 40_001, 7, 90_000] {
            issued += p.observe(pc, Addr::new(a * 8)).len();
        }
        assert_eq!(issued, 0);
    }

    #[test]
    fn small_strides_within_line_do_not_duplicate_line() {
        let mut p = IpStridePrefetcher::new(16, 4);
        let pc = Pc::new(0x3000);
        p.observe(pc, Addr::new(0));
        p.observe(pc, Addr::new(8));
        let pf = p.observe(pc, Addr::new(16));
        // stride 8: next lines are 24..48 — all in line 0, filtered out.
        assert!(pf.is_empty(), "got {pf:?}");
    }

    #[test]
    fn pc_collision_retags() {
        let mut p = IpStridePrefetcher::new(1, 1);
        p.observe(Pc::new(1), Addr::new(0));
        p.observe(Pc::new(1), Addr::new(64));
        // Different PC lands in the same (only) slot and resets it.
        assert!(p.observe(Pc::new(2), Addr::new(4096)).is_empty());
        // Original PC must retrain from scratch.
        assert!(p.observe(Pc::new(1), Addr::new(128)).is_empty());
    }

    #[test]
    fn negative_stride_prefetches_backwards() {
        let mut p = IpStridePrefetcher::new(16, 1);
        let pc = Pc::new(0x4000);
        p.observe(pc, Addr::new(1024));
        p.observe(pc, Addr::new(896));
        let pf = p.observe(pc, Addr::new(768));
        assert_eq!(pf, vec![Addr::new(640).line()]);
    }

    #[test]
    fn never_prefetches_negative_addresses() {
        let mut p = IpStridePrefetcher::new(16, 2);
        let pc = Pc::new(0x5000);
        p.observe(pc, Addr::new(256));
        p.observe(pc, Addr::new(128));
        let pf = p.observe(pc, Addr::new(0));
        assert!(pf.is_empty(), "got {pf:?}");
    }
}
