//! Trace files: record any [`InstrStream`] to disk and replay it later.
//!
//! This is the analogue of the paper's Sniper-produced traces: a captured
//! stream is bit-exact across machines, so experiments can be re-run on the
//! identical instruction sequence without regenerating it. The format is a
//! small self-describing binary codec (magic + little-endian fields) with no
//! external dependencies.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use row_common::ids::{Addr, Pc};
use row_common::persist::{PersistError, Reader, Writer};
use row_cpu::instr::{Instr, InstrStream, Op, RmwKind};

const MAGIC: &[u8; 6] = b"RWTR1\n";

fn put_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn get_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn put_u8(w: &mut impl Write, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

fn get_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn write_instr(w: &mut impl Write, i: &Instr) -> io::Result<()> {
    put_u64(w, i.pc.raw())?;
    put_u8(w, i.srcs[0].map_or(0xff, |r| r))?;
    put_u8(w, i.srcs[1].map_or(0xff, |r| r))?;
    put_u8(w, i.dst.map_or(0xff, |r| r))?;
    match i.op {
        Op::Alu { latency } => {
            put_u8(w, 0)?;
            put_u8(w, latency)?;
        }
        Op::Load { addr } => {
            put_u8(w, 1)?;
            put_u64(w, addr.raw())?;
        }
        Op::Store { addr, value } => {
            put_u8(w, 2)?;
            put_u64(w, addr.raw())?;
            match value {
                None => put_u8(w, 0)?,
                Some(v) => {
                    put_u8(w, 1)?;
                    put_u64(w, v)?;
                }
            }
        }
        Op::Atomic { rmw, addr } => {
            put_u8(w, 3)?;
            put_u64(w, addr.raw())?;
            match rmw {
                RmwKind::Faa(d) => {
                    put_u8(w, 0)?;
                    put_u64(w, d)?;
                }
                RmwKind::Swap(v) => {
                    put_u8(w, 1)?;
                    put_u64(w, v)?;
                }
                RmwKind::Cas { expected, new } => {
                    put_u8(w, 2)?;
                    put_u64(w, expected)?;
                    put_u64(w, new)?;
                }
            }
        }
        Op::Branch { taken } => {
            put_u8(w, 4)?;
            put_u8(w, taken as u8)?;
        }
        Op::Fence => put_u8(w, 5)?,
    }
    Ok(())
}

fn read_instr(r: &mut impl Read) -> io::Result<Instr> {
    let pc = Pc::new(get_u64(r)?);
    let reg = |v: u8| if v == 0xff { None } else { Some(v) };
    let s0 = reg(get_u8(r)?);
    let s1 = reg(get_u8(r)?);
    let dst = reg(get_u8(r)?);
    let op = match get_u8(r)? {
        0 => Op::Alu {
            latency: get_u8(r)?,
        },
        1 => Op::Load {
            addr: Addr::new(get_u64(r)?),
        },
        2 => {
            let addr = Addr::new(get_u64(r)?);
            let value = match get_u8(r)? {
                0 => None,
                1 => Some(get_u64(r)?),
                _ => return Err(bad("bad store value tag")),
            };
            Op::Store { addr, value }
        }
        3 => {
            let addr = Addr::new(get_u64(r)?);
            let rmw = match get_u8(r)? {
                0 => RmwKind::Faa(get_u64(r)?),
                1 => RmwKind::Swap(get_u64(r)?),
                2 => RmwKind::Cas {
                    expected: get_u64(r)?,
                    new: get_u64(r)?,
                },
                _ => return Err(bad("bad rmw tag")),
            };
            Op::Atomic { rmw, addr }
        }
        4 => Op::Branch {
            taken: get_u8(r)? != 0,
        },
        5 => Op::Fence,
        _ => return Err(bad("bad op tag")),
    };
    Ok(Instr {
        pc,
        op,
        srcs: [s0, s1],
        dst,
    })
}

/// Writes a whole trace to `w`.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_trace(mut w: impl Write, instrs: &[Instr]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    put_u64(&mut w, instrs.len() as u64)?;
    for i in instrs {
        write_instr(&mut w, i)?;
    }
    w.flush()
}

/// Reads a whole trace from `r`.
///
/// # Errors
/// Fails on I/O errors, a bad magic header, or malformed records.
pub fn read_trace(mut r: impl Read) -> io::Result<Vec<Instr>> {
    let mut magic = [0u8; 6];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a norush trace file"));
    }
    let n = get_u64(&mut r)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        out.push(read_instr(&mut r)?);
    }
    Ok(out)
}

/// Drains `stream` into a trace file at `path`.
///
/// # Errors
/// Propagates file-creation and write errors.
pub fn record_to_file(path: impl AsRef<Path>, mut stream: impl InstrStream) -> io::Result<u64> {
    let mut instrs = Vec::new();
    while let Some(i) = stream.next_instr() {
        instrs.push(i);
    }
    let f = BufWriter::new(File::create(path)?);
    write_trace(f, &instrs)?;
    Ok(instrs.len() as u64)
}

/// An [`InstrStream`] replaying a trace file.
#[derive(Debug)]
pub struct TraceFileStream {
    instrs: Vec<Instr>,
    pos: usize,
}

impl TraceFileStream {
    /// Opens and fully loads a trace file.
    ///
    /// # Errors
    /// Fails on I/O errors or a malformed file.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let f = BufReader::new(File::open(path)?);
        Ok(TraceFileStream {
            instrs: read_trace(f)?,
            pos: 0,
        })
    }
}

impl InstrStream for TraceFileStream {
    fn next_instr(&mut self) -> Option<Instr> {
        let i = self.instrs.get(self.pos).copied();
        self.pos += 1;
        i
    }

    fn save_state(&self, w: &mut Writer) {
        w.put_u64(self.pos as u64);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        self.pos = r.get_u64()? as usize;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Benchmark, ProfileStream};

    fn sample() -> Vec<Instr> {
        vec![
            Instr::simple(Pc::new(0x10), Op::Alu { latency: 3 }).with_dst(1),
            Instr::simple(
                Pc::new(0x14),
                Op::Load {
                    addr: Addr::new(0x1000),
                },
            )
            .with_srcs(Some(1), None)
            .with_dst(2),
            Instr::simple(
                Pc::new(0x18),
                Op::Store {
                    addr: Addr::new(0x1008),
                    value: Some(42),
                },
            ),
            Instr::simple(
                Pc::new(0x1c),
                Op::Store {
                    addr: Addr::new(0x1010),
                    value: None,
                },
            ),
            Instr::simple(
                Pc::new(0x20),
                Op::Atomic {
                    rmw: RmwKind::Faa(7),
                    addr: Addr::new(0x2000),
                },
            ),
            Instr::simple(
                Pc::new(0x24),
                Op::Atomic {
                    rmw: RmwKind::Cas {
                        expected: 1,
                        new: 2,
                    },
                    addr: Addr::new(0x2008),
                },
            ),
            Instr::simple(
                Pc::new(0x28),
                Op::Atomic {
                    rmw: RmwKind::Swap(9),
                    addr: Addr::new(0x2010),
                },
            ),
            Instr::simple(Pc::new(0x2c), Op::Branch { taken: true }),
            Instr::simple(Pc::new(0x30), Op::Branch { taken: false }),
            Instr::simple(Pc::new(0x34), Op::Fence),
        ]
    }

    #[test]
    fn round_trips_every_op_kind() {
        let orig = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &orig).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(orig, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"NOTATRACE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated_file() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn file_record_and_replay_matches_generator() {
        let dir = std::env::temp_dir().join("norush-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pc.trace");
        let profile = Benchmark::Pc.profile().with_instructions(500);
        let n = record_to_file(&path, ProfileStream::new(profile, 0, 4, 9)).unwrap();
        assert!(n >= 500);

        let mut replay = TraceFileStream::open(&path).unwrap();
        let mut fresh = ProfileStream::new(profile, 0, 4, 9);
        let mut count = 0u64;
        while let Some(a) = replay.next_instr() {
            assert_eq!(Some(a), fresh.next_instr());
            count += 1;
        }
        assert!(fresh.next_instr().is_none());
        assert_eq!(count, n);
        std::fs::remove_file(&path).ok();
    }
}
