//! Sharded lock/counter service under open-loop arrival — the soak
//! harness's adversarial workload family (ROADMAP item 5).
//!
//! Models a service of `shards` lock shards and `keys` counters with
//! Zipf-skewed key popularity (hot keys get most of the traffic), a
//! reader/writer mix, and *open-loop* arrival: operations are spaced by
//! geometric gaps that an arrival process dictates, not by the service's
//! completion rate, so backpressure shows up as latency rather than reduced
//! offered load. Bursty epochs periodically shrink the gap by
//! `burst_factor`, alternating calm and storm phases inside one run.
//!
//! Three kernel shapes ([`ServiceKernel`]) cover the contention regimes the
//! related work singles out: plain FAA counters (monotone return-value
//! chains — the online oracle's bread and butter), an MPMC ticket queue
//! (two FAA words plus a payload store per enqueue — the multi-word-CAS
//! regime of Big Atomics), and a seqlock-style multi-word register (version
//! FAA, data stores, version FAA — the wait-free multi-word register
//! shape). All operations are lock-free instruction sequences: streams are
//! pre-resolved traces, so kernels avoid outcome-dependent control flow by
//! construction.

use row_common::ids::{Addr, Pc};
use row_common::persist::{Codec, PersistError, Reader, Writer};
use row_common::rng::{SplitMix64, ZipfSampler};

use row_cpu::instr::{Instr, InstrStream, Op, RmwKind};

/// Address-space layout: distinct regions per structure, disjoint from the
/// profile generator's regions (which sit below `0xa000_0000`).
const SHARD_BASE: u64 = 0xd000_0000;
const KEY_BASE: u64 = 0xd100_0000;
const QUEUE_BASE: u64 = 0xd200_0000;
const QUEUE_STRIDE: u64 = 1024;
const QUEUE_SLOTS: u64 = 8;
const REG_BASE: u64 = 0xd400_0000;
const REG_STRIDE: u64 = 256;
const FILLER_BASE: u64 = 0xe000_0000;
const FILLER_STRIDE: u64 = 0x0100_0000;

/// PCs of the service's static instruction sites.
mod pcs {
    pub const SHARD_TICKET: u64 = 0x3000;
    pub const SHARD_OWNER: u64 = 0x3040;
    pub const KEY_FAA: u64 = 0x3080;
    pub const KEY_LOAD: u64 = 0x30c0;
    pub const Q_HEAD: u64 = 0x3100;
    pub const Q_SLOT: u64 = 0x3140;
    pub const Q_TAIL: u64 = 0x3180;
    pub const Q_LOAD: u64 = 0x31c0;
    pub const REG_VER: u64 = 0x3200;
    pub const REG_DATA: u64 = 0x3240;
    pub const REG_LOAD: u64 = 0x3280;
    pub const FILLER_ALU: u64 = 0x3300;
    pub const FILLER_LOAD: u64 = 0x3340;
}

/// The service's data-structure kernel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServiceKernel {
    /// Per-key FAA counters behind per-shard FAA tickets.
    Counter,
    /// Per-shard MPMC ticket queue: FAA head, payload store, FAA tail.
    MpmcQueue,
    /// Per-key seqlock-style register: FAA version, data stores, FAA version.
    MultiWordRegister,
}

impl ServiceKernel {
    /// All kernels, in soak rotation order.
    pub const ALL: [ServiceKernel; 3] = [
        ServiceKernel::Counter,
        ServiceKernel::MpmcQueue,
        ServiceKernel::MultiWordRegister,
    ];

    /// Stable display/CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            ServiceKernel::Counter => "counter",
            ServiceKernel::MpmcQueue => "mpmc-queue",
            ServiceKernel::MultiWordRegister => "mw-register",
        }
    }

    /// Parses a CLI name back to a kernel.
    pub fn parse(s: &str) -> Option<ServiceKernel> {
        ServiceKernel::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// Shape of one lock-service run (all threads share one config).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LockServiceConfig {
    /// Lock shards; a key's shard is `key % shards`.
    pub shards: u64,
    /// Keys in the service.
    pub keys: u64,
    /// Zipf skew of key popularity (0 = uniform, 0.99 = YCSB hotspot).
    pub zipf_theta: f64,
    /// Fraction of operations that are reads.
    pub read_fraction: f64,
    /// Operations each thread issues.
    pub ops_per_thread: u64,
    /// Mean open-loop inter-operation gap, in filler instructions.
    pub mean_gap: f64,
    /// Operations per arrival epoch; odd epochs are bursts.
    pub burst_epoch_ops: u64,
    /// Burst gap divisor (≥ 1): gaps shrink by this during burst epochs.
    pub burst_factor: f64,
    /// The data-structure kernel.
    pub kernel: ServiceKernel,
}

impl LockServiceConfig {
    /// A soak-sized default for `kernel`: skewed, bursty, read-mostly-write.
    pub fn soak(kernel: ServiceKernel) -> Self {
        LockServiceConfig {
            shards: 4,
            keys: 64,
            zipf_theta: 0.99,
            read_fraction: 0.3,
            ops_per_thread: 200,
            mean_gap: 24.0,
            burst_epoch_ops: 32,
            burst_factor: 4.0,
            kernel,
        }
    }

    /// Validates all fields.
    ///
    /// # Errors
    /// Describes the first out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 || self.shards > 1 << 16 {
            return Err(format!("shards = {} out of [1, 65536]", self.shards));
        }
        if self.keys == 0 || self.keys > 1 << 20 {
            return Err(format!("keys = {} out of [1, 1048576]", self.keys));
        }
        if !self.zipf_theta.is_finite() || !(0.0..=4.0).contains(&self.zipf_theta) {
            return Err(format!("zipf_theta = {} out of [0, 4]", self.zipf_theta));
        }
        if !(0.0..=1.0).contains(&self.read_fraction) {
            return Err(format!(
                "read_fraction = {} out of [0, 1]",
                self.read_fraction
            ));
        }
        if self.ops_per_thread == 0 {
            return Err("ops_per_thread must be positive".to_string());
        }
        if !self.mean_gap.is_finite() || !(1.0..=100_000.0).contains(&self.mean_gap) {
            return Err(format!("mean_gap = {} out of [1, 100000]", self.mean_gap));
        }
        if self.burst_epoch_ops == 0 {
            return Err("burst_epoch_ops must be positive".to_string());
        }
        if !self.burst_factor.is_finite() || !(1.0..=1000.0).contains(&self.burst_factor) {
            return Err(format!(
                "burst_factor = {} out of [1, 1000]",
                self.burst_factor
            ));
        }
        Ok(())
    }
}

/// Deterministic instruction stream for one thread of the service.
#[derive(Clone, Debug)]
pub struct LockServiceStream {
    cfg: LockServiceConfig,
    zipf: ZipfSampler,
    tid: u64,
    rng: SplitMix64,
    ops_done: u64,
    queue: std::collections::VecDeque<Instr>,
    gap_left: u64,
}

impl LockServiceStream {
    /// Creates the stream for thread `tid` of `threads` with a global `seed`.
    ///
    /// # Panics
    /// Panics if the config does not validate or `tid >= threads`.
    pub fn new(cfg: LockServiceConfig, tid: usize, threads: usize, seed: u64) -> Self {
        cfg.validate().expect("invalid lock-service config");
        assert!(tid < threads, "thread id out of range");
        let mut root = SplitMix64::new(seed ^ 0x10c4_5e2f);
        let rng = SplitMix64::new(root.next_u64().wrapping_add(tid as u64 * 0x9e37));
        LockServiceStream {
            cfg,
            zipf: ZipfSampler::new(cfg.keys, cfg.zipf_theta),
            tid: tid as u64,
            rng,
            ops_done: 0,
            queue: std::collections::VecDeque::new(),
            gap_left: 0,
        }
    }

    fn shard_word(&self, key: u64) -> u64 {
        SHARD_BASE + (key % self.cfg.shards) * 64
    }

    fn emit(&mut self, pc: u64, op: Op) {
        self.queue.push_back(Instr::simple(Pc::new(pc), op));
    }

    fn faa(&mut self, pc: u64, addr: u64) {
        self.emit(
            pc,
            Op::Atomic {
                rmw: RmwKind::Faa(1),
                addr: Addr::new(addr),
            },
        );
    }

    fn load(&mut self, pc: u64, addr: u64) {
        self.emit(
            pc,
            Op::Load {
                addr: Addr::new(addr),
            },
        );
    }

    fn store(&mut self, pc: u64, addr: u64, value: u64) {
        self.emit(
            pc,
            Op::Store {
                addr: Addr::new(addr),
                value: Some(value),
            },
        );
    }

    /// A payload value tagged with the writing thread and op, so journal
    /// tails read meaningfully during triage.
    fn payload(&self) -> u64 {
        (self.tid << 48) | self.ops_done
    }

    fn emit_write_op(&mut self, key: u64) {
        let shard = self.shard_word(key);
        match self.cfg.kernel {
            ServiceKernel::Counter => {
                // Take a shard ticket, then bump the key counter. One in
                // eight writers also swaps the shard owner word, giving the
                // oracle a non-FAA witness chain to order.
                self.faa(pcs::SHARD_TICKET, shard);
                if self.rng.chance(0.125) {
                    self.emit(
                        pcs::SHARD_OWNER,
                        Op::Atomic {
                            rmw: RmwKind::Swap(self.tid + 1),
                            addr: Addr::new(shard + 8),
                        },
                    );
                }
                self.faa(pcs::KEY_FAA, KEY_BASE + key * 64);
            }
            ServiceKernel::MpmcQueue => {
                // Ticket enqueue on the key's shard queue: claim a head
                // ticket, publish the payload to a slot, bump the tail.
                let q = QUEUE_BASE + (key % self.cfg.shards) * QUEUE_STRIDE;
                let slot = self.rng.below(QUEUE_SLOTS);
                let payload = self.payload();
                self.faa(pcs::Q_HEAD, q);
                self.store(pcs::Q_SLOT, q + 128 + slot * 64, payload);
                self.faa(pcs::Q_TAIL, q + 64);
            }
            ServiceKernel::MultiWordRegister => {
                // Seqlock-style publish: odd version while the data words
                // are in flight, even again once both have landed.
                let reg = REG_BASE + key * REG_STRIDE;
                let payload = self.payload();
                self.faa(pcs::REG_VER, reg);
                self.store(pcs::REG_DATA, reg + 64, payload);
                self.store(pcs::REG_DATA + 4, reg + 128, payload ^ u64::MAX);
                self.faa(pcs::REG_VER + 4, reg);
            }
        }
    }

    fn emit_read_op(&mut self, key: u64) {
        match self.cfg.kernel {
            ServiceKernel::Counter => {
                self.load(pcs::KEY_LOAD, KEY_BASE + key * 64);
            }
            ServiceKernel::MpmcQueue => {
                let q = QUEUE_BASE + (key % self.cfg.shards) * QUEUE_STRIDE;
                let slot = self.rng.below(QUEUE_SLOTS);
                self.load(pcs::Q_LOAD, q + 64);
                self.load(pcs::Q_LOAD + 4, q + 128 + slot * 64);
            }
            ServiceKernel::MultiWordRegister => {
                let reg = REG_BASE + key * REG_STRIDE;
                self.load(pcs::REG_LOAD, reg);
                self.load(pcs::REG_LOAD + 4, reg + 64);
                self.load(pcs::REG_LOAD + 8, reg + 128);
                self.load(pcs::REG_LOAD + 12, reg);
            }
        }
    }

    fn emit_op(&mut self) {
        let key = self.zipf.sample(&mut self.rng);
        if self.rng.chance(self.cfg.read_fraction) {
            self.emit_read_op(key);
        } else {
            self.emit_write_op(key);
        }
        self.ops_done += 1;
        // Open-loop arrival: the next operation's slack is drawn from the
        // arrival process, shrunk during burst epochs.
        let epoch = (self.ops_done / self.cfg.burst_epoch_ops) % 2;
        let gap = if epoch == 1 {
            (self.cfg.mean_gap / self.cfg.burst_factor).max(1.0)
        } else {
            self.cfg.mean_gap
        };
        self.gap_left = self.rng.geometric_gap(gap);
    }

    fn emit_filler(&mut self) {
        if self.rng.chance(0.25) {
            let line = self.rng.below(256);
            self.load(
                pcs::FILLER_LOAD,
                FILLER_BASE + self.tid * FILLER_STRIDE + line * 64,
            );
        } else {
            self.emit(pcs::FILLER_ALU, Op::Alu { latency: 1 });
        }
    }
}

impl InstrStream for LockServiceStream {
    fn next_instr(&mut self) -> Option<Instr> {
        loop {
            if let Some(i) = self.queue.pop_front() {
                return Some(i);
            }
            if self.ops_done >= self.cfg.ops_per_thread {
                return None;
            }
            if self.gap_left == 0 {
                self.emit_op();
            } else {
                self.gap_left -= 1;
                self.emit_filler();
            }
        }
    }

    fn save_state(&self, w: &mut Writer) {
        self.rng.encode(w);
        w.put_u64(self.ops_done);
        self.queue.encode(w);
        w.put_u64(self.gap_left);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        self.rng = SplitMix64::decode(r)?;
        self.ops_done = r.get_u64()?;
        self.queue = std::collections::VecDeque::<Instr>::decode(r)?;
        self.gap_left = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(cfg: LockServiceConfig, tid: usize, seed: u64) -> Vec<Instr> {
        let mut s = LockServiceStream::new(cfg, tid, 4, seed);
        let mut v = Vec::new();
        while let Some(i) = s.next_instr() {
            v.push(i);
        }
        v
    }

    #[test]
    fn stream_is_deterministic_and_finite() {
        for kernel in ServiceKernel::ALL {
            let cfg = LockServiceConfig::soak(kernel);
            let a = collect(cfg, 1, 42);
            let b = collect(cfg, 1, 42);
            assert_eq!(a, b);
            assert!(!a.is_empty());
            assert_ne!(a, collect(cfg, 2, 42));
        }
    }

    #[test]
    fn zipf_skew_concentrates_atomics_on_hot_keys() {
        let cfg = LockServiceConfig {
            read_fraction: 0.0,
            ops_per_thread: 2_000,
            ..LockServiceConfig::soak(ServiceKernel::Counter)
        };
        let v = collect(cfg, 0, 7);
        let key_faas: Vec<u64> = v
            .iter()
            .filter_map(|i| match i.op {
                Op::Atomic { addr, .. } if addr.raw() >= KEY_BASE && addr.raw() < QUEUE_BASE => {
                    Some((addr.raw() - KEY_BASE) / 64)
                }
                _ => None,
            })
            .collect();
        assert!(!key_faas.is_empty());
        let hot = key_faas.iter().filter(|&&k| k < 6).count();
        let frac = hot as f64 / key_faas.len() as f64;
        assert!(
            frac > 0.3,
            "top 6 of 64 keys got {frac:.2} of writes; expected Zipf skew"
        );
    }

    #[test]
    fn read_fraction_is_roughly_respected() {
        let cfg = LockServiceConfig {
            read_fraction: 0.5,
            ops_per_thread: 2_000,
            ..LockServiceConfig::soak(ServiceKernel::Counter)
        };
        let v = collect(cfg, 0, 9);
        let reads = v
            .iter()
            .filter(|i| matches!(i.op, Op::Load { addr } if addr.raw() >= KEY_BASE && addr.raw() < QUEUE_BASE))
            .count() as f64;
        let frac = reads / cfg.ops_per_thread as f64;
        assert!((0.4..0.6).contains(&frac), "read fraction {frac}");
    }

    #[test]
    fn bursty_epochs_change_arrival_spacing() {
        let cfg = LockServiceConfig {
            read_fraction: 0.0,
            ops_per_thread: 512,
            mean_gap: 40.0,
            burst_epoch_ops: 64,
            burst_factor: 8.0,
            ..LockServiceConfig::soak(ServiceKernel::Counter)
        };
        // Gap between ops = filler instructions between atomic blocks.
        let v = collect(cfg, 0, 11);
        let mut gaps = Vec::new();
        let mut run = 0u64;
        for i in &v {
            if matches!(i.op, Op::Atomic { .. } | Op::Store { .. }) {
                if run > 0 {
                    gaps.push(run);
                }
                run = 0;
            } else {
                run += 1;
            }
        }
        // Gap k follows op k+1, whose epoch is ((k+1)/epoch_ops) % 2; odd
        // epochs are bursts and must be clearly shorter on average.
        let (mut calm, mut burst) = (Vec::new(), Vec::new());
        for (k, &g) in gaps.iter().enumerate() {
            let epoch = ((k as u64 + 1) / cfg.burst_epoch_ops) % 2;
            if epoch == 1 {
                burst.push(g);
            } else {
                calm.push(g);
            }
        }
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        let (calm, burst) = (mean(&calm), mean(&burst));
        assert!(
            burst < calm / 2.0,
            "burst epoch gap {burst:.1} not well below calm {calm:.1}"
        );
    }

    #[test]
    fn kernels_emit_their_structure_shapes() {
        let cfg = LockServiceConfig {
            read_fraction: 0.0,
            ops_per_thread: 64,
            ..LockServiceConfig::soak(ServiceKernel::MpmcQueue)
        };
        let v = collect(cfg, 0, 13);
        // Every enqueue is FAA head, store slot, FAA tail — so stores with
        // values appear between pairs of queue-region FAAs.
        let q_faas = v
            .iter()
            .filter(|i| matches!(i.op, Op::Atomic { addr, .. } if addr.raw() >= QUEUE_BASE && addr.raw() < REG_BASE))
            .count() as u64;
        let q_stores = v
            .iter()
            .filter(|i| matches!(i.op, Op::Store { value: Some(_), .. }))
            .count() as u64;
        assert_eq!(q_faas, 2 * cfg.ops_per_thread);
        assert_eq!(q_stores, cfg.ops_per_thread);

        let cfg = LockServiceConfig {
            read_fraction: 0.0,
            ops_per_thread: 64,
            ..LockServiceConfig::soak(ServiceKernel::MultiWordRegister)
        };
        let v = collect(cfg, 0, 13);
        let ver_faas = v
            .iter()
            .filter(|i| matches!(i.op, Op::Atomic { addr, .. } if addr.raw() >= REG_BASE))
            .count() as u64;
        assert_eq!(ver_faas, 2 * cfg.ops_per_thread, "seqlock version pairs");
    }

    #[test]
    fn save_load_resumes_mid_stream_bit_exactly() {
        let cfg = LockServiceConfig::soak(ServiceKernel::MpmcQueue);
        let mut a = LockServiceStream::new(cfg, 2, 4, 21);
        for _ in 0..500 {
            a.next_instr();
        }
        let mut w = Writer::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut b = LockServiceStream::new(cfg, 2, 4, 21);
        let mut r = Reader::new(&bytes);
        b.load_state(&mut r).unwrap();
        for _ in 0..2_000 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = LockServiceConfig::soak(ServiceKernel::Counter);
        c.shards = 0;
        assert!(c.validate().is_err());
        let mut c = LockServiceConfig::soak(ServiceKernel::Counter);
        c.zipf_theta = 5.0;
        assert!(c.validate().is_err());
        let mut c = LockServiceConfig::soak(ServiceKernel::Counter);
        c.read_fraction = 1.5;
        assert!(c.validate().is_err());
        let mut c = LockServiceConfig::soak(ServiceKernel::Counter);
        c.burst_factor = 0.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn kernel_names_round_trip() {
        for k in ServiceKernel::ALL {
            assert_eq!(ServiceKernel::parse(k.name()), Some(k));
        }
        assert_eq!(ServiceKernel::parse("nope"), None);
    }
}
