//! Profile-driven synthetic workload generator.
//!
//! Real Splash-4/PARSEC binaries are unavailable here, so each benchmark is
//! modelled by the properties that drive the paper's mechanism (see
//! DESIGN.md): atomic intensity, the fraction of atomics touching shared hot
//! lines, atomic locality (a store to the same line right before the atomic —
//! the `cq`/`tatp`/`barnes` pattern), dependence-chain density, instruction
//! mix, and working-set size. A [`ProfileStream`] turns a
//! [`WorkloadProfile`] into a deterministic per-thread instruction stream.

use row_common::ids::{Addr, Pc};
use row_common::persist::{Codec, PersistError, Reader, Writer};
use row_common::rng::SplitMix64;

use row_cpu::instr::{Instr, InstrStream, Op, RmwKind};

/// Address-space layout constants (per-thread regions never collide).
const PRIVATE_BASE: u64 = 0x1000_0000;
const PRIVATE_STRIDE: u64 = 0x0100_0000;
const HOT_BASE: u64 = 0x8000_0000;
const SHARED_READ_BASE: u64 = 0x9000_0000;

/// The tunable properties of a synthetic parallel workload.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct WorkloadProfile {
    /// Display name (matches the paper's benchmark names).
    pub name: &'static str,
    /// Instructions per thread in the parallel phase.
    pub instructions: u64,
    /// Atomic RMWs per 10 000 instructions (Fig. 5, left axis).
    pub atomics_per_10k: f64,
    /// Fraction of atomics that target the shared hot lines.
    pub contended_fraction: f64,
    /// Number of hot (all-thread-shared) lines.
    pub hot_lines: u64,
    /// Per-thread lines reachable by non-contended atomics.
    pub private_atomic_lines: u64,
    /// Fraction of atomics preceded by a regular store to the same word
    /// (atomic locality; drives the Fig. 13 forwarding results).
    pub locality_fraction: f64,
    /// When true, one PC issues both contended and non-contended atomics
    /// (partial bias — the `barnes`/`tatp`/`raytrace` pathology).
    pub mixed_site: bool,
    /// Fraction of filler instructions that are loads.
    pub load_frac: f64,
    /// Fraction of filler instructions that are stores.
    pub store_frac: f64,
    /// Fraction of filler instructions that are branches.
    pub branch_frac: f64,
    /// Probability each filler ALU depends on the previous one (ILP knob;
    /// high values model `raytrace`/`streamcluster`-like serial chains).
    pub dep_chain: f64,
    /// Per-thread working-set size in cache lines for filler loads/stores.
    pub working_set_lines: u64,
    /// Fraction of filler loads that read the all-thread shared-read region.
    pub shared_read_fraction: f64,
}

impl WorkloadProfile {
    /// A neutral medium-intensity profile, useful as a starting point.
    pub fn balanced(name: &'static str) -> Self {
        WorkloadProfile {
            name,
            instructions: 20_000,
            atomics_per_10k: 10.0,
            contended_fraction: 0.0,
            hot_lines: 4,
            private_atomic_lines: 512,
            locality_fraction: 0.0,
            mixed_site: false,
            load_frac: 0.25,
            store_frac: 0.10,
            branch_frac: 0.10,
            dep_chain: 0.30,
            working_set_lines: 4096,
            shared_read_fraction: 0.05,
        }
    }

    /// Returns the profile with the per-thread instruction count replaced
    /// (the experiment runner scales workloads to the time budget).
    pub fn with_instructions(mut self, n: u64) -> Self {
        self.instructions = n;
        self
    }

    /// Validates that all fractions are sane.
    ///
    /// # Errors
    /// Describes the first out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        for (n, v) in [
            ("contended_fraction", self.contended_fraction),
            ("locality_fraction", self.locality_fraction),
            ("load_frac", self.load_frac),
            ("store_frac", self.store_frac),
            ("branch_frac", self.branch_frac),
            ("dep_chain", self.dep_chain),
            ("shared_read_fraction", self.shared_read_fraction),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{}: {n} = {v} out of [0,1]", self.name));
            }
        }
        if self.load_frac + self.store_frac + self.branch_frac > 1.0 {
            return Err(format!("{}: instruction mix exceeds 1.0", self.name));
        }
        if self.atomics_per_10k < 0.0 || self.atomics_per_10k > 5_000.0 {
            return Err(format!("{}: atomics_per_10k out of range", self.name));
        }
        if self.hot_lines == 0 || self.private_atomic_lines == 0 || self.working_set_lines == 0 {
            return Err(format!("{}: region sizes must be non-zero", self.name));
        }
        Ok(())
    }
}

/// Deterministic instruction stream for one thread of a profiled workload.
#[derive(Clone, Debug)]
pub struct ProfileStream {
    p: WorkloadProfile,
    rng: SplitMix64,
    tid: u64,
    emitted: u64,
    queue: std::collections::VecDeque<Instr>,
    until_atomic: u64,
    chain_live: bool,
}

/// PCs of the workload's static instruction sites.
mod pcs {
    pub const ALU: u64 = 0x1000;
    pub const LOAD: u64 = 0x1100;
    pub const STORE: u64 = 0x1200;
    pub const BRANCH: u64 = 0x1300;
    pub const ATOMIC_HOT: u64 = 0x2040;
    pub const ATOMIC_PRIVATE: u64 = 0x2080;
    pub const ATOMIC_MIXED: u64 = 0x20c0;
    pub const LOCAL_STORE: u64 = 0x2100;
}

impl ProfileStream {
    /// Creates the stream for thread `tid` of `threads` with a global `seed`.
    ///
    /// # Panics
    /// Panics if the profile does not validate.
    pub fn new(profile: WorkloadProfile, tid: usize, threads: usize, seed: u64) -> Self {
        profile.validate().expect("invalid workload profile");
        assert!(tid < threads, "thread id out of range");
        let mut root = SplitMix64::new(seed ^ 0x5eed_0000);
        let mut rng = SplitMix64::new(root.next_u64().wrapping_add(tid as u64 * 0x9e37));
        let until_atomic = Self::gap(&mut rng, &profile);
        ProfileStream {
            p: profile,
            rng,
            tid: tid as u64,
            emitted: 0,
            queue: std::collections::VecDeque::new(),
            until_atomic,
            chain_live: false,
        }
    }

    fn gap(rng: &mut SplitMix64, p: &WorkloadProfile) -> u64 {
        if p.atomics_per_10k <= 0.0 {
            return u64::MAX;
        }
        rng.geometric_gap(10_000.0 / p.atomics_per_10k)
    }

    fn private_ws_addr(&mut self) -> Addr {
        let line = self.rng.below(self.p.working_set_lines);
        let off = self.rng.below(8) * 8;
        Addr::new(PRIVATE_BASE + self.tid * PRIVATE_STRIDE + line * 64 + off)
    }

    fn shared_read_addr(&mut self) -> Addr {
        let line = self.rng.below(self.p.working_set_lines.max(64));
        Addr::new(SHARED_READ_BASE + line * 64)
    }

    fn hot_addr(&mut self) -> Addr {
        let line = self.rng.below(self.p.hot_lines);
        Addr::new(HOT_BASE + line * 64)
    }

    fn private_atomic_addr(&mut self) -> Addr {
        let line = self.rng.below(self.p.private_atomic_lines);
        Addr::new(PRIVATE_BASE + self.tid * PRIVATE_STRIDE + 0x80_0000 + line * 64)
    }

    fn emit_atomic_block(&mut self) {
        let contended = self.rng.chance(self.p.contended_fraction);
        let addr = if contended {
            self.hot_addr()
        } else {
            self.private_atomic_addr()
        };
        let pc = if self.p.mixed_site {
            pcs::ATOMIC_MIXED
        } else if contended {
            pcs::ATOMIC_HOT
        } else {
            pcs::ATOMIC_PRIVATE
        };
        if self.rng.chance(self.p.locality_fraction) {
            // Atomic locality: a plain store to the same word first.
            self.queue.push_back(Instr::simple(
                Pc::new(pcs::LOCAL_STORE),
                Op::Store { addr, value: None },
            ));
        }
        self.queue.push_back(Instr::simple(
            Pc::new(pc),
            Op::Atomic {
                rmw: RmwKind::Faa(1),
                addr,
            },
        ));
    }

    fn emit_filler(&mut self) {
        let r = self.rng.unit_f64();
        let i = if r < self.p.load_frac {
            let shared = self.rng.chance(self.p.shared_read_fraction);
            let addr = if shared {
                self.shared_read_addr()
            } else {
                self.private_ws_addr()
            };
            let site = self.rng.below(8);
            Instr::simple(Pc::new(pcs::LOAD + site * 4), Op::Load { addr }).with_dst(2)
        } else if r < self.p.load_frac + self.p.store_frac {
            let addr = self.private_ws_addr();
            let site = self.rng.below(8);
            Instr::simple(
                Pc::new(pcs::STORE + site * 4),
                Op::Store { addr, value: None },
            )
        } else if r < self.p.load_frac + self.p.store_frac + self.p.branch_frac {
            // Loop-like branches: a handful of sites, strongly biased.
            let site = self.rng.below(4);
            let taken = self.rng.chance(0.9);
            Instr::simple(Pc::new(pcs::BRANCH + site * 4), Op::Branch { taken })
        } else {
            let dep = self.chain_live && self.rng.chance(self.p.dep_chain);
            self.chain_live = true;
            let latency = if self.rng.chance(0.1) { 3 } else { 1 };
            let site = self.rng.below(8);
            let mut i =
                Instr::simple(Pc::new(pcs::ALU + site * 4), Op::Alu { latency }).with_dst(1);
            if dep {
                i = i.with_srcs(Some(1), None);
            }
            i
        };
        self.queue.push_back(i);
    }
}

impl InstrStream for ProfileStream {
    fn next_instr(&mut self) -> Option<Instr> {
        loop {
            if let Some(i) = self.queue.pop_front() {
                self.emitted += 1;
                return Some(i);
            }
            if self.emitted >= self.p.instructions {
                return None;
            }
            if self.until_atomic == 0 {
                self.emit_atomic_block();
                self.until_atomic = Self::gap(&mut self.rng, &self.p);
            } else {
                self.until_atomic -= 1;
                self.emit_filler();
            }
        }
    }

    fn save_state(&self, w: &mut Writer) {
        self.rng.encode(w);
        w.put_u64(self.emitted);
        self.queue.encode(w);
        w.put_u64(self.until_atomic);
        w.put_bool(self.chain_live);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        self.rng = SplitMix64::decode(r)?;
        self.emitted = r.get_u64()?;
        self.queue = std::collections::VecDeque::<Instr>::decode(r)?;
        self.until_atomic = r.get_u64()?;
        self.chain_live = r.get_bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(p: WorkloadProfile, tid: usize, seed: u64) -> Vec<Instr> {
        let mut s = ProfileStream::new(p, tid, 4, seed);
        let mut v = Vec::new();
        while let Some(i) = s.next_instr() {
            v.push(i);
        }
        v
    }

    fn profile() -> WorkloadProfile {
        let mut p = WorkloadProfile::balanced("test");
        p.instructions = 30_000;
        p.atomics_per_10k = 50.0;
        p.contended_fraction = 0.5;
        p.locality_fraction = 0.2;
        p
    }

    #[test]
    fn stream_is_deterministic() {
        let a = collect(profile(), 1, 42);
        let b = collect(profile(), 1, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn threads_and_seeds_differ() {
        let a = collect(profile(), 0, 42);
        let b = collect(profile(), 1, 42);
        let c = collect(profile(), 0, 43);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn atomic_rate_is_calibrated() {
        let v = collect(profile(), 0, 7);
        let atomics = v.iter().filter(|i| i.op.is_atomic()).count() as f64;
        let rate = atomics * 10_000.0 / v.len() as f64;
        assert!(
            (35.0..65.0).contains(&rate),
            "expected ~50 atomics/10k, got {rate}"
        );
    }

    #[test]
    fn contended_atomics_hit_hot_region() {
        let v = collect(profile(), 2, 7);
        let (mut hot, mut private) = (0, 0);
        for i in &v {
            if let Op::Atomic { addr, .. } = i.op {
                if addr.raw() >= HOT_BASE && addr.raw() < SHARED_READ_BASE {
                    hot += 1;
                } else {
                    private += 1;
                }
            }
        }
        assert!(hot > 0 && private > 0);
        let frac = hot as f64 / (hot + private) as f64;
        assert!((0.3..0.7).contains(&frac), "contended fraction {frac}");
    }

    #[test]
    fn locality_stores_precede_atomics() {
        let v = collect(profile(), 0, 9);
        let mut preceded = 0;
        let mut total = 0;
        for w in v.windows(2) {
            if let Op::Atomic { addr, .. } = w[1].op {
                total += 1;
                if let Op::Store { addr: sa, .. } = w[0].op {
                    if sa == addr {
                        preceded += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        let frac = preceded as f64 / total as f64;
        assert!((0.1..0.35).contains(&frac), "locality fraction {frac}");
    }

    #[test]
    fn private_regions_do_not_overlap_across_threads() {
        let a = collect(profile(), 0, 11);
        let b = collect(profile(), 1, 11);
        let priv_lines = |v: &[Instr]| -> std::collections::HashSet<u64> {
            v.iter()
                .filter_map(|i| i.op.addr())
                .filter(|a| a.raw() < HOT_BASE)
                .map(|a| a.line().raw())
                .collect()
        };
        let la = priv_lines(&a);
        let lb = priv_lines(&b);
        assert!(la.is_disjoint(&lb), "private working sets must not collide");
    }

    #[test]
    fn zero_atomics_profile_emits_none() {
        let mut p = profile();
        p.atomics_per_10k = 0.0;
        p.instructions = 5_000;
        let v = collect(p, 0, 3);
        assert!(v.iter().all(|i| !i.op.is_atomic()));
        assert_eq!(v.len(), 5_000);
    }

    #[test]
    fn invalid_profiles_are_rejected() {
        let mut p = profile();
        p.load_frac = 0.9;
        p.store_frac = 0.5;
        assert!(p.validate().is_err());
        let mut p = profile();
        p.contended_fraction = 1.5;
        assert!(p.validate().is_err());
        let mut p = profile();
        p.hot_lines = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn instruction_count_matches_profile() {
        let v = collect(profile().with_instructions(12_345), 0, 1);
        // Atomic blocks can push the total slightly past the target.
        assert!(v.len() as u64 >= 12_345);
        assert!((v.len() as u64) < 12_345 + 10);
    }
}
