//! The evaluated benchmark suite.
//!
//! Thirteen named workload models covering the paper's Splash-4, PARSEC 3.0
//! and fine-grain-synchronization applications. Each profile is calibrated to
//! the behavioural inputs the paper reports (Fig. 5 atomic intensity and
//! contentiousness, Fig. 1 eager/lazy preference, and the atomic-locality
//! discussion for `cq`/`tatp`/`barnes`).

use crate::profile::WorkloadProfile;

/// The benchmarks evaluated in the paper's figures.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum Benchmark {
    Canneal,
    Freqmine,
    Cq,
    Tatp,
    Barnes,
    Fmm,
    Volrend,
    Radiosity,
    Raytrace,
    Streamcluster,
    Tpcc,
    Sps,
    Pc,
}

impl Benchmark {
    /// All benchmarks, in the paper's Fig. 1 order (best eager-vs-lazy
    /// speedup first).
    pub fn all() -> &'static [Benchmark] {
        use Benchmark::*;
        &[
            Canneal,
            Freqmine,
            Cq,
            Tatp,
            Barnes,
            Fmm,
            Volrend,
            Radiosity,
            Raytrace,
            Streamcluster,
            Tpcc,
            Sps,
            Pc,
        ]
    }

    /// The atomic-intensive subset (≥ 1 atomic per 10 k instructions), the
    /// set plotted in Figs. 4-6 and 9-13.
    pub fn atomic_intensive() -> Vec<Benchmark> {
        Benchmark::all()
            .iter()
            .copied()
            .filter(|b| b.profile().atomics_per_10k >= 1.0)
            .collect()
    }

    /// Display name as used in the paper.
    pub fn name(&self) -> &'static str {
        self.profile().name
    }

    /// The calibrated workload model.
    pub fn profile(&self) -> WorkloadProfile {
        let mut p = WorkloadProfile::balanced(match self {
            Benchmark::Canneal => "canneal",
            Benchmark::Freqmine => "freqmine",
            Benchmark::Cq => "cq",
            Benchmark::Tatp => "tatp",
            Benchmark::Barnes => "barnes",
            Benchmark::Fmm => "fmm",
            Benchmark::Volrend => "volrend",
            Benchmark::Radiosity => "radiosity",
            Benchmark::Raytrace => "raytrace",
            Benchmark::Streamcluster => "streamcluster",
            Benchmark::Tpcc => "tpcc",
            Benchmark::Sps => "sps",
            Benchmark::Pc => "pc",
        });
        match self {
            // Atomic-intensive, essentially uncontended, big working sets:
            // eager hides the atomics' miss latency (paper: −42 % / −26 %
            // versus lazy).
            Benchmark::Canneal => {
                p.atomics_per_10k = 45.0;
                // Migratory sharing, like real canneal's element swaps: a
                // large shared pool that threads visit at different times.
                // Lines often arrive cache-to-cache with *low* latency —
                // exactly what a zero-cycle Fig. 10 threshold misclassifies
                // as contention, while the 400-cycle threshold does not.
                p.contended_fraction = 0.10;
                p.hot_lines = 4_096;
                p.private_atomic_lines = 8_192;
                p.working_set_lines = 768;
                p.load_frac = 0.25;
                p.dep_chain = 0.20;
            }
            Benchmark::Freqmine => {
                p.atomics_per_10k = 30.0;
                p.contended_fraction = 0.08;
                p.hot_lines = 2_048; // migratory, like canneal
                p.private_atomic_lines = 4_096;
                p.working_set_lines = 512;
                p.dep_chain = 0.25;
            }
            // Contended *but* with strong atomic locality (store to the node
            // line right before the CAS on it): eager preserves the line in
            // L1D; forwarding recovers RoW's loss (Fig. 13).
            Benchmark::Cq => {
                p.atomics_per_10k = 25.0;
                p.contended_fraction = 0.60;
                p.hot_lines = 32;
                p.locality_fraction = 0.90;
                p.working_set_lines = 512;
            }
            Benchmark::Tatp => {
                p.atomics_per_10k = 10.0;
                p.contended_fraction = 0.30;
                p.hot_lines = 32;
                p.locality_fraction = 0.60;
                p.mixed_site = true;
            }
            Benchmark::Barnes => {
                p.atomics_per_10k = 8.0;
                p.contended_fraction = 0.35;
                p.hot_lines = 16;
                p.locality_fraction = 0.50;
                p.mixed_site = true;
            }
            // Low atomic intensity: insensitive to the execution discipline.
            Benchmark::Fmm => {
                p.atomics_per_10k = 1.5;
                p.contended_fraction = 0.20;
            }
            Benchmark::Volrend => {
                p.atomics_per_10k = 2.0;
                p.contended_fraction = 0.30;
            }
            Benchmark::Radiosity => {
                p.atomics_per_10k = 3.0;
                p.contended_fraction = 0.10;
            }
            // Moderately contended with long dependence chains (few younger
            // instructions to overlap): small lazy win.
            Benchmark::Raytrace => {
                p.atomics_per_10k = 12.0;
                p.contended_fraction = 0.70;
                p.hot_lines = 2;
                p.dep_chain = 0.75;
                p.mixed_site = true;
                p.working_set_lines = 512;
                p.private_atomic_lines = 128;
            }
            Benchmark::Streamcluster => {
                p.atomics_per_10k = 35.0;
                p.contended_fraction = 0.80;
                p.hot_lines = 1;
                p.dep_chain = 0.60;
                p.working_set_lines = 512;
                p.private_atomic_lines = 128;
            }
            // Highly contended fine-grain synchronization: lazy wins big.
            Benchmark::Tpcc => {
                p.atomics_per_10k = 60.0;
                p.contended_fraction = 0.80;
                p.hot_lines = 2;
                p.locality_fraction = 0.05;
                p.working_set_lines = 512;
            }
            Benchmark::Sps => {
                p.atomics_per_10k = 80.0;
                p.contended_fraction = 0.85;
                p.hot_lines = 1;
                p.working_set_lines = 256;
                p.load_frac = 0.15;
            }
            Benchmark::Pc => {
                p.atomics_per_10k = 100.0;
                p.contended_fraction = 0.90;
                p.hot_lines = 1;
                p.working_set_lines = 256;
                p.load_frac = 0.15;
            }
        }
        p
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for b in Benchmark::all() {
            b.profile().validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn thirteen_benchmarks_named_like_the_paper() {
        let names: Vec<&str> = Benchmark::all().iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 13);
        for expect in ["canneal", "pc", "sps", "tpcc", "cq", "raytrace"] {
            assert!(names.contains(&expect), "missing {expect}");
        }
    }

    #[test]
    fn atomic_intensive_excludes_low_intensity_apps() {
        let ai = Benchmark::atomic_intensive();
        assert!(ai.contains(&Benchmark::Pc));
        assert!(ai.contains(&Benchmark::Canneal));
        assert!(
            ai.len() == 13,
            "all modelled apps clear the 1/10k bar: {ai:?}"
        );
    }

    #[test]
    fn contention_ordering_matches_fig5() {
        let cont = |b: Benchmark| b.profile().contended_fraction;
        assert!(cont(Benchmark::Pc) > cont(Benchmark::Tpcc));
        assert!(cont(Benchmark::Tpcc) > cont(Benchmark::Barnes));
        // canneal's sharing is migratory (large pool), not contended.
        assert!(cont(Benchmark::Canneal) <= 0.15);
        assert!(Benchmark::Canneal.profile().hot_lines >= 1_024);
    }

    #[test]
    fn locality_apps_have_forwarding_opportunities() {
        assert!(Benchmark::Cq.profile().locality_fraction > 0.5);
        assert!(Benchmark::Tatp.profile().locality_fraction > 0.3);
        assert!(Benchmark::Pc.profile().locality_fraction < 0.1);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Benchmark::Canneal.to_string(), "canneal");
    }
}
