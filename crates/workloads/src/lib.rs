//! Workload and microbenchmark trace generators — the benchmark-suite
//! substitute.
//!
//! The paper evaluates Splash-4, PARSEC 3.0, and six fine-grain
//! synchronization workloads on a Sniper front-end. Neither the binaries nor
//! the front-end are available, so this crate generates deterministic
//! instruction streams that reproduce the properties those workloads feed
//! into the mechanism under study:
//!
//! * [`profile`] — the parametric generator ([`WorkloadProfile`],
//!   [`ProfileStream`]).
//! * [`suite`] — the 13 named, calibrated benchmark models ([`Benchmark`]).
//! * [`microbench`] — the Fig. 2 single-thread RMW microbenchmark.
//! * [`kernels`] — exact-pattern synchronization kernels (producer/consumer,
//!   shared counters, concurrent queue) for examples and shape tests.
//! * [`lockservice`] — the sharded lock/counter service under open-loop
//!   arrival ([`LockServiceStream`]), the soak harness's workload family.
//! * [`litmus`] — the classic x86-TSO litmus suite ([`LitmusTest`]): tiny
//!   per-core programs with declared allowed/forbidden outcome sets, the
//!   conformance contract behind `norush litmus` and `norush explore`.
//! * [`trace`] — record any stream to a trace file and replay it bit-exactly
//!   (the Sniper-trace analogue).
//!
//! # Example
//!
//! ```
//! use row_cpu::instr::InstrStream;
//! use row_workloads::{Benchmark, ProfileStream};
//!
//! let profile = Benchmark::Pc.profile().with_instructions(1_000);
//! let mut stream = ProfileStream::new(profile, 0, 32, 42);
//! let mut n = 0;
//! while stream.next_instr().is_some() { n += 1; }
//! assert!(n >= 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
pub mod litmus;
pub mod lockservice;
pub mod microbench;
pub mod profile;
pub mod suite;
pub mod trace;

pub use litmus::{LitmusTest, OutcomeClass, Probe};
pub use lockservice::{LockServiceConfig, LockServiceStream, ServiceKernel};
pub use microbench::{MicroRmw, MicroVariant, MicrobenchConfig, MicrobenchStream};
pub use profile::{ProfileStream, WorkloadProfile};
pub use suite::Benchmark;
pub use trace::{read_trace, record_to_file, write_trace, TraceFileStream};
