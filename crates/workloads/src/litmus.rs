//! Classic x86-TSO litmus tests with declared allowed/forbidden outcomes.
//!
//! Each [`LitmusTest`] is a family of tiny per-core instruction programs
//! (2–4 cores, two cache lines) plus the full classification of its final
//! states: the **allowed** set a TSO machine may produce (and a complete
//! explorer must *witness*), and the **forbidden** set no TSO machine may
//! ever produce. Outcomes are tuples of [`Probe`] values — per-load observed
//! values (the last [`LoadObservation`][`row_cpu::core::LoadObservation`]
//! recorded for the load's PC, so squash replays resolve correctly) and
//! final functional-memory words.
//!
//! The suite is the paper's conformance contract made executable: "no rush"
//! (delaying atomic commit) and eager execution (rushing it) must both be
//! *invisible* at this level. `norush litmus` samples each test under
//! schedule jitter; `norush explore` enumerates delivery/commit schedules
//! exhaustively at small bounds and checks both directions of the contract.
//!
//! Outcome derivations follow the x86-TSO axioms (Owens, Sarkar, Sewell,
//! *A Better x86 Memory Model: x86-TSO*): per-core program order is
//! preserved except a load may complete before an older store to a
//! different address drains (store buffering); stores drain in order into a
//! single global memory order; locked RMWs are two-sided fences.

use row_common::ids::{Addr, Pc};
use row_cpu::instr::{Instr, Op, RmwKind};

/// Address of variable `x` (its own cache line).
pub const X: u64 = 0x1_0000;
/// Address of variable `y` (a different cache line from [`X`]).
pub const Y: u64 = 0x2_0000;

/// Where one element of an outcome tuple is observed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Probe {
    /// The value the load at `(core, pc)` finally observed (last recorded
    /// observation for that PC — squash replays re-log).
    Load {
        /// Core index the load runs on.
        core: usize,
        /// The load's PC.
        pc: Pc,
    },
    /// The final value of the 64-bit word at `addr` in functional memory.
    Mem {
        /// Word address.
        addr: Addr,
    },
}

/// How an observed outcome relates to a test's declared sets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OutcomeClass {
    /// In the allowed set.
    Allowed,
    /// In the forbidden set — a TSO conformance violation.
    Forbidden,
    /// In neither set — also a violation (the allowed set is exhaustive),
    /// e.g. a torn or invented value.
    Unlisted,
}

/// One litmus test: programs, probes, and the outcome classification.
#[derive(Clone, Debug)]
pub struct LitmusTest {
    /// Short name (`sb`, `mp`, …) used by the CLI.
    pub name: &'static str,
    /// One-line description of what the test checks.
    pub description: &'static str,
    /// Per-core instruction programs.
    pub programs: Vec<Vec<Instr>>,
    /// The outcome tuple, element by element.
    pub probes: Vec<Probe>,
    /// Every outcome a TSO machine may produce (exhaustive).
    pub allowed: Vec<Vec<u64>>,
    /// Outcomes no TSO machine may ever produce.
    pub forbidden: Vec<Vec<u64>>,
}

fn store(pc: u64, addr: u64, v: u64) -> Instr {
    Instr::simple(
        Pc::new(pc),
        Op::Store {
            addr: Addr::new(addr),
            value: Some(v),
        },
    )
}

fn load(pc: u64, addr: u64) -> Instr {
    Instr::simple(
        Pc::new(pc),
        Op::Load {
            addr: Addr::new(addr),
        },
    )
}

fn faa(pc: u64, addr: u64) -> Instr {
    Instr::simple(
        Pc::new(pc),
        Op::Atomic {
            rmw: RmwKind::Faa(1),
            addr: Addr::new(addr),
        },
    )
}

fn pl(core: usize, pc: u64) -> Probe {
    Probe::Load {
        core,
        pc: Pc::new(pc),
    }
}

fn pm(addr: u64) -> Probe {
    Probe::Mem {
        addr: Addr::new(addr),
    }
}

/// All binary tuples of width `w` except those in `forbidden`.
fn all_binary_except(w: u32, forbidden: &[Vec<u64>]) -> Vec<Vec<u64>> {
    (0..(1u64 << w))
        .map(|bits| (0..w).map(|i| (bits >> i) & 1).collect::<Vec<u64>>())
        .filter(|t| !forbidden.contains(t))
        .collect()
}

impl LitmusTest {
    /// Number of cores the test needs.
    pub fn cores(&self) -> usize {
        self.programs.len()
    }

    /// Classifies one observed outcome tuple.
    pub fn classify(&self, outcome: &[u64]) -> OutcomeClass {
        if self.forbidden.iter().any(|f| f == outcome) {
            OutcomeClass::Forbidden
        } else if self.allowed.iter().any(|a| a == outcome) {
            OutcomeClass::Allowed
        } else {
            OutcomeClass::Unlisted
        }
    }

    /// The whole suite, in canonical order.
    pub fn all() -> Vec<LitmusTest> {
        vec![
            Self::sb(),
            Self::mp(),
            Self::lb(),
            Self::iriw(),
            Self::r(),
            Self::w22(),
            Self::corr(),
            Self::sb_rmw(),
            Self::mp_rmw(),
            Self::r3w1(),
        ]
    }

    /// The canonical test names, in suite order.
    pub fn names() -> Vec<&'static str> {
        Self::all().iter().map(|t| t.name).collect()
    }

    /// Looks a test up by its CLI name.
    pub fn by_name(name: &str) -> Option<LitmusTest> {
        Self::all().into_iter().find(|t| t.name == name)
    }

    /// Store buffering — TSO's signature relaxation.
    ///
    /// ```text
    /// T0: x=1; r0=y          T1: y=1; r1=x
    /// ```
    ///
    /// All four outcomes are allowed; `(0,0)` is the one SC forbids and TSO
    /// permits (each load slips past its core's buffered store).
    pub fn sb() -> LitmusTest {
        LitmusTest {
            name: "sb",
            description: "store buffering: (0,0) allowed under TSO, all four reachable",
            programs: vec![
                vec![store(0x10, X, 1), load(0x14, Y)],
                vec![store(0x20, Y, 1), load(0x24, X)],
            ],
            probes: vec![pl(0, 0x14), pl(1, 0x24)],
            allowed: all_binary_except(2, &[]),
            forbidden: vec![],
        }
    }

    /// Message passing — the flag must publish the data.
    ///
    /// ```text
    /// T0: x=1; y=1           T1: r0=y; r1=x
    /// ```
    ///
    /// Forbidden: `(1,0)` — seeing the flag but stale data would need
    /// store→store or load→load reordering, neither of which TSO allows.
    pub fn mp() -> LitmusTest {
        let forbidden = vec![vec![1, 0]];
        LitmusTest {
            name: "mp",
            description: "message passing: flag=1 must imply data=1",
            programs: vec![
                vec![store(0x10, X, 1), store(0x14, Y, 1)],
                vec![load(0x20, Y), load(0x24, X)],
            ],
            probes: vec![pl(1, 0x20), pl(1, 0x24)],
            allowed: all_binary_except(2, &forbidden),
            forbidden,
        }
    }

    /// Load buffering — values may not appear out of thin air.
    ///
    /// ```text
    /// T0: r0=x; y=1          T1: r1=y; x=1
    /// ```
    ///
    /// Forbidden: `(1,1)` — each load would have to read the other core's
    /// *later* store, a causal cycle TSO's load→store order rules out.
    pub fn lb() -> LitmusTest {
        let forbidden = vec![vec![1, 1]];
        LitmusTest {
            name: "lb",
            description: "load buffering: (1,1) would be a causal cycle",
            programs: vec![
                vec![load(0x10, X), store(0x14, Y, 1)],
                vec![load(0x20, Y), store(0x24, X, 1)],
            ],
            probes: vec![pl(0, 0x10), pl(1, 0x20)],
            allowed: all_binary_except(2, &forbidden),
            forbidden,
        }
    }

    /// Independent reads of independent writes — store atomicity.
    ///
    /// ```text
    /// T0: x=1    T1: y=1    T2: r0=x; r1=y    T3: r2=y; r3=x
    /// ```
    ///
    /// Forbidden: `(1,0,1,0)` — the two observers would disagree on the
    /// order of the independent stores, impossible in a single total store
    /// order. The other 15 outcomes are all reachable.
    pub fn iriw() -> LitmusTest {
        let forbidden = vec![vec![1, 0, 1, 0]];
        LitmusTest {
            name: "iriw",
            description: "IRIW: observers may not disagree on the store order",
            programs: vec![
                vec![store(0x10, X, 1)],
                vec![store(0x20, Y, 1)],
                vec![load(0x30, X), load(0x34, Y)],
                vec![load(0x40, Y), load(0x44, X)],
            ],
            probes: vec![pl(2, 0x30), pl(2, 0x34), pl(3, 0x40), pl(3, 0x44)],
            allowed: all_binary_except(4, &forbidden),
            forbidden,
        }
    }

    /// Test R — store buffering observed through a coherence race.
    ///
    /// ```text
    /// T0: x=1; y=1           T1: y=2; r0=x
    /// ```
    ///
    /// Outcome is `(final y, r0)`. `(2,0)` is the TSO-not-SC case: T1's load
    /// runs before its own store drains, reads `x=0`, yet T1's `y=2` lands
    /// after T0's `y=1`. All four combinations are allowed.
    pub fn r() -> LitmusTest {
        LitmusTest {
            name: "r",
            description: "R: (y=2, r0=0) allowed under TSO (store buffering), all four reachable",
            programs: vec![
                vec![store(0x10, X, 1), store(0x14, Y, 1)],
                vec![store(0x20, Y, 2), load(0x24, X)],
            ],
            probes: vec![pm(Y), pl(1, 0x24)],
            allowed: vec![vec![1, 0], vec![1, 1], vec![2, 0], vec![2, 1]],
            forbidden: vec![],
        }
    }

    /// 2+2W — write order must be globally consistent.
    ///
    /// ```text
    /// T0: x=1; y=2           T1: y=1; x=2
    /// ```
    ///
    /// Outcome is `(final x, final y)`. Forbidden: `(1,1)` — it requires
    /// `T1.x=2 < T0.x=1` and `T0.y=2 < T1.y=1`, which with each core's
    /// in-order store drain closes a cycle in the memory order.
    pub fn w22() -> LitmusTest {
        LitmusTest {
            name: "2+2w",
            description: "2+2W: final (x=1, y=1) closes a store-order cycle",
            programs: vec![
                vec![store(0x10, X, 1), store(0x14, Y, 2)],
                vec![store(0x20, Y, 1), store(0x24, X, 2)],
            ],
            probes: vec![pm(X), pm(Y)],
            allowed: vec![vec![1, 2], vec![2, 1], vec![2, 2]],
            forbidden: vec![vec![1, 1]],
        }
    }

    /// Coherence read-read — same-location reads may not go backwards.
    ///
    /// ```text
    /// T0: x=1                T1: r0=x; r1=x
    /// ```
    ///
    /// Forbidden: `(1,0)` — a later read of the same location observing an
    /// older value violates per-location coherence.
    ///
    /// A dependent ALU chain separates the two reads: back-to-back loads of
    /// one line bind their values in the same fill and retire in the same
    /// commit group, leaving no window for the writer's invalidation to land
    /// *between* them — the `(0,1)` outcome (old then new) would be
    /// unwitnessable. Coherence must hold across intervening dependent
    /// computation, so the chain keeps the test meaning while opening a
    /// multi-quantum window the explorer can hit.
    pub fn corr() -> LitmusTest {
        let forbidden = vec![vec![1, 0]];
        let gap = |pc: u64, src: u8, dst: u8| {
            Instr::simple(Pc::new(pc), Op::Alu { latency: 16 })
                .with_srcs(Some(src), None)
                .with_dst(dst)
        };
        LitmusTest {
            name: "corr",
            description: "CoRR: same-location reads never observe values backwards",
            programs: vec![
                vec![store(0x10, X, 1)],
                vec![
                    load(0x20, X).with_dst(0),
                    gap(0x21, 0, 1),
                    gap(0x22, 1, 2),
                    gap(0x23, 2, 3),
                    gap(0x25, 3, 4),
                    load(0x24, X).with_srcs(Some(4), None),
                ],
            ],
            probes: vec![pl(1, 0x20), pl(1, 0x24)],
            allowed: all_binary_except(2, &forbidden),
            forbidden,
        }
    }

    /// SB with locked RMWs in place of the stores — the fence the paper's
    /// mechanism must preserve.
    ///
    /// ```text
    /// T0: faa(x); r0=y       T1: faa(y); r1=x
    /// ```
    ///
    /// A locked RMW is a two-sided fence on x86: the younger load may not
    /// complete until the RMW has globally performed. Forbidden: `(0,0)` —
    /// exactly the outcome plain SB allows. This is the test that catches
    /// an atomic implementation that "rushes" (or delays) its way out of
    /// fence semantics.
    pub fn sb_rmw() -> LitmusTest {
        let forbidden = vec![vec![0, 0]];
        LitmusTest {
            name: "sb+rmw",
            description: "SB with locked RMWs: the RMW fences, so (0,0) is forbidden",
            programs: vec![
                vec![faa(0x10, X), load(0x14, Y)],
                vec![faa(0x20, Y), load(0x24, X)],
            ],
            probes: vec![pl(0, 0x14), pl(1, 0x24)],
            allowed: all_binary_except(2, &forbidden),
            forbidden,
        }
    }

    /// MP with a locked RMW publishing the flag.
    ///
    /// ```text
    /// T0: x=1; faa(y)        T1: r0=y; r1=x
    /// ```
    ///
    /// The RMW may not commit before the older store drains, so flag=1
    /// still implies data=1: forbidden `(1,0)`. Exercises the
    /// store→atomic ordering path (SB drain gating atomic commit) that
    /// eager/lazy/RoW all must preserve.
    pub fn mp_rmw() -> LitmusTest {
        let forbidden = vec![vec![1, 0]];
        LitmusTest {
            name: "mp+rmw",
            description: "MP with an RMW flag: flag=1 must still imply data=1",
            programs: vec![
                vec![store(0x10, X, 1), faa(0x14, Y)],
                vec![load(0x20, Y), load(0x24, X)],
            ],
            probes: vec![pl(1, 0x20), pl(1, 0x24)],
            allowed: all_binary_except(2, &forbidden),
            forbidden,
        }
    }

    /// Three readers and one writer on a single line — a pure coherence
    /// stressor rather than an ordering test.
    ///
    /// ```text
    /// T0: x=1    T1: r0=x    T2: r1=x    T3: r2=x
    /// ```
    ///
    /// Every combination is allowed (one location, one store, unordered
    /// readers). The shape exists to drive the directory through its
    /// Shared-state grant path, which no two-reader test reaches: reader 1
    /// takes the Exclusive grant, reader 2's forward downgrades it to
    /// `Shared`, and reader 3's GetS is then served *from* `Shared` — the
    /// arm the planted `--inject-early-unblock` bug corrupts — while the
    /// writer's GetX races the same line.
    pub fn r3w1() -> LitmusTest {
        LitmusTest {
            name: "3r1w",
            description: "three readers + one writer on one line (Shared-grant race)",
            programs: vec![
                vec![store(0x10, X, 1)],
                vec![load(0x20, X)],
                vec![load(0x30, X)],
                vec![load(0x40, X)],
            ],
            probes: vec![pl(1, 0x20), pl(2, 0x30), pl(3, 0x40)],
            allowed: all_binary_except(3, &[]),
            forbidden: vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_well_formed() {
        let suite = LitmusTest::all();
        assert_eq!(suite.len(), 10);
        let mut names = std::collections::HashSet::new();
        for t in &suite {
            assert!(names.insert(t.name), "duplicate test name {}", t.name);
            assert!(!t.programs.is_empty());
            assert!(
                (2..=4).contains(&t.cores()),
                "{}: cores out of range",
                t.name
            );
            assert!(!t.probes.is_empty());
            assert!(!t.allowed.is_empty(), "{}: allowed set empty", t.name);
            for o in t.allowed.iter().chain(t.forbidden.iter()) {
                assert_eq!(o.len(), t.probes.len(), "{}: tuple width", t.name);
            }
            // Allowed and forbidden are disjoint.
            for f in &t.forbidden {
                assert!(!t.allowed.contains(f), "{}: {f:?} in both sets", t.name);
            }
            // Every Load probe points at a real load in the named program.
            for p in &t.probes {
                if let Probe::Load { core, pc } = *p {
                    assert!(
                        t.programs[core]
                            .iter()
                            .any(|i| i.pc == pc
                                && matches!(i.op, Op::Load { .. } | Op::Atomic { .. }))
                    );
                }
            }
        }
    }

    #[test]
    fn classification() {
        let mp = LitmusTest::mp();
        assert_eq!(mp.classify(&[1, 0]), OutcomeClass::Forbidden);
        assert_eq!(mp.classify(&[0, 0]), OutcomeClass::Allowed);
        assert_eq!(mp.classify(&[7, 7]), OutcomeClass::Unlisted);
    }

    #[test]
    fn binary_enumeration_excludes_forbidden() {
        let all = all_binary_except(2, &[vec![1, 0]]);
        assert_eq!(all.len(), 3);
        assert!(!all.contains(&vec![1, 0]));
        let iriw = LitmusTest::iriw();
        assert_eq!(iriw.allowed.len(), 15);
    }

    #[test]
    fn lookup_by_name() {
        for name in LitmusTest::names() {
            assert_eq!(LitmusTest::by_name(name).unwrap().name, name);
        }
        assert!(LitmusTest::by_name("nope").is_none());
    }
}
