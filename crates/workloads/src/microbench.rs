//! The Fig. 2 microbenchmark.
//!
//! One thread allocates a large array (exceeding all caches), then repeatedly
//! picks a random element and performs an RMW on it in one of four variants:
//! non-atomic or atomic (x86 `lock` prefix), each without or with explicit
//! `mfence`s before and after. Because accesses miss and are independent, the
//! fence variants collapse memory-level parallelism — the effect Fig. 2
//! measures.
//!
//! Note the paper's footnote: `xchg` with a memory operand is always locked,
//! so the Swap/non-atomic variant behaves identically to Swap/atomic; this
//! generator reproduces that by always emitting the atomic form for Swap.

use row_common::ids::{Addr, Pc};
use row_common::persist::{Codec, PersistError, Reader, Writer};
use row_common::rng::SplitMix64;

use row_cpu::instr::{Instr, InstrStream, Op, RmwKind};

/// Which RMW instruction the microbenchmark exercises.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MicroRmw {
    /// Fetch-and-add (`lock xadd` / `add`).
    Faa,
    /// Compare-and-swap (`lock cmpxchg` / `cmpxchg`).
    Cas,
    /// Exchange (`xchg` — always locked on x86).
    Swap,
}

impl MicroRmw {
    /// All three RMW instructions, in the paper's order.
    pub const ALL: [MicroRmw; 3] = [MicroRmw::Faa, MicroRmw::Cas, MicroRmw::Swap];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MicroRmw::Faa => "FAA",
            MicroRmw::Cas => "CAS",
            MicroRmw::Swap => "Swap",
        }
    }
}

/// One of the four microbenchmark variants.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MicroVariant {
    /// Use the `lock` prefix (atomic execution).
    pub atomic: bool,
    /// Surround the RMW with explicit `mfence`s.
    pub mfence: bool,
}

impl MicroVariant {
    /// The four variants in the paper's per-group order:
    /// plain, plain+mfence, lock, lock+mfence.
    pub const ALL: [MicroVariant; 4] = [
        MicroVariant {
            atomic: false,
            mfence: false,
        },
        MicroVariant {
            atomic: false,
            mfence: true,
        },
        MicroVariant {
            atomic: true,
            mfence: false,
        },
        MicroVariant {
            atomic: true,
            mfence: true,
        },
    ];

    /// Display name, e.g. `"lock+mfence"`.
    pub fn name(&self) -> &'static str {
        match (self.atomic, self.mfence) {
            (false, false) => "plain",
            (false, true) => "plain+mfence",
            (true, false) => "lock",
            (true, true) => "lock+mfence",
        }
    }
}

/// Configuration of one microbenchmark run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MicrobenchConfig {
    /// RMW instruction under test.
    pub rmw: MicroRmw,
    /// Variant (lock prefix / explicit fences).
    pub variant: MicroVariant,
    /// Iterations (each picks a random element and RMWs it).
    pub iterations: u64,
    /// Array size in cache lines; must exceed the simulated LLC to keep the
    /// memory latency exposed (the paper uses a many-megabyte array).
    pub array_lines: u64,
    /// RNG seed.
    pub seed: u64,
}

impl MicrobenchConfig {
    /// A configuration matching the paper's setup, scaled to simulation.
    pub fn paper_like(rmw: MicroRmw, variant: MicroVariant, iterations: u64) -> Self {
        MicrobenchConfig {
            rmw,
            variant,
            iterations,
            array_lines: 1 << 17, // 8 MiB, beyond the small-config LLC
            seed: 0xf162,
        }
    }

    /// Instructions emitted per iteration (constant within a variant, so
    /// cycles/iteration are comparable across RMWs).
    pub fn instrs_per_iteration(&self) -> u64 {
        let rmw = if self.effective_atomic() { 1 } else { 3 };
        let fences = if self.variant.mfence { 2 } else { 0 };
        2 + rmw + fences // 2 index ALUs + RMW + fences
    }

    /// Whether the emitted RMW is atomic, accounting for `xchg`'s implicit
    /// lock.
    pub fn effective_atomic(&self) -> bool {
        self.variant.atomic || self.rmw == MicroRmw::Swap
    }
}

const ARRAY_BASE: u64 = 0x4000_0000;

/// The microbenchmark instruction stream.
#[derive(Clone, Debug)]
pub struct MicrobenchStream {
    cfg: MicrobenchConfig,
    rng: SplitMix64,
    iter: u64,
    queue: std::collections::VecDeque<Instr>,
}

impl MicrobenchStream {
    /// Creates the stream.
    ///
    /// # Panics
    /// Panics if `iterations` or `array_lines` is zero.
    pub fn new(cfg: MicrobenchConfig) -> Self {
        assert!(cfg.iterations > 0, "need at least one iteration");
        assert!(cfg.array_lines > 0, "need a non-empty array");
        MicrobenchStream {
            cfg,
            rng: SplitMix64::new(cfg.seed),
            iter: 0,
            queue: std::collections::VecDeque::new(),
        }
    }

    fn emit_iteration(&mut self) {
        let line = self.rng.below(self.cfg.array_lines);
        let addr = Addr::new(ARRAY_BASE + line * 64);
        // Index computation: two chained ALU ops producing the address.
        self.queue.push_back(
            Instr::simple(Pc::new(0x100), Op::Alu { latency: 1 })
                .with_srcs(Some(4), None)
                .with_dst(4),
        );
        self.queue.push_back(
            Instr::simple(Pc::new(0x104), Op::Alu { latency: 1 })
                .with_srcs(Some(4), None)
                .with_dst(5),
        );
        if self.cfg.variant.mfence {
            self.queue
                .push_back(Instr::simple(Pc::new(0x108), Op::Fence));
        }
        let rmw = match self.cfg.rmw {
            MicroRmw::Faa => RmwKind::Faa(1),
            MicroRmw::Cas => RmwKind::Cas {
                expected: 0,
                new: 1,
            },
            MicroRmw::Swap => RmwKind::Swap(7),
        };
        if self.cfg.effective_atomic() {
            self.queue.push_back(
                Instr::simple(Pc::new(0x10c), Op::Atomic { rmw, addr }).with_srcs(Some(5), None),
            );
        } else {
            // Non-atomic RMW: load, modify, store.
            self.queue.push_back(
                Instr::simple(Pc::new(0x110), Op::Load { addr })
                    .with_srcs(Some(5), None)
                    .with_dst(6),
            );
            self.queue.push_back(
                Instr::simple(Pc::new(0x114), Op::Alu { latency: 1 })
                    .with_srcs(Some(6), None)
                    .with_dst(6),
            );
            self.queue.push_back(
                Instr::simple(Pc::new(0x118), Op::Store { addr, value: None })
                    .with_srcs(Some(6), None),
            );
        }
        if self.cfg.variant.mfence {
            self.queue
                .push_back(Instr::simple(Pc::new(0x11c), Op::Fence));
        }
    }
}

impl InstrStream for MicrobenchStream {
    fn next_instr(&mut self) -> Option<Instr> {
        if self.queue.is_empty() {
            if self.iter >= self.cfg.iterations {
                return None;
            }
            self.iter += 1;
            self.emit_iteration();
        }
        self.queue.pop_front()
    }

    fn save_state(&self, w: &mut Writer) {
        self.rng.encode(w);
        w.put_u64(self.iter);
        self.queue.encode(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError> {
        self.rng = SplitMix64::decode(r)?;
        self.iter = r.get_u64()?;
        self.queue = std::collections::VecDeque::<Instr>::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(cfg: MicrobenchConfig) -> Vec<Instr> {
        let mut s = MicrobenchStream::new(cfg);
        let mut v = Vec::new();
        while let Some(i) = s.next_instr() {
            v.push(i);
        }
        v
    }

    #[test]
    fn instruction_count_matches_formula() {
        for rmw in MicroRmw::ALL {
            for variant in MicroVariant::ALL {
                let cfg = MicrobenchConfig::paper_like(rmw, variant, 50);
                let v = collect(cfg);
                assert_eq!(
                    v.len() as u64,
                    50 * cfg.instrs_per_iteration(),
                    "{} {}",
                    rmw.name(),
                    variant.name()
                );
            }
        }
    }

    #[test]
    fn lock_variant_emits_atomics_plain_emits_load_store() {
        let lock = collect(MicrobenchConfig::paper_like(
            MicroRmw::Faa,
            MicroVariant {
                atomic: true,
                mfence: false,
            },
            10,
        ));
        assert_eq!(lock.iter().filter(|i| i.op.is_atomic()).count(), 10);
        let plain = collect(MicrobenchConfig::paper_like(
            MicroRmw::Faa,
            MicroVariant {
                atomic: false,
                mfence: false,
            },
            10,
        ));
        assert_eq!(plain.iter().filter(|i| i.op.is_atomic()).count(), 0);
        assert_eq!(
            plain
                .iter()
                .filter(|i| matches!(i.op, Op::Load { .. }))
                .count(),
            10
        );
    }

    #[test]
    fn swap_is_always_locked_like_x86_xchg() {
        let plain_swap = collect(MicrobenchConfig::paper_like(
            MicroRmw::Swap,
            MicroVariant {
                atomic: false,
                mfence: false,
            },
            10,
        ));
        assert_eq!(plain_swap.iter().filter(|i| i.op.is_atomic()).count(), 10);
    }

    #[test]
    fn mfence_variants_carry_two_fences_per_iteration() {
        let v = collect(MicrobenchConfig::paper_like(
            MicroRmw::Cas,
            MicroVariant {
                atomic: true,
                mfence: true,
            },
            7,
        ));
        assert_eq!(v.iter().filter(|i| matches!(i.op, Op::Fence)).count(), 14);
    }

    #[test]
    fn addresses_span_the_array_randomly() {
        let v = collect(MicrobenchConfig::paper_like(
            MicroRmw::Faa,
            MicroVariant {
                atomic: true,
                mfence: false,
            },
            200,
        ));
        let lines: std::collections::HashSet<u64> = v
            .iter()
            .filter_map(|i| i.op.addr())
            .map(|a| a.line().raw())
            .collect();
        assert!(
            lines.len() > 150,
            "expected wide random spread, got {}",
            lines.len()
        );
    }

    #[test]
    fn deterministic() {
        let cfg = MicrobenchConfig::paper_like(
            MicroRmw::Cas,
            MicroVariant {
                atomic: true,
                mfence: false,
            },
            30,
        );
        assert_eq!(collect(cfg), collect(cfg));
    }
}
