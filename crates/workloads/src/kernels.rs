//! Structured synchronization kernels.
//!
//! Where [`profile`](crate::profile) models applications statistically, these
//! generators emit the *exact* instruction patterns of three classic
//! fine-grain synchronization idioms (the paper's `pc`, `sps` and `cq`
//! archetypes). They are used by the examples and by shape tests that check
//! the eager/lazy crossover on recognizable code.

use row_common::ids::{Addr, Pc};
use row_common::rng::SplitMix64;

use row_cpu::instr::{Instr, InstrStream, Op, RmwKind};

const RING_BASE: u64 = 0xa000_0000;
const COUNTER_BASE: u64 = 0xb000_0000;
const QUEUE_BASE: u64 = 0xc000_0000;

/// Producer/consumer ring-buffer kernel (the paper's `pc`).
///
/// Every thread alternates: a little local work, then `FAA(head, 1)` on a
/// single shared control word — maximal contention on one line, no atomic
/// locality. Lazy execution wins decisively here.
#[derive(Clone, Debug)]
pub struct ProducerConsumer {
    rng: SplitMix64,
    tid: u64,
    ops_left: u64,
    work_per_op: u64,
    queue: std::collections::VecDeque<Instr>,
}

impl ProducerConsumer {
    /// `ops` ring operations per thread, each padded with `work_per_op`
    /// local instructions.
    pub fn new(tid: usize, ops: u64, work_per_op: u64, seed: u64) -> Self {
        ProducerConsumer {
            rng: SplitMix64::new(seed ^ (tid as u64).wrapping_mul(0x9e37_79b9)),
            tid: tid as u64,
            ops_left: ops,
            work_per_op,
            queue: std::collections::VecDeque::new(),
        }
    }

    fn emit_op(&mut self) {
        // Local payload work (private line per thread).
        for k in 0..self.work_per_op {
            if k % 4 == 0 {
                let addr =
                    Addr::new(RING_BASE + 0x10_0000 * (self.tid + 1) + self.rng.below(512) * 64);
                self.queue
                    .push_back(Instr::simple(Pc::new(0x300), Op::Load { addr }).with_dst(2));
            } else {
                self.queue
                    .push_back(Instr::simple(Pc::new(0x304), Op::Alu { latency: 1 }).with_dst(1));
            }
        }
        // Claim a slot: FAA on the shared head pointer.
        self.queue.push_back(Instr::simple(
            Pc::new(0x340),
            Op::Atomic {
                rmw: RmwKind::Faa(1),
                addr: Addr::new(RING_BASE),
            },
        ));
    }
}

impl InstrStream for ProducerConsumer {
    fn next_instr(&mut self) -> Option<Instr> {
        if self.queue.is_empty() {
            if self.ops_left == 0 {
                return None;
            }
            self.ops_left -= 1;
            self.emit_op();
        }
        self.queue.pop_front()
    }
}

/// Swap-heavy shared-counter kernel (the paper's `sps`).
///
/// Threads hammer a tiny set of shared counters with `Swap`s interleaved
/// with very little local work.
#[derive(Clone, Debug)]
pub struct SharedCounters {
    rng: SplitMix64,
    tid: u64,
    counters: u64,
    ops_left: u64,
    work_per_op: u64,
    queue: std::collections::VecDeque<Instr>,
}

impl SharedCounters {
    /// `ops` updates per thread across `counters` shared words, padded with
    /// `work_per_op` local instructions (keep it ≳ 16 so only a few atomics
    /// are in flight per core, as in real code).
    ///
    /// # Panics
    /// Panics if `counters` is zero.
    pub fn new(tid: usize, ops: u64, counters: u64, work_per_op: u64, seed: u64) -> Self {
        assert!(counters > 0, "need at least one counter");
        SharedCounters {
            rng: SplitMix64::new(seed ^ (tid as u64).wrapping_mul(0xdead_beef)),
            tid: tid as u64,
            counters,
            ops_left: ops,
            work_per_op,
            queue: std::collections::VecDeque::new(),
        }
    }
}

impl InstrStream for SharedCounters {
    fn next_instr(&mut self) -> Option<Instr> {
        if self.queue.is_empty() {
            if self.ops_left == 0 {
                return None;
            }
            self.ops_left -= 1;
            for k in 0..self.work_per_op {
                if k % 4 == 0 {
                    // Interleave private-data loads, as real counter loops do.
                    let addr = Addr::new(
                        COUNTER_BASE + 0x10_0000 * (self.tid + 1) + self.rng.below(512) * 64,
                    );
                    self.queue
                        .push_back(Instr::simple(Pc::new(0x404), Op::Load { addr }).with_dst(2));
                } else {
                    self.queue.push_back(
                        Instr::simple(Pc::new(0x400), Op::Alu { latency: 1 }).with_dst(1),
                    );
                }
            }
            let c = self.rng.below(self.counters);
            self.queue.push_back(Instr::simple(
                Pc::new(0x440),
                Op::Atomic {
                    rmw: RmwKind::Faa(1),
                    addr: Addr::new(COUNTER_BASE + c * 64),
                },
            ));
        }
        self.queue.pop_front()
    }
}

/// Concurrent-queue kernel (the paper's `cq`): write the node payload, then
/// CAS the tail pointer on the *same* line — contended, but with strong
/// atomic locality. Eager execution (and forwarding) wins despite contention.
#[derive(Clone, Debug)]
pub struct ConcurrentQueue {
    rng: SplitMix64,
    ops_left: u64,
    slots: u64,
    work_per_op: u64,
    queue: std::collections::VecDeque<Instr>,
}

impl ConcurrentQueue {
    /// `ops` enqueue operations per thread over `slots` shared queue lines,
    /// padded with `work_per_op` local instructions.
    ///
    /// # Panics
    /// Panics if `slots` is zero.
    pub fn new(tid: usize, ops: u64, slots: u64, work_per_op: u64, seed: u64) -> Self {
        assert!(slots > 0, "need at least one slot line");
        ConcurrentQueue {
            rng: SplitMix64::new(seed ^ (tid as u64).wrapping_mul(0x1234_5678)),
            ops_left: ops,
            slots,
            work_per_op,
            queue: std::collections::VecDeque::new(),
        }
    }
}

impl InstrStream for ConcurrentQueue {
    fn next_instr(&mut self) -> Option<Instr> {
        if self.queue.is_empty() {
            if self.ops_left == 0 {
                return None;
            }
            self.ops_left -= 1;
            for _ in 0..self.work_per_op {
                self.queue
                    .push_back(Instr::simple(Pc::new(0x500), Op::Alu { latency: 1 }).with_dst(1));
            }
            let slot = self.rng.below(self.slots);
            let addr = Addr::new(QUEUE_BASE + slot * 64);
            // Payload store to the node line…
            self.queue.push_back(Instr::simple(
                Pc::new(0x540),
                Op::Store { addr, value: None },
            ));
            // …then the atomic on the same line: forwarding territory.
            self.queue.push_back(Instr::simple(
                Pc::new(0x544),
                Op::Atomic {
                    rmw: RmwKind::Faa(1),
                    addr,
                },
            ));
        }
        self.queue.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut s: impl InstrStream) -> Vec<Instr> {
        let mut v = Vec::new();
        while let Some(i) = s.next_instr() {
            v.push(i);
        }
        v
    }

    #[test]
    fn pc_kernel_has_one_atomic_per_op_on_one_line() {
        let v = drain(ProducerConsumer::new(0, 20, 8, 1));
        let atomics: Vec<_> = v.iter().filter(|i| i.op.is_atomic()).collect();
        assert_eq!(atomics.len(), 20);
        let lines: std::collections::HashSet<_> = atomics
            .iter()
            .filter_map(|i| i.op.addr())
            .map(|a| a.line())
            .collect();
        assert_eq!(lines.len(), 1, "pc contends on a single line");
    }

    #[test]
    fn sps_kernel_spreads_over_counters() {
        let v = drain(SharedCounters::new(1, 100, 4, 20, 2));
        let lines: std::collections::HashSet<_> = v
            .iter()
            .filter(|i| i.op.is_atomic())
            .filter_map(|i| i.op.addr())
            .map(|a| a.line())
            .collect();
        assert!(lines.len() > 1 && lines.len() <= 4);
    }

    #[test]
    fn cq_kernel_pairs_store_and_atomic_on_same_line() {
        let v = drain(ConcurrentQueue::new(0, 30, 8, 24, 3));
        let mut pairs = 0;
        for w in v.windows(2) {
            if let (Op::Store { addr: sa, .. }, Op::Atomic { addr: aa, .. }) = (w[0].op, w[1].op) {
                assert_eq!(sa, aa);
                pairs += 1;
            }
        }
        assert_eq!(pairs, 30);
    }

    #[test]
    fn kernels_are_deterministic_per_thread() {
        let a = drain(ProducerConsumer::new(2, 10, 4, 9));
        let b = drain(ProducerConsumer::new(2, 10, 4, 9));
        assert_eq!(a, b);
        let c = drain(ProducerConsumer::new(3, 10, 4, 9));
        assert_ne!(a, c);
    }
}
