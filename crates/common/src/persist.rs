//! Versioned, zero-dependency binary snapshot codec.
//!
//! Deterministic checkpoint/restore needs every stateful component to encode
//! itself into a stable byte stream and later rebuild *exactly* the same
//! state. This module provides the two traits the rest of the workspace
//! implements:
//!
//! * [`Codec`] — value types that encode/decode themselves wholesale
//!   (counters, queue entries, messages, RNG state, …).
//! * [`Persist`] — components that are *restored in place*: parts derived
//!   from the immutable [`SystemConfig`][crate::config::SystemConfig]
//!   (geometry, latencies, function pointers, trait objects) are kept, and
//!   only the mutable simulation state is overwritten.
//!
//! The encoding is a hand-rolled little-endian byte stream — no serde, no
//! external dependencies — with explicit length prefixes and enum tags so a
//! truncated or corrupted stream surfaces as a structured [`PersistError`]
//! instead of a panic. Containers with nondeterministic iteration order
//! (`HashMap`) are encoded in sorted key order so equal states always produce
//! equal bytes.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::hash::Hash;

use crate::clock::Cycle;
use crate::ids::{Addr, CoreId, LineAddr, Pc};
use crate::rmw::RmwKind;

/// Errors surfaced while encoding to or decoding from a snapshot stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistError {
    /// The stream ended before the expected data was read.
    UnexpectedEof,
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// The type whose tag was invalid.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// The snapshot was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the snapshot header.
        found: u32,
        /// Version this binary understands.
        expected: u32,
    },
    /// The snapshot was taken under a different system configuration.
    ConfigMismatch {
        /// Config hash found in the snapshot header.
        found: u64,
        /// Config hash of the machine being restored.
        expected: u64,
    },
    /// The stream is structurally invalid (bad magic, bad checksum, or an
    /// impossible length/shape).
    Corrupt(&'static str),
    /// An I/O error while reading or writing a checkpoint file.
    Io(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::UnexpectedEof => write!(f, "snapshot truncated: unexpected end of data"),
            PersistError::BadTag { what, tag } => {
                write!(f, "snapshot corrupt: invalid tag {tag} for {what}")
            }
            PersistError::VersionMismatch { found, expected } => write!(
                f,
                "snapshot format version {found} is not supported (expected {expected})"
            ),
            PersistError::ConfigMismatch { found, expected } => write!(
                f,
                "snapshot was taken under a different configuration \
                 (config hash {found:#018x}, machine has {expected:#018x})"
            ),
            PersistError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            PersistError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// 64-bit FNV-1a hash, used to fingerprint the system configuration so a
/// checkpoint refuses to restore onto a differently-configured machine.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An append-only little-endian byte sink for snapshot encoding.
#[derive(Clone, Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes verbatim (no length prefix).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a container length as a `u64`.
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
}

/// A cursor over snapshot bytes, with bounds-checked reads.
#[derive(Clone, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.get_bytes(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(
            self.get_bytes(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(
            self.get_bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(
            self.get_bytes(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `u128`.
    pub fn get_u128(&mut self) -> Result<u128, PersistError> {
        Ok(u128::from_le_bytes(
            self.get_bytes(16)?.try_into().expect("16 bytes"),
        ))
    }

    /// Reads a container length, rejecting lengths that could not possibly
    /// fit in the remaining bytes (corruption guard against huge allocations).
    pub fn get_len(&mut self) -> Result<usize, PersistError> {
        let n = self.get_u64()?;
        if n > self.remaining() as u64 {
            return Err(PersistError::Corrupt(
                "length prefix exceeds remaining data",
            ));
        }
        Ok(n as usize)
    }

    /// Reads a `bool`, rejecting any byte other than 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, PersistError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(PersistError::BadTag { what: "bool", tag }),
        }
    }
}

/// A value type that encodes and decodes itself wholesale.
pub trait Codec: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);
    /// Decodes one value from `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError>;
}

/// A component restored *in place*: configuration-derived parts (geometry,
/// latencies, trait objects) are kept, and only mutable state is overwritten.
///
/// `restore` may leave the component partially overwritten on error; callers
/// (the machine-level restore) must treat any error as fatal for the whole
/// restore operation.
pub trait Persist {
    /// Appends this component's mutable state to `w`.
    fn persist(&self, w: &mut Writer);
    /// Overwrites this component's mutable state from `r`.
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), PersistError>;
}

macro_rules! codec_prim {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Codec for $ty {
            fn encode(&self, w: &mut Writer) {
                w.$put(*self);
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
                r.$get()
            }
        }
    };
}

codec_prim!(u8, put_u8, get_u8);
codec_prim!(u16, put_u16, get_u16);
codec_prim!(u32, put_u32, get_u32);
codec_prim!(u64, put_u64, get_u64);
codec_prim!(u128, put_u128, get_u128);
codec_prim!(bool, put_bool, get_bool);

impl Codec for i8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(r.get_u8()? as i8)
    }
}

impl Codec for i64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(r.get_u64()? as i64)
    }
}

impl Codec for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(r.get_u64()? as usize)
    }
}

impl Codec for Cycle {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.raw());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Cycle::new(r.get_u64()?))
    }
}

impl Codec for CoreId {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(self.index() as u16);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(CoreId::new(r.get_u16()?))
    }
}

impl Codec for Addr {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.raw());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Addr::new(r.get_u64()?))
    }
}

impl Codec for LineAddr {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.raw());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(LineAddr::new(r.get_u64()?))
    }
}

impl Codec for Pc {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.raw());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Pc::new(r.get_u64()?))
    }
}

impl Codec for RmwKind {
    fn encode(&self, w: &mut Writer) {
        match self {
            RmwKind::Faa(v) => {
                w.put_u8(0);
                w.put_u64(*v);
            }
            RmwKind::Swap(v) => {
                w.put_u8(1);
                w.put_u64(*v);
            }
            RmwKind::Cas { expected, new } => {
                w.put_u8(2);
                w.put_u64(*expected);
                w.put_u64(*new);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.get_u8()? {
            0 => RmwKind::Faa(r.get_u64()?),
            1 => RmwKind::Swap(r.get_u64()?),
            2 => RmwKind::Cas {
                expected: r.get_u64()?,
                new: r.get_u64()?,
            },
            tag => {
                return Err(PersistError::BadTag {
                    what: "RmwKind",
                    tag,
                })
            }
        })
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(PersistError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_len(self.len());
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let n = r.get_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for VecDeque<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_len(self.len());
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let n = r.get_len()?;
        let mut out = VecDeque::with_capacity(n);
        for _ in 0..n {
            out.push_back(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Codec + Ord> Codec for BTreeSet<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_len(self.len());
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let n = r.get_len()?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<K: Codec + Ord, V: Codec> Codec for BTreeMap<K, V> {
    fn encode(&self, w: &mut Writer) {
        w.put_len(self.len());
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let n = r.get_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<K: Codec + Ord + Hash, V: Codec> Codec for HashMap<K, V> {
    fn encode(&self, w: &mut Writer) {
        // Sorted key order so equal maps always produce equal bytes.
        let mut pairs: Vec<(&K, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        w.put_len(pairs.len());
        for (k, v) in pairs {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let n = r.get_len()?;
        let mut out = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<T: Codec, const N: usize> Codec for [T; N] {
    fn encode(&self, w: &mut Writer) {
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::decode(r)?);
        }
        out.try_into()
            .map_err(|_| PersistError::Corrupt("fixed-size array length mismatch"))
    }
}

/// Round-trips a [`Codec`] value through bytes (test/debug helper).
pub fn roundtrip<T: Codec>(value: &T) -> Result<T, PersistError> {
    let mut w = Writer::new();
    value.encode(&mut w);
    let bytes = w.into_bytes();
    let mut r = Reader::new(&bytes);
    let out = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(PersistError::Corrupt("trailing bytes after decode"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(roundtrip(&0xdeadu16).unwrap(), 0xdead);
        assert_eq!(roundtrip(&u64::MAX).unwrap(), u64::MAX);
        assert_eq!(roundtrip(&(-5i8)).unwrap(), -5);
        assert_eq!(roundtrip(&(-1i64)).unwrap(), -1);
        assert!(roundtrip(&true).unwrap());
        assert!(!roundtrip(&false).unwrap());
        assert_eq!(roundtrip(&123usize).unwrap(), 123);
        assert_eq!(roundtrip(&7u128).unwrap(), 7);
    }

    #[test]
    fn ids_and_cycles_round_trip() {
        assert_eq!(roundtrip(&Cycle::new(42)).unwrap(), Cycle::new(42));
        assert_eq!(roundtrip(&CoreId::new(3)).unwrap(), CoreId::new(3));
        assert_eq!(roundtrip(&Addr::new(0xabc)).unwrap(), Addr::new(0xabc));
        assert_eq!(roundtrip(&LineAddr::new(9)).unwrap(), LineAddr::new(9));
        assert_eq!(roundtrip(&Pc::new(0x400)).unwrap(), Pc::new(0x400));
    }

    #[test]
    fn rmw_kinds_round_trip() {
        for k in [
            RmwKind::Faa(7),
            RmwKind::Swap(9),
            RmwKind::Cas {
                expected: 1,
                new: 2,
            },
        ] {
            assert_eq!(roundtrip(&k).unwrap(), k);
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(roundtrip(&v).unwrap(), v);
        let d: VecDeque<u32> = [4, 5].into_iter().collect();
        assert_eq!(roundtrip(&d).unwrap(), d);
        let s: BTreeSet<u64> = [8, 1].into_iter().collect();
        assert_eq!(roundtrip(&s).unwrap(), s);
        let m: BTreeMap<u64, u64> = [(1, 2), (3, 4)].into_iter().collect();
        assert_eq!(roundtrip(&m).unwrap(), m);
        let o: Option<u8> = Some(7);
        assert_eq!(roundtrip(&o).unwrap(), o);
        let arr = [Some(1u64), None, Some(3)];
        assert_eq!(roundtrip(&arr).unwrap(), arr);
        let t = (1u64, CoreId::new(2), Cycle::new(3));
        assert_eq!(roundtrip(&t).unwrap(), t);
    }

    #[test]
    fn hashmap_encoding_is_deterministic() {
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for i in 0..100u64 {
            a.insert(i, i * 2);
        }
        for i in (0..100u64).rev() {
            b.insert(i, i * 2);
        }
        let mut wa = Writer::new();
        a.encode(&mut wa);
        let mut wb = Writer::new();
        b.encode(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
        assert_eq!(roundtrip(&a).unwrap(), a);
    }

    #[test]
    fn truncated_stream_is_eof_not_panic() {
        let mut w = Writer::new();
        vec![1u64, 2, 3].encode(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let res = Vec::<u64>::decode(&mut r);
            assert!(res.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn absurd_length_prefix_is_corrupt_not_oom() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // length prefix far beyond remaining bytes
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            Vec::<u64>::decode(&mut r),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn bad_tags_are_structured_errors() {
        let bytes = [9u8];
        assert!(matches!(
            Option::<u64>::decode(&mut Reader::new(&bytes)),
            Err(PersistError::BadTag { what: "Option", .. })
        ));
        assert!(matches!(
            bool::decode(&mut Reader::new(&bytes)),
            Err(PersistError::BadTag { what: "bool", .. })
        ));
        assert!(matches!(
            RmwKind::decode(&mut Reader::new(&bytes)),
            Err(PersistError::BadTag {
                what: "RmwKind",
                ..
            })
        ));
    }

    #[test]
    fn fnv1a_is_stable() {
        // Known FNV-1a vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"config-a"), fnv1a(b"config-b"));
    }
}
