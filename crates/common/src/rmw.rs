//! Read-modify-write operation vocabulary.
//!
//! Lives in `row-common` because both the core (near atomics, executed in
//! the L1D under a cache lock) and the memory system (far atomics, executed
//! at the home directory — the §VII design alternative) apply these
//! operations to the functional word store.

/// The modify operation of an atomic RMW instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RmwKind {
    /// Fetch-and-add: `mem += delta` (x86 `lock xadd`).
    Faa(u64),
    /// Unconditional exchange (x86 `xchg`).
    Swap(u64),
    /// Compare-and-swap (x86 `lock cmpxchg`).
    Cas {
        /// Value the word must hold for the swap to succeed.
        expected: u64,
        /// Value written on success.
        new: u64,
    },
}

impl RmwKind {
    /// Applies the operation to `old`, returning `(new_value, wrote)`.
    ///
    /// # Example
    /// ```
    /// use row_common::rmw::RmwKind;
    /// assert_eq!(RmwKind::Faa(3).apply(4), (7, true));
    /// assert_eq!(RmwKind::Cas { expected: 1, new: 9 }.apply(0), (0, false));
    /// ```
    pub fn apply(self, old: u64) -> (u64, bool) {
        match self {
            RmwKind::Faa(d) => (old.wrapping_add(d), true),
            RmwKind::Swap(v) => (v, true),
            RmwKind::Cas { expected, new } => {
                if old == expected {
                    (new, true)
                } else {
                    (old, false)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semantics() {
        assert_eq!(RmwKind::Faa(1).apply(41), (42, true));
        assert_eq!(RmwKind::Swap(5).apply(3), (5, true));
        assert_eq!(
            RmwKind::Cas {
                expected: 3,
                new: 7
            }
            .apply(3),
            (7, true)
        );
        assert_eq!(
            RmwKind::Cas {
                expected: 3,
                new: 7
            }
            .apply(4),
            (4, false)
        );
        assert_eq!(RmwKind::Faa(1).apply(u64::MAX), (0, true), "wrapping");
    }
}
