//! Decision-point hooks for the bounded-exhaustive schedule explorer
//! (`norush explore`).
//!
//! The fuzzer (`norush fuzz`) *samples* message-delivery schedules; the
//! explorer *enumerates* them. To enumerate, every source of scheduling
//! nondeterminism the machine contains must surface as an explicit decision
//! point the explorer can both observe and force:
//!
//! * **Delivery** — each protocol message send may be held past its
//!   mesh-computed delivery cycle by [`delivery_delay`] (`row_mem`'s
//!   `send_msg`).
//! * **Commit** — each atomic RMW, at the moment it first becomes
//!   commit-ready, may have its commit held by [`commit_delay`] (`row_cpu`'s
//!   commit stage) — the paper's "no rush" knob turned into an enumerable
//!   choice.
//!
//! Instrumented components ask through the thread-local controller
//! ([`install`]/[`choose`]/[`take`]), mirroring [`crate::coverage`]'s sink
//! idiom: when no controller is installed (every non-explore run) [`choose`]
//! returns alternative 0 — the undelayed default — after one thread-local
//! read, so normal simulations are bit-for-bit unaffected.
//!
//! The controller replays a *forced prefix* of alternatives (the explorer's
//! DFS path) and records every decision point encountered, with enough
//! metadata (kind, endpoints, line, cycle) for dynamic partial-order
//! reduction to decide which alternatives commute.

use std::cell::RefCell;

/// Base delay unit, in cycles, for [`ChoiceKind::Delivery`] decision points.
/// Sized to a round trip through a couple of mesh hops so one quantum
/// reliably reorders a message past an unrelated protocol action.
pub const DELIVERY_QUANTUM: u64 = 16;

/// Base delay unit, in cycles, for [`ChoiceKind::Commit`] decision points.
/// Two delivery quanta: long enough to push an atomic's commit past a racing
/// remote request, far below the deadlock watchdog.
pub const COMMIT_QUANTUM: u64 = 32;

/// Alternatives per decision point. Alternative 0 is always the undelayed
/// default schedule; the delay of alternative `k > 0` comes from
/// [`delivery_delay`]/[`commit_delay`].
pub const N_ALTS: u8 = 3;

/// Extra delivery delay, in cycles, for alternative `alt`: `{0, 1, 18}`
/// quanta. Alternative 1 nudges a message one quantum — enough to swap it
/// with a near-simultaneous rival at the same directory bank; alternative 2
/// holds it for an epoch-scale 18 quanta (288 cycles) — past an L3-miss
/// round trip, so a load's request can arrive after a remote store's whole
/// commit-and-drain path. The geometric spacing keeps the explorer's
/// branching factor at [`N_ALTS`] while covering both reordering scales TSO
/// litmus outcomes need.
pub fn delivery_delay(alt: u8) -> u64 {
    [0, 1, 18][usize::from(alt.min(2))] * DELIVERY_QUANTUM
}

/// Extra commit hold, in cycles, for alternative `alt`: `{0, 1, 5}` quanta
/// of [`COMMIT_QUANTUM`] — a short hold that lets one racing request slip
/// in, and a long one that parks the atomic across a full remote
/// transaction.
pub fn commit_delay(alt: u8) -> u64 {
    [0, 1, 5][usize::from(alt.min(2))] * COMMIT_QUANTUM
}

/// What kind of scheduling decision a point represents.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChoiceKind {
    /// NoC message delivery timing (one point per protocol message send).
    Delivery,
    /// Atomic commit timing (one point per atomic RMW, asked exactly once
    /// when the RMW first becomes commit-ready at the ROB head).
    Commit,
}

/// One decision point the controller encountered, with the alternative that
/// was taken and the metadata partial-order reduction needs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecisionRecord {
    /// The kind of decision.
    pub kind: ChoiceKind,
    /// Source node (delivery) or core index (commit).
    pub src: u16,
    /// Destination node (delivery) or core index (commit).
    pub dst: u16,
    /// The cache line the decision concerns.
    pub line: u64,
    /// The cycle at which the decision was asked.
    pub cycle: u64,
    /// Number of alternatives offered.
    pub n_alts: u8,
    /// The alternative taken (0 = undelayed default).
    pub chosen: u8,
}

struct Controller {
    forced: Vec<u8>,
    taken: Vec<DecisionRecord>,
}

thread_local! {
    static CTRL: RefCell<Option<Controller>> = const { RefCell::new(None) };
}

/// Installs a decision controller on this thread. The first
/// `forced.len()` decision points replay the given alternatives (clamped to
/// each point's arity); every later point takes alternative 0. Collection
/// ends at [`take`].
pub fn install(forced: Vec<u8>) {
    CTRL.with(|c| {
        *c.borrow_mut() = Some(Controller {
            forced,
            taken: Vec::new(),
        })
    });
}

/// Removes this thread's controller and returns the decision points it saw,
/// in encounter order. `None` when no controller was installed.
pub fn take() -> Option<Vec<DecisionRecord>> {
    CTRL.with(|c| c.borrow_mut().take().map(|ctrl| ctrl.taken))
}

/// Number of decision points consumed so far on this thread (0 when no
/// controller is installed). The explorer polls this between machine steps
/// to learn when to snapshot for state-hash deduplication.
pub fn consumed() -> usize {
    CTRL.with(|c| c.borrow().as_ref().map_or(0, |ctrl| ctrl.taken.len()))
}

/// Asks the controller for the alternative to take at one decision point.
/// Returns 0 — the undelayed default — when no controller is installed.
pub fn choose(kind: ChoiceKind, src: u16, dst: u16, line: u64, cycle: u64, n_alts: u8) -> u8 {
    debug_assert!(n_alts >= 1);
    CTRL.with(|c| match c.borrow_mut().as_mut() {
        None => 0,
        Some(ctrl) => {
            let idx = ctrl.taken.len();
            let chosen = ctrl
                .forced
                .get(idx)
                .copied()
                .unwrap_or(0)
                .min(n_alts.saturating_sub(1));
            ctrl.taken.push(DecisionRecord {
                kind,
                src,
                dst,
                line,
                cycle,
                n_alts,
                chosen,
            });
            chosen
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uninstalled_is_default_and_records_nothing() {
        assert!(take().is_none());
        assert_eq!(choose(ChoiceKind::Delivery, 0, 1, 64, 10, 2), 0);
        assert_eq!(consumed(), 0);
        assert!(take().is_none());
    }

    #[test]
    fn forced_prefix_then_defaults() {
        install(vec![1, 0, 1]);
        assert_eq!(choose(ChoiceKind::Delivery, 0, 1, 64, 10, 2), 1);
        assert_eq!(choose(ChoiceKind::Commit, 1, 1, 64, 20, 2), 0);
        assert_eq!(choose(ChoiceKind::Delivery, 1, 0, 128, 30, 2), 1);
        assert_eq!(choose(ChoiceKind::Delivery, 0, 1, 64, 40, 2), 0);
        assert_eq!(consumed(), 4);
        let recs = take().unwrap();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].chosen, 1);
        assert_eq!(recs[2].line, 128);
        assert_eq!(recs[3].chosen, 0);
        assert!(take().is_none());
    }

    #[test]
    fn forced_alternative_clamps_to_arity() {
        install(vec![200]);
        assert_eq!(choose(ChoiceKind::Delivery, 0, 1, 64, 10, 2), 1);
        let recs = take().unwrap();
        assert_eq!(recs[0].chosen, 1);
    }

    #[test]
    fn delay_tables_are_zero_at_default_and_saturate() {
        assert_eq!(delivery_delay(0), 0);
        assert_eq!(commit_delay(0), 0);
        assert!(delivery_delay(1) < delivery_delay(2));
        assert!(commit_delay(1) < commit_delay(2));
        // Out-of-range alternatives saturate at the largest delay.
        assert_eq!(delivery_delay(200), delivery_delay(2));
        assert_eq!(commit_delay(200), commit_delay(2));
    }
}
