//! System configuration, mirroring the paper's Table I.
//!
//! [`SystemConfig::alder_lake_32c`] reproduces the evaluated 32-core system
//! (Alder Lake performance-core-like parameters). Every knob the paper sweeps
//! — atomic execution policy, contention detector, predictor flavour,
//! directory-latency threshold, store→atomic forwarding — is an explicit field
//! so the benchmark harness can regenerate each figure from configuration
//! alone.

/// How atomic RMW instructions are scheduled for execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AtomicPolicy {
    /// Execute as soon as operands are ready (Free Atomics baseline).
    #[default]
    Eager,
    /// Execute only when the atomic is the oldest memory instruction in the
    /// load queue *and* the store buffer has drained. Younger instructions may
    /// still execute speculatively (this is *not* a fence).
    Lazy,
    /// Rush or Wait: predict contention per PC and pick eager/lazy per atomic.
    Row(RowConfig),
}

impl AtomicPolicy {
    /// The RoW configuration, if this policy is RoW.
    pub fn row(&self) -> Option<&RowConfig> {
        match self {
            AtomicPolicy::Row(cfg) => Some(cfg),
            _ => None,
        }
    }
}

/// Which contention-detection mechanism trains the predictor
/// (paper Sections IV-A..IV-C).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DetectorKind {
    /// Execution window: external requests hitting a *locked* line mark the
    /// matching atomic contended.
    ExecutionWindow,
    /// Ready window: additionally, external requests matching any in-flight
    /// atomic's (pre-computed) address mark it contended, extending the
    /// window from address-ready to unlock.
    ReadyWindow,
    /// Ready window plus the directory heuristic: a line that arrives from a
    /// *remote private cache* with latency above `latency_threshold` cycles is
    /// considered contended even if no external request was observed.
    ReadyWindowDir {
        /// Latency threshold in cycles (400 in the paper; `u64::MAX` models
        /// the "inf" point of Fig. 10, degenerating to plain ReadyWindow).
        latency_threshold: u64,
    },
}

impl DetectorKind {
    /// The paper's optimal RW+Dir configuration (400-cycle threshold).
    pub const fn rw_dir_default() -> Self {
        DetectorKind::ReadyWindowDir {
            latency_threshold: 400,
        }
    }
}

impl Default for DetectorKind {
    fn default() -> Self {
        DetectorKind::rw_dir_default()
    }
}

/// Saturating-counter update policy of the contention predictor
/// (paper Section IV-D).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PredictorKind {
    /// +1 on contention, −1 otherwise; predict contended when counter >
    /// threshold (threshold = 1 in the paper).
    #[default]
    UpDown,
    /// Jump to the maximum on contention, −1 otherwise; predict contended
    /// when counter > 0.
    SaturateOnContention,
    /// +2 on contention, −1 otherwise (evaluated and discarded by the paper;
    /// kept for the ablation bench).
    TwoUpOneDown,
    /// Gshare-style: the table index is XORed with a global history of
    /// recent contention outcomes. The paper argues history does not help
    /// because atomics are uncorrelated (Section VII); this variant exists
    /// to demonstrate that claim.
    History,
}

/// Configuration of the Rush-or-Wait mechanism.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RowConfig {
    /// Contention-detection mechanism used to train the predictor.
    pub detector: DetectorKind,
    /// Predictor counter update policy.
    pub predictor: PredictorKind,
    /// Number of predictor table entries (64 in the paper).
    pub predictor_entries: usize,
    /// Width of each saturating counter in bits (4 in the paper).
    pub counter_bits: u32,
    /// Decision threshold: predict contended when counter > threshold.
    /// The paper uses 1 for UpDown and 0 for SaturateOnContention.
    pub decision_threshold: u8,
    /// Turn a predicted-lazy atomic eager when a matching older store is
    /// found in the SB (atomic-locality optimization, Section IV-E).
    pub locality_override: bool,
}

impl RowConfig {
    /// RoW with the given detector/predictor and the paper's table geometry.
    pub fn new(detector: DetectorKind, predictor: PredictorKind) -> Self {
        let decision_threshold = match predictor {
            PredictorKind::UpDown | PredictorKind::TwoUpOneDown | PredictorKind::History => 1,
            PredictorKind::SaturateOnContention => 0,
        };
        RowConfig {
            detector,
            predictor,
            predictor_entries: 64,
            counter_bits: 4,
            decision_threshold,
            locality_override: false,
        }
    }

    /// The best configuration found by the paper:
    /// RW+Dir detection, Up/Down predictor, forwarding-driven locality override.
    pub fn best() -> Self {
        let mut cfg = RowConfig::new(DetectorKind::rw_dir_default(), PredictorKind::UpDown);
        cfg.locality_override = true;
        cfg
    }

    /// Enables or disables the atomic-locality (forwarding) override.
    pub fn with_locality_override(mut self, on: bool) -> Self {
        self.locality_override = on;
        self
    }

    /// Storage cost of this configuration in bits (predictor table plus the
    /// per-AQ-entry contended/only-calculate-address/timestamp fields),
    /// matching the paper's Section IV-F accounting.
    pub fn storage_bits(&self, aq_entries: usize) -> usize {
        let table = self.predictor_entries * self.counter_bits as usize;
        let per_entry = match self.detector {
            DetectorKind::ExecutionWindow => 1,
            DetectorKind::ReadyWindow => 1 + 1,
            DetectorKind::ReadyWindowDir { .. } => 1 + 1 + 14,
        };
        table + aq_entries * per_entry
    }
}

impl Default for RowConfig {
    fn default() -> Self {
        RowConfig::best()
    }
}

/// Where atomic RMWs execute (the Section VII design alternative).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AtomicPlacement {
    /// In the L1D under a cache lock (x86 style; the paper's subject).
    #[default]
    Near,
    /// At the line's home directory bank (IBM/Arm far-atomic style): no
    /// cache locking; all private copies are invalidated and the RMW is
    /// performed at the home. Issued with the lazy discipline to preserve
    /// TSO ordering against older local accesses.
    Far,
}

/// Whether the core surrounds atomic µ-ops with implicit full fences.
///
/// `Fenced` models pre-Coffee-Lake x86 parts (the Xeon X3210 of Fig. 2);
/// `Unfenced` models current parts / Free Atomics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FenceModel {
    /// Atomics drain the SB, wait to be the oldest instruction, and block all
    /// younger memory operations until they complete.
    Fenced,
    /// Atomics execute per the configured [`AtomicPolicy`], overlapping with
    /// older and younger instructions.
    #[default]
    Unfenced,
}

/// Out-of-order core parameters (Table I, "Processor").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CoreConfig {
    /// Instructions fetched/renamed per cycle (6).
    pub fetch_width: usize,
    /// Instructions issued to execution per cycle (12).
    pub issue_width: usize,
    /// Instructions committed per cycle (12).
    pub commit_width: usize,
    /// Reorder buffer entries (512).
    pub rob_entries: usize,
    /// Load queue entries (192).
    pub lq_entries: usize,
    /// Store buffer entries (128).
    pub sb_entries: usize,
    /// Issue queue (scheduler) entries.
    pub iq_entries: usize,
    /// Atomic queue entries (16, per Free Atomics).
    pub aq_entries: usize,
    /// Pipeline depth from fetch to dispatch, in cycles (front-end latency
    /// charged on a branch mispredict redirect).
    pub frontend_depth: u64,
    /// Fence semantics of atomics.
    pub fence_model: FenceModel,
    /// How atomics are scheduled (only meaningful when unfenced).
    pub atomic_policy: AtomicPolicy,
    /// Allow store→load forwarding from the SB to *atomic* loads (Fig. 13
    /// "+Fwd" configurations). Regular loads always forward.
    pub forward_to_atomics: bool,
    /// Near (cache-locked) or far (at-home) atomic execution.
    pub atomic_placement: AtomicPlacement,
}

impl CoreConfig {
    /// Table I core parameters.
    pub fn alder_lake() -> Self {
        CoreConfig {
            fetch_width: 6,
            issue_width: 12,
            commit_width: 12,
            rob_entries: 512,
            lq_entries: 192,
            sb_entries: 128,
            iq_entries: 160,
            aq_entries: 16,
            frontend_depth: 12,
            fence_model: FenceModel::Unfenced,
            atomic_policy: AtomicPolicy::Eager,
            forward_to_atomics: false,
            atomic_placement: AtomicPlacement::Near,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::alder_lake()
    }
}

/// One cache level's geometry and latency.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Access (hit) latency in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    /// Panics if the geometry does not divide into whole 64-byte-line sets.
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / crate::ids::LINE_BYTES as usize;
        assert!(
            lines.is_multiple_of(self.ways) && lines > 0,
            "cache geometry must divide into whole sets: {self:?}"
        );
        lines / self.ways
    }
}

/// Memory hierarchy parameters (Table I, "Memory").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemoryConfig {
    /// Private L1 data cache (48 KB, 12-way, 5-cycle).
    pub l1d: CacheConfig,
    /// Private L2 cache (1 MB, 8-way, 12-cycle).
    pub l2: CacheConfig,
    /// Shared L3, per bank (4 MB, 16-way, 35-cycle); one bank per core tile.
    pub l3_bank: CacheConfig,
    /// Main-memory access latency in cycles (160).
    pub mem_latency: u64,
    /// Outstanding misses supported per core (MSHRs).
    pub mshr_entries: usize,
    /// Enable the L1D IP-stride prefetcher.
    pub prefetcher: bool,
    /// Prefetch degree (lines ahead) when the prefetcher is enabled.
    pub prefetch_degree: u64,
}

impl MemoryConfig {
    /// Table I memory parameters.
    pub fn alder_lake() -> Self {
        MemoryConfig {
            l1d: CacheConfig {
                size_bytes: 48 * 1024,
                ways: 12,
                hit_latency: 5,
            },
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                ways: 8,
                hit_latency: 12,
            },
            l3_bank: CacheConfig {
                size_bytes: 4 * 1024 * 1024,
                ways: 16,
                hit_latency: 35,
            },
            mem_latency: 160,
            mshr_entries: 32,
            prefetcher: true,
            prefetch_degree: 2,
        }
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig::alder_lake()
    }
}

/// On-chip network parameters (GARNET-substitute mesh).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NocConfig {
    /// Mesh width (columns). Height is derived from the core count.
    pub mesh_cols: usize,
    /// Per-hop link traversal latency in cycles.
    pub link_latency: u64,
    /// Per-router pipeline latency in cycles.
    pub router_latency: u64,
    /// Flits a data (full-line) message occupies on a link; control messages
    /// occupy one flit.
    pub data_flits: u64,
}

impl NocConfig {
    /// An 8×4 mesh sized for the 32-core system.
    pub fn mesh_8x4() -> Self {
        NocConfig {
            mesh_cols: 8,
            link_latency: 1,
            router_latency: 2,
            data_flits: 5,
        }
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig::mesh_8x4()
    }
}

/// Deterministic fault injection ("chaos mode") for robustness testing.
///
/// When enabled, every message delivered through the memory system's network
/// receives a bounded extra latency drawn from a [`SplitMix64`] stream seeded
/// with `seed`. Messages between *different* endpoint pairs may thereby be
/// reordered relative to the fault-free schedule; messages between the *same*
/// source and destination keep their order, matching the guarantee the mesh
/// itself provides (per-link serialization), so every perturbed schedule is
/// one the protocol must already tolerate.
///
/// The `*_ppm` knobs extend chaos from delay-only to a *lossy* fault model:
/// each wire transmission may independently be dropped, duplicated, or
/// payload-corrupted with the given probability in parts-per-million, drawn
/// from the same seeded stream. Any non-zero rate switches the memory system
/// onto its recoverable transport (sequence numbers, ACK/NACK,
/// timeout-with-backoff retransmission), which masks the faults; delay-only
/// configurations keep the exact pre-transport behaviour, timing included.
///
/// [`SplitMix64`]: crate::rng::SplitMix64
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultConfig {
    /// Seed of the perturbation stream. Equal seeds give equal schedules.
    pub seed: u64,
    /// Maximum extra delivery latency, in cycles, added per message
    /// (uniform in `[0, max_extra_latency]`).
    pub max_extra_latency: u64,
    /// Probability, in parts per million, that a transmission is dropped.
    pub drop_ppm: u32,
    /// Probability, in parts per million, that a transmission is duplicated
    /// (the copy takes an independently drawn delivery time).
    pub dup_ppm: u32,
    /// Probability, in parts per million, that a transmission's payload is
    /// corrupted in flight (detected by checksum, answered with a NACK).
    pub corrupt_ppm: u32,
}

/// Upper bound on each per-transmission fault probability: 0.5, i.e.
/// 500 000 ppm. Beyond this, retransmission no longer converges in any
/// reasonable number of attempts.
pub const MAX_FAULT_PPM: u32 = 500_000;

impl FaultConfig {
    /// A delay-only chaos configuration with the default perturbation bound.
    pub fn with_seed(seed: u64) -> Self {
        FaultConfig {
            seed,
            max_extra_latency: 40,
            drop_ppm: 0,
            dup_ppm: 0,
            corrupt_ppm: 0,
        }
    }

    /// True when any lossy fault (drop/duplicate/corrupt) is enabled, which
    /// engages the recoverable transport layer.
    pub fn lossy(&self) -> bool {
        self.drop_ppm > 0 || self.dup_ppm > 0 || self.corrupt_ppm > 0
    }
}

/// One targeted delivery-delay burst of the schedule-perturbation layer.
///
/// While the global cycle counter is inside `[start, start + len)`, every
/// message whose `(src, dst)` channel is selected by `salt` (a deterministic
/// hash picks roughly half of all channels per salt) receives `extra` cycles
/// of additional delivery latency. Delaying a *subset* of channels reorders
/// messages across channels — exactly the transient-state interleavings the
/// fuzzer hunts — while the per-channel ordering floor in the transport keeps
/// every perturbed schedule one the mesh could legally produce.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DelayBurst {
    /// First cycle of the burst window.
    pub start: u64,
    /// Length of the window in cycles (0 disables the burst).
    pub len: u64,
    /// Extra delivery latency, in cycles, added to selected channels.
    pub extra: u64,
    /// Seed of the channel-selection hash.
    pub salt: u64,
}

/// Upper bound on a single burst's `extra` latency. Keeps fuzz schedules
/// inside the same order of magnitude as the watchdog windows, so a burst
/// perturbs ordering instead of just stalling the machine into a timeout.
pub const MAX_BURST_EXTRA: u64 = 4096;

impl DelayBurst {
    /// True when this burst is open at `now` and selects the `(src, dst)`
    /// channel. The selection hash is SplitMix64-style finalization over
    /// `(salt, src, dst)` keeping ~half of all channels per salt.
    pub fn applies(&self, now: u64, src: usize, dst: usize) -> bool {
        if self.len == 0 || now < self.start || now - self.start >= self.len {
            return false;
        }
        let mut h = self.salt ^ 0x9e37_79b9_7f4a_7c15;
        h = (h ^ src as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = (h ^ dst as u64).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        h & 1 == 0
    }
}

/// Maximum number of simultaneous delay bursts in a [`PerturbConfig`].
pub const MAX_PERTURB_BURSTS: usize = 4;

/// The schedule-perturbation layer's configuration: up to
/// [`MAX_PERTURB_BURSTS`] targeted delay bursts applied to message delivery.
///
/// This is the deterministic "genome" half the fuzzer mutates alongside the
/// chaos-rate knobs in [`FaultConfig`]; unlike chaos jitter (which draws from
/// a PRNG stream per message), bursts are pure functions of `(cycle, src,
/// dst)`, so shrinking a window keeps every delivery outside it untouched.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PerturbConfig {
    /// The burst table; only the first `n` entries are active.
    pub bursts: [DelayBurst; MAX_PERTURB_BURSTS],
    /// Number of active bursts.
    pub n: u8,
}

impl PerturbConfig {
    /// The active bursts.
    pub fn active(&self) -> &[DelayBurst] {
        &self.bursts[..(self.n as usize).min(MAX_PERTURB_BURSTS)]
    }

    /// Appends a burst; returns `false` when the table is full.
    pub fn push(&mut self, b: DelayBurst) -> bool {
        if (self.n as usize) < MAX_PERTURB_BURSTS {
            self.bursts[self.n as usize] = b;
            self.n += 1;
            true
        } else {
            false
        }
    }

    /// True when no burst is active.
    pub fn is_empty(&self) -> bool {
        self.active().iter().all(|b| b.len == 0 || b.extra == 0)
    }

    /// Total extra latency the active bursts add to a delivery on the
    /// `(src, dst)` channel at cycle `now`.
    pub fn extra_delay(&self, now: u64, src: usize, dst: usize) -> u64 {
        self.active()
            .iter()
            .filter(|b| b.applies(now, src, dst))
            .map(|b| b.extra)
            .sum()
    }
}

/// Robustness-layer knobs: invariant checking, the stall watchdog, and
/// fault injection (`row-check`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CheckConfig {
    /// Run the coherence invariant checker every this-many cycles during
    /// [`Machine::run`]-style loops (`None` = never). Checks also run once
    /// when a run drains successfully.
    ///
    /// [`Machine::run`]: ../row_sim/struct.Machine.html#method.run
    pub invariant_every: Option<u64>,
    /// Maximum tolerated depth of one Blocked directory entry's wait queue.
    /// `0` selects an automatic bound of `3 * cores + 4` (each core can
    /// contribute at most a request, a writeback, and a far atomic).
    pub blocked_queue_bound: usize,
    /// Declare the machine stalled when *no* core commits for this many
    /// cycles (`None` = watchdog off). Must comfortably exceed the cores'
    /// own deadlock-break threshold so the breaker gets to act first.
    pub watchdog_window: Option<u64>,
    /// Keep an in-memory checkpoint every this-many cycles and, when the
    /// invariant sweep or the watchdog fires, rewind to the last checkpoint
    /// and replay with per-cycle checking to pinpoint the *first* offending
    /// cycle (`None` = report the end state only, as before).
    pub rewind_every: Option<u64>,
    /// Deterministic fault injection of message delivery (`None` = off).
    pub chaos: Option<FaultConfig>,
    /// Targeted schedule perturbation of message delivery (`None` = off).
    /// Composes with `chaos`: burst delays apply on top of chaos jitter,
    /// and either alone routes messages through the transport's
    /// perturbation path.
    pub perturb: Option<PerturbConfig>,
    /// Record every architectural memory write in an apply-order journal and,
    /// when a run drains, replay it through a sequential golden model
    /// (`row-oracle`): per-atomic RMW return values and the final memory
    /// state must match, or the run fails with a structured mismatch.
    pub oracle: bool,
    /// Stream the apply-order journal through an *online* per-operation
    /// linearizability checker as the run executes (`row-oracle`): each
    /// journaled RMW's observed old value is checked against a sequential
    /// golden model the moment it is journaled, so a violation aborts the
    /// run at the offending operation instead of (or long before) the
    /// end-of-run replay. Memory stays O(live words) — the journal is
    /// drained as it is checked — which is what makes multi-hundred-million
    /// cycle soaks affordable. Takes precedence over `oracle` at drain time
    /// (the online checker's finish pass covers the same end-state checks).
    pub oracle_online: bool,
}

/// The full simulated system: the paper's Table I.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SystemConfig {
    /// Number of cores (= threads; 32 in the paper).
    pub cores: usize,
    /// Core pipeline parameters.
    pub core: CoreConfig,
    /// Memory hierarchy parameters.
    pub mem: MemoryConfig,
    /// Interconnect parameters.
    pub noc: NocConfig,
    /// Robustness-layer configuration (invariant checks, watchdog, chaos).
    pub check: CheckConfig,
}

impl SystemConfig {
    /// The paper's evaluated system: 32 Alder-Lake-like cores, Table I
    /// memory hierarchy, 8×4 mesh.
    pub fn alder_lake_32c() -> Self {
        SystemConfig {
            cores: 32,
            core: CoreConfig::alder_lake(),
            mem: MemoryConfig::alder_lake(),
            noc: NocConfig::mesh_8x4(),
            check: CheckConfig::default(),
        }
    }

    /// A scaled-down system for fast tests: `cores` cores, small caches.
    ///
    /// Keeps all structural behaviour (same pipeline, same protocol) while
    /// letting unit/integration tests run in milliseconds.
    pub fn small(cores: usize) -> Self {
        let mut cfg = SystemConfig::alder_lake_32c();
        cfg.cores = cores;
        cfg.core.rob_entries = 128;
        cfg.core.lq_entries = 48;
        cfg.core.sb_entries = 32;
        cfg.core.iq_entries = 48;
        cfg.mem.l1d = CacheConfig {
            size_bytes: 8 * 1024,
            ways: 4,
            hit_latency: 5,
        };
        cfg.mem.l2 = CacheConfig {
            size_bytes: 64 * 1024,
            ways: 8,
            hit_latency: 12,
        };
        cfg.mem.l3_bank = CacheConfig {
            size_bytes: 256 * 1024,
            ways: 8,
            hit_latency: 35,
        };
        cfg.noc.mesh_cols = cores.clamp(1, 4);
        // Test-sized runs double as protocol stress tests: sweep the
        // coherence invariants periodically and watch for global stalls far
        // beyond the cores' own deadlock-break threshold.
        cfg.check.invariant_every = Some(2048);
        cfg.check.watchdog_window = Some(2_000_000);
        cfg
    }

    /// A beyond-paper scale-out system: `cores` cores (64/128/256) with the
    /// Table I per-core hierarchy on a wider mesh (64 → 8×8, 128 → 16×8,
    /// 256 → 16×16). Other core counts get the nearest power-of-two-ish
    /// column count so the mesh stays roughly square.
    pub fn huge(cores: usize) -> Self {
        let mut cfg = SystemConfig::alder_lake_32c();
        cfg.cores = cores;
        cfg.noc.mesh_cols = match cores {
            0..=64 => 8,
            _ => 16,
        };
        // Scale-out runs double as protocol stress tests, same as the test
        // tier: keep the (incremental) invariant sweep and the watchdog
        // armed. Figure sweeps override `check` from their own
        // ExperimentConfig, so benchmark cells are not taxed by this.
        cfg.check.invariant_every = Some(2048);
        cfg.check.watchdog_window = Some(2_000_000);
        cfg
    }

    /// Sets the atomic execution policy (builder-style).
    pub fn with_policy(mut self, policy: AtomicPolicy) -> Self {
        self.core.atomic_policy = policy;
        self
    }

    /// Sets the fence model (builder-style).
    pub fn with_fence_model(mut self, model: FenceModel) -> Self {
        self.core.fence_model = model;
        self
    }

    /// Enables store→atomic forwarding (builder-style).
    pub fn with_forward_to_atomics(mut self, on: bool) -> Self {
        self.core.forward_to_atomics = on;
        self
    }

    /// Sets near/far atomic placement (builder-style).
    pub fn with_placement(mut self, placement: AtomicPlacement) -> Self {
        self.core.atomic_placement = placement;
        self
    }

    /// Replaces the robustness-layer configuration (builder-style).
    pub fn with_check(mut self, check: CheckConfig) -> Self {
        self.check = check;
        self
    }

    /// Enables deterministic fault injection with `seed` (builder-style).
    pub fn with_chaos(mut self, seed: u64) -> Self {
        self.check.chaos = Some(FaultConfig::with_seed(seed));
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns a human-readable description of the first inconsistency found
    /// (zero cores, zero-width pipeline, non-dividing cache geometry, …).
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("system must have at least one core".into());
        }
        if self.core.fetch_width == 0 || self.core.issue_width == 0 || self.core.commit_width == 0 {
            return Err("pipeline widths must be non-zero".into());
        }
        if self.core.rob_entries == 0
            || self.core.lq_entries == 0
            || self.core.sb_entries == 0
            || self.core.aq_entries == 0
        {
            return Err("queue sizes must be non-zero".into());
        }
        for (name, c) in [
            ("l1d", self.mem.l1d),
            ("l2", self.mem.l2),
            ("l3_bank", self.mem.l3_bank),
        ] {
            let lines = c.size_bytes / crate::ids::LINE_BYTES as usize;
            if lines == 0 || !lines.is_multiple_of(c.ways) {
                return Err(format!("{name} geometry does not divide into sets: {c:?}"));
            }
        }
        if self.noc.mesh_cols == 0 {
            return Err("mesh must have at least one column".into());
        }
        if self.check.invariant_every == Some(0) {
            return Err("invariant_every must be at least one cycle".into());
        }
        if self.check.watchdog_window == Some(0) {
            return Err("watchdog_window must be at least one cycle".into());
        }
        if self.check.rewind_every == Some(0) {
            return Err("rewind_every must be at least one cycle".into());
        }
        if let Some(fc) = &self.check.chaos {
            for (name, ppm) in [
                ("drop_ppm", fc.drop_ppm),
                ("dup_ppm", fc.dup_ppm),
                ("corrupt_ppm", fc.corrupt_ppm),
            ] {
                if ppm > MAX_FAULT_PPM {
                    return Err(format!(
                        "chaos {name} = {ppm} exceeds the maximum of {MAX_FAULT_PPM} \
                         (probability 0.5)"
                    ));
                }
            }
        }
        if let Some(pc) = &self.check.perturb {
            if pc.n as usize > MAX_PERTURB_BURSTS {
                return Err(format!(
                    "perturb config claims {} bursts, maximum is {MAX_PERTURB_BURSTS}",
                    pc.n
                ));
            }
            for b in pc.active() {
                if b.extra > MAX_BURST_EXTRA {
                    return Err(format!(
                        "perturb burst extra = {} exceeds the maximum of {MAX_BURST_EXTRA}",
                        b.extra
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::alder_lake_32c()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters_match_paper() {
        let cfg = SystemConfig::alder_lake_32c();
        assert_eq!(cfg.cores, 32);
        assert_eq!(cfg.core.fetch_width, 6);
        assert_eq!(cfg.core.issue_width, 12);
        assert_eq!(cfg.core.commit_width, 12);
        assert_eq!(cfg.core.rob_entries, 512);
        assert_eq!(cfg.core.lq_entries, 192);
        assert_eq!(cfg.core.sb_entries, 128);
        assert_eq!(cfg.core.aq_entries, 16);
        assert_eq!(cfg.mem.l1d.size_bytes, 48 * 1024);
        assert_eq!(cfg.mem.l1d.ways, 12);
        assert_eq!(cfg.mem.l1d.hit_latency, 5);
        assert_eq!(cfg.mem.l2.hit_latency, 12);
        assert_eq!(cfg.mem.l3_bank.hit_latency, 35);
        assert_eq!(cfg.mem.mem_latency, 160);
        cfg.validate().unwrap();
    }

    #[test]
    fn row_storage_is_64_bytes() {
        // Section IV-F: 64-entry x 4-bit table + 16 AQ entries x 16 bits
        // = 256 + 256 bits = 64 bytes.
        let cfg = RowConfig::best();
        assert_eq!(cfg.storage_bits(16), 512);
        assert_eq!(cfg.storage_bits(16) / 8, 64);
    }

    #[test]
    fn detector_storage_scales_with_mechanism() {
        let ew = RowConfig::new(DetectorKind::ExecutionWindow, PredictorKind::UpDown);
        let rw = RowConfig::new(DetectorKind::ReadyWindow, PredictorKind::UpDown);
        assert_eq!(ew.storage_bits(16), 256 + 16);
        assert_eq!(rw.storage_bits(16), 256 + 32);
    }

    #[test]
    fn decision_threshold_tracks_predictor() {
        assert_eq!(
            RowConfig::new(DetectorKind::default(), PredictorKind::UpDown).decision_threshold,
            1
        );
        assert_eq!(
            RowConfig::new(DetectorKind::default(), PredictorKind::SaturateOnContention)
                .decision_threshold,
            0
        );
    }

    #[test]
    fn cache_sets_divide() {
        let c = CacheConfig {
            size_bytes: 48 * 1024,
            ways: 12,
            hit_latency: 5,
        };
        assert_eq!(c.sets(), 64);
    }

    #[test]
    fn small_config_validates() {
        for n in [1, 2, 4, 8] {
            SystemConfig::small(n).validate().unwrap();
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = SystemConfig::small(2);
        cfg.cores = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::small(2);
        cfg.core.fetch_width = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::small(2);
        cfg.mem.l1d.ways = 7; // 128 lines % 7 != 0
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::small(2).with_chaos(1);
        cfg.check.chaos.as_mut().unwrap().drop_ppm = MAX_FAULT_PPM + 1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn fault_config_lossy_classification() {
        let fc = FaultConfig::with_seed(3);
        assert!(!fc.lossy(), "delay-only chaos is not lossy");
        for lossy in [
            FaultConfig { drop_ppm: 1, ..fc },
            FaultConfig { dup_ppm: 1, ..fc },
            FaultConfig {
                corrupt_ppm: 1,
                ..fc
            },
        ] {
            assert!(lossy.lossy());
        }
    }

    #[test]
    fn perturb_bursts_select_windows_and_channels() {
        let b = DelayBurst {
            start: 100,
            len: 50,
            extra: 10,
            salt: 7,
        };
        // Outside the window: never applies.
        assert!(!b.applies(99, 0, 1));
        assert!(!b.applies(150, 0, 1));
        // Inside the window: applies to a salt-selected subset of channels,
        // not all and not none.
        let hit: usize = (0..8)
            .flat_map(|s| (0..8).map(move |d| (s, d)))
            .filter(|&(s, d)| b.applies(120, s, d))
            .count();
        assert!(hit > 0 && hit < 64, "selection hit {hit}/64 channels");
        // Different salts select different subsets.
        let b2 = DelayBurst { salt: 8, ..b };
        let differs = (0..8)
            .flat_map(|s| (0..8).map(move |d| (s, d)))
            .any(|(s, d)| b.applies(120, s, d) != b2.applies(120, s, d));
        assert!(differs);
        // Determinism: same inputs, same answer.
        assert_eq!(b.applies(120, 3, 5), b.applies(120, 3, 5));

        let mut pc = PerturbConfig::default();
        assert!(pc.is_empty());
        assert!(pc.push(b));
        assert_eq!(pc.active().len(), 1);
        let any_extra = (0..8)
            .flat_map(|s| (0..8).map(move |d| (s, d)))
            .any(|(s, d)| pc.extra_delay(120, s, d) == 10);
        assert!(any_extra);
        assert_eq!(pc.extra_delay(99, 0, 1), 0);
    }

    #[test]
    fn perturb_config_validates() {
        let mut cfg = SystemConfig::small(2);
        let mut pc = PerturbConfig::default();
        pc.push(DelayBurst {
            start: 0,
            len: 10,
            extra: MAX_BURST_EXTRA + 1,
            salt: 0,
        });
        cfg.check.perturb = Some(pc);
        assert!(cfg.validate().is_err());
        cfg.check.perturb.as_mut().unwrap().bursts[0].extra = MAX_BURST_EXTRA;
        cfg.validate().unwrap();
    }

    #[test]
    fn builders_apply() {
        let cfg = SystemConfig::small(2)
            .with_policy(AtomicPolicy::Lazy)
            .with_fence_model(FenceModel::Fenced)
            .with_forward_to_atomics(true);
        assert_eq!(cfg.core.atomic_policy, AtomicPolicy::Lazy);
        assert_eq!(cfg.core.fence_model, FenceModel::Fenced);
        assert!(cfg.core.forward_to_atomics);
    }

    #[test]
    fn atomic_policy_row_accessor() {
        let row = AtomicPolicy::Row(RowConfig::best());
        assert!(row.row().is_some());
        assert!(AtomicPolicy::Eager.row().is_none());
    }
}
