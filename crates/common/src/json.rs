//! A minimal, dependency-free JSON reader and writer.
//!
//! The sweep engine persists per-figure results as JSON (`BENCH_<fig>.json`)
//! and must read them back for resume, so this module provides the small
//! slice of JSON the workspace needs: a [`Value`] tree, a recursive-descent
//! [`parse`], and escape/format helpers for writing. Numbers keep their
//! integer/float distinction so `u64`/`u128` counters round-trip exactly;
//! floats are written with Rust's shortest round-trip `Display`, so a value
//! parsed back and re-serialized is byte-identical — the property the sweep
//! determinism tests rely on.
//!
//! # Example
//! ```
//! use row_common::json::{parse, Value};
//! let v = parse(r#"{"cycles": 42, "ipc": 1.5, "tags": ["a", "b"]}"#).unwrap();
//! assert_eq!(v.get("cycles").and_then(Value::as_u64), Some(42));
//! assert_eq!(v.get("ipc").and_then(Value::as_f64), Some(1.5));
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without `.`/`e` — kept exact.
    Int(i128),
    /// A number with a fraction or exponent.
    Float(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64` (integers only; floats never silently truncate).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a `u128` (integers only).
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Value::Int(i) => u128::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (accepts both number forms).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// A parse failure: what was wrong and the byte offset it was found at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What the parser expected or rejected.
    pub message: &'static str,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
/// [`JsonError`] naming the first offending byte offset.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            message,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // lone surrogates are rejected.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("malformed number"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| self.err("malformed number"))
        }
    }
}

/// Escapes a string for embedding between JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number using Rust's shortest round-trip
/// `Display` (`NaN`/infinities — which JSON cannot express — become `0`,
/// they never occur in well-formed results).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` for f64 never emits an exponent, but guard anyway: a
        // bare integer like "3" is still valid JSON.
        s
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" 42 ").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(parse("\"hi\\n\"").unwrap(), Value::Str("hi\n".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert!(arr[1].get("b").unwrap().is_null());
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn large_integers_round_trip_exactly() {
        let n = u64::MAX as u128 * 3;
        let v = parse(&n.to_string()).unwrap();
        assert_eq!(v.as_u128(), Some(n));
        // Would lose precision as f64, so as_u64 refuses floats entirely.
        assert_eq!(parse("1.0").unwrap().as_u64(), None);
    }

    #[test]
    fn float_display_round_trips() {
        for &f in &[0.1, 1.0 / 3.0, 123456.789, 5e-9, 0.0] {
            let s = fmt_f64(f);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
        assert_eq!(fmt_f64(f64::NAN), "0");
    }

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        let round = parse(&format!("\"{}\"", escape("a\"b\\c\nd\t\u{1}"))).unwrap();
        assert_eq!(round.as_str(), Some("a\"b\\c\nd\t\u{1}"));
    }
}
