//! A generic cycle-keyed event wheel.
//!
//! The memory system and interconnect schedule message deliveries and state
//! transitions at absolute cycles. [`EventQueue`] is a deterministic timing
//! wheel: events at the same cycle pop in insertion order (FIFO), so
//! simulation outcomes never depend on tie-breaking.
//!
//! # Layout
//!
//! The near window is `WHEEL` ring buckets, one per cycle in
//! `[cur, cur + WHEEL)`; cycle `c` lives in bucket `c % WHEEL`, so a push or
//! pop within the window is O(1) with no per-event sequence numbers or heap
//! rebalancing. Events beyond the window overflow into a `BTreeMap` keyed by
//! absolute cycle and are promoted into their ring bucket as the watermark
//! `cur` sweeps forward. `cur` never passes `now`, and a whole empty stretch
//! is skipped in one jump when the near window is empty, so draining a cycle
//! costs O(events) and an idle queue costs O(1) per probe.

use std::collections::{BTreeMap, VecDeque};

use crate::clock::Cycle;
use crate::persist::{Codec, PersistError, Reader, Writer};

/// Near-window width in cycles. Covers every fixed latency in the system
/// (worst is `mem_latency` = 160, plus mesh hops); only transport
/// retransmit backoffs overflow into the far map. Power of two so the
/// bucket index is a mask.
const WHEEL: u64 = 256;

/// An event queue delivering items in (cycle, insertion-order) order.
///
/// # Example
/// ```
/// use row_common::{Cycle, sched::EventQueue};
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(10), "b");
/// q.push(Cycle::new(5), "a");
/// q.push(Cycle::new(10), "c");
/// assert_eq!(q.pop_ready(Cycle::new(10)), Some("a"));
/// assert_eq!(q.pop_ready(Cycle::new(10)), Some("b"));
/// assert_eq!(q.pop_ready(Cycle::new(10)), Some("c"));
/// assert_eq!(q.pop_ready(Cycle::new(10)), None);
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue<T> {
    /// Ring of per-cycle FIFO buckets for cycles in `[cur, cur + WHEEL)`.
    near: Vec<VecDeque<T>>,
    /// Overflow for cycles `>= cur + WHEEL`, promoted as `cur` advances.
    far: BTreeMap<u64, VecDeque<T>>,
    /// Watermark: every event at a cycle `< cur` has been delivered.
    /// Invariant: `cur` never exceeds the largest `now` seen.
    cur: u64,
    near_len: usize,
    far_len: usize,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            near: (0..WHEEL).map(|_| VecDeque::new()).collect(),
            far: BTreeMap::new(),
            cur: 0,
            near_len: 0,
            far_len: 0,
        }
    }

    #[inline]
    fn bucket(c: u64) -> usize {
        (c & (WHEEL - 1)) as usize
    }

    /// Schedules `item` for delivery at cycle `at`. A cycle already behind
    /// the watermark (impossible for the simulator's `now + latency`
    /// schedules) is clamped to the watermark rather than lost.
    pub fn push(&mut self, at: Cycle, item: T) {
        let at = at.raw().max(self.cur);
        if at < self.cur + WHEEL {
            self.near[Self::bucket(at)].push_back(item);
            self.near_len += 1;
        } else {
            self.far.entry(at).or_default().push_back(item);
            self.far_len += 1;
        }
    }

    /// Moves every far bucket that now fits the near window into its ring
    /// slot. Only called when the target slots are empty: either the window
    /// advanced past them one cycle at a time, or the whole ring is empty.
    fn promote(&mut self) {
        while let Some((&k, _)) = self.far.first_key_value() {
            if k >= self.cur + WHEEL {
                break;
            }
            let q = self.far.remove(&k).expect("first key present");
            debug_assert!(self.near[Self::bucket(k)].is_empty());
            self.far_len -= q.len();
            self.near_len += q.len();
            self.near[Self::bucket(k)] = q;
        }
    }

    /// Pops the next event whose cycle is `<= now`, if any.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        let now = now.raw();
        loop {
            if self.near_len == 0 {
                // Near window drained: skip the empty stretch in one jump —
                // to the first far bucket if it is due, else to `now` (never
                // past `now`, so a later same-cycle push still delivers
                // this cycle, exactly like the old heap).
                let Some((&k, _)) = self.far.first_key_value() else {
                    self.cur = self.cur.max(now);
                    return None;
                };
                if k > now {
                    if self.cur < now {
                        self.cur = now;
                        self.promote();
                    }
                    return None;
                }
                self.cur = self.cur.max(k);
                self.promote();
                continue;
            }
            if self.cur > now {
                return None;
            }
            if let Some(item) = self.near[Self::bucket(self.cur)].pop_front() {
                self.near_len -= 1;
                return Some(item);
            }
            if self.cur == now {
                return None;
            }
            self.cur += 1;
            // Cycle `cur + WHEEL - 1` just became representable in the slot
            // vacated above; pull it in from the far map if scheduled.
            if let Some(q) = self.far.remove(&(self.cur + WHEEL - 1)) {
                self.far_len -= q.len();
                self.near_len += q.len();
                self.near[Self::bucket(self.cur + WHEEL - 1)] = q;
            }
        }
    }

    /// The cycle of the earliest pending event. O(WHEEL) scan — diagnostics
    /// only, not on the simulation hot path.
    pub fn next_cycle(&self) -> Option<Cycle> {
        if self.near_len > 0 {
            for d in 0..WHEEL {
                let c = self.cur + d;
                if !self.near[Self::bucket(c)].is_empty() {
                    return Some(Cycle::new(c));
                }
            }
        }
        self.far.first_key_value().map(|(&k, _)| Cycle::new(k))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.near_len + self.far_len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T: Codec> Codec for EventQueue<T> {
    fn encode(&self, w: &mut Writer) {
        // Encode in delivery order — ascending cycle, FIFO within a cycle —
        // the same wire format (and bytes) as the pre-wheel heap layout.
        w.put_len(self.len());
        if self.near_len > 0 {
            for d in 0..WHEEL {
                let c = self.cur + d;
                for item in &self.near[Self::bucket(c)] {
                    Cycle::new(c).encode(w);
                    item.encode(w);
                }
            }
        }
        for (&k, q) in &self.far {
            for item in q {
                Cycle::new(k).encode(w);
                item.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let n = r.get_len()?;
        let mut q = EventQueue::new();
        for _ in 0..n {
            let at = Cycle::decode(r)?;
            let item = T::decode(r)?;
            q.push(at, item);
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_cycle_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(30), 3);
        q.push(Cycle::new(10), 1);
        q.push(Cycle::new(20), 2);
        assert_eq!(q.pop_ready(Cycle::new(100)), Some(1));
        assert_eq!(q.pop_ready(Cycle::new(100)), Some(2));
        assert_eq!(q.pop_ready(Cycle::new(100)), Some(3));
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(Cycle::new(5), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop_ready(Cycle::new(5)), Some(i));
        }
    }

    #[test]
    fn does_not_deliver_early() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), "x");
        assert_eq!(q.pop_ready(Cycle::new(9)), None);
        assert_eq!(q.next_cycle(), Some(Cycle::new(10)));
        assert_eq!(q.pop_ready(Cycle::new(10)), Some("x"));
        assert!(q.is_empty());
    }

    #[test]
    fn codec_round_trip_preserves_delivery_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), 1u64);
        q.push(Cycle::new(5), 2);
        q.push(Cycle::new(10), 3);
        q.push(Cycle::new(5), 4);
        let mut w = Writer::new();
        q.encode(&mut w);
        let bytes = w.into_bytes();
        let mut restored: EventQueue<u64> = Codec::decode(&mut Reader::new(&bytes)).unwrap();
        let mut orig = Vec::new();
        let mut rest = Vec::new();
        while let Some(v) = q.pop_ready(Cycle::new(100)) {
            orig.push(v);
        }
        while let Some(v) = restored.pop_ready(Cycle::new(100)) {
            rest.push(v);
        }
        assert_eq!(orig, rest);
        assert_eq!(orig, vec![2, 4, 1, 3]);
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Cycle::new(1), ());
        q.push(Cycle::new(2), ());
        assert_eq!(q.len(), 2);
        q.pop_ready(Cycle::new(5));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn far_events_promote_across_the_window() {
        // Events far past the near window must surface in order, including
        // two far buckets and one near one.
        let mut q = EventQueue::new();
        q.push(Cycle::new(WHEEL * 3 + 7), "c");
        q.push(Cycle::new(5), "a");
        q.push(Cycle::new(WHEEL + 1), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_cycle(), Some(Cycle::new(5)));
        assert_eq!(q.pop_ready(Cycle::new(WHEEL)), Some("a"));
        assert_eq!(q.pop_ready(Cycle::new(WHEEL)), None);
        assert_eq!(q.next_cycle(), Some(Cycle::new(WHEEL + 1)));
        assert_eq!(q.pop_ready(Cycle::new(WHEEL + 1)), Some("b"));
        assert_eq!(q.pop_ready(Cycle::new(WHEEL * 4)), Some("c"));
        assert!(q.is_empty());
    }

    #[test]
    fn empty_probe_then_same_cycle_push_still_delivers() {
        // The watermark must not pass `now` on an empty probe: a push at
        // the same cycle after a None must still deliver this cycle (the
        // heap behaved this way, and the mem tick loop relies on it).
        let mut q = EventQueue::new();
        assert_eq!(q.pop_ready(Cycle::new(50)), None);
        q.push(Cycle::new(50), 9);
        assert_eq!(q.pop_ready(Cycle::new(50)), Some(9));
    }

    #[test]
    fn big_now_jump_skips_empty_stretch() {
        // A restore-style jump: events decoded at large absolute cycles,
        // then probed at a large `now` — must not cost O(now) or strand
        // far buckets that fall inside the new near window.
        let mut q = EventQueue::new();
        q.push(Cycle::new(1_000_000), 1u32);
        q.push(Cycle::new(1_000_100), 2);
        q.push(Cycle::new(1_000_000 + 2 * WHEEL), 3);
        assert_eq!(q.pop_ready(Cycle::new(999_999)), None);
        assert_eq!(q.pop_ready(Cycle::new(1_000_000)), Some(1));
        assert_eq!(q.pop_ready(Cycle::new(1_000_099)), None);
        assert_eq!(q.pop_ready(Cycle::new(1_000_100)), Some(2));
        assert_eq!(q.pop_ready(Cycle::new(2_000_000)), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_near_and_far_pushes_keep_fifo_per_cycle() {
        let mut q = EventQueue::new();
        let c = WHEEL + 10;
        q.push(Cycle::new(c), 1u32); // far at push time
        let mut drained = Vec::new();
        for now in 0..=c {
            while let Some(v) = q.pop_ready(Cycle::new(now)) {
                drained.push((now, v));
            }
            if now == 20 {
                q.push(Cycle::new(c), 2); // near by then? still far-ish — same cycle, later
            }
        }
        assert_eq!(drained, vec![(c, 1), (c, 2)]);
    }
}
