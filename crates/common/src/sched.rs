//! A generic cycle-keyed event wheel.
//!
//! The memory system and interconnect schedule message deliveries and state
//! transitions at absolute cycles. [`EventQueue`] is a thin deterministic
//! priority queue: events at the same cycle pop in insertion order (FIFO), so
//! simulation outcomes never depend on heap tie-breaking.

use std::collections::BinaryHeap;

use crate::clock::Cycle;
use crate::persist::{Codec, PersistError, Reader, Writer};

/// An event queue delivering items in (cycle, insertion-order) order.
///
/// # Example
/// ```
/// use row_common::{Cycle, sched::EventQueue};
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(10), "b");
/// q.push(Cycle::new(5), "a");
/// q.push(Cycle::new(10), "c");
/// assert_eq!(q.pop_ready(Cycle::new(10)), Some("a"));
/// assert_eq!(q.pop_ready(Cycle::new(10)), Some("b"));
/// assert_eq!(q.pop_ready(Cycle::new(10)), Some("c"));
/// assert_eq!(q.pop_ready(Cycle::new(10)), None);
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

#[derive(Clone, Debug)]
struct Entry<T> {
    at: Cycle,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `item` for delivery at cycle `at`.
    pub fn push(&mut self, at: Cycle, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, item });
    }

    /// Pops the next event whose cycle is `<= now`, if any.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        if self.heap.peek().is_some_and(|e| e.at <= now) {
            Some(self.heap.pop().expect("peeked").item)
        } else {
            None
        }
    }

    /// The cycle of the earliest pending event.
    pub fn next_cycle(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T: Codec> Codec for EventQueue<T> {
    fn encode(&self, w: &mut Writer) {
        // Encode in delivery order: (cycle, insertion-seq). Re-pushing in
        // this order on decode assigns fresh seq numbers that preserve the
        // exact FIFO-within-cycle delivery sequence.
        let mut entries: Vec<&Entry<T>> = self.heap.iter().collect();
        entries.sort_by(|a, b| a.at.cmp(&b.at).then_with(|| a.seq.cmp(&b.seq)));
        w.put_len(entries.len());
        for e in entries {
            e.at.encode(w);
            e.item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let n = r.get_len()?;
        let mut q = EventQueue::new();
        for _ in 0..n {
            let at = Cycle::decode(r)?;
            let item = T::decode(r)?;
            q.push(at, item);
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_cycle_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(30), 3);
        q.push(Cycle::new(10), 1);
        q.push(Cycle::new(20), 2);
        assert_eq!(q.pop_ready(Cycle::new(100)), Some(1));
        assert_eq!(q.pop_ready(Cycle::new(100)), Some(2));
        assert_eq!(q.pop_ready(Cycle::new(100)), Some(3));
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(Cycle::new(5), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop_ready(Cycle::new(5)), Some(i));
        }
    }

    #[test]
    fn does_not_deliver_early() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), "x");
        assert_eq!(q.pop_ready(Cycle::new(9)), None);
        assert_eq!(q.next_cycle(), Some(Cycle::new(10)));
        assert_eq!(q.pop_ready(Cycle::new(10)), Some("x"));
        assert!(q.is_empty());
    }

    #[test]
    fn codec_round_trip_preserves_delivery_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), 1u64);
        q.push(Cycle::new(5), 2);
        q.push(Cycle::new(10), 3);
        q.push(Cycle::new(5), 4);
        let mut w = Writer::new();
        q.encode(&mut w);
        let bytes = w.into_bytes();
        let mut restored: EventQueue<u64> = Codec::decode(&mut Reader::new(&bytes)).unwrap();
        let mut orig = Vec::new();
        let mut rest = Vec::new();
        while let Some(v) = q.pop_ready(Cycle::new(100)) {
            orig.push(v);
        }
        while let Some(v) = restored.pop_ready(Cycle::new(100)) {
            rest.push(v);
        }
        assert_eq!(orig, rest);
        assert_eq!(orig, vec![2, 4, 1, 3]);
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Cycle::new(1), ());
        q.push(Cycle::new(2), ());
        assert_eq!(q.len(), 2);
        q.pop_ready(Cycle::new(5));
        assert_eq!(q.len(), 1);
    }
}
