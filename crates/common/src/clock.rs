//! The global simulation time base.
//!
//! Everything in the simulator is timed in processor [`Cycle`]s. The type is a
//! transparent `u64` newtype with saturating-free, explicitly-checked
//! arithmetic helpers, plus the 14-bit wrapping arithmetic that the RoW
//! directory-latency detector performs in hardware (Section IV-C of the
//! paper).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Width, in bits, of the `request issued cycle` timestamp field each Atomic
/// Queue entry carries in RoW (paper Section IV-C).
pub const TIMESTAMP_BITS: u32 = 14;
/// Modulus of the 14-bit timestamp field: `2^14 = 16384`.
pub const TIMESTAMP_MODULUS: u64 = 1 << TIMESTAMP_BITS;

/// A point in simulated time, measured in core clock cycles.
///
/// # Example
/// ```
/// use row_common::clock::Cycle;
/// let t = Cycle::new(100) + 60;
/// assert_eq!(t.raw(), 160);
/// assert_eq!(t - Cycle::new(100), 60);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero, the start of the simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle count from a raw value.
    pub const fn new(c: u64) -> Self {
        Cycle(c)
    }

    /// The raw cycle count.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The low [`TIMESTAMP_BITS`] bits, as latched in an AQ entry's
    /// `request issued cycle` field.
    pub const fn timestamp14(self) -> u16 {
        (self.0 & (TIMESTAMP_MODULUS - 1)) as u16
    }

    /// Latency from an earlier 14-bit timestamp to `self`, using the wrapping
    /// unsigned subtraction the paper's 14-bit subtractor performs.
    ///
    /// Latencies in `[16384, 16784)` alias to `[0, 400)` — the paper
    /// explicitly accepts this (footnote 4); the dedicated unit test below
    /// documents it.
    pub const fn latency_since14(self, issued: u16) -> u64 {
        (self.timestamp14() as u64)
            .wrapping_sub(issued as u64)
            .rem_euclid(TIMESTAMP_MODULUS)
    }

    /// Saturating difference `self - earlier`, zero when `earlier` is later.
    pub const fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The later of two instants.
    pub fn max(self, other: Cycle) -> Cycle {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    /// Exact distance between two instants.
    ///
    /// # Panics
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "negative cycle delta: {self:?} - {rhs:?}");
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Self {
        Cycle(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let t = Cycle::new(5);
        assert_eq!((t + 7).raw(), 12);
        assert_eq!(Cycle::new(12) - t, 7);
        let mut u = t;
        u += 3;
        assert_eq!(u.raw(), 8);
    }

    #[test]
    fn timestamp_is_low_14_bits() {
        assert_eq!(Cycle::new(TIMESTAMP_MODULUS + 5).timestamp14(), 5);
        assert_eq!(Cycle::new(TIMESTAMP_MODULUS - 1).timestamp14(), 0x3fff);
    }

    #[test]
    fn latency_without_wrap() {
        let issue = Cycle::new(1000);
        let done = Cycle::new(1450);
        assert_eq!(done.latency_since14(issue.timestamp14()), 450);
    }

    #[test]
    fn latency_with_wraparound() {
        // Issue near the top of the 14-bit window, complete after wrap.
        let issue = Cycle::new(TIMESTAMP_MODULUS - 10);
        let done = Cycle::new(TIMESTAMP_MODULUS + 30);
        assert_eq!(done.latency_since14(issue.timestamp14()), 40);
    }

    #[test]
    fn latency_aliasing_documented_by_paper() {
        // A true latency of exactly 2^14 + 100 aliases to 100 (paper
        // footnote 4: latencies in [16384, 16784) are misread as < 400).
        let issue = Cycle::new(123);
        let done = Cycle::new(123 + TIMESTAMP_MODULUS + 100);
        assert_eq!(done.latency_since14(issue.timestamp14()), 100);
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(Cycle::new(5).saturating_since(Cycle::new(9)), 0);
        assert_eq!(Cycle::new(9).saturating_since(Cycle::new(5)), 4);
    }

    #[test]
    fn max_picks_later() {
        assert_eq!(Cycle::new(3).max(Cycle::new(7)), Cycle::new(7));
        assert_eq!(Cycle::new(8).max(Cycle::new(7)), Cycle::new(8));
    }
}
