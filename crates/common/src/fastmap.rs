//! An open-addressed, arena-backed hash map for the simulator's hot paths.
//!
//! [`FastMap`] replaces `std::collections::HashMap` where lookups happen
//! every simulated cycle (directory entries, private-cache coherence and
//! MSHR state, ROB entry bookkeeping). It differs from the std map in the
//! three ways the hot loop cares about:
//!
//! * **No SipHash.** Keys are small integers (line addresses, instruction
//!   uids, core ids); a single multiplicative mix replaces the keyed SipHash
//!   rounds the std map pays per probe.
//! * **Arena storage, linear probing.** The slot table holds `u32` indices
//!   into parallel key/value arenas, so probing touches one cache line of
//!   indices and a hit costs one indirection. Removal swap-removes the arena
//!   and backward-shifts the probe chain — no tombstones.
//! * **Deterministic iteration.** Iteration walks the arena, whose order is
//!   a pure function of the insert/remove history — identical across runs,
//!   processes, and `--jobs N` workers (no per-process hash seed). The
//!   [`Codec`] impl additionally encodes entries **sorted by key**, matching
//!   the std `HashMap` codec byte for byte, so checkpoints are unchanged.
//!
//! Iteration order is *stable*, not *sorted*: diagnostics that promise
//! sorted output must sort, exactly as they had to with the std map.

use crate::persist::{Codec, PersistError, Reader, Writer};
use crate::{CoreId, LineAddr};

/// Slot value marking an empty probe slot.
const EMPTY: u32 = u32::MAX;

/// Keys a [`FastMap`] accepts: cheap to copy, totally ordered (for the
/// sorted [`Codec`]), and hashable in a handful of ALU ops.
pub trait FastKey: Copy + Eq + Ord {
    /// A well-mixed 64-bit hash of the key.
    fn hash64(self) -> u64;
}

#[inline]
fn mix64(k: u64) -> u64 {
    // SplitMix64-style finalizer: multiplicative spread plus xor-shifts so
    // sequential keys (line numbers, uids) don't cluster in the low bits.
    let h = (k ^ (k >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

impl FastKey for u64 {
    #[inline]
    fn hash64(self) -> u64 {
        mix64(self)
    }
}

impl FastKey for u32 {
    #[inline]
    fn hash64(self) -> u64 {
        mix64(self as u64)
    }
}

impl FastKey for LineAddr {
    #[inline]
    fn hash64(self) -> u64 {
        mix64(self.raw())
    }
}

impl FastKey for CoreId {
    #[inline]
    fn hash64(self) -> u64 {
        mix64(self.index() as u64)
    }
}

impl FastKey for (CoreId, u64) {
    #[inline]
    fn hash64(self) -> u64 {
        // Fold the core into the high bits before mixing; request ids stay
        // in the low bits, so distinct (core, id) pairs rarely pre-collide.
        mix64(((self.0.index() as u64) << 48) ^ self.1)
    }
}

/// An open-addressed hash map with arena storage and deterministic,
/// insertion-stable iteration order. See the module docs for the contract.
///
/// # Example
/// ```
/// use row_common::fastmap::FastMap;
/// let mut m: FastMap<u64, &str> = FastMap::new();
/// m.insert(7, "seven");
/// m.insert(3, "three");
/// assert_eq!(m.get(&7), Some(&"seven"));
/// assert_eq!(m.remove(&7), Some("seven"));
/// assert_eq!(m.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct FastMap<K, V> {
    /// Power-of-two probe table of arena indices (`EMPTY` = free).
    slots: Vec<u32>,
    keys: Vec<K>,
    vals: Vec<V>,
}

impl<K: FastKey, V> FastMap<K, V> {
    /// Creates an empty map (no allocation until the first insert).
    pub fn new() -> Self {
        FastMap {
            slots: Vec::new(),
            keys: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the map holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// Probe slot index where `k` lives, if present.
    #[inline]
    fn find_slot(&self, k: K) -> Option<usize> {
        if self.keys.is_empty() {
            return None;
        }
        let mask = self.mask();
        let mut i = (k.hash64() as usize) & mask;
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                return None;
            }
            if self.keys[s as usize] == k {
                return Some(i);
            }
            i = (i + 1) & mask;
        }
    }

    /// Returns a reference to the value for `k`.
    #[inline]
    pub fn get(&self, k: &K) -> Option<&V> {
        self.find_slot(*k)
            .map(|i| &self.vals[self.slots[i] as usize])
    }

    /// Returns a mutable reference to the value for `k`.
    #[inline]
    pub fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        self.find_slot(*k)
            .map(|i| &mut self.vals[self.slots[i] as usize])
    }

    /// Whether `k` is present.
    #[inline]
    pub fn contains_key(&self, k: &K) -> bool {
        self.find_slot(*k).is_some()
    }

    /// Grows/initializes the slot table so one more insert stays under a
    /// 3/4 load factor.
    fn reserve_one(&mut self) {
        if self.slots.is_empty() {
            self.slots = vec![EMPTY; 16];
        } else if (self.keys.len() + 1) * 4 > self.slots.len() * 3 {
            let new_len = self.slots.len() * 2;
            self.slots.clear();
            self.slots.resize(new_len, EMPTY);
            let mask = new_len - 1;
            for (idx, k) in self.keys.iter().enumerate() {
                let mut i = (k.hash64() as usize) & mask;
                while self.slots[i] != EMPTY {
                    i = (i + 1) & mask;
                }
                self.slots[i] = idx as u32;
            }
        }
    }

    /// Inserts `k → v`, returning the previous value if any.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        self.reserve_one();
        let mask = self.mask();
        let mut i = (k.hash64() as usize) & mask;
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                self.slots[i] = self.keys.len() as u32;
                self.keys.push(k);
                self.vals.push(v);
                return None;
            }
            if self.keys[s as usize] == k {
                return Some(std::mem::replace(&mut self.vals[s as usize], v));
            }
            i = (i + 1) & mask;
        }
    }

    /// Returns a mutable reference to the value for `k`, inserting
    /// `default()` first if absent (the `entry().or_insert_with()` shape).
    pub fn get_or_insert_with(&mut self, k: K, default: impl FnOnce() -> V) -> &mut V {
        self.reserve_one();
        let mask = self.mask();
        let mut i = (k.hash64() as usize) & mask;
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                self.slots[i] = self.keys.len() as u32;
                self.keys.push(k);
                self.vals.push(default());
                let last = self.vals.len() - 1;
                return &mut self.vals[last];
            }
            if self.keys[s as usize] == k {
                return &mut self.vals[s as usize];
            }
            i = (i + 1) & mask;
        }
    }

    /// Removes every entry, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.slots.fill(EMPTY);
        self.keys.clear();
        self.vals.clear();
    }

    /// Removes `k`, returning its value if present.
    pub fn remove(&mut self, k: &K) -> Option<V> {
        let slot = self.find_slot(*k)?;
        let idx = self.slots[slot] as usize;
        self.erase_slot(slot);
        let last = self.keys.len() - 1;
        self.keys.swap_remove(idx);
        let v = self.vals.swap_remove(idx);
        if idx != last {
            // The arena entry that lived at `last` moved to `idx`; repoint
            // its probe slot.
            let mask = self.mask();
            let mut j = (self.keys[idx].hash64() as usize) & mask;
            loop {
                if self.slots[j] == last as u32 {
                    self.slots[j] = idx as u32;
                    break;
                }
                j = (j + 1) & mask;
            }
        }
        Some(v)
    }

    /// Backward-shift deletion: closes the probe chain over freed slot `i`
    /// so lookups never need tombstones.
    fn erase_slot(&mut self, mut i: usize) {
        let mask = self.mask();
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let s = self.slots[j];
            if s == EMPTY {
                break;
            }
            let ideal = (self.keys[s as usize].hash64() as usize) & mask;
            // The entry at `j` may fill the hole at `i` only if its ideal
            // slot is cyclically outside (i, j] — i.e. the move does not
            // put it ahead of its own probe chain.
            if (j.wrapping_sub(ideal) & mask) >= (j.wrapping_sub(i) & mask) {
                self.slots[i] = s;
                i = j;
            }
        }
        self.slots[i] = EMPTY;
    }

    /// Iterates `(key, &value)` in arena (insertion-stable) order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> + '_ {
        self.keys.iter().copied().zip(self.vals.iter())
    }

    /// Iterates `(key, &mut value)` in arena (insertion-stable) order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (K, &mut V)> + '_ {
        self.keys.iter().copied().zip(self.vals.iter_mut())
    }

    /// Iterates keys in arena (insertion-stable) order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.keys.iter().copied()
    }

    /// Iterates values in arena (insertion-stable) order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.vals.iter()
    }

    /// Iterates values mutably in arena (insertion-stable) order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> + '_ {
        self.vals.iter_mut()
    }
}

impl<K: FastKey, V> Default for FastMap<K, V> {
    fn default() -> Self {
        FastMap::new()
    }
}

impl<K: FastKey, V> std::ops::Index<&K> for FastMap<K, V> {
    type Output = V;
    /// Panics if `k` is absent, like the std map's `Index`.
    #[inline]
    fn index(&self, k: &K) -> &V {
        self.get(k).expect("FastMap: key not present")
    }
}

impl<K: FastKey + Codec, V: Codec> Codec for FastMap<K, V> {
    fn encode(&self, w: &mut Writer) {
        // Sorted-by-key order: byte-identical to the std HashMap codec, so
        // swapping map types never changes checkpoint bytes.
        let mut order: Vec<u32> = (0..self.keys.len() as u32).collect();
        order.sort_by(|&a, &b| self.keys[a as usize].cmp(&self.keys[b as usize]));
        w.put_len(order.len());
        for i in order {
            self.keys[i as usize].encode(w);
            self.vals[i as usize].encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let n = r.get_len()?;
        let mut m = FastMap::new();
        for _ in 0..n {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m: FastMap<u64, u64> = FastMap::new();
        assert!(m.is_empty());
        assert_eq!(m.get(&1), None);
        for k in 0..100u64 {
            assert_eq!(m.insert(k, k * 10), None);
        }
        assert_eq!(m.len(), 100);
        for k in 0..100u64 {
            assert_eq!(m.get(&k), Some(&(k * 10)));
        }
        assert_eq!(m.insert(7, 1), Some(70));
        for k in 0..50u64 {
            assert_eq!(m.remove(&(k * 2)), Some(k * 20));
        }
        assert_eq!(m.len(), 50);
        for k in 0..100u64 {
            assert_eq!(m.get(&k).is_some(), k % 2 == 1, "key {k}");
        }
    }

    #[test]
    fn get_or_insert_with_matches_entry_semantics() {
        let mut m: FastMap<u64, Vec<u64>> = FastMap::new();
        m.get_or_insert_with(3, Vec::new).push(1);
        m.get_or_insert_with(3, Vec::new).push(2);
        assert_eq!(m.get(&3), Some(&vec![1, 2]));
    }

    #[test]
    fn matches_std_hashmap_under_random_ops() {
        let mut rng = SplitMix64::new(0xfa57);
        let mut fast: FastMap<u64, u64> = FastMap::new();
        let mut std: std::collections::HashMap<u64, u64> = Default::default();
        for step in 0..20_000u64 {
            let k = rng.next_u64() % 257; // small key space → heavy collisions
            match rng.next_u64() % 4 {
                0 | 1 => {
                    assert_eq!(fast.insert(k, step), std.insert(k, step));
                }
                2 => {
                    assert_eq!(fast.remove(&k), std.remove(&k));
                }
                _ => {
                    assert_eq!(fast.get(&k), std.get(&k));
                    assert_eq!(fast.contains_key(&k), std.contains_key(&k));
                }
            }
            assert_eq!(fast.len(), std.len());
        }
        let mut a: Vec<(u64, u64)> = fast.iter().map(|(k, &v)| (k, v)).collect();
        let mut b: Vec<(u64, u64)> = std.iter().map(|(&k, &v)| (k, v)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn codec_bytes_match_std_hashmap() {
        let mut fast: FastMap<u64, u32> = FastMap::new();
        let mut std: std::collections::HashMap<u64, u32> = Default::default();
        for (k, v) in [(9u64, 1u32), (2, 2), (14, 3), (3, 4)] {
            fast.insert(k, v);
            std.insert(k, v);
        }
        fast.remove(&14);
        std.remove(&14);
        let mut wf = Writer::new();
        fast.encode(&mut wf);
        let mut ws = Writer::new();
        std.encode(&mut ws);
        assert_eq!(wf.into_bytes(), ws.into_bytes());
    }

    #[test]
    fn iteration_order_is_a_function_of_history() {
        // Two maps built with the same op sequence iterate identically —
        // the property `--jobs N` byte-equality rests on.
        let build = || {
            let mut m: FastMap<u64, u64> = FastMap::new();
            for k in 0..40 {
                m.insert(k * 3, k);
            }
            for k in 0..10 {
                m.remove(&(k * 9));
            }
            m.insert(1000, 1);
            m
        };
        let a: Vec<_> = build().iter().map(|(k, &v)| (k, v)).collect();
        let b: Vec<_> = build().iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(a, b);
    }
}
