//! Strongly-typed identifiers used across the simulator.
//!
//! Newtypes ([`CoreId`], [`Addr`], [`LineAddr`], [`Pc`]) prevent the classic
//! cycle-vs-address-vs-index mixups that plague simulator code bases.

use std::fmt;

/// Size of a cache line in bytes (64 B, as in all modern x86 parts).
pub const LINE_BYTES: u64 = 64;
/// log2 of [`LINE_BYTES`].
pub const LINE_SHIFT: u32 = 6;

/// Identifier of a processor core (and of its hardware thread: the simulated
/// system runs one thread per core, as the paper's 32-thread/32-core setup).
///
/// # Example
/// ```
/// use row_common::ids::CoreId;
/// let c = CoreId::new(3);
/// assert_eq!(c.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core identifier from a raw index.
    pub const fn new(index: u16) -> Self {
        CoreId(index)
    }

    /// The raw index, usable for array indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<u16> for CoreId {
    fn from(v: u16) -> Self {
        CoreId(v)
    }
}

/// A byte address in the simulated physical address space.
///
/// # Example
/// ```
/// use row_common::ids::{Addr, LineAddr};
/// let a = Addr::new(0x1234);
/// assert_eq!(a.line(), LineAddr::new(0x1234 >> 6));
/// assert_eq!(a.line_offset(), 0x34);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte address.
    pub const fn new(a: u64) -> Self {
        Addr(a)
    }

    /// The raw 64-bit byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache line this address falls in.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Byte offset of this address within its cache line.
    pub const fn line_offset(self) -> u64 {
        self.0 & (LINE_BYTES - 1)
    }

    /// Returns the address advanced by `bytes`.
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// A cache-line address (byte address divided by the 64-byte line size).
///
/// Coherence, cache locking, and the Atomic Queue all operate at line
/// granularity, so this type appears wherever the directory or the AQ does.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number.
    pub const fn new(l: u64) -> Self {
        LineAddr(l)
    }

    /// The raw line number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The byte address of the first byte of this line.
    pub const fn base_addr(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl From<Addr> for LineAddr {
    fn from(a: Addr) -> Self {
        a.line()
    }
}

/// A program counter value, used to index the RoW contention predictor.
///
/// # Example
/// ```
/// use row_common::ids::Pc;
/// let pc = Pc::new(0x400123);
/// assert_eq!(pc.raw(), 0x400123);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Pc(u64);

impl Pc {
    /// Creates a program counter from a raw value.
    pub const fn new(pc: u64) -> Self {
        Pc(pc)
    }

    /// The raw program-counter value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc:{:#x}", self.0)
    }
}

impl From<u64> for Pc {
    fn from(v: u64) -> Self {
        Pc(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_mapping_round_trips() {
        let a = Addr::new(0xdead_beef);
        assert_eq!(a.line().base_addr().raw(), 0xdead_beef & !63);
        assert_eq!(a.line_offset(), 0xdead_beef & 63);
    }

    #[test]
    fn line_of_base_addr_is_identity() {
        for l in [0u64, 1, 7, 1 << 40] {
            let la = LineAddr::new(l);
            assert_eq!(la.base_addr().line(), la);
        }
    }

    #[test]
    fn addr_offset_advances() {
        let a = Addr::new(100);
        assert_eq!(a.offset(28).raw(), 128);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(CoreId::new(5).to_string(), "core5");
        assert_eq!(Addr::new(16).to_string(), "0x10");
        assert_eq!(LineAddr::new(2).to_string(), "L0x2");
        assert_eq!(Pc::new(3).to_string(), "pc:0x3");
    }

    #[test]
    fn core_id_index() {
        assert_eq!(CoreId::from(9u16).index(), 9);
    }
}
